#!/usr/bin/env python3
"""Diagnostic regression gate for the examples corpus.

Compares the JSON output of dwc_lint / dwc_analyze (--format=json) against
a committed baseline and fails when any (script, rule) pair reports MORE
diagnostics than the baseline records — i.e. a new finding crept into the
corpus. Fewer diagnostics than the baseline is progress: the gate prints a
reminder to re-bless the baseline but does not fail.

Usage:
  dwc_lint --format=json examples/scripts/*.dwc > current.json
  check_diag_regression.py tools/diag_baseline.json current.json

Re-bless after intentional changes:
  dwc_lint --format=json examples/scripts/*.dwc > tools/diag_baseline.json
File paths are reduced to basenames so build/checkout locations don't
matter.
"""

import collections
import json
import os
import sys


def counts(path):
    """(basename, rule) -> number of diagnostics, from tool JSON output."""
    with open(path) as f:
        data = json.load(f)
    # dwc_lint emits a flat array of per-file objects; dwc_analyze nests
    # the same object under "diagnostics".
    out = collections.Counter()
    for entry in data:
        report = entry.get("diagnostics", entry)
        if isinstance(report, dict) and "diagnostics" in report:
            report = report["diagnostics"]
        name = os.path.basename(entry.get("file", "?"))
        for diag in report:
            out[(name, diag["rule"])] += 1
    return out


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = counts(argv[1])
    current = counts(argv[2])

    regressions = []
    for key, n in sorted(current.items()):
        if n > baseline.get(key, 0):
            regressions.append((key, baseline.get(key, 0), n))
    improvements = [
        (key, n, current.get(key, 0))
        for key, n in sorted(baseline.items())
        if current.get(key, 0) < n
    ]

    for (name, rule), old, new in regressions:
        print(f"REGRESSION {name}: {rule} {old} -> {new}")
    for (name, rule), old, new in improvements:
        print(f"improved {name}: {rule} {old} -> {new} "
              "(re-bless the baseline to lock it in)")
    if regressions:
        print(f"{len(regressions)} diagnostic regression(s) vs {argv[1]}")
        return 1
    print(f"no diagnostic regressions vs {argv[1]} "
          f"({sum(current.values())} finding(s) across "
          f"{len({k[0] for k in current})} script(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
