// dwc_lint: static analyzer for warehouse specification scripts.
//
//   dwc_lint [options] <script.dwc> [more.dwc ...]
//
// Parses each script and runs every analysis pass (see src/lint/passes.h),
// reporting all findings with source positions instead of stopping at the
// first problem. Exit status: 0 when no script has errors, 1 when any
// does (warnings count as errors under --werror), 2 on usage or I/O
// failure.
//
// Options:
//   --format=text|json|sarif  Output format (default text). JSON output is
//                       one array with one object per input file; SARIF
//                       output is a single 2.1.0 log covering every file
//                       (for GitHub code-scanning upload). --sarif is an
//                       alias for --format=sarif.
//   --werror            Treat warnings as errors for the exit status.
//   --no-notes          Suppress note-severity findings.
//   --list-rules        Print the rule catalog and exit.
//   -                   Read a script from standard input.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/linter.h"
#include "lint/sarif.h"

namespace {

enum class Format { kText, kJson, kSarif };

struct Options {
  Format format = Format::kText;
  bool werror = false;
  bool notes = true;
  std::vector<std::string> files;
};

void PrintUsage(std::ostream& out) {
  out << "usage: dwc_lint [--format=text|json|sarif] [--werror] "
         "[--no-notes] [--list-rules] <script.dwc>...\n";
}

void PrintRules(std::ostream& out) {
  for (const dwc::LintRule& rule : dwc::LintRules()) {
    out << rule.id << "  " << dwc::LintSeverityName(rule.severity) << "  "
        << rule.summary;
    if (rule.paper_ref[0] != '\0') {
      out << " (" << rule.paper_ref << ")";
    }
    out << "\n";
  }
}

bool ReadInput(const std::string& file, std::string* out) {
  if (file == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(file);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=text") {
      options.format = Format::kText;
    } else if (arg == "--format=json") {
      options.format = Format::kJson;
    } else if (arg == "--format=sarif" || arg == "--sarif") {
      options.format = Format::kSarif;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--no-notes") {
      options.notes = false;
    } else if (arg == "--list-rules") {
      PrintRules(std::cout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
      std::cerr << "dwc_lint: unknown option '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  bool failed = false;
  std::string json_out = "[";
  std::vector<dwc::SarifFileResults> sarif_files;
  for (size_t i = 0; i < options.files.size(); ++i) {
    const std::string& file = options.files[i];
    std::string source;
    if (!ReadInput(file, &source)) {
      std::cerr << "dwc_lint: cannot read '" << file << "'\n";
      return 2;
    }
    dwc::LintReport report = dwc::LintScript(source);
    std::vector<dwc::Diagnostic> shown;
    for (const dwc::Diagnostic& diagnostic : report.diagnostics) {
      if (!options.notes &&
          diagnostic.severity == dwc::LintSeverity::kNote) {
        continue;
      }
      shown.push_back(diagnostic);
    }
    std::string label = file == "-" ? "<stdin>" : file;
    switch (options.format) {
      case Format::kJson:
        if (i > 0) {
          json_out += ", ";
        }
        json_out += dwc::FormatDiagnosticsJson(shown, label);
        break;
      case Format::kSarif:
        sarif_files.push_back(dwc::SarifFileResults{label, shown});
        break;
      case Format::kText:
        std::cout << dwc::FormatDiagnosticsText(shown, label);
        break;
    }
    failed = failed || report.has_errors() ||
             (options.werror && report.warnings > 0);
  }
  if (options.format == Format::kJson) {
    std::cout << json_out << "]\n";
  } else if (options.format == Format::kSarif) {
    std::cout << dwc::FormatSarif(sarif_files, "dwc_lint") << "\n";
  }
  return failed ? 1 : 0;
}
