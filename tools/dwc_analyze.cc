// dwc_analyze: semantic analyzer for warehouse specification scripts.
//
//   dwc_analyze [options] <script.dwc> [more.dwc ...]
//
// Runs the src/analysis/ verdict engines over each script and dumps:
//   * one self-maintainability certificate per (warehouse relation, base
//     relation, delta kind) triple — SELF / COMPLEMENT / SOURCE with its
//     derivation chain;
//   * the per-base invertibility proof (is W⁻¹ well-defined?), including
//     minimal missing-attribute witnesses for lossy claimed complements;
//   * complement usage (dead columns / over-complements).
// Semantic findings (DWC-S001..S006) and declaration errors are reported
// through the standard diagnostic pipeline. Exit status: 0 when no script
// has errors, 1 when any does (warnings count under --werror), 2 on usage
// or I/O failure.
//
// Options:
//   --format=text|json|sarif  Output format (default text). SARIF covers
//                       the diagnostics of every file in one 2.1.0 log;
//                       --sarif is an alias.
//   --werror            Treat warnings as errors for the exit status.
//   --no-certs          Diagnostics only; skip the certificate dump.
//   -                   Read a script from standard input.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "lint/diagnostic.h"
#include "lint/passes.h"
#include "lint/sarif.h"
#include "lint/spec.h"
#include "parser/parser.h"
#include "util/string_util.h"

namespace {

enum class Format { kText, kJson, kSarif };

struct Options {
  Format format = Format::kText;
  bool werror = false;
  bool certs = true;
  std::vector<std::string> files;
};

void PrintUsage(std::ostream& out) {
  out << "usage: dwc_analyze [--format=text|json|sarif] [--werror] "
         "[--no-certs] <script.dwc>...\n";
}

bool ReadInput(const std::string& file, std::string* out) {
  if (file == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *out = buffer.str();
    return true;
  }
  std::ifstream in(file);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) {
          out += c;
        }
    }
  }
  return out;
}

std::string CertificatesJson(const dwc::AnalysisResult& result) {
  std::string out = "[";
  bool first = true;
  for (const dwc::SelfMaintCertificate& cert :
       result.selfmaint.certificates) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += dwc::StrCat(
        "{\"relation\": \"", JsonEscape(cert.relation), "\", \"base\": \"",
        JsonEscape(cert.base), "\", \"delta\": \"",
        dwc::DeltaKindName(cert.kind), "\", \"verdict\": \"",
        dwc::MaintVerdictName(cert.verdict), "\", \"reads\": [");
    for (size_t i = 0; i < cert.reads.size(); ++i) {
      out += dwc::StrCat(i > 0 ? ", " : "", "\"", JsonEscape(cert.reads[i]),
                         "\"");
    }
    out += "], \"derivation\": [";
    for (size_t i = 0; i < cert.derivation.size(); ++i) {
      out += dwc::StrCat(i > 0 ? ", " : "", "\"",
                         JsonEscape(cert.derivation[i]), "\"");
    }
    out += "]}";
  }
  return out + "]";
}

std::string InvertibilityJson(const dwc::AnalysisResult& result) {
  std::string out = "[";
  bool first = true;
  for (const dwc::BaseInvertibility& entry :
       result.invertibility.per_base) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += dwc::StrCat("{\"base\": \"", JsonEscape(entry.base),
                       "\", \"verdict\": \"",
                       dwc::InvertVerdictName(entry.verdict),
                       "\", \"findings\": [");
    for (size_t i = 0; i < entry.findings.size(); ++i) {
      const dwc::InvertFinding& finding = entry.findings[i];
      out += dwc::StrCat(
          i > 0 ? ", " : "", "{\"kind\": \"",
          dwc::InvertFindingKindName(finding.kind), "\", \"witness\": [");
      bool first_attr = true;
      for (const std::string& attr : finding.missing) {
        out += dwc::StrCat(first_attr ? "" : ", ", "\"", JsonEscape(attr),
                           "\"");
        first_attr = false;
      }
      out += "]}";
    }
    out += "]}";
  }
  return out + "]";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--format=text") {
      options.format = Format::kText;
    } else if (arg == "--format=json") {
      options.format = Format::kJson;
    } else if (arg == "--format=sarif" || arg == "--sarif") {
      options.format = Format::kSarif;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--no-certs") {
      options.certs = false;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-' && arg != "-") {
      std::cerr << "dwc_analyze: unknown option '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  bool failed = false;
  std::string json_out = "[";
  std::vector<dwc::SarifFileResults> sarif_files;
  for (size_t i = 0; i < options.files.size(); ++i) {
    const std::string& file = options.files[i];
    std::string source;
    if (!ReadInput(file, &source)) {
      std::cerr << "dwc_analyze: cannot read '" << file << "'\n";
      return 2;
    }
    std::string label = file == "-" ? "<stdin>" : file;

    dwc::DiagnosticSink sink;
    dwc::AnalysisResult result;
    dwc::Result<dwc::ParsedProgram> program =
        dwc::ParseProgramWithLocations(source);
    if (!program.ok()) {
      sink.Report("DWC-E001", dwc::SourceLocation{},
                  std::string(program.status().message()));
    } else {
      dwc::LintInput input = dwc::BuildLintInput(*program, &sink);
      dwc::SemanticAnalysisPass()->Run(input, &sink);
      dwc::AnalysisInput ain;
      ain.catalog = input.catalog;
      for (const dwc::LintedView& view : input.views) {
        ain.views.push_back(view.def);
      }
      for (const dwc::LintedQuery& query : input.queries) {
        ain.queries.push_back(query.expr);
      }
      result = dwc::AnalyzeWarehouse(ain);
    }
    sink.Sort();

    switch (options.format) {
      case Format::kText: {
        std::cout << dwc::FormatDiagnosticsText(sink.diagnostics(), label);
        if (options.certs) {
          std::cout << "== self-maintainability certificates (" << label
                    << ") ==\n";
          if (!result.spec_error.empty()) {
            std::cout << "  (unavailable: " << result.spec_error << ")\n";
          }
          for (const dwc::SelfMaintCertificate& cert :
               result.selfmaint.certificates) {
            std::cout << cert.ToString() << "\n";
          }
          std::cout << "== invertibility (" << label << ") ==\n"
                    << result.invertibility.ToString();
          std::string usage = result.usage.ToString();
          if (!usage.empty()) {
            std::cout << "== complement usage (" << label << ") ==\n"
                      << usage;
          }
        }
        break;
      }
      case Format::kJson: {
        if (i > 0) {
          json_out += ", ";
        }
        json_out += dwc::StrCat(
            "{\"file\": \"", JsonEscape(label), "\", \"diagnostics\": ",
            dwc::FormatDiagnosticsJson(sink.diagnostics(), label),
            ", \"certificates\": ", CertificatesJson(result),
            ", \"invertibility\": ", InvertibilityJson(result), "}");
        break;
      }
      case Format::kSarif:
        sarif_files.push_back(
            dwc::SarifFileResults{label, sink.diagnostics()});
        break;
    }
    failed = failed || sink.has_errors() ||
             (options.werror && sink.warning_count() > 0);
  }
  if (options.format == Format::kJson) {
    std::cout << json_out << "]\n";
  } else if (options.format == Format::kSarif) {
    std::cout << dwc::FormatSarif(sarif_files, "dwc_analyze") << "\n";
  }
  return failed ? 1 : 0;
}
