// dwc_recover: inspect and recover a dwc::storage directory.
//
//   dwc_recover [--inspect|--recover|--repair] <storage-dir>
//
//   --inspect  (default) Read-only structural report: manifest, checkpoint
//              checksum verdict, per-segment record counts and damage.
//              Never fails on damage — damage is what it is for.
//   --recover  Full recovery in dry-run mode: rebuild the warehouse from
//              checkpoint + WAL replay (digest-verified) but leave the
//              directory untouched. Proves the directory is recoverable.
//   --repair   Full recovery that also truncates torn tails on disk and
//              sweeps files the manifest no longer references.
//
// Exit status: 0 on success, 1 when recovery fails (corrupt committed
// history, bad checkpoint, stamp discontinuity), 2 on usage errors.
//
// CI runs `dwc_recover --inspect` over the disk a failing crash-matrix run
// exports (DWC_CRASH_DUMP_DIR) and uploads the report as an artifact.

#include <iostream>
#include <string>

#include "storage/recovery.h"
#include "storage/vfs.h"
#include "util/checksum.h"
#include "warehouse/warehouse.h"

namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: dwc_recover [--inspect|--recover|--repair] <storage-dir>\n";
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kInspect, kRecover, kRepair };
  Mode mode = Mode::kInspect;
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--inspect") {
      mode = Mode::kInspect;
    } else if (arg == "--recover") {
      mode = Mode::kRecover;
    } else if (arg == "--repair") {
      mode = Mode::kRepair;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      PrintUsage(std::cerr);
      return 2;
    } else if (dir.empty()) {
      dir = arg;
    } else {
      std::cerr << "only one storage directory may be given\n";
      PrintUsage(std::cerr);
      return 2;
    }
  }
  if (dir.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  dwc::PosixVfs vfs;
  dwc::RecoveryManager manager(&vfs, dir);
  if (mode == Mode::kInspect) {
    dwc::Result<std::string> report = manager.Inspect();
    if (!report.ok()) {
      std::cerr << "inspect failed: " << report.status().ToString() << "\n";
      return 1;
    }
    std::cout << *report;
    // Resume-epoch preview. Snapshot epochs are process-local: whatever
    // delivery stamp the journal carries, a warehouse resumed from this
    // directory publishes its single recovered state as snapshot epoch 1
    // and counts upward from there (DESIGN.md §12).
    std::cout << "resume preview: recovered state would publish as snapshot "
                 "epoch 1\n";
    return 0;
  }

  dwc::Result<dwc::RecoveredStorage> recovered =
      manager.Recover(/*repair=*/mode == Mode::kRepair);
  if (!recovered.ok()) {
    std::cerr << "recovery failed: " << recovered.status().ToString() << "\n";
    return 1;
  }
  std::cout << recovered->report.ToString() << "\n";
  std::cout << "snapshot epoch after resume: "
            << recovered->restored.warehouse->current_epoch() << "\n"
            << "epoch stats: "
            << recovered->restored.warehouse->epoch_stats().ToString()
            << "\n";
  std::cout << "recovered state fingerprint: "
            << dwc::DigestToHex(
                   dwc::StateDigest(recovered->restored.warehouse->state())
                       .Combined())
            << "\n";
  if (mode == Mode::kRepair) {
    std::cout << "directory repaired (torn tail truncated, garbage swept)\n";
  } else {
    std::cout << "dry run: directory left untouched\n";
  }
  return 0;
}
