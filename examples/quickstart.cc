// Quickstart: the paper's running example (Figure 1) end to end.
//
//   1. Declare the source schemas, constraints and the warehouse view
//      Sold = Sale |x| Emp using the DSL.
//   2. Compute the complement and the inverse mapping (Theorem 2.2).
//   3. Load the warehouse and derive incremental maintenance plans.
//   4. Apply the paper's update ("insert <Computer, Paula> into Sale")
//      and answer queries at the warehouse — all without ever querying
//      the sources.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/warehouse_spec.h"
#include "parser/interpreter.h"
#include "parser/parser.h"
#include "warehouse/warehouse.h"

namespace {

constexpr char kScript[] = R"(
CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));
CREATE TABLE Sale(item STRING, clerk STRING);
INCLUSION Sale(clerk) SUBSETOF Emp(clerk);

INSERT INTO Sale VALUES ('TV set', 'Mary'), ('VCR', 'Mary'), ('PC', 'John');
INSERT INTO Emp VALUES ('Mary', 23), ('John', 25), ('Paula', 32);

VIEW Sold AS Sale JOIN Emp;
)";

int Fail(const dwc::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  // --- 1. Sources and warehouse definition.
  dwc::Result<dwc::ScriptContext> context = dwc::RunScript(kScript);
  if (!context.ok()) return Fail(context.status());

  std::cout << "== Source databases (Figure 1) ==\n"
            << context->db.ToString() << "\n";

  // --- 2. Complement + inverse mapping.
  dwc::Result<dwc::WarehouseSpec> spec =
      dwc::SpecifyWarehouse(context->catalog, context->views);
  if (!spec.ok()) return Fail(spec.status());
  auto spec_ptr = std::make_shared<dwc::WarehouseSpec>(std::move(spec).value());

  std::cout << "== Warehouse specification ==\n" << spec_ptr->ToString()
            << "\n";
  std::cout << "Note: with the referential integrity clerk(Sale) <= "
               "clerk(Emp),\nC_Sale is provably empty (Example 2.4) and only "
               "C_Emp is stored.\n\n";

  // --- 3. Load and show the maintenance plan.
  dwc::Source source(context->db);
  dwc::Result<dwc::Warehouse> warehouse = dwc::Warehouse::Load(
      spec_ptr, source.db(), dwc::MaintenanceStrategy::kIncremental);
  if (!warehouse.ok()) return Fail(warehouse.status());

  std::cout << "== Incremental maintenance plan (Example 4.1 style) ==\n"
            << warehouse->plan().ToString() << "\n";

  std::cout << "== Initial warehouse state ==\n"
            << warehouse->state().ToString() << "\n";

  // --- 4. The paper's update: insert <Computer, Paula> into Sale.
  dwc::UpdateOp op;
  op.relation = "Sale";
  op.inserts.push_back(dwc::Tuple(
      {dwc::Value::String("Computer"), dwc::Value::String("Paula")}));
  dwc::Result<dwc::CanonicalDelta> delta = source.Apply(op);
  if (!delta.ok()) return Fail(delta.status());
  dwc::Status integrated = warehouse->Integrate(*delta);
  if (!integrated.ok()) return Fail(integrated);

  std::cout << "== After insert <'Computer', 'Paula'> into Sale ==\n"
            << warehouse->state().ToString();
  std::cout << "source queries during maintenance: " << source.query_count()
            << " (update independence)\n\n";

  // --- 5. Answer source queries at the warehouse (Example 1.2, Section 3).
  const char* queries[] = {
      "project[clerk](Sale) union project[clerk](Emp)",
      "project[age](select[item = 'Computer'](Sale) JOIN Emp)",
  };
  for (const char* text : queries) {
    dwc::Result<dwc::ExprRef> query = dwc::ParseExpr(text);
    if (!query.ok()) return Fail(query.status());
    dwc::Result<dwc::ExprRef> translated =
        dwc::TranslateQuery(*query, *spec_ptr);
    if (!translated.ok()) return Fail(translated.status());
    dwc::Result<dwc::Relation> answer = warehouse->AnswerQuery(*query);
    if (!answer.ok()) return Fail(answer.status());
    std::cout << "Q  = " << (*query)->ToString() << "\n"
              << "Q' = " << (*translated)->ToString() << "\n"
              << "   -> " << answer->ToString() << "\n\n";
  }
  std::cout << "source queries total: " << source.query_count()
            << " (query independence)\n";
  return 0;
}
