// Section 5 scenario: a TPC-D-flavoured business warehouse on a star schema.
//
// Dimension tables are copied to the warehouse; fact tables are PSJ views
// joining the facts with their dimensions. Foreign keys (key + inclusion
// constraints) make every complement empty — the warehouse needs *no*
// auxiliary views to be query- and update-independent — and the integrator
// absorbs streams of sales appends without a single source query.
//
// Build & run:  cmake --build build && ./build/examples/star_schema

#include <chrono>
#include <iostream>

#include "core/warehouse_spec.h"
#include "parser/parser.h"
#include "warehouse/warehouse.h"
#include "workload/star_schema.h"

namespace {

int Fail(const dwc::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  dwc::StarSchemaConfig config;
  config.customers = 200;
  config.suppliers = 50;
  config.parts = 400;
  config.locations = 25;
  config.orders = 2000;
  config.sales = 8000;

  dwc::Result<dwc::StarSchema> star = dwc::BuildStarSchema(config);
  if (!star.ok()) return Fail(star.status());

  std::cout << "== Star schema (Section 5) ==\n"
            << star->catalog->ToString() << "\n";
  std::cout << "warehouse views:\n";
  for (const dwc::ViewDef& view : star->views) {
    std::cout << "  " << view.name << " = " << view.expr->ToString() << "\n";
  }

  dwc::Result<dwc::WarehouseSpec> spec =
      dwc::SpecifyWarehouse(star->catalog, star->views);
  if (!spec.ok()) return Fail(spec.status());
  auto spec_ptr = std::make_shared<dwc::WarehouseSpec>(std::move(spec).value());

  std::cout << "\ncomplement views needed: " << spec_ptr->complements().size()
            << " (foreign keys empty them all — Theorem 2.2)\n";

  dwc::Source source(star->db);
  auto t0 = std::chrono::steady_clock::now();
  dwc::Result<dwc::Warehouse> warehouse =
      dwc::Warehouse::Load(spec_ptr, source.db());
  if (!warehouse.ok()) return Fail(warehouse.status());
  std::cout << "initial load: " << MillisSince(t0) << " ms, FactSales has "
            << warehouse->FindRelation("FactSales")->size() << " tuples\n\n";

  // OLAP layer (Section 5's closing paragraph): a summary table over the
  // fact view, maintained incrementally alongside it.
  dwc::AggregateViewDef agg;
  agg.name = "UnitsByRegion";
  agg.source = dwc::Expr::Base("FactSales");
  agg.group_by = {"supp_region"};
  agg.aggregates = {{dwc::AggFunc::kCount, "", "n_sales"},
                    {dwc::AggFunc::kSum, "quantity", "units"},
                    {dwc::AggFunc::kMax, "quantity", "biggest"}};
  if (dwc::Status s = warehouse->AddAggregateView(agg); !s.ok()) {
    return Fail(s);
  }
  std::cout << "summary table: " << agg.ToString() << "\n\n";

  // Stream sales appends through the integrator.
  dwc::Rng rng(2026);
  size_t total = 0;
  auto t1 = std::chrono::steady_clock::now();
  for (int batch = 0; batch < 20; ++batch) {
    dwc::Result<dwc::UpdateOp> op =
        dwc::GenerateSalesBatch(source.db(), 100, &rng);
    if (!op.ok()) return Fail(op.status());
    dwc::Result<dwc::CanonicalDelta> delta = source.Apply(*op);
    if (!delta.ok()) return Fail(delta.status());
    dwc::Status status = warehouse->Integrate(*delta);
    if (!status.ok()) return Fail(status);
    total += delta->inserts.size();
  }
  double ms = MillisSince(t1);
  std::cout << "integrated " << total << " sales in " << ms << " ms ("
            << static_cast<size_t>(total / (ms / 1000.0))
            << " tuples/s), source queries: " << source.query_count() << "\n";

  dwc::Status consistent = dwc::CheckConsistency(*warehouse, source.db());
  std::cout << "consistency check: " << consistent.ToString() << "\n\n";

  // OLAP-ish queries answered entirely at the warehouse.
  const char* queries[] = {
      // Customers per region with June orders.
      "project[cust_region, cust_name]"
      "(select[order_month = 6](Orders JOIN Customer))",
      // Parts sold by emea suppliers.
      "project[part_name]"
      "(select[supp_region = 'emea'](Sales JOIN Supplier JOIN Part))",
      // Clerks... locations never ordered from.
      "project[loc_city](Location) minus "
      "project[loc_city](Orders JOIN Location)",
  };
  for (const char* text : queries) {
    dwc::Result<dwc::ExprRef> query = dwc::ParseExpr(text);
    if (!query.ok()) return Fail(query.status());
    auto tq = std::chrono::steady_clock::now();
    dwc::Result<dwc::Relation> answer = warehouse->AnswerQuery(*query);
    if (!answer.ok()) return Fail(answer.status());
    std::cout << "Q = " << (*query)->ToString() << "\n  -> "
              << answer->size() << " tuples in " << MillisSince(tq)
              << " ms\n";
  }
  std::cout << "\nUnitsByRegion (maintained incrementally through "
            << total << " appends):\n"
            << warehouse->FindAggregate("UnitsByRegion")->materialized()
                   .ToString()
            << "\n";
  std::cout << "\nsource queries total: " << source.query_count() << "\n";
  return 0;
}
