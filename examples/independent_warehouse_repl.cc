// Interactive independent-warehouse shell.
//
// Phase 1 (definition): feed CREATE TABLE / INCLUSION / INSERT / VIEW
// statements, then type `warehouse` to freeze the definition: the tool
// computes the complement, derives maintenance plans and loads W = V ∪ C.
//
// Phase 2 (operation): INSERT/DELETE statements now go to the simulated
// *sources*, which report deltas that the warehouse integrates locally;
// QUERY statements are answered from warehouse data via W^-1. The prompt
// shows the source-query counter, which stays at 0 — that is the paper.
//
// Commands: `spec` (show W, C, W^-1), `plan` (maintenance expressions),
// `state` (warehouse contents), `sources` (ground truth), `check`
// (consistency), `faults` (route deltas through a fault-injecting channel
// + recovering ingestor), `stats` (what the ingestor did about it, plus
// the runtime governor's admission counters), `limits` (inspect/set query
// deadlines, tuple budgets, admission queue bounds, and circuit-breaker
// thresholds — DESIGN.md §13), `storage <dir>` (WAL + checkpoint
// durability for every integrated delta), `storage stats`, `checkpoint`
// (force one now), `recover <dir>` (resume a crashed session from its
// storage directory), `help`, `quit`. Reads stdin; pipe a script or type.
//
// Example session:
//   CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));
//   CREATE TABLE Sale(item STRING, clerk STRING);
//   INSERT INTO Emp VALUES ('Mary', 23);
//   VIEW Sold AS Sale JOIN Emp;
//   warehouse
//   INSERT INTO Sale VALUES ('TV', 'Mary');
//   QUERY project[clerk](Sale) union project[clerk](Emp);
//   check
//   quit

#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "core/warehouse_spec.h"
#include "parser/interpreter.h"
#include "parser/parser.h"
#include "runtime/breaker.h"
#include "runtime/cancel.h"
#include "runtime/governor.h"
#include "storage/durable.h"
#include "storage/vfs.h"
#include "util/string_util.h"
#include "warehouse/channel.h"
#include "warehouse/ingest.h"
#include "warehouse/persistence.h"
#include "warehouse/warehouse.h"

namespace {

using dwc::Status;

class Repl {
 public:
  int Run() {
    std::cout << "dwc independent-warehouse shell. Type `help` for help.\n";
    std::string buffer;
    std::string line;
    while (true) {
      std::cout << (warehouse_ ? "[warehouse" +
                                     std::string(" q=") +
                                     std::to_string(source_->query_count()) +
                                     "]> "
                               : "[define]> ");
      std::cout.flush();
      if (!std::getline(std::cin, line)) {
        break;
      }
      std::string trimmed(dwc::Trim(line));
      if (trimmed.empty()) {
        continue;
      }
      if (buffer.empty() && HandleCommand(trimmed)) {
        if (quit_) {
          break;
        }
        continue;
      }
      buffer += line + "\n";
      if (trimmed.back() == ';') {
        Status status = Execute(buffer);
        if (!status.ok()) {
          std::cout << "error: " << status.ToString() << "\n";
        }
        buffer.clear();
      }
    }
    return 0;
  }

 private:
  // Returns true if `line` was a shell command.
  bool HandleCommand(const std::string& line) {
    std::string lower = dwc::ToLower(line);
    if (lower == "quit" || lower == "exit") {
      quit_ = true;
      return true;
    }
    if (lower == "help") {
      std::cout <<
          "statements (end with ';'):\n"
          "  CREATE TABLE R(a INT, b STRING, KEY(a));\n"
          "  INCLUSION R(a) SUBSETOF S(a);\n"
          "  VIEW V AS PROJECT[a](SELECT[b = 'x'](R JOIN S));\n"
          "  INSERT INTO R VALUES (1, 'x'), (2, 'y');\n"
          "  DELETE FROM R VALUES (1, 'x');\n"
          "  QUERY R JOIN S;\n"
          "commands: warehouse, spec, plan, state, sources, check, save,\n"
          "          faults <drop> <dup> <reorder> <corrupt> [seed],\n"
          "          faults off, stats, epochs, limits [<knob> <value>],\n"
          "          storage <dir>, storage stats, checkpoint,\n"
          "          recover <dir>, quit\n";
      return true;
    }
    if (lower == "epochs") {
      if (RequireWarehouse()) {
        // Snapshot-epoch observability: which state version queries pin,
        // how many readers hold pins, and what the reclamation sweep has
        // retired vs reclaimed (DESIGN.md §12).
        std::cout << "current epoch: " << warehouse_->current_epoch() << "\n"
                  << "epoch stats:   "
                  << warehouse_->epoch_stats().ToString() << "\n";
      }
      return true;
    }
    if (lower == "stats") {
      if (ingestor_ != nullptr) {
        const dwc::CircuitBreaker& breaker = ingestor_->breaker();
        std::cout << "ingestor: " << ingestor_->stats().ToString() << "\n"
                  << "channel:  " << channel_->stats().ToString() << "\n"
                  << "breaker:  state=" << dwc::BreakerStateName(breaker.state())
                  << " trips=" << breaker.trips()
                  << " probes=" << breaker.probes() << "\n";
      } else {
        std::cout << "no faulty channel attached; see `faults`\n";
      }
      std::cout << "governor: " << governor_.stats().ToString() << "\n";
      return true;
    }
    if (lower == "limits" || lower.rfind("limits ", 0) == 0) {
      HandleLimits(lower);
      return true;
    }
    if (lower == "faults" || lower.rfind("faults ", 0) == 0) {
      if (RequireWarehouse()) {
        HandleFaults(lower);
      }
      return true;
    }
    if (lower == "storage stats") {
      if (durable_ != nullptr) {
        std::cout << "storage (" << durable_->dir() << "):\n"
                  << durable_->stats().ToString() << "\n";
      } else {
        std::cout << "no storage attached; see `storage <dir>`\n";
      }
      return true;
    }
    if (lower == "storage" || lower.rfind("storage ", 0) == 0) {
      if (RequireWarehouse()) {
        HandleStorage(line);
      }
      return true;
    }
    if (lower == "checkpoint") {
      if (durable_ == nullptr) {
        std::cout << "no storage attached; see `storage <dir>`\n";
      } else {
        Status status = durable_->Checkpoint();
        if (status.ok()) {
          std::cout << "checkpoint " << durable_->stats().checkpoint_id
                    << " committed; WAL truncated to segment "
                    << durable_->stats().segment_id << "\n";
        } else {
          std::cout << "error: " << status.ToString() << "\n";
        }
      }
      return true;
    }
    if (lower == "recover" || lower.rfind("recover ", 0) == 0) {
      HandleRecover(line);
      return true;
    }
    if (lower == "warehouse") {
      Status status = Freeze();
      if (!status.ok()) {
        std::cout << "error: " << status.ToString() << "\n";
      }
      return true;
    }
    if (lower == "spec") {
      if (RequireWarehouse()) {
        std::cout << spec_->ToString();
      }
      return true;
    }
    if (lower == "plan") {
      if (RequireWarehouse()) {
        std::cout << warehouse_->plan().ToString();
      }
      return true;
    }
    if (lower == "state") {
      if (RequireWarehouse()) {
        std::cout << warehouse_->state().ToString();
      } else {
        std::cout << context_.db.ToString();
      }
      return true;
    }
    if (lower == "sources") {
      std::cout << (warehouse_ ? source_->db().ToString()
                               : context_.db.ToString());
      return true;
    }
    if (lower == "save") {
      if (RequireWarehouse()) {
        dwc::Result<std::string> script =
            dwc::WarehouseToScript(*warehouse_);
        if (script.ok()) {
          std::cout << "-- dwc checkpoint (reload by piping into this "
                       "shell, then `warehouse`)\n"
                    << *script;
        } else {
          std::cout << "error: " << script.status().ToString() << "\n";
        }
      }
      return true;
    }
    if (lower == "check") {
      if (RequireWarehouse()) {
        Status status = dwc::CheckConsistency(*warehouse_, source_->db());
        std::cout << "consistency: " << status.ToString() << "\n";
      }
      return true;
    }
    return false;
  }

  // `faults off` detaches the channel; `faults d p r c [seed]` attaches one
  // with the given per-delivery rates. Updates then travel source ->
  // channel -> ingestor instead of being integrated directly, and the
  // recovery ladder silently repairs whatever the channel mangles.
  void HandleFaults(const std::string& line) {
    std::istringstream in(line);
    std::string command, first;
    in >> command >> first;
    if (first == "off") {
      if (ingestor_ != nullptr) {
        Status status = ingestor_->Drain();
        if (!status.ok()) {
          std::cout << "error: " << status.ToString() << "\n";
        }
      }
      ingestor_.reset();
      channel_.reset();
      std::cout << "channel detached; deltas integrate directly again\n";
      return;
    }
    dwc::FaultProfile profile;
    if (first.empty()) {
      std::cout << "usage: faults <drop> <dup> <reorder> <corrupt> [seed]\n"
                   "       faults off\n";
      return;
    }
    profile.drop_rate = std::atof(first.c_str());
    if (!(in >> profile.duplicate_rate >> profile.reorder_rate >>
          profile.corrupt_rate)) {
      std::cout << "usage: faults <drop> <dup> <reorder> <corrupt> [seed]\n";
      return;
    }
    in >> profile.seed;
    channel_ = std::make_unique<dwc::DeltaChannel>(profile);
    ingestor_ = std::make_unique<dwc::DeltaIngestor>(
        warehouse_.get(), source_.get(), channel_.get(), retry_policy_);
    if (durable_ != nullptr) {
      durable_->Attach(ingestor_.get());
    }
    std::cout << "faulty channel attached (drop=" << profile.drop_rate
              << " dup=" << profile.duplicate_rate
              << " reorder=" << profile.reorder_rate
              << " corrupt=" << profile.corrupt_rate
              << " seed=" << profile.seed << "); see `stats`\n";
  }

  // `limits` prints the runtime-governor knobs; `limits <knob> <value>`
  // sets one. deadline_ms/budget bound each QUERY statement (0 = off);
  // reads/maintenance/read_queue/maintenance_queue reconfigure admission
  // live; breaker_threshold/breaker_open_ticks shape the ingest circuit
  // breaker at the *next* `faults` attachment.
  void HandleLimits(const std::string& line) {
    std::istringstream in(line);
    std::string command, knob;
    in >> command >> knob;
    if (knob.empty()) {
      dwc::GovernorOptions opts = governor_.options();
      std::cout << "query:    deadline_ms=" << deadline_ms_
                << " budget=" << budget_tuples_ << " (0 = unbounded)\n"
                << "governor: reads=" << opts.max_concurrent_reads
                << " maintenance=" << opts.max_concurrent_maintenance
                << " read_queue=" << opts.max_read_queue
                << " maintenance_queue=" << opts.max_maintenance_queue
                << " level=" << dwc::LoadLevelName(governor_.level()) << "\n"
                << "breaker:  breaker_threshold="
                << retry_policy_.breaker.failure_threshold
                << " breaker_open_ticks=" << retry_policy_.breaker.open_ticks
                << "\n";
      return;
    }
    uint64_t value = 0;
    if (!(in >> value)) {
      std::cout << "usage: limits [deadline_ms|budget|reads|maintenance|"
                   "read_queue|maintenance_queue|breaker_threshold|"
                   "breaker_open_ticks <value>]\n";
      return;
    }
    dwc::GovernorOptions opts = governor_.options();
    if (knob == "deadline_ms") {
      deadline_ms_ = value;
    } else if (knob == "budget") {
      budget_tuples_ = value;
    } else if (knob == "reads") {
      opts.max_concurrent_reads = value;
    } else if (knob == "maintenance") {
      opts.max_concurrent_maintenance = value;
    } else if (knob == "read_queue") {
      opts.max_read_queue = value;
    } else if (knob == "maintenance_queue") {
      opts.max_maintenance_queue = value;
    } else if (knob == "breaker_threshold") {
      retry_policy_.breaker.failure_threshold = static_cast<int>(value);
      if (ingestor_ != nullptr) {
        std::cout << "note: applies when `faults` next attaches a channel\n";
      }
    } else if (knob == "breaker_open_ticks") {
      retry_policy_.breaker.open_ticks = value;
      if (ingestor_ != nullptr) {
        std::cout << "note: applies when `faults` next attaches a channel\n";
      }
    } else {
      std::cout << "unknown knob '" << knob << "'; see `limits`\n";
      return;
    }
    governor_.set_options(opts);
    std::cout << knob << " = " << value << "\n";
  }

  // `storage <dir>`: bootstrap WAL + checkpoint durability into `dir`.
  // Every delta integrated from here on is fsync'd before the statement
  // reports success, and `recover <dir>` resurrects the session.
  void HandleStorage(const std::string& line) {
    std::istringstream in(line);
    std::string command, dir;
    in >> command >> dir;
    if (dir.empty()) {
      std::cout << "usage: storage <dir> | storage stats\n";
      return;
    }
    if (durable_ != nullptr) {
      std::cout << "storage already attached at '" << durable_->dir()
                << "'\n";
      return;
    }
    dwc::Result<std::unique_ptr<dwc::DurableWarehouse>> durable =
        dwc::DurableWarehouse::Bootstrap(
            &vfs_, dir, warehouse_.get(),
            dwc::JournalStamp{source_->epoch(), source_->last_sequence()});
    if (!durable.ok()) {
      std::cout << "error: " << durable.status().ToString() << "\n";
      return;
    }
    durable_ = std::move(durable).value();
    if (ingestor_ != nullptr) {
      durable_->Attach(ingestor_.get());
    }
    std::cout << "storage attached at '" << dir
              << "': checkpoint 1 committed, WAL open\n";
  }

  // `recover <dir>`: replace the whole session with the recovered one.
  void HandleRecover(const std::string& line) {
    std::istringstream in(line);
    std::string command, dir;
    in >> command >> dir;
    if (dir.empty()) {
      std::cout << "usage: recover <dir>\n";
      return;
    }
    dwc::Result<dwc::DurableWarehouse::Resumed> resumed =
        dwc::DurableWarehouse::Resume(&vfs_, dir);
    if (!resumed.ok()) {
      std::cout << "error: " << resumed.status().ToString() << "\n";
      return;
    }
    // The recovered warehouse replaces the live session wholesale; the
    // ingestor/channel, if any, referenced the old objects and must go.
    ingestor_.reset();
    channel_.reset();
    spec_ = resumed->recovered.restored.spec;
    source_ = std::move(resumed->recovered.restored.source);
    warehouse_ = std::move(resumed->recovered.restored.warehouse);
    durable_ = std::move(resumed->durable);
    std::cout << "recovered: " << resumed->recovered.report.ToString()
              << "\n";
  }

  bool RequireWarehouse() {
    if (warehouse_ == nullptr) {
      std::cout << "no warehouse yet; type `warehouse` after defining views\n";
      return false;
    }
    return true;
  }

  Status Freeze() {
    if (warehouse_ != nullptr) {
      return Status::FailedPrecondition("warehouse already loaded");
    }
    if (context_.views.empty()) {
      return Status::FailedPrecondition("define at least one VIEW first");
    }
    DWC_RETURN_IF_ERROR(context_.db.ValidateConstraints());
    dwc::Result<dwc::WarehouseSpec> spec =
        dwc::SpecifyWarehouse(context_.catalog, context_.views);
    if (!spec.ok()) {
      return spec.status();
    }
    spec_ = std::make_shared<dwc::WarehouseSpec>(std::move(spec).value());
    source_ = std::make_unique<dwc::Source>(context_.db);
    dwc::Result<dwc::Warehouse> warehouse =
        dwc::Warehouse::Load(spec_, source_->db());
    if (!warehouse.ok()) {
      return warehouse.status();
    }
    warehouse_ =
        std::make_unique<dwc::Warehouse>(std::move(warehouse).value());
    std::cout << "warehouse loaded: " << spec_->views().size() << " views + "
              << spec_->complements().size() << " complement views\n";
    for (const dwc::AggregateViewDef& def : context_.summaries) {
      DWC_RETURN_IF_ERROR(warehouse_->AddAggregateView(def));
      std::cout << "summary table '" << def.name << "' materialized\n";
    }
    return Status::Ok();
  }

  Status Execute(const std::string& text) {
    dwc::Result<std::vector<dwc::Statement>> statements =
        dwc::ParseProgram(text);
    if (!statements.ok()) {
      return statements.status();
    }
    for (dwc::Statement& statement : *statements) {
      DWC_RETURN_IF_ERROR(ExecuteOne(statement));
    }
    return Status::Ok();
  }

  Status ExecuteOne(dwc::Statement& statement) {
    if (warehouse_ == nullptr) {
      // Definition phase: delegate to the script interpreter semantics by
      // re-running against the accumulated context. Simplest correct path:
      // rebuild via RunScript would lose state, so interpret directly.
      return ApplyDefinitionStatement(statement);
    }
    // Operation phase.
    if (auto* insert = std::get_if<dwc::InsertStmt>(&statement)) {
      return ApplyUpdate(insert->relation, insert->tuples, {});
    }
    if (auto* del = std::get_if<dwc::DeleteStmt>(&statement)) {
      return ApplyUpdate(del->relation, {}, del->tuples);
    }
    if (auto* query = std::get_if<dwc::QueryStmt>(&statement)) {
      // Governed read: admission first (a single-threaded shell never
      // queues, but epoch lag can still shed), then a per-query token
      // carrying the configured deadline/budget (see `limits`).
      std::shared_ptr<dwc::CancelToken> token;
      if (deadline_ms_ > 0 || budget_tuples_ > 0) {
        token = std::make_shared<dwc::CancelToken>();
        if (deadline_ms_ > 0) {
          token->set_deadline(dwc::CancelToken::Clock::now() +
                              std::chrono::milliseconds(deadline_ms_));
        }
        if (budget_tuples_ > 0) {
          token->set_budget_tuples(budget_tuples_);
        }
      }
      governor_.ReportEpochLag(warehouse_->epoch_stats().retired_epochs);
      dwc::Result<dwc::Governor::Ticket> ticket =
          governor_.AdmitRead(token.get());
      if (!ticket.ok()) {
        return ticket.status();
      }
      dwc::EvalStats stats;
      dwc::Result<dwc::Relation> answer =
          warehouse_->AnswerQuery(query->expr, &stats, token.get());
      if (!answer.ok()) {
        return answer.status();
      }
      std::cout << "explain: " << stats.ToString() << "\n";
      dwc::Result<dwc::ExprRef> translated =
          dwc::TranslateQuery(query->expr, *spec_);
      if (translated.ok()) {
        std::cout << "translated: " << (*translated)->ToString() << "\n";
      }
      std::cout << answer->ToString() << "\n";
      return Status::Ok();
    }
    if (auto* summary = std::get_if<dwc::SummaryStmt>(&statement)) {
      DWC_RETURN_IF_ERROR(warehouse_->AddAggregateView(summary->def));
      std::cout << "summary table '" << summary->def.name
                << "' materialized and maintained\n";
      return Status::Ok();
    }
    return Status::FailedPrecondition(
        "schema/view statements are frozen once the warehouse is loaded");
  }

  Status ApplyDefinitionStatement(dwc::Statement& statement) {
    // Mirrors parser/interpreter.cc for a single statement.
    if (auto* create = std::get_if<dwc::CreateTableStmt>(&statement)) {
      DWC_RETURN_IF_ERROR(
          context_.catalog->AddRelation(create->name, create->schema));
      if (create->key.has_value()) {
        DWC_RETURN_IF_ERROR(
            context_.catalog->AddKey(create->name, *create->key));
      }
      return context_.db.AddEmptyRelation(create->name, create->schema);
    }
    if (auto* inclusion = std::get_if<dwc::InclusionStmt>(&statement)) {
      return context_.catalog->AddInclusion(inclusion->ind);
    }
    if (auto* view = std::get_if<dwc::ViewStmt>(&statement)) {
      context_.views.push_back(dwc::ViewDef{view->name, view->expr});
      return Status::Ok();
    }
    if (auto* insert = std::get_if<dwc::InsertStmt>(&statement)) {
      dwc::Relation* rel = context_.db.FindMutableRelation(insert->relation);
      if (rel == nullptr) {
        return Status::NotFound("unknown relation " + insert->relation);
      }
      for (dwc::Tuple& tuple : insert->tuples) {
        rel->Insert(std::move(tuple));
      }
      return Status::Ok();
    }
    if (auto* del = std::get_if<dwc::DeleteStmt>(&statement)) {
      dwc::Relation* rel = context_.db.FindMutableRelation(del->relation);
      if (rel == nullptr) {
        return Status::NotFound("unknown relation " + del->relation);
      }
      for (const dwc::Tuple& tuple : del->tuples) {
        rel->Erase(tuple);
      }
      return Status::Ok();
    }
    if (auto* query = std::get_if<dwc::QueryStmt>(&statement)) {
      dwc::Result<dwc::Relation> answer = context_.Evaluate(query->expr);
      if (!answer.ok()) {
        return answer.status();
      }
      std::cout << answer->ToString() << "\n";
      return Status::Ok();
    }
    if (auto* summary = std::get_if<dwc::SummaryStmt>(&statement)) {
      context_.summaries.push_back(summary->def);
      std::cout << "summary '" << summary->def.name
                << "' recorded (materializes at `warehouse`)\n";
      return Status::Ok();
    }
    return Status::Internal("unhandled statement");
  }

  Status ApplyUpdate(const std::string& relation,
                     std::vector<dwc::Tuple> inserts,
                     std::vector<dwc::Tuple> deletes) {
    dwc::UpdateOp op{relation, std::move(inserts), std::move(deletes)};
    dwc::Result<dwc::CanonicalDelta> delta = source_->Apply(op);
    if (!delta.ok()) {
      return delta.status();
    }
    DWC_RETURN_IF_ERROR(source_->db().ValidateConstraints());
    if (ingestor_ != nullptr) {
      channel_->Send(*delta);
      for (std::optional<dwc::CanonicalDelta> got = channel_->Poll(); got;
           got = channel_->Poll()) {
        DWC_RETURN_IF_ERROR(ingestor_->Receive(*got));
      }
      DWC_RETURN_IF_ERROR(ingestor_->Drain());
    } else if (durable_ != nullptr) {
      // Integrate-then-log: the delta is fsync'd before we report success.
      DWC_RETURN_IF_ERROR(durable_->Integrate(*delta, source_.get()));
    } else {
      DWC_RETURN_IF_ERROR(warehouse_->Integrate(*delta));
    }
    std::cout << "integrated: +" << delta->inserts.size() << " / -"
              << delta->deletes.size() << " on " << relation
              << " (source queries: " << source_->query_count() << ")\n";
    return Status::Ok();
  }

  dwc::ScriptContext context_;
  std::shared_ptr<dwc::WarehouseSpec> spec_;
  std::unique_ptr<dwc::Source> source_;
  std::unique_ptr<dwc::Warehouse> warehouse_;
  std::unique_ptr<dwc::DeltaChannel> channel_;
  std::unique_ptr<dwc::DeltaIngestor> ingestor_;
  dwc::PosixVfs vfs_;
  std::unique_ptr<dwc::DurableWarehouse> durable_;
  dwc::Governor governor_;
  dwc::RetryPolicy retry_policy_;
  uint64_t deadline_ms_ = 0;   // 0 = no per-query deadline.
  size_t budget_tuples_ = 0;   // 0 = no per-query tuple budget.
  bool quit_ = false;
};

}  // namespace

int main() { return Repl().Run(); }
