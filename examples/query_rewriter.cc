// Query rewriter: demonstrates Section 3's automatic translation on the
// Example 2.3 schema. Given the warehouse definition, every query over the
// base relations is rewritten (through W^-1) into a query over warehouse
// views and simplified; the tool prints both forms plus how constraints
// change the complement.
//
// Build & run:  cmake --build build && ./build/examples/query_rewriter

#include <iostream>

#include "core/complement.h"
#include "core/query_translation.h"
#include "core/warehouse_spec.h"
#include "parser/interpreter.h"
#include "parser/parser.h"
#include "warehouse/warehouse.h"

namespace {

constexpr char kScript[] = R"(
CREATE TABLE R1(A INT, B INT, C INT, KEY(A));
CREATE TABLE R2(A INT, C INT, D INT, KEY(A));
CREATE TABLE R3(A INT, B INT, KEY(A));
INCLUSION R3(A, B) SUBSETOF R1(A, B);
INCLUSION R2(A, C) SUBSETOF R1(A, C);

INSERT INTO R1 VALUES (1, 11, 21), (2, 12, 22), (3, 13, 23), (4, 14, 24);
INSERT INTO R2 VALUES (1, 21, 31), (2, 22, 32), (4, 24, 34);
INSERT INTO R3 VALUES (1, 11), (3, 13);

VIEW V1 AS R1 JOIN R2;
VIEW V2 AS R3;
VIEW V3 AS PROJECT[A, B](R1);
VIEW V4 AS PROJECT[A, C](R1);
)";

int Fail(const dwc::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int ShowSpec(const dwc::ScriptContext& context, bool use_constraints) {
  dwc::ComplementOptions options;
  options.use_constraints = use_constraints;
  dwc::Result<dwc::ComplementResult> complement =
      dwc::ComputeComplement(context.views, *context.catalog, options);
  if (!complement.ok()) return Fail(complement.status());
  std::cout << (use_constraints ? "-- with keys and INDs (Theorem 2.2):\n"
                                : "-- without constraints (Prop. 2.2):\n");
  for (const dwc::BaseComplementInfo& info : complement->per_base) {
    std::cout << "  C_" << info.base << " = "
              << (info.provably_empty ? "(provably empty)"
                                      : info.complement_def->ToString());
    if (!info.cover_labels.empty()) {
      std::cout << "   covers:";
      for (const auto& cover : info.cover_labels) {
        std::cout << " {";
        for (size_t i = 0; i < cover.size(); ++i) {
          std::cout << (i ? ", " : "") << cover[i];
        }
        std::cout << "}";
      }
    }
    std::cout << "\n";
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main() {
  dwc::Result<dwc::ScriptContext> context = dwc::RunScript(kScript);
  if (!context.ok()) return Fail(context.status());

  std::cout << "== Example 2.3 schema and warehouse ==\n"
            << context->catalog->ToString() << "\n";

  // How constraints shrink the complement.
  if (int rc = ShowSpec(*context, /*use_constraints=*/false)) return rc;
  if (int rc = ShowSpec(*context, /*use_constraints=*/true)) return rc;

  dwc::Result<dwc::WarehouseSpec> spec =
      dwc::SpecifyWarehouse(context->catalog, context->views);
  if (!spec.ok()) return Fail(spec.status());
  auto spec_ptr = std::make_shared<dwc::WarehouseSpec>(std::move(spec).value());
  dwc::Result<dwc::Warehouse> warehouse =
      dwc::Warehouse::Load(spec_ptr, context->db);
  if (!warehouse.ok()) return Fail(warehouse.status());

  std::cout << "== Inverse mapping W^-1 ==\n";
  for (const auto& [base, inverse] : spec_ptr->inverses()) {
    std::cout << "  " << base << " = " << inverse->ToString() << "\n";
  }
  std::cout << "\n== Query translation ==\n";
  const char* queries[] = {
      "R1",
      "project[A, D](R1 JOIN R2)",
      "project[A, B](R1) union R3",
      "rename[B -> B1](R3) join R1",
      "project[A](R3) minus project[A](R2)",
      "select[C >= 22 and D != 31](R2)",
  };
  for (const char* text : queries) {
    dwc::Result<dwc::ExprRef> query = dwc::ParseExpr(text);
    if (!query.ok()) {
      std::cout << "Q = " << text << "\n  (parse error: "
                << query.status().ToString() << ")\n\n";
      continue;
    }
    dwc::Result<dwc::ExprRef> translated =
        dwc::TranslateQuery(*query, *spec_ptr);
    if (!translated.ok()) return Fail(translated.status());
    dwc::Result<dwc::Relation> answer = warehouse->AnswerQuery(*query);
    if (!answer.ok()) return Fail(answer.status());
    dwc::Result<dwc::Relation> direct = context->Evaluate(*query);
    if (!direct.ok()) return Fail(direct.status());
    std::cout << "Q  = " << (*query)->ToString() << "\n"
              << "Q' = " << (*translated)->ToString() << "\n"
              << "   -> " << answer->size() << " tuples; matches direct "
              << "evaluation: "
              << (answer->SameContentAs(*direct) ? "yes" : "NO") << "\n\n";
  }
  return 0;
}
