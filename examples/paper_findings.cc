// Reproduction findings — two places where building the paper taught us
// something the text does not say:
//
//  1. Example 2.2's recomputation identity for the reduced complement C'_R
//     is refutable as stated. This program rebuilds the construction,
//     exhibits the refuting state, and shows the key condition under which
//     the identity is sound (overlap attribute B declared a key).
//
//  2. Section 6's "degree of query independence": leaving a complement
//     virtual (the paper's suggestion when it is cheap to recompute at the
//     source) has a precisely analyzable cost — which base relations stop
//     being reconstructible and which queries stop being answerable.
//
// Build & run:  cmake --build build && ./build/examples/paper_findings

#include <iostream>

#include "algebra/evaluator.h"
#include "core/complement.h"
#include "core/independence.h"
#include "core/minimizer.h"
#include "core/warehouse_spec.h"
#include "parser/interpreter.h"
#include "parser/parser.h"

namespace {

int Fail(const dwc::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Finding1() {
  std::cout << "=== Finding 1: Example 2.2's recomputation identity ===\n\n";
  dwc::Result<dwc::ScriptContext> context = dwc::RunScript(R"(
CREATE TABLE R(A INT, B INT, C INT);
INSERT INTO R VALUES (1,1,1), (2,0,1), (2,0,2), (2,1,1), (3,0,1);
VIEW V1 AS PROJECT[A, B](R);
VIEW V2 AS PROJECT[B, C](R);
VIEW V3 AS SELECT[B = 1](R);
)");
  if (!context.ok()) return Fail(context.status());

  dwc::Rng rng(1);
  dwc::Result<dwc::ReducedComplement> reduced =
      dwc::TryProjectionFragmentComplement(context->views, *context->catalog,
                                           "CR", &rng,
                                           /*validation_rounds=*/0);
  if (!reduced.ok()) return Fail(reduced.status());
  std::cout << "paper's construction:\n  C'_R = "
            << reduced->complement.expr->ToString() << "\n  R    = "
            << reduced->reconstruction->ToString() << "\n\n";

  dwc::Environment env = dwc::Environment::FromDatabase(context->db);
  std::vector<std::unique_ptr<dwc::Relation>> owned;
  for (const dwc::ViewDef& view : context->views) {
    owned.push_back(
        std::make_unique<dwc::Relation>(*context->Evaluate(view.expr)));
    env.Bind(view.name, owned.back().get());
  }
  dwc::Result<dwc::Relation> cr =
      dwc::EvalExpr(*reduced->complement.expr, env);
  if (!cr.ok()) return Fail(cr.status());
  env.Bind("CR", &cr.value());
  dwc::Result<dwc::Relation> rebuilt =
      dwc::EvalExpr(*reduced->reconstruction, env);
  if (!rebuilt.ok()) return Fail(rebuilt.status());

  std::cout << "refuting state:\n  R       = "
            << context->db.FindRelation("R")->ToString() << "\n  C'_R    = "
            << cr->ToString() << "\n  rebuilt = " << rebuilt->ToString()
            << "\n  identity holds: "
            << (rebuilt->SameContentAs(*context->db.FindRelation("R"))
                    ? "yes"
                    : "NO — tuple <2, 0, 1> is lost")
            << "\n\n";

  std::cout << "why: the spurious join tuple (3,0,2) puts (3,0,1) into C'_R;"
               "\nthe reconstruction removes the shared BC-fragment (0,1)\n"
               "from V2, which the unambiguous tuple (2,0,1) also needs.\n\n";

  // The keyed variant validates.
  dwc::Result<dwc::ScriptContext> keyed = dwc::RunScript(R"(
CREATE TABLE R(A INT, B INT, C INT, KEY(B));
VIEW V1 AS PROJECT[A, B](R);
VIEW V2 AS PROJECT[B, C](R);
VIEW V3 AS SELECT[B = 1](R);
)");
  if (!keyed.ok()) return Fail(keyed.status());
  dwc::Rng rng2(2);
  dwc::Result<dwc::ReducedComplement> keyed_reduced =
      dwc::TryProjectionFragmentComplement(keyed->views, *keyed->catalog,
                                           "CR", &rng2,
                                           /*validation_rounds=*/500);
  if (!keyed_reduced.ok()) return Fail(keyed_reduced.status());
  std::cout << "with KEY(B) the identity survives 500 random states: "
            << (keyed_reduced->validated ? "validated" : "refuted") << "\n\n";
  return 0;
}

int Finding2() {
  std::cout << "=== Finding 2: degree of independence (Section 6) ===\n\n";
  dwc::Result<dwc::ScriptContext> context = dwc::RunScript(R"(
CREATE TABLE Emp(clerk STRING, age INT, KEY(clerk));
CREATE TABLE Sale(item STRING, clerk STRING);
INSERT INTO Emp VALUES ('Mary', 23), ('Paula', 32);
INSERT INTO Sale VALUES ('TV set', 'Mary');
VIEW Sold AS Sale JOIN Emp;
)");
  if (!context.ok()) return Fail(context.status());
  dwc::ComplementOptions options;
  options.use_constraints = false;
  dwc::Result<dwc::WarehouseSpec> spec =
      dwc::SpecifyWarehouse(context->catalog, context->views, options);
  if (!spec.ok()) return Fail(spec.status());

  auto show = [&](const std::set<std::string>& available) {
    dwc::IndependenceReport report =
        dwc::AnalyzeIndependence(*spec, available);
    std::cout << report.ToString();
    const char* queries[] = {
        "project[clerk](Sale)",
        "project[clerk](Emp) minus project[clerk](Sale)",
    };
    for (const char* text : queries) {
      dwc::Result<dwc::ExprRef> query = dwc::ParseExpr(text);
      std::cout << "  Q = " << text << "  ->  "
                << (dwc::QueryAnswerable(**query, *spec, report)
                        ? "answerable"
                        : "needs the sources")
                << "\n";
    }
    std::cout << "\n";
  };

  std::cout << "-- full warehouse {Sold, C_Emp, C_Sale}:\n";
  show({"Sold", "C_Emp", "C_Sale"});
  std::cout << "-- C_Emp left virtual (cheap at the source, Section 6):\n";
  show({"Sold", "C_Sale"});
  std::cout << "-- bare view only:\n";
  show({"Sold"});
  return 0;
}

}  // namespace

int main() {
  if (int rc = Finding1()) return rc;
  return Finding2();
}
