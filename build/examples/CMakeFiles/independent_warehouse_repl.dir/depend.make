# Empty dependencies file for independent_warehouse_repl.
# This may be replaced when dependencies are built.
