file(REMOVE_RECURSE
  "CMakeFiles/independent_warehouse_repl.dir/independent_warehouse_repl.cc.o"
  "CMakeFiles/independent_warehouse_repl.dir/independent_warehouse_repl.cc.o.d"
  "independent_warehouse_repl"
  "independent_warehouse_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/independent_warehouse_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
