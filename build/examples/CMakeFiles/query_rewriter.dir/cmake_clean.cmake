file(REMOVE_RECURSE
  "CMakeFiles/query_rewriter.dir/query_rewriter.cc.o"
  "CMakeFiles/query_rewriter.dir/query_rewriter.cc.o.d"
  "query_rewriter"
  "query_rewriter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_rewriter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
