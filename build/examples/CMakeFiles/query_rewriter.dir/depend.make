# Empty dependencies file for query_rewriter.
# This may be replaced when dependencies are built.
