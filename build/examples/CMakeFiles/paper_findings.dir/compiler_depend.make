# Empty compiler generated dependencies file for paper_findings.
# This may be replaced when dependencies are built.
