file(REMOVE_RECURSE
  "CMakeFiles/paper_findings.dir/paper_findings.cc.o"
  "CMakeFiles/paper_findings.dir/paper_findings.cc.o.d"
  "paper_findings"
  "paper_findings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
