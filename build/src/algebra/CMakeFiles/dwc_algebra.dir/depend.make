# Empty dependencies file for dwc_algebra.
# This may be replaced when dependencies are built.
