
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/evaluator.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/evaluator.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/evaluator.cc.o.d"
  "/root/repo/src/algebra/expr.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/expr.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/expr.cc.o.d"
  "/root/repo/src/algebra/implication.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/implication.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/implication.cc.o.d"
  "/root/repo/src/algebra/optimizer.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/optimizer.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/optimizer.cc.o.d"
  "/root/repo/src/algebra/predicate.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/predicate.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/predicate.cc.o.d"
  "/root/repo/src/algebra/rewriter.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/rewriter.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/rewriter.cc.o.d"
  "/root/repo/src/algebra/schema_inference.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/schema_inference.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/schema_inference.cc.o.d"
  "/root/repo/src/algebra/simplifier.cc" "src/algebra/CMakeFiles/dwc_algebra.dir/simplifier.cc.o" "gcc" "src/algebra/CMakeFiles/dwc_algebra.dir/simplifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/dwc_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
