file(REMOVE_RECURSE
  "libdwc_algebra.a"
)
