file(REMOVE_RECURSE
  "CMakeFiles/dwc_algebra.dir/evaluator.cc.o"
  "CMakeFiles/dwc_algebra.dir/evaluator.cc.o.d"
  "CMakeFiles/dwc_algebra.dir/expr.cc.o"
  "CMakeFiles/dwc_algebra.dir/expr.cc.o.d"
  "CMakeFiles/dwc_algebra.dir/implication.cc.o"
  "CMakeFiles/dwc_algebra.dir/implication.cc.o.d"
  "CMakeFiles/dwc_algebra.dir/optimizer.cc.o"
  "CMakeFiles/dwc_algebra.dir/optimizer.cc.o.d"
  "CMakeFiles/dwc_algebra.dir/predicate.cc.o"
  "CMakeFiles/dwc_algebra.dir/predicate.cc.o.d"
  "CMakeFiles/dwc_algebra.dir/rewriter.cc.o"
  "CMakeFiles/dwc_algebra.dir/rewriter.cc.o.d"
  "CMakeFiles/dwc_algebra.dir/schema_inference.cc.o"
  "CMakeFiles/dwc_algebra.dir/schema_inference.cc.o.d"
  "CMakeFiles/dwc_algebra.dir/simplifier.cc.o"
  "CMakeFiles/dwc_algebra.dir/simplifier.cc.o.d"
  "libdwc_algebra.a"
  "libdwc_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
