# Empty compiler generated dependencies file for dwc_util.
# This may be replaced when dependencies are built.
