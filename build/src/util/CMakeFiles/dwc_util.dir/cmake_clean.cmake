file(REMOVE_RECURSE
  "CMakeFiles/dwc_util.dir/status.cc.o"
  "CMakeFiles/dwc_util.dir/status.cc.o.d"
  "CMakeFiles/dwc_util.dir/string_util.cc.o"
  "CMakeFiles/dwc_util.dir/string_util.cc.o.d"
  "libdwc_util.a"
  "libdwc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
