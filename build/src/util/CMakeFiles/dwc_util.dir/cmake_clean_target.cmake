file(REMOVE_RECURSE
  "libdwc_util.a"
)
