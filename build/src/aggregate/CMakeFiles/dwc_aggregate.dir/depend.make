# Empty dependencies file for dwc_aggregate.
# This may be replaced when dependencies are built.
