# Empty compiler generated dependencies file for dwc_aggregate.
# This may be replaced when dependencies are built.
