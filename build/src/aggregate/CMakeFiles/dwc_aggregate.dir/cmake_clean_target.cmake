file(REMOVE_RECURSE
  "libdwc_aggregate.a"
)
