file(REMOVE_RECURSE
  "CMakeFiles/dwc_aggregate.dir/aggregate_view.cc.o"
  "CMakeFiles/dwc_aggregate.dir/aggregate_view.cc.o.d"
  "libdwc_aggregate.a"
  "libdwc_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
