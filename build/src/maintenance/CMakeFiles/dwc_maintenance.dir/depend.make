# Empty dependencies file for dwc_maintenance.
# This may be replaced when dependencies are built.
