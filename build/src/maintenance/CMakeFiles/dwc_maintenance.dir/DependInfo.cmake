
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/maintenance/delta.cc" "src/maintenance/CMakeFiles/dwc_maintenance.dir/delta.cc.o" "gcc" "src/maintenance/CMakeFiles/dwc_maintenance.dir/delta.cc.o.d"
  "/root/repo/src/maintenance/plan.cc" "src/maintenance/CMakeFiles/dwc_maintenance.dir/plan.cc.o" "gcc" "src/maintenance/CMakeFiles/dwc_maintenance.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dwc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/dwc_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/dwc_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
