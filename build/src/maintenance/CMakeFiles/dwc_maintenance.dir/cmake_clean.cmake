file(REMOVE_RECURSE
  "CMakeFiles/dwc_maintenance.dir/delta.cc.o"
  "CMakeFiles/dwc_maintenance.dir/delta.cc.o.d"
  "CMakeFiles/dwc_maintenance.dir/plan.cc.o"
  "CMakeFiles/dwc_maintenance.dir/plan.cc.o.d"
  "libdwc_maintenance.a"
  "libdwc_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
