file(REMOVE_RECURSE
  "libdwc_maintenance.a"
)
