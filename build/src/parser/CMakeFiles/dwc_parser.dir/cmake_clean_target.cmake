file(REMOVE_RECURSE
  "libdwc_parser.a"
)
