# Empty compiler generated dependencies file for dwc_parser.
# This may be replaced when dependencies are built.
