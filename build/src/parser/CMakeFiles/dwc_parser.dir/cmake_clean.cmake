file(REMOVE_RECURSE
  "CMakeFiles/dwc_parser.dir/interpreter.cc.o"
  "CMakeFiles/dwc_parser.dir/interpreter.cc.o.d"
  "CMakeFiles/dwc_parser.dir/lexer.cc.o"
  "CMakeFiles/dwc_parser.dir/lexer.cc.o.d"
  "CMakeFiles/dwc_parser.dir/parser.cc.o"
  "CMakeFiles/dwc_parser.dir/parser.cc.o.d"
  "CMakeFiles/dwc_parser.dir/script_io.cc.o"
  "CMakeFiles/dwc_parser.dir/script_io.cc.o.d"
  "libdwc_parser.a"
  "libdwc_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
