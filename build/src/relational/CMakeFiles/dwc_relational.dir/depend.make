# Empty dependencies file for dwc_relational.
# This may be replaced when dependencies are built.
