file(REMOVE_RECURSE
  "libdwc_relational.a"
)
