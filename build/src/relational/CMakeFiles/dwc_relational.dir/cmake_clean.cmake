file(REMOVE_RECURSE
  "CMakeFiles/dwc_relational.dir/catalog.cc.o"
  "CMakeFiles/dwc_relational.dir/catalog.cc.o.d"
  "CMakeFiles/dwc_relational.dir/constraints.cc.o"
  "CMakeFiles/dwc_relational.dir/constraints.cc.o.d"
  "CMakeFiles/dwc_relational.dir/database.cc.o"
  "CMakeFiles/dwc_relational.dir/database.cc.o.d"
  "CMakeFiles/dwc_relational.dir/relation.cc.o"
  "CMakeFiles/dwc_relational.dir/relation.cc.o.d"
  "CMakeFiles/dwc_relational.dir/schema.cc.o"
  "CMakeFiles/dwc_relational.dir/schema.cc.o.d"
  "CMakeFiles/dwc_relational.dir/tuple.cc.o"
  "CMakeFiles/dwc_relational.dir/tuple.cc.o.d"
  "CMakeFiles/dwc_relational.dir/value.cc.o"
  "CMakeFiles/dwc_relational.dir/value.cc.o.d"
  "libdwc_relational.a"
  "libdwc_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
