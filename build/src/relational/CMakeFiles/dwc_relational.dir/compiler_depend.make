# Empty compiler generated dependencies file for dwc_relational.
# This may be replaced when dependencies are built.
