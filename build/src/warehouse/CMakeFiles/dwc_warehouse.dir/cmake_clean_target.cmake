file(REMOVE_RECURSE
  "libdwc_warehouse.a"
)
