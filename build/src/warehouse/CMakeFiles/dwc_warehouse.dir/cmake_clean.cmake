file(REMOVE_RECURSE
  "CMakeFiles/dwc_warehouse.dir/federation.cc.o"
  "CMakeFiles/dwc_warehouse.dir/federation.cc.o.d"
  "CMakeFiles/dwc_warehouse.dir/persistence.cc.o"
  "CMakeFiles/dwc_warehouse.dir/persistence.cc.o.d"
  "CMakeFiles/dwc_warehouse.dir/source.cc.o"
  "CMakeFiles/dwc_warehouse.dir/source.cc.o.d"
  "CMakeFiles/dwc_warehouse.dir/warehouse.cc.o"
  "CMakeFiles/dwc_warehouse.dir/warehouse.cc.o.d"
  "libdwc_warehouse.a"
  "libdwc_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
