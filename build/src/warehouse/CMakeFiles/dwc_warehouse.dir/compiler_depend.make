# Empty compiler generated dependencies file for dwc_warehouse.
# This may be replaced when dependencies are built.
