
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/complement.cc" "src/core/CMakeFiles/dwc_core.dir/complement.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/complement.cc.o.d"
  "/root/repo/src/core/covers.cc" "src/core/CMakeFiles/dwc_core.dir/covers.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/covers.cc.o.d"
  "/root/repo/src/core/independence.cc" "src/core/CMakeFiles/dwc_core.dir/independence.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/independence.cc.o.d"
  "/root/repo/src/core/minimizer.cc" "src/core/CMakeFiles/dwc_core.dir/minimizer.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/minimizer.cc.o.d"
  "/root/repo/src/core/ordering.cc" "src/core/CMakeFiles/dwc_core.dir/ordering.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/ordering.cc.o.d"
  "/root/repo/src/core/psj.cc" "src/core/CMakeFiles/dwc_core.dir/psj.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/psj.cc.o.d"
  "/root/repo/src/core/query_translation.cc" "src/core/CMakeFiles/dwc_core.dir/query_translation.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/query_translation.cc.o.d"
  "/root/repo/src/core/warehouse_spec.cc" "src/core/CMakeFiles/dwc_core.dir/warehouse_spec.cc.o" "gcc" "src/core/CMakeFiles/dwc_core.dir/warehouse_spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algebra/CMakeFiles/dwc_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/dwc_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dwc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
