file(REMOVE_RECURSE
  "libdwc_core.a"
)
