file(REMOVE_RECURSE
  "CMakeFiles/dwc_core.dir/complement.cc.o"
  "CMakeFiles/dwc_core.dir/complement.cc.o.d"
  "CMakeFiles/dwc_core.dir/covers.cc.o"
  "CMakeFiles/dwc_core.dir/covers.cc.o.d"
  "CMakeFiles/dwc_core.dir/independence.cc.o"
  "CMakeFiles/dwc_core.dir/independence.cc.o.d"
  "CMakeFiles/dwc_core.dir/minimizer.cc.o"
  "CMakeFiles/dwc_core.dir/minimizer.cc.o.d"
  "CMakeFiles/dwc_core.dir/ordering.cc.o"
  "CMakeFiles/dwc_core.dir/ordering.cc.o.d"
  "CMakeFiles/dwc_core.dir/psj.cc.o"
  "CMakeFiles/dwc_core.dir/psj.cc.o.d"
  "CMakeFiles/dwc_core.dir/query_translation.cc.o"
  "CMakeFiles/dwc_core.dir/query_translation.cc.o.d"
  "CMakeFiles/dwc_core.dir/warehouse_spec.cc.o"
  "CMakeFiles/dwc_core.dir/warehouse_spec.cc.o.d"
  "libdwc_core.a"
  "libdwc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
