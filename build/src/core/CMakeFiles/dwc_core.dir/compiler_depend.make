# Empty compiler generated dependencies file for dwc_core.
# This may be replaced when dependencies are built.
