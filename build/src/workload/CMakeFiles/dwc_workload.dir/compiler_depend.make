# Empty compiler generated dependencies file for dwc_workload.
# This may be replaced when dependencies are built.
