file(REMOVE_RECURSE
  "libdwc_workload.a"
)
