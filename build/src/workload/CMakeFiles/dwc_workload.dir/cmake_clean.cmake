file(REMOVE_RECURSE
  "CMakeFiles/dwc_workload.dir/random_db.cc.o"
  "CMakeFiles/dwc_workload.dir/random_db.cc.o.d"
  "CMakeFiles/dwc_workload.dir/random_views.cc.o"
  "CMakeFiles/dwc_workload.dir/random_views.cc.o.d"
  "CMakeFiles/dwc_workload.dir/star_schema.cc.o"
  "CMakeFiles/dwc_workload.dir/star_schema.cc.o.d"
  "CMakeFiles/dwc_workload.dir/update_stream.cc.o"
  "CMakeFiles/dwc_workload.dir/update_stream.cc.o.d"
  "libdwc_workload.a"
  "libdwc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
