file(REMOVE_RECURSE
  "CMakeFiles/star_schema_test.dir/integration/star_schema_test.cc.o"
  "CMakeFiles/star_schema_test.dir/integration/star_schema_test.cc.o.d"
  "star_schema_test"
  "star_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
