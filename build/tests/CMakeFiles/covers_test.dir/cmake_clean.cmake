file(REMOVE_RECURSE
  "CMakeFiles/covers_test.dir/core/covers_test.cc.o"
  "CMakeFiles/covers_test.dir/core/covers_test.cc.o.d"
  "covers_test"
  "covers_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
