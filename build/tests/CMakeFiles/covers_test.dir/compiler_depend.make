# Empty compiler generated dependencies file for covers_test.
# This may be replaced when dependencies are built.
