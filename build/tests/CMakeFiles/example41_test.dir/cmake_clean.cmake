file(REMOVE_RECURSE
  "CMakeFiles/example41_test.dir/maintenance/example41_test.cc.o"
  "CMakeFiles/example41_test.dir/maintenance/example41_test.cc.o.d"
  "example41_test"
  "example41_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example41_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
