# Empty dependencies file for example41_test.
# This may be replaced when dependencies are built.
