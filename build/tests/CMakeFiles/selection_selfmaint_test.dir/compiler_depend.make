# Empty compiler generated dependencies file for selection_selfmaint_test.
# This may be replaced when dependencies are built.
