file(REMOVE_RECURSE
  "CMakeFiles/selection_selfmaint_test.dir/maintenance/selection_selfmaint_test.cc.o"
  "CMakeFiles/selection_selfmaint_test.dir/maintenance/selection_selfmaint_test.cc.o.d"
  "selection_selfmaint_test"
  "selection_selfmaint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selection_selfmaint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
