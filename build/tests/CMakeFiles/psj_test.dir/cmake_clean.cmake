file(REMOVE_RECURSE
  "CMakeFiles/psj_test.dir/core/psj_test.cc.o"
  "CMakeFiles/psj_test.dir/core/psj_test.cc.o.d"
  "psj_test"
  "psj_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psj_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
