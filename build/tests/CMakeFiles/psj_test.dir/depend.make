# Empty dependencies file for psj_test.
# This may be replaced when dependencies are built.
