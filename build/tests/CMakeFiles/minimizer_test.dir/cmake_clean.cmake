file(REMOVE_RECURSE
  "CMakeFiles/minimizer_test.dir/core/minimizer_test.cc.o"
  "CMakeFiles/minimizer_test.dir/core/minimizer_test.cc.o.d"
  "minimizer_test"
  "minimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
