file(REMOVE_RECURSE
  "CMakeFiles/pushdown_property_test.dir/algebra/pushdown_property_test.cc.o"
  "CMakeFiles/pushdown_property_test.dir/algebra/pushdown_property_test.cc.o.d"
  "pushdown_property_test"
  "pushdown_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushdown_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
