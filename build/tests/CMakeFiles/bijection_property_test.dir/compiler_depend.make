# Empty compiler generated dependencies file for bijection_property_test.
# This may be replaced when dependencies are built.
