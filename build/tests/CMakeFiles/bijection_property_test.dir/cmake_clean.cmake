file(REMOVE_RECURSE
  "CMakeFiles/bijection_property_test.dir/property/bijection_property_test.cc.o"
  "CMakeFiles/bijection_property_test.dir/property/bijection_property_test.cc.o.d"
  "bijection_property_test"
  "bijection_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bijection_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
