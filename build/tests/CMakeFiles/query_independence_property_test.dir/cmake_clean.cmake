file(REMOVE_RECURSE
  "CMakeFiles/query_independence_property_test.dir/property/query_independence_property_test.cc.o"
  "CMakeFiles/query_independence_property_test.dir/property/query_independence_property_test.cc.o.d"
  "query_independence_property_test"
  "query_independence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_independence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
