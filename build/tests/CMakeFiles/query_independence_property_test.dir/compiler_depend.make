# Empty compiler generated dependencies file for query_independence_property_test.
# This may be replaced when dependencies are built.
