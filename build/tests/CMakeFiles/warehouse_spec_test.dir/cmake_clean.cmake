file(REMOVE_RECURSE
  "CMakeFiles/warehouse_spec_test.dir/core/warehouse_spec_test.cc.o"
  "CMakeFiles/warehouse_spec_test.dir/core/warehouse_spec_test.cc.o.d"
  "warehouse_spec_test"
  "warehouse_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
