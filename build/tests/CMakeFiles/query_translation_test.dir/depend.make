# Empty dependencies file for query_translation_test.
# This may be replaced when dependencies are built.
