file(REMOVE_RECURSE
  "CMakeFiles/query_translation_test.dir/core/query_translation_test.cc.o"
  "CMakeFiles/query_translation_test.dir/core/query_translation_test.cc.o.d"
  "query_translation_test"
  "query_translation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_translation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
