file(REMOVE_RECURSE
  "CMakeFiles/simplifier_property_test.dir/algebra/simplifier_property_test.cc.o"
  "CMakeFiles/simplifier_property_test.dir/algebra/simplifier_property_test.cc.o.d"
  "simplifier_property_test"
  "simplifier_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplifier_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
