# Empty compiler generated dependencies file for simplifier_property_test.
# This may be replaced when dependencies are built.
