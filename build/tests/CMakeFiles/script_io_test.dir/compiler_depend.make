# Empty compiler generated dependencies file for script_io_test.
# This may be replaced when dependencies are built.
