file(REMOVE_RECURSE
  "CMakeFiles/script_io_test.dir/parser/script_io_test.cc.o"
  "CMakeFiles/script_io_test.dir/parser/script_io_test.cc.o.d"
  "script_io_test"
  "script_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
