# Empty dependencies file for sj_minimality_property_test.
# This may be replaced when dependencies are built.
