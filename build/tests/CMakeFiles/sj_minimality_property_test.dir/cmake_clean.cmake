file(REMOVE_RECURSE
  "CMakeFiles/sj_minimality_property_test.dir/property/sj_minimality_property_test.cc.o"
  "CMakeFiles/sj_minimality_property_test.dir/property/sj_minimality_property_test.cc.o.d"
  "sj_minimality_property_test"
  "sj_minimality_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_minimality_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
