# Empty dependencies file for eval_stats_test.
# This may be replaced when dependencies are built.
