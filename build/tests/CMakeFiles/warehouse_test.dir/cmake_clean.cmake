file(REMOVE_RECURSE
  "CMakeFiles/warehouse_test.dir/warehouse/warehouse_test.cc.o"
  "CMakeFiles/warehouse_test.dir/warehouse/warehouse_test.cc.o.d"
  "warehouse_test"
  "warehouse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
