# Empty compiler generated dependencies file for bench_query_translation.
# This may be replaced when dependencies are built.
