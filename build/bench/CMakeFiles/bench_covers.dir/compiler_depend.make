# Empty compiler generated dependencies file for bench_covers.
# This may be replaced when dependencies are built.
