file(REMOVE_RECURSE
  "CMakeFiles/bench_covers.dir/bench_covers.cc.o"
  "CMakeFiles/bench_covers.dir/bench_covers.cc.o.d"
  "bench_covers"
  "bench_covers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_covers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
