file(REMOVE_RECURSE
  "CMakeFiles/bench_pushdown_ablation.dir/bench_pushdown_ablation.cc.o"
  "CMakeFiles/bench_pushdown_ablation.dir/bench_pushdown_ablation.cc.o.d"
  "bench_pushdown_ablation"
  "bench_pushdown_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pushdown_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
