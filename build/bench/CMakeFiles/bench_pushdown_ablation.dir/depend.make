# Empty dependencies file for bench_pushdown_ablation.
# This may be replaced when dependencies are built.
