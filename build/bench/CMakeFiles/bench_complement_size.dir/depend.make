# Empty dependencies file for bench_complement_size.
# This may be replaced when dependencies are built.
