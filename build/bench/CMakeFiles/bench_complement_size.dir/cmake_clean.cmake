file(REMOVE_RECURSE
  "CMakeFiles/bench_complement_size.dir/bench_complement_size.cc.o"
  "CMakeFiles/bench_complement_size.dir/bench_complement_size.cc.o.d"
  "bench_complement_size"
  "bench_complement_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complement_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
