#include "exec/kernels.h"

#include <atomic>
#include <utility>

namespace dwc {

std::vector<const Tuple*> SnapshotTuples(const Relation& rel) {
  std::vector<const Tuple*> snapshot;
  snapshot.reserve(rel.size());
  for (const Tuple& tuple : rel.tuples()) {
    snapshot.push_back(&tuple);
  }
  return snapshot;
}

Status ParallelProduce(
    size_t n, const ExecOptions& options,
    const std::function<Status(MorselRange, std::vector<Tuple>*)>& produce,
    Relation* out) {
  if (!options.ShouldParallelize(n)) {
    std::vector<Tuple> buffer;
    if (options.cancel == nullptr) {
      DWC_RETURN_IF_ERROR(produce(MorselRange{0, n}, &buffer));
    } else {
      // Cancellable serial path: chunk into morsels so the token is still
      // checked every morsel_size tuples — a deadline or budget can never
      // be overrun by more than one morsel's worth of work.
      const size_t morsels = MorselCount(n, options.morsel_size);
      for (size_t m = 0; m < morsels; ++m) {
        DWC_RETURN_IF_ERROR(options.CheckCancel());
        const size_t before = buffer.size();
        DWC_RETURN_IF_ERROR(
            produce(MorselAt(n, options.morsel_size, m), &buffer));
        DWC_RETURN_IF_ERROR(options.ChargeTuples(buffer.size() - before));
      }
    }
    out->Reserve(buffer.size());
    for (Tuple& tuple : buffer) {
      out->Insert(std::move(tuple));
    }
    return Status::Ok();
  }

  const size_t morsels = MorselCount(n, options.morsel_size);
  std::vector<std::vector<Tuple>> buffers(morsels);
  std::vector<Status> statuses(morsels);
  ThreadPool::Shared().ParallelFor(
      morsels, options.ResolvedThreads(), [&](size_t m) {
        // Morsel-boundary cancellation point: once the token fires, the
        // remaining queued morsels all fail fast instead of producing.
        statuses[m] = options.CheckCancel();
        if (!statuses[m].ok()) {
          return;
        }
        statuses[m] =
            produce(MorselAt(n, options.morsel_size, m), &buffers[m]);
        if (statuses[m].ok()) {
          statuses[m] = options.ChargeTuples(buffers[m].size());
        }
      });
  size_t total = 0;
  for (size_t m = 0; m < morsels; ++m) {
    // Lowest morsel index wins, for a deterministic error message.
    DWC_RETURN_IF_ERROR(statuses[m]);
    total += buffers[m].size();
  }
  out->Reserve(total);
  for (std::vector<Tuple>& buffer : buffers) {
    for (Tuple& tuple : buffer) {
      out->Insert(std::move(tuple));
    }
  }
  return Status::Ok();
}

PartitionedIndex PartitionedIndex::Build(
    const std::vector<const Tuple*>& tuples,
    const std::vector<size_t>& key_indices, const ExecOptions& options) {
  PartitionedIndex index;
  const size_t threads = options.ResolvedThreads();
  // Power-of-two partition count, a few per thread so one dense partition
  // does not serialize the fold phase.
  size_t partitions = 1;
  while (partitions < threads * 4) {
    partitions <<= 1;
  }
  if (!options.ShouldParallelize(tuples.size())) {
    partitions = 1;
  }
  index.partitions_.resize(partitions);
  index.mask_ = partitions - 1;

  if (partitions == 1) {
    Relation::Index& only = index.partitions_[0];
    for (const Tuple* tuple : tuples) {
      only[tuple->Project(key_indices)].push_back(tuple);
    }
    return index;
  }

  // Scatter phase: morsels project keys (the expensive part — value copies
  // plus hashing) and bin (key, tuple) pairs by key-hash partition.
  using KeyedTuple = std::pair<Tuple, const Tuple*>;
  const size_t n = tuples.size();
  const size_t morsels = MorselCount(n, options.morsel_size);
  // scattered[m][p]: morsel m's pairs for partition p.
  std::vector<std::vector<std::vector<KeyedTuple>>> scattered(morsels);
  ThreadPool::Shared().ParallelFor(morsels, threads, [&](size_t m) {
    MorselRange range = MorselAt(n, options.morsel_size, m);
    std::vector<std::vector<KeyedTuple>>& local = scattered[m];
    local.resize(partitions);
    for (size_t i = range.begin; i < range.end; ++i) {
      Tuple key = tuples[i]->Project(key_indices);
      size_t p = key.Hash() & index.mask_;
      local[p].emplace_back(std::move(key), tuples[i]);
    }
  });

  // Fold phase: one task per partition combines every morsel's bin for that
  // partition into the partition-local hash map. Partitions are
  // hash-disjoint, so folds never contend.
  ThreadPool::Shared().ParallelFor(partitions, threads, [&](size_t p) {
    Relation::Index& part = index.partitions_[p];
    size_t expected = 0;
    for (const auto& local : scattered) {
      expected += local[p].size();
    }
    part.reserve(expected);
    for (auto& local : scattered) {
      for (KeyedTuple& pair : local[p]) {
        part[std::move(pair.first)].push_back(pair.second);
      }
    }
  });
  return index;
}

}  // namespace dwc
