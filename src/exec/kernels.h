#ifndef DWC_EXEC_KERNELS_H_
#define DWC_EXEC_KERNELS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "runtime/cancel.h"
#include "util/result.h"

namespace dwc {

// Knobs for the morsel-driven kernels (a subset of EvaluatorOptions,
// duplicated here so dwc_exec stays below dwc_algebra in the link order).
struct ExecOptions {
  // Degree of parallelism: 0 = auto (hardware concurrency), 1 = serial.
  size_t num_threads = 0;
  // Tuples per morsel (the unit of work the shared cursor hands out).
  size_t morsel_size = 1024;
  // Inputs smaller than this run serially: below it, fan-out overhead
  // (snapshotting, buffer merging) beats any speedup.
  size_t min_parallel_tuples = 4096;
  // Cooperative cancellation context (borrowed; may be null). Kernels check
  // it at every morsel boundary — serial paths chunk into morsels too when
  // a token is present, so a deadline is never overrun by more than one
  // morsel's worth of work — and charge produced tuples against its budget.
  const CancelToken* cancel = nullptr;

  size_t ResolvedThreads() const {
    return ThreadPool::ResolveThreads(num_threads);
  }
  // True when an input of `n` tuples should take the parallel path.
  bool ShouldParallelize(size_t n) const {
    return ResolvedThreads() > 1 && n >= min_parallel_tuples;
  }
  // The morsel-boundary cancellation point; Ok when no token is wired.
  Status CheckCancel() const {
    return cancel == nullptr ? Status::Ok() : cancel->Check();
  }
  // Budget accounting for `tuples` freshly materialized output tuples.
  Status ChargeTuples(size_t tuples) const {
    return cancel == nullptr ? Status::Ok() : cancel->Charge(tuples);
  }
};

// A half-open morsel of iteration indices.
struct MorselRange {
  size_t begin = 0;
  size_t end = 0;
};

inline size_t MorselCount(size_t n, size_t morsel_size) {
  return morsel_size == 0 ? (n > 0) : (n + morsel_size - 1) / morsel_size;
}

inline MorselRange MorselAt(size_t n, size_t morsel_size, size_t index) {
  size_t begin = index * morsel_size;
  size_t end = begin + morsel_size;
  return MorselRange{begin, end < n ? end : n};
}

// Stable-pointer snapshot of a tuple set for indexed morsel access (the set
// itself has no random access). Pointers stay valid while the relation is
// not mutated — which the evaluation contract guarantees.
std::vector<const Tuple*> SnapshotTuples(const Relation& rel);

// The workhorse shape shared by parallel select / project / difference /
// join-probe: every morsel produces output tuples into its own buffer
// (`produce(range, &buffer)`), buffers are merged into `out` serially in
// morsel order. Set semantics make the result independent of morsel
// interleaving, so any thread count yields SameContentAs-identical output.
//
// When `options` says serial (or `n` is small), produce runs once over the
// whole range on the calling thread — the exact serial behaviour. On error,
// the lowest-morsel-index status is returned and `out` is unspecified.
Status ParallelProduce(
    size_t n, const ExecOptions& options,
    const std::function<Status(MorselRange, std::vector<Tuple>*)>& produce,
    Relation* out);

// A hash index over build-side tuples, split into hash-disjoint partitions
// so it can be *built* in parallel: morsels scatter (key, tuple) pairs into
// per-morsel partition buckets, then one task per partition folds its
// buckets into a regular Relation::Index. Probes are lock-free reads.
class PartitionedIndex {
 public:
  // Build keys are tuple projections onto `key_indices`.
  static PartitionedIndex Build(const std::vector<const Tuple*>& tuples,
                                const std::vector<size_t>& key_indices,
                                const ExecOptions& options);

  // The bucket for `key`, or nullptr when no build tuple matches.
  const std::vector<const Tuple*>* Find(const Tuple& key) const {
    const Relation::Index& part = partitions_[key.Hash() & mask_];
    auto it = part.find(key);
    return it == part.end() ? nullptr : &it->second;
  }

  size_t partition_count() const { return partitions_.size(); }

 private:
  std::vector<Relation::Index> partitions_;
  size_t mask_ = 0;
};

}  // namespace dwc

#endif  // DWC_EXEC_KERNELS_H_
