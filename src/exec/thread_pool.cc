#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace dwc {

namespace {

// Shared state of one ParallelFor. Helpers hold it via shared_ptr so a
// helper that gets dequeued after the caller already finished (and returned)
// touches only this block, never the caller's dead stack frame: a late
// helper's first cursor fetch is guaranteed >= n, so it exits before ever
// reading `body`.
struct ForState {
  ForState(size_t n, const std::function<void(size_t)>& body)
      : n(n), body(body) {}

  const size_t n;
  const std::function<void(size_t)>& body;
  std::atomic<size_t> cursor{0};

  std::mutex mu;
  std::condition_variable done;
  size_t running_helpers = 0;

  // Claims and runs morsels until the range is drained.
  void Drain() {
    while (true) {
      size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      body(i);
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained.
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t max_threads,
                             const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  size_t helpers = 0;
  if (max_threads > 1 && !workers_.empty()) {
    helpers = std::min({max_threads - 1, workers_.size(), n - 1});
  }
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }

  auto state = std::make_shared<ForState>(n, body);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      helpers = 0;
    } else {
      for (size_t i = 0; i < helpers; ++i) {
        queue_.emplace_back([state] {
          {
            std::lock_guard<std::mutex> state_lock(state->mu);
            ++state->running_helpers;
          }
          state->Drain();
          {
            std::lock_guard<std::mutex> state_lock(state->mu);
            --state->running_helpers;
          }
          state->done.notify_one();
        });
      }
    }
  }
  if (helpers > 0) {
    wake_.notify_all();
  }

  state->Drain();
  // The range is exhausted; only helpers that already *started* can still be
  // touching `body`'s captures, so wait for exactly those. Queued-but-
  // unstarted helpers will find the cursor past n and exit without reading
  // caller state (they own `state` via shared_ptr).
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] { return state->running_helpers == 0; });
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool([] {
    unsigned hardware = std::thread::hardware_concurrency();
    // Callers participate in every ParallelFor, so hardware-1 helpers
    // saturate the machine; keep at least one helper so thread-count knobs
    // above 1 genuinely exercise cross-thread execution even on small
    // containers.
    return hardware > 1 ? hardware - 1 : 1;
  }());
  return *pool;
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) {
    return requested;
  }
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

}  // namespace dwc
