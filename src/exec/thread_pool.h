#ifndef DWC_EXEC_THREAD_POOL_H_
#define DWC_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dwc {

// A shared worker pool for morsel-driven parallel execution.
//
// The only synchronization primitive operators need is ParallelFor, which is
// *cooperative*: the calling thread always participates, pool workers assist
// when free, and a caller never blocks waiting for a helper to start. That
// makes nested calls (a parallel warehouse refresh whose per-view evaluations
// run parallel join kernels) deadlock-free by construction — in the worst
// case the caller simply executes every iteration itself.
//
// Work distribution is a shared atomic cursor over iteration indices: each
// participant claims the next unclaimed index until the range is drained,
// which is the morsel-driven scheduling discipline (threads steal morsels
// from a shared pile instead of owning fixed ranges), so a slow morsel never
// stalls the rest of the range.
class ThreadPool {
 public:
  // `num_workers` helper threads (callers add themselves on top). 0 is valid:
  // every ParallelFor degrades to inline serial execution.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t worker_count() const { return workers_.size(); }

  // Runs body(i) for every i in [0, n) using the calling thread plus up to
  // (max_threads - 1) pool workers. Returns when every iteration completed.
  // With max_threads <= 1 (or n <= 1) the loop runs inline on the caller,
  // bit-for-bit the serial behaviour. `body` must be safe to invoke
  // concurrently from distinct threads for distinct indices.
  void ParallelFor(size_t n, size_t max_threads,
                   const std::function<void(size_t)>& body);

  // The process-wide pool, sized for the hardware. Created on first use.
  static ThreadPool& Shared();

  // Resolves an EvaluatorOptions-style thread count: 0 means "auto"
  // (hardware_concurrency, at least 1).
  static size_t ResolveThreads(size_t requested);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace dwc

#endif  // DWC_EXEC_THREAD_POOL_H_
