#ifndef DWC_PARSER_PARSER_H_
#define DWC_PARSER_PARSER_H_

#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "parser/statement.h"
#include "util/result.h"

namespace dwc {

// Parses a semicolon-separated DSL script. The grammar (case-insensitive
// keywords):
//
//   stmt  := CREATE TABLE name '(' attr TYPE {',' attr TYPE} [',' KEY '(' attrs ')'] ')'
//          | INCLUSION name '(' attrs ')' SUBSETOF name '(' attrs ')'
//          | VIEW name AS expr
//          | INSERT INTO name VALUES tuple {',' tuple}
//          | DELETE FROM name VALUES tuple {',' tuple}
//          | QUERY expr
//   expr  := term {(JOIN | UNION | MINUS) term}          (left associative)
//   term  := name
//          | '(' expr ')'
//          | PROJECT '[' attrs ']' '(' expr ')'
//          | SELECT '[' pred ']' '(' expr ')'
//          | RENAME '[' name '->' name {',' name '->' name} ']' '(' expr ')'
//          | EMPTY '[' attr TYPE {',' attr TYPE} ']'
//   pred  := andp {OR andp}
//   andp  := unary {AND unary}
//   unary := NOT unary | TRUE | '(' pred ')' | operand op operand
//   op    := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//
// Values: integers, doubles, 'strings' (with '' escape), NULL.
Result<std::vector<Statement>> ParseProgram(std::string_view input);

// Parses a single algebra expression / predicate (no trailing semicolon).
Result<ExprRef> ParseExpr(std::string_view input);
Result<PredicateRef> ParsePredicate(std::string_view input);

}  // namespace dwc

#endif  // DWC_PARSER_PARSER_H_
