#ifndef DWC_PARSER_PARSER_H_
#define DWC_PARSER_PARSER_H_

#include <map>
#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "parser/statement.h"
#include "parser/token.h"
#include "util/result.h"

namespace dwc {

// Side tables attaching source positions to the AST nodes produced by one
// parse. Expr/Predicate trees are immutable and shared, so positions live
// outside the nodes, keyed by node identity: every node the parser creates
// is a fresh allocation, so pointers are unambiguous for the lifetime of
// the parsed statements. Lookups on foreign nodes (built programmatically
// or by rewrites) miss and yield an invalid location.
struct SourceMap {
  std::map<const Expr*, SourceLocation> exprs;
  std::map<const Predicate*, SourceLocation> predicates;
  // For project/select nodes: where the *clause* starts — the first token
  // of the projection attribute list or of the selection predicate. Lets
  // diagnostics point at the offending clause of a multi-line view
  // definition instead of the leading keyword.
  std::map<const Expr*, SourceLocation> clauses;

  // Invalid location when the node is unknown.
  SourceLocation ExprLoc(const ExprRef& expr) const;
  SourceLocation PredicateLoc(const PredicateRef& pred) const;
  SourceLocation ClauseLoc(const ExprRef& expr) const;
};

// A parsed script plus the positions of its statements and AST nodes.
// Statement positions live in each statement's `loc` field; expression and
// predicate positions in `source_map`. Consumed by the static analyzer
// (src/lint/), which needs precise positions for diagnostics.
struct ParsedProgram {
  std::vector<Statement> statements;
  SourceMap source_map;
};

// Parses a semicolon-separated DSL script. The grammar (case-insensitive
// keywords):
//
//   stmt  := CREATE TABLE name '(' attr TYPE {',' attr TYPE} [',' KEY '(' attrs ')'] ')'
//          | INCLUSION name '(' attrs ')' SUBSETOF name '(' attrs ')'
//          | VIEW name AS expr
//          | INSERT INTO name VALUES tuple {',' tuple}
//          | DELETE FROM name VALUES tuple {',' tuple}
//          | QUERY expr
//   expr  := term {(JOIN | UNION | MINUS) term}          (left associative)
//   term  := name
//          | '(' expr ')'
//          | PROJECT '[' attrs ']' '(' expr ')'
//          | SELECT '[' pred ']' '(' expr ')'
//          | RENAME '[' name '->' name {',' name '->' name} ']' '(' expr ')'
//          | EMPTY '[' attr TYPE {',' attr TYPE} ']'
//   pred  := andp {OR andp}
//   andp  := unary {AND unary}
//   unary := NOT unary | TRUE | '(' pred ')' | operand op operand
//   op    := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//
// Values: integers, doubles, 'strings' (with '' escape), NULL.
Result<std::vector<Statement>> ParseProgram(std::string_view input);

// Like ParseProgram, but also records where every statement, expression
// node and predicate node came from.
Result<ParsedProgram> ParseProgramWithLocations(std::string_view input);

// Parses a single algebra expression / predicate (no trailing semicolon).
Result<ExprRef> ParseExpr(std::string_view input);
Result<PredicateRef> ParsePredicate(std::string_view input);

}  // namespace dwc

#endif  // DWC_PARSER_PARSER_H_
