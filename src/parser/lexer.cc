#include "parser/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace dwc {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t line = 1;
  size_t column = 1;
  size_t i = 0;

  auto make = [&](TokenKind kind) {
    Token token;
    token.kind = kind;
    token.line = line;
    token.column = column;
    return token;
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < input.size() && input[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') {
        advance(1);
      }
      continue;
    }
    if (IsIdentStart(c)) {
      Token token = make(TokenKind::kIdentifier);
      size_t start = i;
      while (i < input.size() && IsIdentChar(input[i])) {
        advance(1);
      }
      token.text = std::string(input.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      Token token = make(TokenKind::kInt);
      size_t start = i;
      if (c == '-') {
        advance(1);
      }
      bool is_double = false;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              input[i] == '.')) {
        if (input[i] == '.') {
          if (is_double) {
            return Status::InvalidArgument(
                StrCat("malformed number at line ", line));
          }
          is_double = true;
        }
        advance(1);
      }
      std::string text(input.substr(start, i - start));
      if (is_double) {
        token.kind = TokenKind::kDouble;
        token.double_value = std::stod(text);
      } else {
        token.int_value = std::stoll(text);
      }
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      Token token = make(TokenKind::kString);
      advance(1);
      std::string text;
      bool closed = false;
      while (i < input.size()) {
        if (input[i] == '\'') {
          if (i + 1 < input.size() && input[i + 1] == '\'') {
            text += '\'';
            advance(2);
            continue;
          }
          advance(1);
          closed = true;
          break;
        }
        text += input[i];
        advance(1);
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrCat("unterminated string literal at line ", token.line));
      }
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }
    // Punctuation and operators.
    auto two = [&](char second) {
      return i + 1 < input.size() && input[i + 1] == second;
    };
    switch (c) {
      case '(':
        tokens.push_back(make(TokenKind::kLParen));
        advance(1);
        continue;
      case ')':
        tokens.push_back(make(TokenKind::kRParen));
        advance(1);
        continue;
      case '[':
        tokens.push_back(make(TokenKind::kLBracket));
        advance(1);
        continue;
      case ']':
        tokens.push_back(make(TokenKind::kRBracket));
        advance(1);
        continue;
      case ',':
        tokens.push_back(make(TokenKind::kComma));
        advance(1);
        continue;
      case ';':
        tokens.push_back(make(TokenKind::kSemicolon));
        advance(1);
        continue;
      case '-':
        if (two('>')) {
          tokens.push_back(make(TokenKind::kArrow));
          advance(2);
          continue;
        }
        return Status::InvalidArgument(
            StrCat("unexpected '-' at line ", line, ", column ", column));
      case '=':
        tokens.push_back(make(TokenKind::kEq));
        advance(1);
        continue;
      case '!':
        if (two('=')) {
          tokens.push_back(make(TokenKind::kNe));
          advance(2);
          continue;
        }
        return Status::InvalidArgument(
            StrCat("unexpected '!' at line ", line, ", column ", column));
      case '<':
        if (two('=')) {
          tokens.push_back(make(TokenKind::kLe));
          advance(2);
          continue;
        }
        if (two('>')) {
          tokens.push_back(make(TokenKind::kNe));
          advance(2);
          continue;
        }
        tokens.push_back(make(TokenKind::kLt));
        advance(1);
        continue;
      case '>':
        if (two('=')) {
          tokens.push_back(make(TokenKind::kGe));
          advance(2);
          continue;
        }
        tokens.push_back(make(TokenKind::kGt));
        advance(1);
        continue;
      default:
        return Status::InvalidArgument(StrCat("unexpected character '", c,
                                              "' at line ", line, ", column ",
                                              column));
    }
  }
  tokens.push_back(make(TokenKind::kEnd));
  return tokens;
}

}  // namespace dwc
