#ifndef DWC_PARSER_INTERPRETER_H_
#define DWC_PARSER_INTERPRETER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/expr.h"
#include "algebra/view.h"
#include "parser/statement.h"
#include "relational/catalog.h"
#include "relational/database.h"
#include "relational/relation.h"
#include "util/result.h"

namespace dwc {

// The outcome of running a DSL script: a catalog with constraints, a
// populated database state, the declared views (in order), and the results
// of QUERY statements (in order).
struct ScriptContext {
  std::shared_ptr<Catalog> catalog;
  Database db;
  std::vector<ViewDef> views;
  // SUMMARY definitions, validated but not materialized (they live at the
  // warehouse layer: pass them to Warehouse::AddAggregateView).
  std::vector<AggregateViewDef> summaries;
  std::vector<Relation> query_results;

  ScriptContext()
      : catalog(std::make_shared<Catalog>()), db(catalog) {}

  // Finds a declared view by name; nullptr when absent.
  const ViewDef* FindView(const std::string& name) const;

  // Evaluates `expr` against the database state with all declared views
  // materialized on the fly.
  Result<Relation> Evaluate(const ExprRef& expr) const;
};

// Parses and executes `script`. View definitions are type-checked against
// the catalog; inserts/deletes are checked against relation schemas; QUERY
// results are collected. Constraint *declarations* are validated, but state
// validation (keys/INDs actually holding) is the caller's choice via
// ScriptContext::db.ValidateConstraints().
Result<ScriptContext> RunScript(std::string_view script);

}  // namespace dwc

#endif  // DWC_PARSER_INTERPRETER_H_
