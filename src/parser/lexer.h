#ifndef DWC_PARSER_LEXER_H_
#define DWC_PARSER_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "parser/token.h"
#include "util/result.h"

namespace dwc {

// Tokenizes a DSL script. `--` starts a line comment. Keywords are returned
// as kIdentifier; the parser matches them case-insensitively.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace dwc

#endif  // DWC_PARSER_LEXER_H_
