#ifndef DWC_PARSER_TOKEN_H_
#define DWC_PARSER_TOKEN_H_

#include <string>

namespace dwc {

// A 1-based position in a script. Default-constructed locations are
// invalid (line 0) and mean "no source position available" — diagnostics
// built from in-memory objects rather than parsed text carry those.
struct SourceLocation {
  size_t line = 0;
  size_t column = 0;

  bool valid() const { return line > 0; }

  bool operator==(const SourceLocation& other) const {
    return line == other.line && column == other.column;
  }
  bool operator<(const SourceLocation& other) const {
    return line != other.line ? line < other.line : column < other.column;
  }
};

enum class TokenKind {
  kIdentifier,  // relation / attribute names and keywords
  kInt,         // 42, -7
  kDouble,      // 3.14
  kString,      // 'text' with '' escaping
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kComma,       // ,
  kSemicolon,   // ;
  kArrow,       // ->
  kEq,          // =
  kNe,          // != or <>
  kLt,          // <
  kLe,          // <=
  kGt,          // >
  kGe,          // >=
  kEnd,         // end of input
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  // Identifier / literal text (unescaped for strings).
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  // 1-based position for error messages.
  size_t line = 1;
  size_t column = 1;

  SourceLocation location() const { return SourceLocation{line, column}; }
};

}  // namespace dwc

#endif  // DWC_PARSER_TOKEN_H_
