#include "parser/script_io.h"

#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

namespace {

std::string SchemaAttrsToScript(const Schema& schema) {
  std::vector<std::string> parts;
  for (const Attribute& attr : schema.attributes()) {
    parts.push_back(StrCat(attr.name, " ", ValueTypeName(attr.type)));
  }
  return Join(parts, ", ");
}

std::string TupleRowsToScript(const Relation& rel) {
  std::vector<std::string> rows;
  for (const Tuple& tuple : rel.SortedTuples()) {
    rows.push_back(StrCat("(", Join(tuple.values(), ", "), ")"));
  }
  return Join(rows, ", ");
}

}  // namespace

std::string ExprToScript(const Expr& expr) {
  switch (expr.kind()) {
    case Expr::Kind::kBase:
      return expr.base_name();
    case Expr::Kind::kEmpty:
      return StrCat("empty[", SchemaAttrsToScript(expr.empty_schema()), "]");
    case Expr::Kind::kSelect:
      return StrCat("select[", expr.predicate()->ToString(), "](",
                    ExprToScript(*expr.child()), ")");
    case Expr::Kind::kProject:
      return StrCat("project[", Join(expr.attrs(), ", "), "](",
                    ExprToScript(*expr.child()), ")");
    case Expr::Kind::kRename: {
      std::vector<std::string> parts;
      for (const auto& [from, to] : expr.renames()) {
        parts.push_back(StrCat(from, " -> ", to));
      }
      return StrCat("rename[", Join(parts, ", "), "](",
                    ExprToScript(*expr.child()), ")");
    }
    case Expr::Kind::kJoin:
      return StrCat("(", ExprToScript(*expr.left()), " join ",
                    ExprToScript(*expr.right()), ")");
    case Expr::Kind::kUnion:
      return StrCat("(", ExprToScript(*expr.left()), " union ",
                    ExprToScript(*expr.right()), ")");
    case Expr::Kind::kDifference:
      return StrCat("(", ExprToScript(*expr.left()), " minus ",
                    ExprToScript(*expr.right()), ")");
  }
  return "?";
}

std::string CatalogToScript(const Catalog& catalog) {
  std::string out;
  for (const auto& [name, schema] : catalog.relations()) {
    out += StrCat("CREATE TABLE ", name, "(", SchemaAttrsToScript(schema));
    std::optional<KeyConstraint> key = catalog.FindKey(name);
    if (key.has_value()) {
      out += StrCat(", KEY(", Join(key->attrs, ", "), ")");
    }
    out += ");\n";
  }
  for (const InclusionDependency& ind : catalog.inclusions()) {
    out += StrCat("INCLUSION ", ind.lhs_relation, "(",
                  Join(ind.lhs_attrs, ", "), ") SUBSETOF ", ind.rhs_relation,
                  "(", Join(ind.rhs_attrs, ", "), ");\n");
  }
  return out;
}

std::string DatabaseToScript(const Database& db) {
  std::string out;
  for (const auto& [name, rel] : db.relations()) {
    if (rel->empty()) {
      continue;
    }
    std::vector<std::string> rows;
    for (const Tuple& tuple : rel->SortedTuples()) {
      rows.push_back(StrCat("(", Join(tuple.values(), ", "), ")"));
    }
    out += StrCat("INSERT INTO ", name, " VALUES ", Join(rows, ", "), ";\n");
  }
  return out;
}

std::string ViewToScript(const ViewDef& view) {
  return StrCat("VIEW ", view.name, " AS ", ExprToScript(*view.expr), ";\n");
}

std::string SummaryToScript(const AggregateViewDef& def) {
  std::vector<std::string> items(def.group_by.begin(), def.group_by.end());
  for (const AggSpec& spec : def.aggregates) {
    switch (spec.func) {
      case AggFunc::kCount:
        items.push_back(StrCat("COUNT() AS ", spec.out_name));
        break;
      case AggFunc::kSum:
        items.push_back(StrCat("SUM(", spec.attr, ") AS ", spec.out_name));
        break;
      case AggFunc::kMin:
        items.push_back(StrCat("MIN(", spec.attr, ") AS ", spec.out_name));
        break;
      case AggFunc::kMax:
        items.push_back(StrCat("MAX(", spec.attr, ") AS ", spec.out_name));
        break;
    }
  }
  return StrCat("SUMMARY ", def.name, " AS SELECT ", Join(items, ", "),
                " FROM ", ExprToScript(*def.source), " GROUP BY ",
                Join(def.group_by, ", "), ";\n");
}

std::string DeltaToScript(const CanonicalDelta& delta) {
  std::string out =
      StrCat("DELTA ", delta.relation, " SOURCE '", delta.source_id,
             "' EPOCH ", delta.epoch, " SEQ ", delta.sequence, " STATE '",
             DigestToHex(delta.state_digest), "'");
  if (!delta.inserts.empty()) {
    out += StrCat(" INSERT ", TupleRowsToScript(delta.inserts));
  }
  if (!delta.deletes.empty()) {
    out += StrCat(" DELETE ", TupleRowsToScript(delta.deletes));
  }
  return out + ";\n";
}

}  // namespace dwc
