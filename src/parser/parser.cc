#include "parser/parser.h"

#include <set>
#include <variant>

#include "parser/lexer.h"
#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

SourceLocation SourceMap::ExprLoc(const ExprRef& expr) const {
  auto it = exprs.find(expr.get());
  return it == exprs.end() ? SourceLocation{} : it->second;
}

SourceLocation SourceMap::PredicateLoc(const PredicateRef& pred) const {
  auto it = predicates.find(pred.get());
  return it == predicates.end() ? SourceLocation{} : it->second;
}

SourceLocation SourceMap::ClauseLoc(const ExprRef& expr) const {
  auto it = clauses.find(expr.get());
  return it == clauses.end() ? SourceLocation{} : it->second;
}

namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedProgram> Program() {
    ParsedProgram program;
    while (!AtEnd()) {
      SourceLocation loc = Peek().location();
      DWC_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      std::visit([&loc](auto& s) { s.loc = loc; }, stmt);
      program.statements.push_back(std::move(stmt));
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, ";"));
    }
    program.source_map = std::move(map_);
    return program;
  }

  Result<ExprRef> SingleExpr() {
    DWC_ASSIGN_OR_RETURN(ExprRef expr, ParseExpression());
    DWC_RETURN_IF_ERROR(ExpectEnd());
    return expr;
  }

  Result<PredicateRef> SinglePredicate() {
    DWC_ASSIGN_OR_RETURN(PredicateRef pred, ParsePred());
    DWC_RETURN_IF_ERROR(ExpectEnd());
    return pred;
  }

 private:
  // Records where a freshly parsed node came from. emplace keeps the first
  // position should a factory ever return a shared node.
  ExprRef Note(SourceLocation loc, ExprRef expr) {
    map_.exprs.emplace(expr.get(), loc);
    return expr;
  }
  PredicateRef Note(SourceLocation loc, PredicateRef pred) {
    map_.predicates.emplace(pred.get(), loc);
    return pred;
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().kind == TokenKind::kIdentifier &&
           ToLower(Peek().text) == keyword;
  }
  bool MatchKeyword(std::string_view keyword) {
    if (PeekKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }
  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      Advance();
      return true;
    }
    return false;
  }

  Status ErrorHere(std::string_view message) const {
    return Status::InvalidArgument(StrCat(message, " at line ", Peek().line,
                                          ", column ", Peek().column,
                                          " (near '", Peek().text, "')"));
  }

  Status Expect(TokenKind kind, std::string_view what) {
    if (!Match(kind)) {
      return ErrorHere(StrCat("expected '", what, "'"));
    }
    return Status::Ok();
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!MatchKeyword(keyword)) {
      return ErrorHere(StrCat("expected keyword '", keyword, "'"));
    }
    return Status::Ok();
  }

  Status ExpectEnd() {
    if (!AtEnd()) {
      return ErrorHere("expected end of input");
    }
    return Status::Ok();
  }

  Result<std::string> ExpectName() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::InvalidArgument(StrCat("expected a name at line ",
                                            Peek().line, ", column ",
                                            Peek().column));
    }
    return Advance().text;
  }

  Result<Statement> ParseStatement() {
    if (MatchKeyword("create")) {
      DWC_RETURN_IF_ERROR(ExpectKeyword("table"));
      return ParseCreateTable();
    }
    if (MatchKeyword("inclusion")) {
      return ParseInclusion();
    }
    if (MatchKeyword("view")) {
      DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
      DWC_RETURN_IF_ERROR(ExpectKeyword("as"));
      DWC_ASSIGN_OR_RETURN(ExprRef expr, ParseExpression());
      return Statement(ViewStmt{std::move(name), std::move(expr)});
    }
    if (MatchKeyword("insert")) {
      DWC_RETURN_IF_ERROR(ExpectKeyword("into"));
      DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
      DWC_RETURN_IF_ERROR(ExpectKeyword("values"));
      DWC_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, ParseTupleList());
      return Statement(InsertStmt{std::move(name), std::move(tuples)});
    }
    if (MatchKeyword("delete")) {
      DWC_RETURN_IF_ERROR(ExpectKeyword("from"));
      DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
      DWC_RETURN_IF_ERROR(ExpectKeyword("values"));
      DWC_ASSIGN_OR_RETURN(std::vector<Tuple> tuples, ParseTupleList());
      return Statement(DeleteStmt{std::move(name), std::move(tuples)});
    }
    if (MatchKeyword("delta")) {
      return ParseDelta();
    }
    if (MatchKeyword("query")) {
      DWC_ASSIGN_OR_RETURN(ExprRef expr, ParseExpression());
      return Statement(QueryStmt{std::move(expr)});
    }
    if (MatchKeyword("summary")) {
      return ParseSummary();
    }
    return ErrorHere("expected a statement");
  }

  Result<Statement> ParseSummary() {
    AggregateViewDef def;
    DWC_ASSIGN_OR_RETURN(def.name, ExpectName());
    DWC_RETURN_IF_ERROR(ExpectKeyword("as"));
    DWC_RETURN_IF_ERROR(ExpectKeyword("select"));
    std::vector<std::string> plain;
    do {
      if (MatchKeyword("count")) {
        DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
        DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        DWC_RETURN_IF_ERROR(ExpectKeyword("as"));
        AggSpec spec;
        spec.func = AggFunc::kCount;
        DWC_ASSIGN_OR_RETURN(spec.out_name, ExpectName());
        def.aggregates.push_back(std::move(spec));
      } else if (PeekKeyword("sum") || PeekKeyword("min") ||
                 PeekKeyword("max")) {
        AggSpec spec;
        if (MatchKeyword("sum")) {
          spec.func = AggFunc::kSum;
        } else if (MatchKeyword("min")) {
          spec.func = AggFunc::kMin;
        } else {
          DWC_RETURN_IF_ERROR(ExpectKeyword("max"));
          spec.func = AggFunc::kMax;
        }
        DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
        DWC_ASSIGN_OR_RETURN(spec.attr, ExpectName());
        DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        DWC_RETURN_IF_ERROR(ExpectKeyword("as"));
        DWC_ASSIGN_OR_RETURN(spec.out_name, ExpectName());
        def.aggregates.push_back(std::move(spec));
      } else {
        DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
        plain.push_back(std::move(name));
      }
    } while (Match(TokenKind::kComma));
    DWC_RETURN_IF_ERROR(ExpectKeyword("from"));
    DWC_ASSIGN_OR_RETURN(def.source, ParseExpression());
    DWC_RETURN_IF_ERROR(ExpectKeyword("group"));
    DWC_RETURN_IF_ERROR(ExpectKeyword("by"));
    DWC_ASSIGN_OR_RETURN(def.group_by, ParseNameList());
    // The plain select items must be exactly the group-by attributes.
    std::set<std::string> group_set(def.group_by.begin(), def.group_by.end());
    std::set<std::string> plain_set(plain.begin(), plain.end());
    if (group_set != plain_set) {
      return Status::InvalidArgument(
          StrCat("SUMMARY ", def.name,
                 ": the non-aggregated select items must equal the GROUP BY "
                 "attributes"));
    }
    return Statement(SummaryStmt{std::move(def)});
  }

  Result<uint64_t> ExpectUnsigned(std::string_view what) {
    if (Peek().kind != TokenKind::kInt || Peek().int_value < 0) {
      return ErrorHere(StrCat("expected a non-negative integer for ", what));
    }
    return static_cast<uint64_t>(Advance().int_value);
  }

  Result<Statement> ParseDelta() {
    DeltaStmt stmt;
    DWC_ASSIGN_OR_RETURN(stmt.relation, ExpectName());
    DWC_RETURN_IF_ERROR(ExpectKeyword("source"));
    if (Peek().kind != TokenKind::kString) {
      return ErrorHere("expected a quoted source id");
    }
    stmt.source_id = Advance().text;
    DWC_RETURN_IF_ERROR(ExpectKeyword("epoch"));
    DWC_ASSIGN_OR_RETURN(stmt.epoch, ExpectUnsigned("EPOCH"));
    DWC_RETURN_IF_ERROR(ExpectKeyword("seq"));
    DWC_ASSIGN_OR_RETURN(stmt.sequence, ExpectUnsigned("SEQ"));
    DWC_RETURN_IF_ERROR(ExpectKeyword("state"));
    if (Peek().kind != TokenKind::kString ||
        !HexToDigest(Peek().text, &stmt.state_digest)) {
      return ErrorHere("expected a 16-digit hex state digest");
    }
    Advance();
    if (MatchKeyword("insert")) {
      DWC_ASSIGN_OR_RETURN(stmt.inserts, ParseTupleList());
    }
    if (MatchKeyword("delete")) {
      DWC_ASSIGN_OR_RETURN(stmt.deletes, ParseTupleList());
    }
    return Statement(std::move(stmt));
  }

  Result<ValueType> ParseType() {
    if (MatchKeyword("int")) {
      return ValueType::kInt;
    }
    if (MatchKeyword("double")) {
      return ValueType::kDouble;
    }
    if (MatchKeyword("string")) {
      return ValueType::kString;
    }
    return ErrorHere("expected a type (INT, DOUBLE, STRING)");
  }

  Result<Statement> ParseCreateTable() {
    DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
    DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    std::vector<Attribute> attrs;
    std::optional<AttrSet> key;
    while (true) {
      if (MatchKeyword("key")) {
        DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
        AttrSet key_attrs;
        do {
          DWC_ASSIGN_OR_RETURN(std::string attr, ExpectName());
          key_attrs.insert(std::move(attr));
        } while (Match(TokenKind::kComma));
        DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        key = std::move(key_attrs);
      } else {
        DWC_ASSIGN_OR_RETURN(std::string attr, ExpectName());
        DWC_ASSIGN_OR_RETURN(ValueType type, ParseType());
        attrs.push_back(Attribute{std::move(attr), type});
      }
      if (!Match(TokenKind::kComma)) {
        break;
      }
    }
    DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    DWC_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
    return Statement(
        CreateTableStmt{std::move(name), std::move(schema), std::move(key)});
  }

  Result<std::vector<std::string>> ParseNameList() {
    std::vector<std::string> names;
    do {
      DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
      names.push_back(std::move(name));
    } while (Match(TokenKind::kComma));
    return names;
  }

  Result<Statement> ParseInclusion() {
    InclusionDependency ind;
    DWC_ASSIGN_OR_RETURN(ind.lhs_relation, ExpectName());
    DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    DWC_ASSIGN_OR_RETURN(ind.lhs_attrs, ParseNameList());
    DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    DWC_RETURN_IF_ERROR(ExpectKeyword("subsetof"));
    DWC_ASSIGN_OR_RETURN(ind.rhs_relation, ExpectName());
    DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    DWC_ASSIGN_OR_RETURN(ind.rhs_attrs, ParseNameList());
    DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    return Statement(InclusionStmt{std::move(ind)});
  }

  Result<Value> ParseValue() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kInt:
        Advance();
        return Value::Int(token.int_value);
      case TokenKind::kDouble:
        Advance();
        return Value::Double(token.double_value);
      case TokenKind::kString:
        Advance();
        return Value::String(token.text);
      case TokenKind::kIdentifier:
        if (MatchKeyword("null")) {
          return Value::Null();
        }
        return ErrorHere("expected a literal value");
      default:
        return ErrorHere("expected a literal value");
    }
  }

  Result<std::vector<Tuple>> ParseTupleList() {
    std::vector<Tuple> tuples;
    do {
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      std::vector<Value> values;
      do {
        DWC_ASSIGN_OR_RETURN(Value value, ParseValue());
        values.push_back(std::move(value));
      } while (Match(TokenKind::kComma));
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      tuples.push_back(Tuple(std::move(values)));
    } while (Match(TokenKind::kComma));
    return tuples;
  }

  Result<ExprRef> ParseExpression() {
    DWC_ASSIGN_OR_RETURN(ExprRef expr, ParseTerm());
    while (true) {
      SourceLocation loc = Peek().location();
      if (MatchKeyword("join")) {
        DWC_ASSIGN_OR_RETURN(ExprRef rhs, ParseTerm());
        expr = Note(loc, Expr::Join(std::move(expr), std::move(rhs)));
      } else if (MatchKeyword("union")) {
        DWC_ASSIGN_OR_RETURN(ExprRef rhs, ParseTerm());
        expr = Note(loc, Expr::Union(std::move(expr), std::move(rhs)));
      } else if (MatchKeyword("minus")) {
        DWC_ASSIGN_OR_RETURN(ExprRef rhs, ParseTerm());
        expr = Note(loc, Expr::Difference(std::move(expr), std::move(rhs)));
      } else {
        return expr;
      }
    }
  }

  Result<ExprRef> ParseTerm() {
    SourceLocation loc = Peek().location();
    if (Match(TokenKind::kLParen)) {
      DWC_ASSIGN_OR_RETURN(ExprRef expr, ParseExpression());
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return expr;
    }
    if (MatchKeyword("project")) {
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "["));
      SourceLocation clause_loc = Peek().location();
      DWC_ASSIGN_OR_RETURN(std::vector<std::string> attrs, ParseNameList());
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      DWC_ASSIGN_OR_RETURN(ExprRef child, ParseExpression());
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      ExprRef node =
          Note(loc, Expr::Project(std::move(attrs), std::move(child)));
      map_.clauses.emplace(node.get(), clause_loc);
      return node;
    }
    if (MatchKeyword("select")) {
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "["));
      SourceLocation clause_loc = Peek().location();
      DWC_ASSIGN_OR_RETURN(PredicateRef pred, ParsePred());
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      DWC_ASSIGN_OR_RETURN(ExprRef child, ParseExpression());
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      ExprRef node = Note(loc, Expr::Select(std::move(pred), std::move(child)));
      map_.clauses.emplace(node.get(), clause_loc);
      return node;
    }
    if (MatchKeyword("rename")) {
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "["));
      std::map<std::string, std::string> renames;
      do {
        DWC_ASSIGN_OR_RETURN(std::string from, ExpectName());
        DWC_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "->"));
        DWC_ASSIGN_OR_RETURN(std::string to, ExpectName());
        renames[std::move(from)] = std::move(to);
      } while (Match(TokenKind::kComma));
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      DWC_ASSIGN_OR_RETURN(ExprRef child, ParseExpression());
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return Note(loc, Expr::Rename(std::move(renames), std::move(child)));
    }
    if (MatchKeyword("empty")) {
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket, "["));
      std::vector<Attribute> attrs;
      do {
        DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
        DWC_ASSIGN_OR_RETURN(ValueType type, ParseType());
        attrs.push_back(Attribute{std::move(name), type});
      } while (Match(TokenKind::kComma));
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "]"));
      DWC_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));
      return Note(loc, Expr::Empty(std::move(schema)));
    }
    DWC_ASSIGN_OR_RETURN(std::string name, ExpectName());
    return Note(loc, Expr::Base(std::move(name)));
  }

  Result<PredicateRef> ParsePred() {
    DWC_ASSIGN_OR_RETURN(PredicateRef pred, ParseAnd());
    while (true) {
      SourceLocation loc = Peek().location();
      if (!MatchKeyword("or")) {
        break;
      }
      DWC_ASSIGN_OR_RETURN(PredicateRef rhs, ParseAnd());
      pred = Note(loc, Predicate::Or(std::move(pred), std::move(rhs)));
    }
    return pred;
  }

  Result<PredicateRef> ParseAnd() {
    DWC_ASSIGN_OR_RETURN(PredicateRef pred, ParseUnary());
    while (true) {
      SourceLocation loc = Peek().location();
      if (!MatchKeyword("and")) {
        break;
      }
      DWC_ASSIGN_OR_RETURN(PredicateRef rhs, ParseUnary());
      pred = Note(loc, Predicate::And(std::move(pred), std::move(rhs)));
    }
    return pred;
  }

  Result<PredicateRef> ParseUnary() {
    SourceLocation loc = Peek().location();
    if (MatchKeyword("not")) {
      DWC_ASSIGN_OR_RETURN(PredicateRef child, ParseUnary());
      return Note(loc, Predicate::Not(std::move(child)));
    }
    if (MatchKeyword("true")) {
      return Note(loc, Predicate::True());
    }
    if (Match(TokenKind::kLParen)) {
      DWC_ASSIGN_OR_RETURN(PredicateRef pred, ParsePred());
      DWC_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return pred;
    }
    DWC_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    CmpOp op;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = CmpOp::kNe;
        break;
      case TokenKind::kLt:
        op = CmpOp::kLt;
        break;
      case TokenKind::kLe:
        op = CmpOp::kLe;
        break;
      case TokenKind::kGt:
        op = CmpOp::kGt;
        break;
      case TokenKind::kGe:
        op = CmpOp::kGe;
        break;
      default:
        return ErrorHere("expected a comparison operator");
    }
    Advance();
    DWC_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    return Note(loc, Predicate::Cmp(std::move(lhs), op, std::move(rhs)));
  }

  Result<Operand> ParseOperand() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdentifier:
        if (PeekKeyword("null")) {
          Advance();
          return Operand::Const(Value::Null());
        }
        Advance();
        return Operand::Attr(token.text);
      case TokenKind::kInt:
        Advance();
        return Operand::Const(Value::Int(token.int_value));
      case TokenKind::kDouble:
        Advance();
        return Operand::Const(Value::Double(token.double_value));
      case TokenKind::kString:
        Advance();
        return Operand::Const(Value::String(token.text));
      default:
        return ErrorHere("expected an operand");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SourceMap map_;
};

}  // namespace

Result<std::vector<Statement>> ParseProgram(std::string_view input) {
  DWC_ASSIGN_OR_RETURN(ParsedProgram program, ParseProgramWithLocations(input));
  return std::move(program.statements);
}

Result<ParsedProgram> ParseProgramWithLocations(std::string_view input) {
  DWC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.Program();
}

Result<ExprRef> ParseExpr(std::string_view input) {
  DWC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.SingleExpr();
}

Result<PredicateRef> ParsePredicate(std::string_view input) {
  DWC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.SinglePredicate();
}

}  // namespace dwc
