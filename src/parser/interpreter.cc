#include "parser/interpreter.h"

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "algebra/schema_inference.h"
#include "parser/parser.h"
#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

const ViewDef* ScriptContext::FindView(const std::string& name) const {
  for (const ViewDef& view : views) {
    if (view.name == name) {
      return &view;
    }
  }
  return nullptr;
}

Result<Relation> ScriptContext::Evaluate(const ExprRef& expr) const {
  // Materialize every declared view first (views may reference earlier
  // views), then evaluate the expression against db + views.
  Environment env = Environment::FromDatabase(db);
  std::vector<std::unique_ptr<Relation>> materialized;
  for (const ViewDef& view : views) {
    Evaluator evaluator(&env);
    DWC_ASSIGN_OR_RETURN(Relation rel, evaluator.Materialize(*view.expr));
    materialized.push_back(std::make_unique<Relation>(std::move(rel)));
    env.Bind(view.name, materialized.back().get());
  }
  Evaluator evaluator(&env);
  return evaluator.Materialize(*expr);
}

namespace {

Status CheckTupleAgainstSchema(const Tuple& tuple, const Schema& schema,
                               const std::string& relation) {
  if (tuple.size() != schema.size()) {
    return Status::InvalidArgument(
        StrCat("tuple ", tuple.ToString(), " has ", tuple.size(),
               " values but ", relation, " has ", schema.size(),
               " attributes"));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple.at(i).is_null()) {
      continue;  // NULL is allowed in any domain.
    }
    ValueType expected = schema.attribute(i).type;
    ValueType actual = tuple.at(i).type();
    bool numeric_ok =
        (expected == ValueType::kDouble && actual == ValueType::kInt);
    if (actual != expected && !numeric_ok) {
      return Status::InvalidArgument(
          StrCat("value ", tuple.at(i).ToString(), " has type ",
                 ValueTypeName(actual), " but attribute '",
                 schema.attribute(i).name, "' of ", relation, " has type ",
                 ValueTypeName(expected)));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<ScriptContext> RunScript(std::string_view script) {
  DWC_ASSIGN_OR_RETURN(std::vector<Statement> statements,
                       ParseProgram(script));
  ScriptContext context;

  // Resolver covering base relations and already-declared views.
  auto resolve_all = [&context](const std::string& name) -> const Schema* {
    const Schema* schema = context.catalog->FindSchema(name);
    if (schema != nullptr) {
      return schema;
    }
    return nullptr;
  };
  // View schemas are cached as they are declared.
  std::map<std::string, Schema> view_schemas;
  auto resolver = [&](const std::string& name) -> const Schema* {
    const Schema* base = resolve_all(name);
    if (base != nullptr) {
      return base;
    }
    auto it = view_schemas.find(name);
    return it == view_schemas.end() ? nullptr : &it->second;
  };

  for (Statement& statement : statements) {
    if (auto* create = std::get_if<CreateTableStmt>(&statement)) {
      DWC_RETURN_IF_ERROR(
          context.catalog->AddRelation(create->name, create->schema));
      if (create->key.has_value()) {
        DWC_RETURN_IF_ERROR(
            context.catalog->AddKey(create->name, *create->key));
      }
      DWC_RETURN_IF_ERROR(
          context.db.AddEmptyRelation(create->name, create->schema));
    } else if (auto* inclusion = std::get_if<InclusionStmt>(&statement)) {
      DWC_RETURN_IF_ERROR(context.catalog->AddInclusion(inclusion->ind));
    } else if (auto* view = std::get_if<ViewStmt>(&statement)) {
      if (resolver(view->name) != nullptr) {
        return Status::AlreadyExists(
            StrCat("name '", view->name, "' already declared"));
      }
      DWC_ASSIGN_OR_RETURN(Schema schema, InferSchema(*view->expr, resolver));
      view_schemas.emplace(view->name, std::move(schema));
      context.views.push_back(ViewDef{view->name, view->expr});
    } else if (auto* insert = std::get_if<InsertStmt>(&statement)) {
      Relation* rel = context.db.FindMutableRelation(insert->relation);
      if (rel == nullptr) {
        return Status::NotFound(
            StrCat("relation '", insert->relation, "' not declared"));
      }
      for (Tuple& tuple : insert->tuples) {
        DWC_RETURN_IF_ERROR(
            CheckTupleAgainstSchema(tuple, rel->schema(), insert->relation));
        rel->Insert(std::move(tuple));
      }
    } else if (auto* del = std::get_if<DeleteStmt>(&statement)) {
      Relation* rel = context.db.FindMutableRelation(del->relation);
      if (rel == nullptr) {
        return Status::NotFound(
            StrCat("relation '", del->relation, "' not declared"));
      }
      for (const Tuple& tuple : del->tuples) {
        DWC_RETURN_IF_ERROR(
            CheckTupleAgainstSchema(tuple, rel->schema(), del->relation));
        rel->Erase(tuple);
      }
    } else if (auto* delta = std::get_if<DeltaStmt>(&statement)) {
      // Journal replay: re-apply the enveloped delta (deletes first, like
      // the integrator) and re-verify the piggybacked post-state digest —
      // a damaged or truncated journal fails loudly instead of silently
      // rebuilding a diverged state.
      Relation* rel = context.db.FindMutableRelation(delta->relation);
      if (rel == nullptr) {
        return Status::NotFound(
            StrCat("relation '", delta->relation, "' not declared"));
      }
      for (const Tuple& tuple : delta->deletes) {
        DWC_RETURN_IF_ERROR(
            CheckTupleAgainstSchema(tuple, rel->schema(), delta->relation));
        rel->Erase(tuple);
      }
      for (Tuple& tuple : delta->inserts) {
        DWC_RETURN_IF_ERROR(
            CheckTupleAgainstSchema(tuple, rel->schema(), delta->relation));
        rel->Insert(std::move(tuple));
      }
      if (delta->sequence != 0 &&
          RelationDigest(*rel) != delta->state_digest) {
        return Status::FailedPrecondition(
            StrCat("journal replay diverged: after DELTA ", delta->relation,
                   " seq ", delta->sequence, " (epoch ", delta->epoch,
                   " from '", delta->source_id, "') the relation digest is ",
                   DigestToHex(RelationDigest(*rel)), ", journal says ",
                   DigestToHex(delta->state_digest)));
      }
    } else if (auto* query = std::get_if<QueryStmt>(&statement)) {
      DWC_ASSIGN_OR_RETURN(Relation result, context.Evaluate(query->expr));
      context.query_results.push_back(std::move(result));
    } else if (auto* summary = std::get_if<SummaryStmt>(&statement)) {
      // Validate the definition (schema inference + spec checks) without
      // materializing it; the warehouse layer owns the state.
      DWC_ASSIGN_OR_RETURN(AggregateView unused,
                           AggregateView::Create(summary->def, resolver));
      (void)unused;
      context.summaries.push_back(summary->def);
    }
  }
  return context;
}

}  // namespace dwc
