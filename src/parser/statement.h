#ifndef DWC_PARSER_STATEMENT_H_
#define DWC_PARSER_STATEMENT_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "aggregate/aggregate_view.h"
#include "algebra/expr.h"
#include "parser/token.h"
#include "relational/constraints.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace dwc {

// CREATE TABLE name(attr TYPE, ..., KEY(a, b));
struct CreateTableStmt {
  std::string name;
  Schema schema;
  std::optional<AttrSet> key;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// INCLUSION R(a, b) SUBSETOF S(a, b);
struct InclusionStmt {
  InclusionDependency ind;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// VIEW name AS <expr>;
struct ViewStmt {
  std::string name;
  ExprRef expr;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// INSERT INTO name VALUES (v, ...), (v, ...);
struct InsertStmt {
  std::string relation;
  std::vector<Tuple> tuples;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// DELETE FROM name VALUES (v, ...), (v, ...);
struct DeleteStmt {
  std::string relation;
  std::vector<Tuple> tuples;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// QUERY <expr>;
struct QueryStmt {
  ExprRef expr;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// SUMMARY name AS SELECT g1, ..., COUNT() AS n, SUM(a) AS s, ...
//   FROM <expr> GROUP BY g1, ...;
// The plain select items must match the GROUP BY list.
struct SummaryStmt {
  AggregateViewDef def;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

using Statement = std::variant<CreateTableStmt, InclusionStmt, ViewStmt,
                               InsertStmt, DeleteStmt, QueryStmt, SummaryStmt>;

}  // namespace dwc

#endif  // DWC_PARSER_STATEMENT_H_
