#ifndef DWC_PARSER_STATEMENT_H_
#define DWC_PARSER_STATEMENT_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "aggregate/aggregate_view.h"
#include "algebra/expr.h"
#include "relational/constraints.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace dwc {

// CREATE TABLE name(attr TYPE, ..., KEY(a, b));
struct CreateTableStmt {
  std::string name;
  Schema schema;
  std::optional<AttrSet> key;
};

// INCLUSION R(a, b) SUBSETOF S(a, b);
struct InclusionStmt {
  InclusionDependency ind;
};

// VIEW name AS <expr>;
struct ViewStmt {
  std::string name;
  ExprRef expr;
};

// INSERT INTO name VALUES (v, ...), (v, ...);
struct InsertStmt {
  std::string relation;
  std::vector<Tuple> tuples;
};

// DELETE FROM name VALUES (v, ...), (v, ...);
struct DeleteStmt {
  std::string relation;
  std::vector<Tuple> tuples;
};

// QUERY <expr>;
struct QueryStmt {
  ExprRef expr;
};

// SUMMARY name AS SELECT g1, ..., COUNT() AS n, SUM(a) AS s, ...
//   FROM <expr> GROUP BY g1, ...;
// The plain select items must match the GROUP BY list.
struct SummaryStmt {
  AggregateViewDef def;
};

using Statement = std::variant<CreateTableStmt, InclusionStmt, ViewStmt,
                               InsertStmt, DeleteStmt, QueryStmt, SummaryStmt>;

}  // namespace dwc

#endif  // DWC_PARSER_STATEMENT_H_
