#ifndef DWC_PARSER_STATEMENT_H_
#define DWC_PARSER_STATEMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "aggregate/aggregate_view.h"
#include "algebra/expr.h"
#include "parser/token.h"
#include "relational/constraints.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace dwc {

// CREATE TABLE name(attr TYPE, ..., KEY(a, b));
struct CreateTableStmt {
  std::string name;
  Schema schema;
  std::optional<AttrSet> key;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// INCLUSION R(a, b) SUBSETOF S(a, b);
struct InclusionStmt {
  InclusionDependency ind;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// VIEW name AS <expr>;
struct ViewStmt {
  std::string name;
  ExprRef expr;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// INSERT INTO name VALUES (v, ...), (v, ...);
struct InsertStmt {
  std::string relation;
  std::vector<Tuple> tuples;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// DELETE FROM name VALUES (v, ...), (v, ...);
struct DeleteStmt {
  std::string relation;
  std::vector<Tuple> tuples;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// DELTA name SOURCE 'id' EPOCH n SEQ n STATE 'hex16'
//   [INSERT (v, ...), ...] [DELETE (v, ...), ...];
// One journal record of the fault-tolerant delivery layer: a canonical
// delta plus its envelope (warehouse/update.h), rendered as DSL so
// checkpoint + journal replay is an ordinary script run. SEQ 0 marks an
// unsequenced delta (e.g. a resync correction); STATE is the source's
// post-apply relation digest in fixed 16-digit hex, '0'*16 when unstamped.
struct DeltaStmt {
  std::string relation;
  std::string source_id;
  uint64_t epoch = 0;
  uint64_t sequence = 0;
  uint64_t state_digest = 0;
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// QUERY <expr>;
struct QueryStmt {
  ExprRef expr;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

// SUMMARY name AS SELECT g1, ..., COUNT() AS n, SUM(a) AS s, ...
//   FROM <expr> GROUP BY g1, ...;
// The plain select items must match the GROUP BY list.
struct SummaryStmt {
  AggregateViewDef def;
  // Position of the statement keyword in the source script
  // (invalid for statements built programmatically).
  SourceLocation loc = {};
};

using Statement =
    std::variant<CreateTableStmt, InclusionStmt, ViewStmt, InsertStmt,
                 DeleteStmt, DeltaStmt, QueryStmt, SummaryStmt>;

}  // namespace dwc

#endif  // DWC_PARSER_STATEMENT_H_
