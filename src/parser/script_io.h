#ifndef DWC_PARSER_SCRIPT_IO_H_
#define DWC_PARSER_SCRIPT_IO_H_

#include <string>

#include "aggregate/aggregate_view.h"
#include "algebra/expr.h"
#include "algebra/view.h"
#include "relational/catalog.h"
#include "relational/database.h"
#include "warehouse/update.h"

namespace dwc {

// Serializers back into the DSL (parser/parser.h): everything written here
// re-parses with RunScript / ParseExpr, giving a plain-text persistence
// format for catalogs, states and warehouse definitions (round-trip tested
// in tests/parser/script_io_test.cc).

// Expression in DSL syntax. Differs from Expr::ToString only for empty
// literals, which are emitted with attribute types ("empty[a INT]").
std::string ExprToScript(const Expr& expr);

// CREATE TABLE + INCLUSION statements for every relation and constraint.
std::string CatalogToScript(const Catalog& catalog);

// INSERT statements reproducing the current contents of `db` (relations in
// name order, tuples in deterministic order). Relations must be declared
// separately (CatalogToScript).
std::string DatabaseToScript(const Database& db);

// A VIEW statement.
std::string ViewToScript(const ViewDef& view);

// A SUMMARY statement.
std::string SummaryToScript(const AggregateViewDef& def);

// A DELTA statement: one enveloped canonical delta in journal-record form
// (replayed by RunScript, which re-applies it and — for sequenced deltas —
// re-verifies the piggybacked state digest).
std::string DeltaToScript(const CanonicalDelta& delta);

}  // namespace dwc

#endif  // DWC_PARSER_SCRIPT_IO_H_
