#ifndef DWC_AGGREGATE_AGGREGATE_VIEW_H_
#define DWC_AGGREGATE_AGGREGATE_VIEW_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/environment.h"
#include "algebra/expr.h"
#include "algebra/schema_inference.h"
#include "relational/relation.h"
#include "util/result.h"

namespace dwc {

// Aggregate functions for warehouse summary tables. The paper's Section 5
// notes that OLAP runs aggregate views over fact tables and that those are
// maintained by dedicated algorithms (Mumick et al.) on top of the
// PSJ-maintained facts — this module is that layer.
enum class AggFunc {
  kCount,  // COUNT(*) — no attribute.
  kSum,
  kMin,
  kMax,
};

const char* AggFuncName(AggFunc func);

struct AggSpec {
  AggFunc func = AggFunc::kCount;
  // Aggregated attribute; empty for kCount.
  std::string attr;
  // Output column name.
  std::string out_name;
};

// GROUP BY `group_by` over `source` (an expression over warehouse relation
// names — typically a single fact view), computing `aggregates`.
struct AggregateViewDef {
  std::string name;
  ExprRef source;
  std::vector<std::string> group_by;
  std::vector<AggSpec> aggregates;

  std::string ToString() const;
};

// A materialized summary table maintained incrementally from exact deltas
// of its source expression (set semantics):
//   * COUNT and SUM fold insertions and deletions directly;
//   * MIN/MAX fold insertions; a deletion of the current extremum marks the
//     group dirty and the group is re-aggregated from the source (evaluated
//     against the *new* warehouse state — the classic summary-delta
//     treatment of non-self-maintainable aggregates).
// Groups whose support count reaches zero disappear.
class AggregateView {
 public:
  // Validates the definition against `resolver` (which must know all
  // relation names `source` uses) and derives the output schema:
  // group-by columns first, then one column per aggregate.
  static Result<AggregateView> Create(AggregateViewDef def,
                                      const SchemaResolver& resolver);

  // The materialized table lives behind a shared slot so the warehouse's
  // epoch snapshots can keep an old version alive after the view moves on
  // (warehouse/epoch.h). Copying a view deep-copies the table — a copy
  // never aliases storage with the original, which is what makes
  // copy-then-swap folding safe.
  AggregateView(const AggregateView& other) { CopyFrom(other); }
  AggregateView& operator=(const AggregateView& other) {
    if (this != &other) {
      CopyFrom(other);
    }
    return *this;
  }
  AggregateView(AggregateView&&) noexcept = default;
  AggregateView& operator=(AggregateView&&) noexcept = default;

  const AggregateViewDef& def() const { return def_; }
  const Schema& schema() const { return materialized_->schema(); }
  const Relation& materialized() const { return *materialized_; }
  std::shared_ptr<const Relation> shared_materialized() const {
    return materialized_;
  }

  // Recomputes from scratch: evaluates `source` on `env` and folds it.
  // Installs a fresh storage slot, leaving any snapshot-held old version
  // untouched.
  Status Initialize(const Environment& env);

  // Folds an exact source delta. `plus`/`minus` carry the source schema
  // (any column order). `new_env` must reflect the source's *post-update*
  // state; it is consulted only to re-aggregate dirty MIN/MAX groups.
  Status ApplyDelta(const Relation& plus, const Relation& minus,
                    const Environment& new_env);

 private:
  struct GroupState {
    int64_t count = 0;          // Support: source tuples in the group.
    std::vector<Value> accums;  // One per aggregate spec.
    bool dirty = false;         // MIN/MAX needs re-aggregation.
  };

  AggregateView() : materialized_(std::make_shared<Relation>()) {}

  void CopyFrom(const AggregateView& other);

  Status FoldInsert(const Tuple& tuple, const Schema& schema);
  Status FoldDelete(const Tuple& tuple, const Schema& schema);
  // Recomputes one group from the source (new state).
  Status RecomputeGroup(const Tuple& group, const Environment& env);
  // Writes the materialized row of `group` (erasing any stale row first).
  void EmitRow(const Tuple& group);
  // Positions of group-by / aggregate attrs in `schema` (cached per call
  // site since plus/minus may arrive in any column order).
  Result<std::vector<size_t>> GroupIndices(const Schema& schema) const;
  Result<std::vector<size_t>> AggIndices(const Schema& schema) const;

  AggregateViewDef def_;
  Schema source_schema_;
  std::shared_ptr<Relation> materialized_;
  std::map<Tuple, GroupState> groups_;
};

}  // namespace dwc

#endif  // DWC_AGGREGATE_AGGREGATE_VIEW_H_
