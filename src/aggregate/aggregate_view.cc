#include "aggregate/aggregate_view.h"

#include "algebra/evaluator.h"
#include "util/string_util.h"

namespace dwc {

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::string AggregateViewDef::ToString() const {
  std::vector<std::string> aggs;
  for (const AggSpec& spec : aggregates) {
    aggs.push_back(StrCat(AggFuncName(spec.func), "(",
                          spec.attr.empty() ? "*" : spec.attr, ") AS ",
                          spec.out_name));
  }
  return StrCat(name, " = SELECT ", Join(group_by, ", "), ", ",
                Join(aggs, ", "), " FROM ", source->ToString(), " GROUP BY ",
                Join(group_by, ", "));
}

Result<AggregateView> AggregateView::Create(AggregateViewDef def,
                                            const SchemaResolver& resolver) {
  AggregateView view;
  DWC_ASSIGN_OR_RETURN(view.source_schema_, InferSchema(*def.source, resolver));
  if (def.group_by.empty()) {
    return Status::InvalidArgument(
        StrCat("aggregate view '", def.name,
               "' needs at least one GROUP BY attribute"));
  }
  std::vector<Attribute> out_attrs;
  for (const std::string& attr : def.group_by) {
    std::optional<size_t> idx = view.source_schema_.IndexOf(attr);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          StrCat("group-by attribute '", attr, "' not in source schema ",
                 view.source_schema_.ToString()));
    }
    out_attrs.push_back(view.source_schema_.attribute(*idx));
  }
  for (const AggSpec& spec : def.aggregates) {
    if (spec.out_name.empty()) {
      return Status::InvalidArgument("aggregate output name must not be empty");
    }
    if (spec.func == AggFunc::kCount) {
      if (!spec.attr.empty()) {
        return Status::InvalidArgument("COUNT takes no attribute (use '*')");
      }
      out_attrs.push_back(Attribute{spec.out_name, ValueType::kInt});
      continue;
    }
    std::optional<size_t> idx = view.source_schema_.IndexOf(spec.attr);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          StrCat("aggregate attribute '", spec.attr, "' not in source schema ",
                 view.source_schema_.ToString()));
    }
    ValueType type = view.source_schema_.attribute(*idx).type;
    if (spec.func == AggFunc::kSum &&
        !(type == ValueType::kInt || type == ValueType::kDouble)) {
      return Status::InvalidArgument(
          StrCat("SUM over non-numeric attribute '", spec.attr, "'"));
    }
    out_attrs.push_back(Attribute{spec.out_name, type});
  }
  DWC_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(out_attrs)));
  view.def_ = std::move(def);
  view.materialized_ = std::make_shared<Relation>(std::move(out_schema));
  return view;
}

void AggregateView::CopyFrom(const AggregateView& other) {
  def_ = other.def_;
  source_schema_ = other.source_schema_;
  materialized_ = std::make_shared<Relation>(*other.materialized_);
  groups_ = other.groups_;
}

Result<std::vector<size_t>> AggregateView::GroupIndices(
    const Schema& schema) const {
  return schema.IndicesOf(def_.group_by);
}

Result<std::vector<size_t>> AggregateView::AggIndices(
    const Schema& schema) const {
  std::vector<size_t> indices;
  indices.reserve(def_.aggregates.size());
  for (const AggSpec& spec : def_.aggregates) {
    if (spec.func == AggFunc::kCount) {
      indices.push_back(static_cast<size_t>(-1));
      continue;
    }
    std::optional<size_t> idx = schema.IndexOf(spec.attr);
    if (!idx.has_value()) {
      return Status::Internal(
          StrCat("aggregate attribute '", spec.attr, "' missing"));
    }
    indices.push_back(*idx);
  }
  return indices;
}

namespace {

Value AddValues(const Value& a, const Value& b) {
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    return Value::Int(a.AsInt() + b.AsInt());
  }
  return Value::Double(a.AsNumber() + b.AsNumber());
}

Value SubValues(const Value& a, const Value& b) {
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    return Value::Int(a.AsInt() - b.AsInt());
  }
  return Value::Double(a.AsNumber() - b.AsNumber());
}

Value ZeroOf(ValueType type) {
  return type == ValueType::kDouble ? Value::Double(0) : Value::Int(0);
}

}  // namespace

Status AggregateView::Initialize(const Environment& env) {
  groups_.clear();
  // Fresh slot, not Clear(): a pinned epoch snapshot may still reference
  // the previous table.
  materialized_ = std::make_shared<Relation>(materialized_->schema());
  Evaluator evaluator(&env);
  Result<std::shared_ptr<const Relation>> source = evaluator.Eval(*def_.source);
  if (!source.ok()) {
    return source.status();
  }
  const Schema& schema = (*source)->schema();
  for (const Tuple& tuple : (*source)->tuples()) {
    DWC_RETURN_IF_ERROR(FoldInsert(tuple, schema));
  }
  for (const auto& [group, state] : groups_) {
    (void)state;
    EmitRow(group);
  }
  return Status::Ok();
}

Status AggregateView::FoldInsert(const Tuple& tuple, const Schema& schema) {
  DWC_ASSIGN_OR_RETURN(std::vector<size_t> group_idx, GroupIndices(schema));
  DWC_ASSIGN_OR_RETURN(std::vector<size_t> agg_idx, AggIndices(schema));
  Tuple group = tuple.Project(group_idx);
  GroupState& state = groups_[group];
  if (state.count == 0 && state.accums.empty()) {
    // Fresh group: neutral accumulators.
    for (size_t i = 0; i < def_.aggregates.size(); ++i) {
      const AggSpec& spec = def_.aggregates[i];
      if (spec.func == AggFunc::kSum) {
        std::optional<size_t> idx = source_schema_.IndexOf(spec.attr);
        state.accums.push_back(
            ZeroOf(source_schema_.attribute(*idx).type));
      } else {
        state.accums.push_back(Value::Null());
      }
    }
  }
  ++state.count;
  for (size_t i = 0; i < def_.aggregates.size(); ++i) {
    const AggSpec& spec = def_.aggregates[i];
    switch (spec.func) {
      case AggFunc::kCount:
        break;  // Derived from state.count.
      case AggFunc::kSum: {
        const Value& v = tuple.at(agg_idx[i]);
        if (v.is_null()) {
          return Status::InvalidArgument("SUM over NULL value");
        }
        state.accums[i] = AddValues(state.accums[i], v);
        break;
      }
      case AggFunc::kMin: {
        const Value& v = tuple.at(agg_idx[i]);
        if (state.accums[i].is_null() || v < state.accums[i]) {
          state.accums[i] = v;
        }
        break;
      }
      case AggFunc::kMax: {
        const Value& v = tuple.at(agg_idx[i]);
        if (state.accums[i].is_null() || state.accums[i] < v) {
          state.accums[i] = v;
        }
        break;
      }
    }
  }
  return Status::Ok();
}

Status AggregateView::FoldDelete(const Tuple& tuple, const Schema& schema) {
  DWC_ASSIGN_OR_RETURN(std::vector<size_t> group_idx, GroupIndices(schema));
  DWC_ASSIGN_OR_RETURN(std::vector<size_t> agg_idx, AggIndices(schema));
  Tuple group = tuple.Project(group_idx);
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return Status::Internal(
        StrCat("delete for unknown group ", group.ToString(),
               " in aggregate '", def_.name, "'"));
  }
  GroupState& state = it->second;
  --state.count;
  for (size_t i = 0; i < def_.aggregates.size(); ++i) {
    const AggSpec& spec = def_.aggregates[i];
    switch (spec.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
        state.accums[i] = SubValues(state.accums[i], tuple.at(agg_idx[i]));
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        // Deleting the current extremum invalidates the accumulator.
        if (tuple.at(agg_idx[i]) == state.accums[i]) {
          state.dirty = true;
        }
        break;
    }
  }
  return Status::Ok();
}

Status AggregateView::RecomputeGroup(const Tuple& group,
                                     const Environment& env) {
  // sigma_{group_by = group}(source), evaluated on the new state; the
  // evaluator's filter pushdown makes this an index probe on fact views.
  PredicateRef predicate = Predicate::True();
  for (size_t i = 0; i < def_.group_by.size(); ++i) {
    predicate = Predicate::And(
        predicate, Predicate::AttrEq(def_.group_by[i], group.at(i)));
  }
  ExprRef expr = Expr::Select(std::move(predicate), def_.source);
  Evaluator evaluator(&env);
  Result<std::shared_ptr<const Relation>> rows = evaluator.Eval(*expr);
  if (!rows.ok()) {
    return rows.status();
  }
  GroupState& state = groups_[group];
  state.count = 0;
  state.accums.clear();
  state.dirty = false;
  for (const Tuple& tuple : (*rows)->tuples()) {
    DWC_RETURN_IF_ERROR(FoldInsert(tuple, (*rows)->schema()));
  }
  return Status::Ok();
}

void AggregateView::EmitRow(const Tuple& group) {
  // Drop any stale row for this group, then write the fresh one.
  const Relation::Index& index = materialized_->GetIndex(def_.group_by);
  auto bucket = index.find(group);
  if (bucket != index.end() && !bucket->second.empty()) {
    // Copy first: Erase invalidates the bucket.
    Tuple stale = *bucket->second.front();
    materialized_->Erase(stale);
  }
  auto it = groups_.find(group);
  if (it == groups_.end() || it->second.count <= 0) {
    groups_.erase(group);
    return;
  }
  std::vector<Value> row = group.values();
  for (size_t i = 0; i < def_.aggregates.size(); ++i) {
    if (def_.aggregates[i].func == AggFunc::kCount) {
      row.push_back(Value::Int(it->second.count));
    } else {
      row.push_back(it->second.accums[i]);
    }
  }
  materialized_->Insert(Tuple(std::move(row)));
}

Status AggregateView::ApplyDelta(const Relation& plus, const Relation& minus,
                                 const Environment& new_env) {
  std::set<Tuple> touched;
  {
    DWC_ASSIGN_OR_RETURN(std::vector<size_t> group_idx,
                         GroupIndices(minus.schema()));
    for (const Tuple& tuple : minus.tuples()) {
      DWC_RETURN_IF_ERROR(FoldDelete(tuple, minus.schema()));
      touched.insert(tuple.Project(group_idx));
    }
  }
  {
    DWC_ASSIGN_OR_RETURN(std::vector<size_t> group_idx,
                         GroupIndices(plus.schema()));
    for (const Tuple& tuple : plus.tuples()) {
      DWC_RETURN_IF_ERROR(FoldInsert(tuple, plus.schema()));
      touched.insert(tuple.Project(group_idx));
    }
  }
  for (const Tuple& group : touched) {
    auto it = groups_.find(group);
    if (it != groups_.end() && it->second.dirty && it->second.count > 0) {
      DWC_RETURN_IF_ERROR(RecomputeGroup(group, new_env));
    }
    EmitRow(group);
  }
  return Status::Ok();
}

}  // namespace dwc
