#ifndef DWC_STORAGE_CHECKPOINT_H_
#define DWC_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "storage/vfs.h"
#include "util/result.h"
#include "warehouse/persistence.h"

namespace dwc {

// Atomic snapshot checkpoints of WarehouseToScript output, plus the MANIFEST
// that names the live snapshot and the first live WAL segment. Every state
// transition of the directory is write-temp → fsync → rename → fsync-dir,
// so at any crash point exactly one of {old manifest, new manifest} is what
// a reader sees — never a half-written one (and a half-written one would be
// caught by the manifest's own trailing CRC line anyway).
//
// MANIFEST format (text, line-oriented, self-checksummed):
//   dwc-manifest v1
//   checkpoint <file> crc <8-hex> id <n>
//   stamp epoch <n> seq <n>
//   wal-start <id>
//   crc <8-hex of everything above>

inline constexpr char kManifestName[] = "MANIFEST";

struct Manifest {
  uint64_t checkpoint_id = 0;
  std::string checkpoint_file;
  // CRC-32 of the checkpoint script file, re-verified at recovery.
  uint32_t checkpoint_crc = 0;
  // The delivery-envelope watermark folded into the snapshot: journal
  // replay must continue from exactly here (persistence.h JournalStamp).
  JournalStamp stamp;
  // First live WAL segment; recovery scans ids upward from it.
  uint64_t wal_start = 1;

  std::string Serialize() const;
  static Result<Manifest> Parse(std::string_view text);
};

// Reads and validates <dir>/MANIFEST.
Result<Manifest> ReadManifest(Vfs* vfs, const std::string& dir);

// Atomically replaces <dir>/MANIFEST (temp + fsync + rename + fsync-dir).
Status WriteManifest(Vfs* vfs, const std::string& dir,
                     const Manifest& manifest);

// Durably writes `script` as checkpoint file `checkpoint-<id>.dwc` (temp +
// fsync + rename + fsync-dir) and then commits a manifest pointing at it
// with the given stamp and WAL start. Returns the committed manifest.
// Old checkpoints/segments are NOT deleted here — the caller garbage
// collects after the manifest commit (storage/durable.h), so a crash
// between the two steps only leaves ignorable garbage, never a manifest
// pointing at nothing.
Result<Manifest> WriteCheckpoint(Vfs* vfs, const std::string& dir,
                                 const std::string& script,
                                 uint64_t checkpoint_id,
                                 const JournalStamp& stamp,
                                 uint64_t wal_start);

std::string CheckpointFileName(uint64_t id);

}  // namespace dwc

#endif  // DWC_STORAGE_CHECKPOINT_H_
