#ifndef DWC_STORAGE_WAL_H_
#define DWC_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/vfs.h"
#include "util/result.h"
#include "warehouse/update.h"

namespace dwc {

// Segmented write-ahead log of committed deltas. Each record is a framed
// DSL DELTA statement (parser/script_io.h DeltaToScript — the same journal
// format DeltaJournal holds in memory, so replay goes through the existing
// interpreter with its digest re-verification for free).
//
// Record frame (little-endian):
//   u32 crc      CRC-32 over the remaining 20 header bytes + payload
//   u32 length   payload byte count (0 = a skip record: the sequence was
//                consumed by a resync or dedup and carries no statement)
//   u64 epoch    delivery-envelope epoch
//   u64 sequence delivery-envelope sequence (0 = unsequenced payload)
//   u8[length]   payload (DELTA statement text)
//
// The CRC covers the length field, so a torn or rotted header cannot send
// the scanner off into garbage: any record that does not checksum is either
// a torn tail (it touches end-of-file — truncate and recover) or mid-log
// corruption (bytes after it still parse or it is whole but damaged — fail
// loudly with segment + offset; see ScanWalSegment).
//
// Segments are "wal-<16-digit-id>.log", ids strictly increasing; each opens
// with an 8-byte magic preamble. The manifest (checkpoint.h) records the
// first live id; recovery scans ids upward while files exist.

inline constexpr char kWalMagic[] = "DWCWAL1\n";  // 8 bytes incl. newline.
inline constexpr size_t kWalMagicSize = 8;
inline constexpr size_t kWalHeaderSize = 24;
// Sanity bound on a single record; a "length" beyond this is corruption,
// not a huge record.
inline constexpr uint32_t kWalMaxRecordBytes = 64u << 20;

std::string WalSegmentName(uint64_t id);

// One framed record.
struct WalRecord {
  uint64_t epoch = 0;
  uint64_t sequence = 0;
  std::string payload;
  uint64_t offset = 0;  // Frame start offset within its segment.

  bool is_skip() const { return payload.empty(); }
};

// Renders the frame for (epoch, sequence, payload).
std::string EncodeWalRecord(uint64_t epoch, uint64_t sequence,
                            std::string_view payload);

// The outcome of scanning one segment. A scan never both truncates and
// errors: clean CRC failures *at end-of-file* are a torn tail (reported
// here, to be truncated away); anything else is returned as an error status
// by ScanWalSegment.
struct WalSegmentScan {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;      // Length of the clean prefix.
  uint64_t truncated_bytes = 0;  // Torn-tail bytes past the clean prefix.
  bool torn_tail = false;
};

// Scans a segment file: verifies the magic preamble and every record frame.
// Incomplete data at end-of-file (header or payload cut short, or a
// zero-filled/garbage tail that cannot possibly continue) is a torn tail:
// reported in the scan for truncation. A *complete* record whose CRC
// mismatches mid-file — valid frames follow it — is data loss in committed
// history; that fails loudly with the segment and byte offset.
Result<WalSegmentScan> ScanWalSegment(Vfs* vfs, const std::string& path);

// Append side. Writes are durable (fsync'd) per Append when
// `sync_each_record`, the default — the commit point of the storage layer.
struct WalWriterOptions {
  size_t segment_max_bytes = 256 << 10;
  bool sync_each_record = true;
};

class WalWriter {
 public:
  // Opens segment `segment_id` for appending, creating it (with magic
  // preamble) when absent — `existing_bytes` 0. To resume a recovered
  // segment pass its clean-prefix length (after torn-tail truncation).
  static Result<std::unique_ptr<WalWriter>> Open(Vfs* vfs, std::string dir,
                                                 uint64_t segment_id,
                                                 uint64_t existing_bytes,
                                                 WalWriterOptions options);

  // Appends one framed record; returns the framed byte count. Rolls into a
  // fresh segment first when the current one is over budget.
  Result<size_t> Append(uint64_t epoch, uint64_t sequence,
                        std::string_view payload);

  // Closes the current segment and opens segment `segment_id` (used by the
  // checkpoint protocol, which starts a fresh segment per checkpoint so old
  // ones can be deleted wholesale).
  Status RotateTo(uint64_t segment_id);

  uint64_t segment_id() const { return segment_id_; }
  uint64_t segment_bytes() const { return segment_bytes_; }
  uint64_t segments_rotated() const { return segments_rotated_; }

 private:
  WalWriter(Vfs* vfs, std::string dir, WalWriterOptions options)
      : vfs_(vfs), dir_(std::move(dir)), options_(options) {}

  Status OpenSegment(uint64_t segment_id, uint64_t existing_bytes);

  Vfs* vfs_;
  std::string dir_;
  WalWriterOptions options_;
  std::unique_ptr<VfsFile> file_;
  uint64_t segment_id_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t segments_rotated_ = 0;
};

}  // namespace dwc

#endif  // DWC_STORAGE_WAL_H_
