#ifndef DWC_STORAGE_FAULT_VFS_H_
#define DWC_STORAGE_FAULT_VFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/vfs.h"
#include "util/rng.h"

namespace dwc {

// How a FaultVfs crash mangles the state it loses. Everything is driven by
// (seed ^ crash-op-index), so a (profile, workload, crash point) triple
// reproduces the exact same post-crash disk — the storage analogue of
// channel.h's FaultProfile.
struct StorageFaultProfile {
  uint64_t seed = 0;
  // Given a file has un-fsynced appended bytes at crash time: probability
  // that a *prefix* of them survives (a torn write) instead of all of them
  // vanishing. The surviving prefix length is uniform in [0, pending].
  double torn_tail_rate = 0.5;
  // Probability that the surviving torn prefix additionally has one bit
  // flipped (a torn sector holding garbage).
  double tail_garbage_rate = 0.25;
  // Probability that an un-fsync'd directory operation (file creation,
  // rename, removal whose parent directory was never SyncDir'd) survives
  // the crash anyway. Real filesystems land anywhere on this spectrum;
  // 0.5 exercises both outcomes across seeds.
  double meta_survival_rate = 0.5;
};

// An in-memory filesystem with a disk's crash semantics, for certifying the
// WAL / checkpoint / recovery protocols:
//
//   - Appended bytes are "pending" until VfsFile::Sync(); a crash loses
//     pending bytes, possibly leaving a torn (and possibly garbage) prefix.
//   - Directory operations (Create/Rename/Remove) are pending until
//     SyncDir; a crash keeps or drops each un-synced one independently.
//   - A crash can be scheduled at any mutating-I/O operation index
//     (ScheduleCrashAtOp): that operation and every later one fail with
//     kInternal, modeling the process dying mid-syscall. CrashAndLose()
//     then materializes the surviving disk, and the test recovers from it.
//
// Reads/lists observe the live (pre-crash) view, like a running process's
// page cache. Single-directory workloads only (that is all the storage
// layer uses); nested directories are supported as plain paths.
class FaultVfs : public Vfs {
 public:
  explicit FaultVfs(StorageFaultProfile profile = StorageFaultProfile())
      : profile_(profile) {}

  // --- Vfs ---
  Result<std::unique_ptr<VfsFile>> Create(const std::string& path) override;
  Result<std::unique_ptr<VfsFile>> OpenAppend(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<bool> Exists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;

  // --- crash scheduling ---
  // Index of the next mutating I/O op (Append/Sync/Create/Rename/Remove/
  // Truncate/SyncDir). A clean run's final count is the crash-matrix
  // sweep's upper bound.
  uint64_t op_count() const { return op_count_; }
  // The op with index `op` (and every later one) fails with kInternal.
  void ScheduleCrashAtOp(uint64_t op) { crash_at_ = op; }
  void ClearCrashSchedule() { crash_at_ = kNoCrash; }
  bool crashed() const { return crashed_; }

  // Materializes the post-crash disk: un-synced bytes are torn off (per
  // profile), un-synced directory ops survive or vanish (per profile), and
  // the live view is rebuilt from the survivors. Also callable without a
  // scheduled crash (models power loss at an idle moment). The vfs is
  // usable again afterwards; the op counter keeps counting.
  void CrashAndLose();

  // --- targeted corruption (tests / corpus runs) ---
  // Flips bit `bit` (0-7) of the byte at `offset`, bypassing all checks —
  // bit rot on the platter. Affects synced and pending data alike.
  Status FlipBit(const std::string& path, uint64_t offset, int bit);

  // Copies the current live tree under `src_dir` into `dst_dir` on
  // `target` (used to export a failing crash-matrix disk for post-mortem
  // inspection with dwc_recover).
  Status DumpTo(Vfs* target, const std::string& src_dir,
                const std::string& dst_dir) const;

  // Number of times CrashAndLose tore a tail / dropped a pending meta op,
  // for tests asserting the fault machinery actually fired.
  uint64_t torn_tails() const { return torn_tails_; }
  uint64_t dropped_meta_ops() const { return dropped_meta_ops_; }

 private:
  friend class FaultFile;

  struct Node {
    std::string data;
    // Bytes [0, synced) survive a crash intact; bytes past it are pending.
    size_t synced = 0;
  };

  struct MetaOp {
    enum class Kind { kLink, kUnlink, kRename };
    Kind kind;
    std::string path;           // kLink/kUnlink target, kRename source.
    std::string to;             // kRename destination.
    std::shared_ptr<Node> node; // kLink only.
  };

  // Charges one mutating op against the crash schedule; kInternal once
  // the crash point is reached.
  Status ChargeOp(const char* what, const std::string& path);
  static std::string DirOf(const std::string& path);

  StorageFaultProfile profile_;
  std::map<std::string, std::shared_ptr<Node>> live_;
  // Directory entries as of the last applied metadata sync; node contents
  // are shared with live_ (fsync durability is tracked per node).
  std::map<std::string, std::shared_ptr<Node>> durable_;
  std::vector<MetaOp> pending_meta_;
  std::set<std::string> dirs_;

  static constexpr uint64_t kNoCrash = ~0ULL;
  uint64_t op_count_ = 0;
  uint64_t crash_at_ = kNoCrash;
  bool crashed_ = false;
  // Bumped by CrashAndLose; open handles from before the crash are stale.
  uint64_t generation_ = 0;
  uint64_t torn_tails_ = 0;
  uint64_t dropped_meta_ops_ = 0;
};

}  // namespace dwc

#endif  // DWC_STORAGE_FAULT_VFS_H_
