#include "storage/fault_vfs.h"

#include <algorithm>

#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

std::string FaultVfs::DirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

Status FaultVfs::ChargeOp(const char* what, const std::string& path) {
  if (crashed_) {
    return Status::Internal(
        StrCat("injected crash: process is dead (", what, " '", path, "')"));
  }
  if (op_count_ == crash_at_) {
    crashed_ = true;
    return Status::Internal(StrCat("injected crash at I/O op ", op_count_,
                                   " (", what, " '", path, "')"));
  }
  ++op_count_;
  return Status::Ok();
}

// File handle over a shared node. Handles die across a crash: the vfs bumps
// its generation when materializing a post-crash disk, and a stale handle's
// operations fail (the process that held it is gone).
class FaultFile : public VfsFile {
 public:
  FaultFile(FaultVfs* vfs, std::shared_ptr<FaultVfs::Node> node,
            std::string path, uint64_t generation)
      : vfs_(vfs),
        node_(std::move(node)),
        path_(std::move(path)),
        generation_(generation) {}

  Status Append(std::string_view data) override {
    DWC_RETURN_IF_ERROR(Check("append"));
    Status charge = vfs_->ChargeOp("append", path_);
    if (!charge.ok()) {
      if (vfs_->crashed_) {
        // The write the process died inside may have partially reached the
        // device: apply a seeded prefix as pending bytes, which the crash
        // materialization will then tear like any other un-synced data.
        Rng rng(Mix64(vfs_->profile_.seed ^ (vfs_->op_count_ * 0x9E3779B9ULL)));
        size_t partial = static_cast<size_t>(rng.Below(data.size() + 1));
        node_->data.append(data.substr(0, partial));
      }
      return charge;
    }
    node_->data.append(data);
    return Status::Ok();
  }

  Status Sync() override {
    DWC_RETURN_IF_ERROR(Check("sync"));
    DWC_RETURN_IF_ERROR(vfs_->ChargeOp("sync", path_));
    node_->synced = node_->data.size();
    return Status::Ok();
  }

  Status Close() override {
    closed_ = true;
    return Status::Ok();
  }

 private:
  Status Check(const char* what) const {
    if (closed_) {
      return Status::FailedPrecondition(
          StrCat(what, " on closed file '", path_, "'"));
    }
    if (generation_ != vfs_->generation_) {
      return Status::FailedPrecondition(
          StrCat(what, " on stale handle '", path_,
                 "' (the process holding it crashed)"));
    }
    return Status::Ok();
  }

  FaultVfs* vfs_;
  std::shared_ptr<FaultVfs::Node> node_;
  std::string path_;
  uint64_t generation_;
  bool closed_ = false;
};

Result<std::unique_ptr<VfsFile>> FaultVfs::Create(const std::string& path) {
  DWC_RETURN_IF_ERROR(ChargeOp("create", path));
  std::string parent = DirOf(path);
  if (!parent.empty() && dirs_.find(parent) == dirs_.end()) {
    return Status::NotFound("no such directory: " + parent);
  }
  auto node = std::make_shared<Node>();
  live_[path] = node;
  pending_meta_.push_back({MetaOp::Kind::kLink, path, "", node});
  return std::unique_ptr<VfsFile>(
      new FaultFile(this, node, path, generation_));
}

Result<std::unique_ptr<VfsFile>> FaultVfs::OpenAppend(
    const std::string& path) {
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return std::unique_ptr<VfsFile>(
      new FaultFile(this, it->second, path, generation_));
}

Result<std::string> FaultVfs::ReadFile(const std::string& path) {
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return it->second->data;
}

Status FaultVfs::Truncate(const std::string& path, uint64_t size) {
  DWC_RETURN_IF_ERROR(ChargeOp("truncate", path));
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  Node& node = *it->second;
  if (size > node.data.size()) {
    return Status::InvalidArgument("truncate cannot extend: " + path);
  }
  node.data.resize(size);
  node.synced = std::min(node.synced, node.data.size());
  return Status::Ok();
}

Status FaultVfs::Rename(const std::string& from, const std::string& to) {
  DWC_RETURN_IF_ERROR(ChargeOp("rename", from));
  auto it = live_.find(from);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + from);
  }
  live_[to] = it->second;
  live_.erase(it);
  pending_meta_.push_back({MetaOp::Kind::kRename, from, to, nullptr});
  return Status::Ok();
}

Status FaultVfs::Remove(const std::string& path) {
  DWC_RETURN_IF_ERROR(ChargeOp("remove", path));
  if (live_.erase(path) == 0) {
    return Status::NotFound("no such file: " + path);
  }
  pending_meta_.push_back({MetaOp::Kind::kUnlink, path, "", nullptr});
  return Status::Ok();
}

Status FaultVfs::CreateDir(const std::string& dir) {
  DWC_RETURN_IF_ERROR(ChargeOp("mkdir", dir));
  dirs_.insert(dir);
  return Status::Ok();
}

Status FaultVfs::SyncDir(const std::string& dir) {
  DWC_RETURN_IF_ERROR(ChargeOp("sync-dir", dir));
  std::vector<MetaOp> remaining;
  for (MetaOp& op : pending_meta_) {
    const std::string& anchor =
        op.kind == MetaOp::Kind::kRename ? op.to : op.path;
    if (DirOf(anchor) != dir) {
      remaining.push_back(std::move(op));
      continue;
    }
    switch (op.kind) {
      case MetaOp::Kind::kLink:
        durable_[op.path] = op.node;
        break;
      case MetaOp::Kind::kUnlink:
        durable_.erase(op.path);
        break;
      case MetaOp::Kind::kRename: {
        auto it = durable_.find(op.path);
        if (it != durable_.end()) {
          durable_[op.to] = it->second;
          durable_.erase(op.path);
        }
        break;
      }
    }
  }
  pending_meta_ = std::move(remaining);
  return Status::Ok();
}

Result<std::vector<std::string>> FaultVfs::ListDir(const std::string& dir) {
  if (dirs_.find(dir) == dirs_.end()) {
    return Status::NotFound("no such directory: " + dir);
  }
  std::vector<std::string> names;
  for (const auto& [path, node] : live_) {
    (void)node;
    if (DirOf(path) == dir) {
      names.push_back(path.substr(dir.size() + 1));
    }
  }
  return names;  // live_ is sorted by path, so names are sorted.
}

Result<bool> FaultVfs::Exists(const std::string& path) {
  return live_.find(path) != live_.end() ||
         dirs_.find(path) != dirs_.end();
}

Result<uint64_t> FaultVfs::FileSize(const std::string& path) {
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return static_cast<uint64_t>(it->second->data.size());
}

void FaultVfs::CrashAndLose() {
  Rng rng(Mix64(profile_.seed ^ (op_count_ * 0xC2B2AE3D27D4EB4FULL)));
  // 1. Un-synced directory operations survive or vanish, independently.
  for (const MetaOp& op : pending_meta_) {
    if (!rng.Chance(profile_.meta_survival_rate)) {
      ++dropped_meta_ops_;
      continue;
    }
    switch (op.kind) {
      case MetaOp::Kind::kLink:
        durable_[op.path] = op.node;
        break;
      case MetaOp::Kind::kUnlink:
        durable_.erase(op.path);
        break;
      case MetaOp::Kind::kRename: {
        auto it = durable_.find(op.path);
        if (it != durable_.end()) {
          durable_[op.to] = it->second;
          durable_.erase(op.path);
        }
        break;
      }
    }
  }
  pending_meta_.clear();
  // 2. Per surviving file: synced bytes survive; pending bytes are lost,
  // except that a torn write may leave a prefix — possibly with garbage.
  std::map<std::string, std::shared_ptr<Node>> survivors;
  for (const auto& [path, node] : durable_) {
    std::string content = node->data.substr(0, node->synced);
    size_t pending = node->data.size() - node->synced;
    if (pending > 0 && rng.Chance(profile_.torn_tail_rate)) {
      size_t keep = static_cast<size_t>(rng.Below(pending + 1));
      if (keep > 0) {
        ++torn_tails_;
        std::string tail = node->data.substr(node->synced, keep);
        if (rng.Chance(profile_.tail_garbage_rate)) {
          size_t at = static_cast<size_t>(rng.Below(tail.size()));
          tail[at] = static_cast<char>(
              static_cast<unsigned char>(tail[at]) ^
              (1u << rng.Below(8)));
        }
        content += tail;
      }
    }
    auto fresh = std::make_shared<Node>();
    fresh->data = std::move(content);
    fresh->synced = fresh->data.size();
    survivors[path] = std::move(fresh);
  }
  durable_ = survivors;
  live_ = std::move(survivors);
  crashed_ = false;
  crash_at_ = kNoCrash;
  ++generation_;
}

Status FaultVfs::FlipBit(const std::string& path, uint64_t offset, int bit) {
  auto it = live_.find(path);
  if (it == live_.end()) {
    return Status::NotFound("no such file: " + path);
  }
  Node& node = *it->second;
  if (offset >= node.data.size()) {
    return Status::OutOfRange(
        StrCat("offset ", offset, " past end of '", path, "' (",
               node.data.size(), " bytes)"));
  }
  node.data[offset] = static_cast<char>(
      static_cast<unsigned char>(node.data[offset]) ^ (1u << (bit & 7)));
  return Status::Ok();
}

Status FaultVfs::DumpTo(Vfs* target, const std::string& src_dir,
                        const std::string& dst_dir) const {
  DWC_RETURN_IF_ERROR(target->CreateDir(dst_dir));
  const std::string prefix = src_dir + "/";
  for (const auto& [path, node] : live_) {
    if (path.rfind(prefix, 0) != 0) {
      continue;
    }
    std::string dst = JoinPath(dst_dir, path.substr(prefix.size()));
    DWC_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, target->Create(dst));
    DWC_RETURN_IF_ERROR(file->Append(node->data));
    DWC_RETURN_IF_ERROR(file->Sync());
    DWC_RETURN_IF_ERROR(file->Close());
  }
  return target->SyncDir(dst_dir);
}

}  // namespace dwc
