#ifndef DWC_STORAGE_RECOVERY_H_
#define DWC_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>

#include "storage/checkpoint.h"
#include "storage/vfs.h"
#include "util/result.h"
#include "warehouse/persistence.h"

namespace dwc {

// What recovery did, in numbers. Surfaced by the REPL (`storage stats`),
// dwc_recover, and the crash-matrix tests.
struct RecoveryReport {
  uint64_t checkpoint_id = 0;
  uint64_t segments_scanned = 0;
  // Sequenced + unsequenced DELTA statements replayed through the
  // interpreter (each re-verifying its piggybacked digest).
  uint64_t records_replayed = 0;
  // Skip records (resync/dedup watermarks) plus records already folded
  // into the checkpoint (at or below its stamp).
  uint64_t records_skipped = 0;
  // Torn-tail bytes cut off the last segment.
  uint64_t truncated_bytes = 0;
  bool torn_tail = false;
  // Where the log ends: the stamp a resumed writer must continue from.
  JournalStamp resume;
  // The segment a resumed WalWriter appends to, and its clean length.
  uint64_t next_segment_id = 0;
  uint64_t next_segment_bytes = 0;

  std::string ToString() const;
};

struct RecoveredStorage {
  Manifest manifest;
  RestoredWarehouse restored;
  RecoveryReport report;
  // The replayed-but-not-yet-checkpointed records, exactly as the WAL held
  // them; a resumed DurableWarehouse adopts this so its checkpoint policy
  // sees the carried-over backlog.
  DeltaJournal journal;
};

// Brings a storage directory back to the last committed state: manifest →
// checkpoint (CRC re-verified) → WAL segments (each frame CRC-verified,
// torn tail truncated, mid-log corruption refused) → interpreter replay
// with digest re-verification and stamp-continuity validation. Replay is
// pure log application — it never queries the source (the crash-matrix
// test asserts this).
class RecoveryManager {
 public:
  RecoveryManager(Vfs* vfs, std::string dir)
      : vfs_(vfs), dir_(std::move(dir)) {}

  // Full recovery. `repair` additionally truncates torn tails on disk and
  // removes files the manifest no longer references (pre-crash temp files,
  // superseded checkpoints/segments); without it the directory is left
  // untouched — a read-only recovery.
  Result<RecoveredStorage> Recover(
      bool repair = true,
      MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
      const ComplementOptions& options = ComplementOptions());

  // Read-only structural report for `dwc_recover --inspect`: manifest,
  // checkpoint checksum verdict, per-segment record counts and damage.
  // Unlike Recover this does not rebuild the warehouse and does not fail
  // on damage — damage is what it is for.
  Result<std::string> Inspect();

 private:
  Vfs* vfs_;
  std::string dir_;
};

}  // namespace dwc

#endif  // DWC_STORAGE_RECOVERY_H_
