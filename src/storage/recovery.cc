#include "storage/recovery.h"

#include <utility>
#include <vector>

#include "storage/wal.h"
#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// True when (epoch, sequence) sorts at or below `stamp` — already folded
// into the checkpoint, so replay must not apply it again.
bool AtOrBelow(uint64_t epoch, uint64_t sequence, const JournalStamp& stamp) {
  if (epoch != stamp.epoch) {
    return epoch < stamp.epoch;
  }
  return sequence <= stamp.sequence;
}

struct SegmentState {
  uint64_t id = 0;
  std::string path;
  WalSegmentScan scan;
};

// Scans consecutive segments starting at `wal_start` while they exist. A
// torn tail is legitimate only on the final segment: a tear mid-chain means
// a successor segment was created after data was already lost, which is a
// gap in committed history.
Result<std::vector<SegmentState>> ScanSegments(Vfs* vfs,
                                               const std::string& dir,
                                               uint64_t wal_start) {
  std::vector<SegmentState> segments;
  for (uint64_t id = wal_start;; ++id) {
    const std::string path = JoinPath(dir, WalSegmentName(id));
    DWC_ASSIGN_OR_RETURN(bool exists, vfs->Exists(path));
    if (!exists) {
      break;
    }
    SegmentState state;
    state.id = id;
    state.path = path;
    DWC_ASSIGN_OR_RETURN(state.scan, ScanWalSegment(vfs, path));
    segments.push_back(std::move(state));
  }
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i].scan.torn_tail) {
      return Status::FailedPrecondition(
          StrCat("WAL segment '", segments[i].path,
                 "' has a torn tail but is followed by segment ",
                 segments[i + 1].id,
                 ": committed history is missing; refusing to recover"));
    }
  }
  return segments;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  std::string out = StrCat(
      "checkpoint id ", checkpoint_id, ", ", segments_scanned,
      " WAL segment(s), ", records_replayed, " record(s) replayed, ",
      records_skipped, " skipped");
  if (torn_tail) {
    out += StrCat(", torn tail truncated (", truncated_bytes, " byte(s))");
  }
  out += StrCat("; resume at epoch ", resume.epoch, " seq ", resume.sequence,
                ", segment ", next_segment_id);
  return out;
}

Result<RecoveredStorage> RecoveryManager::Recover(
    bool repair, MaintenanceStrategy strategy,
    const ComplementOptions& options) {
  RecoveredStorage out;
  DWC_ASSIGN_OR_RETURN(out.manifest, ReadManifest(vfs_, dir_));
  const Manifest& manifest = out.manifest;

  DWC_ASSIGN_OR_RETURN(
      std::string checkpoint_script,
      vfs_->ReadFile(JoinPath(dir_, manifest.checkpoint_file)));
  if (Crc32(checkpoint_script) != manifest.checkpoint_crc) {
    return Status::FailedPrecondition(
        StrCat("checkpoint '", manifest.checkpoint_file,
               "' fails its manifest checksum (want ",
               Crc32ToHex(manifest.checkpoint_crc), ", got ",
               Crc32ToHex(Crc32(checkpoint_script)),
               "): snapshot is damaged"));
  }

  DWC_ASSIGN_OR_RETURN(std::vector<SegmentState> segments,
                       ScanSegments(vfs_, dir_, manifest.wal_start));

  RecoveryReport& report = out.report;
  report.checkpoint_id = manifest.checkpoint_id;
  report.segments_scanned = segments.size();
  report.resume = manifest.stamp;
  report.next_segment_id = manifest.wal_start;
  report.next_segment_bytes = 0;

  DeltaJournal& journal = out.journal;
  for (const SegmentState& segment : segments) {
    for (const WalRecord& record : segment.scan.records) {
      if (record.sequence != 0 &&
          AtOrBelow(record.epoch, record.sequence, manifest.stamp)) {
        ++report.records_skipped;
        continue;
      }
      if (record.is_skip()) {
        journal.NoteConsumed(record.epoch, record.sequence);
        ++report.records_skipped;
        continue;
      }
      journal.AppendScript(record.payload, record.epoch, record.sequence);
      ++report.records_replayed;
    }
    if (segment.scan.torn_tail) {
      report.torn_tail = true;
      report.truncated_bytes += segment.scan.truncated_bytes;
    }
  }
  if (journal.has_sequenced()) {
    report.resume = journal.last();
  }
  if (!segments.empty()) {
    report.next_segment_id = segments.back().id;
    report.next_segment_bytes = segments.back().scan.valid_bytes;
  }

  DWC_ASSIGN_OR_RETURN(
      out.restored,
      RecoverWarehouse(checkpoint_script, journal, manifest.stamp, strategy,
                       options));

  if (repair) {
    // Cut the torn tail off disk so a resumed writer appends to a clean
    // frame boundary.
    if (report.torn_tail) {
      const SegmentState& last = segments.back();
      DWC_RETURN_IF_ERROR(vfs_->Truncate(last.path, last.scan.valid_bytes));
    }
    // Sweep everything the manifest does not reference: temp files from a
    // mid-write crash, checkpoints and segments superseded by the manifest
    // commit. All garbage by construction — the manifest is the root of
    // reachability.
    DWC_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         vfs_->ListDir(dir_));
    bool removed = false;
    for (const std::string& name : names) {
      bool keep = name == kManifestName || name == manifest.checkpoint_file;
      if (name.rfind("wal-", 0) == 0) {
        uint64_t id = 0;
        for (char ch : name.substr(4)) {
          if (ch < '0' || ch > '9') break;
          id = id * 10 + static_cast<uint64_t>(ch - '0');
        }
        keep = id >= manifest.wal_start;
      }
      if (!keep) {
        DWC_RETURN_IF_ERROR(vfs_->Remove(JoinPath(dir_, name)));
        removed = true;
      }
    }
    if (removed) {
      DWC_RETURN_IF_ERROR(vfs_->SyncDir(dir_));
    }
  }
  return out;
}

Result<std::string> RecoveryManager::Inspect() {
  std::string out = StrCat("storage directory: ", dir_, "\n");
  Result<Manifest> manifest = ReadManifest(vfs_, dir_);
  if (!manifest.ok()) {
    return StrCat(out, "MANIFEST: UNREADABLE — ",
                  manifest.status().message(), "\n");
  }
  out += StrCat("MANIFEST: ok — checkpoint id ", manifest->checkpoint_id,
                ", stamp epoch ", manifest->stamp.epoch, " seq ",
                manifest->stamp.sequence, ", wal-start ",
                manifest->wal_start, "\n");

  Result<std::string> script =
      vfs_->ReadFile(JoinPath(dir_, manifest->checkpoint_file));
  if (!script.ok()) {
    out += StrCat("checkpoint ", manifest->checkpoint_file, ": MISSING — ",
                  script.status().message(), "\n");
  } else if (Crc32(*script) != manifest->checkpoint_crc) {
    out += StrCat("checkpoint ", manifest->checkpoint_file,
                  ": CORRUPT — crc ", Crc32ToHex(Crc32(*script)),
                  " does not match manifest crc ",
                  Crc32ToHex(manifest->checkpoint_crc), "\n");
  } else {
    out += StrCat("checkpoint ", manifest->checkpoint_file, ": ok (",
                  script->size(), " bytes, crc ",
                  Crc32ToHex(manifest->checkpoint_crc), ")\n");
  }

  for (uint64_t id = manifest->wal_start;; ++id) {
    const std::string path = JoinPath(dir_, WalSegmentName(id));
    DWC_ASSIGN_OR_RETURN(bool exists, vfs_->Exists(path));
    if (!exists) {
      if (id == manifest->wal_start) {
        out += "WAL: no segments (empty log)\n";
      }
      break;
    }
    Result<WalSegmentScan> scan = ScanWalSegment(vfs_, path);
    if (!scan.ok()) {
      out += StrCat("segment ", WalSegmentName(id), ": CORRUPT — ",
                    scan.status().message(), "\n");
      break;
    }
    uint64_t skips = 0;
    for (const WalRecord& record : scan->records) {
      if (record.is_skip()) ++skips;
    }
    out += StrCat("segment ", WalSegmentName(id), ": ",
                  scan->records.size(), " record(s) (", skips, " skip), ",
                  scan->valid_bytes, " clean byte(s)");
    if (scan->torn_tail) {
      out += StrCat(", TORN TAIL (", scan->truncated_bytes,
                    " byte(s) to truncate)");
    }
    if (!scan->records.empty()) {
      const WalRecord& last = scan->records.back();
      out += StrCat(", ends at epoch ", last.epoch, " seq ", last.sequence);
    }
    out += "\n";
  }
  return out;
}

}  // namespace dwc
