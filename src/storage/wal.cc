#include "storage/wal.h"

#include <cstdio>

#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(std::string_view in, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(in[at + static_cast<size_t>(i)]);
  }
  return v;
}

uint64_t GetU64(std::string_view in, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(in[at + static_cast<size_t>(i)]);
  }
  return v;
}

}  // namespace

std::string WalSegmentName(uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%016llu.log",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string EncodeWalRecord(uint64_t epoch, uint64_t sequence,
                            std::string_view payload) {
  std::string body;
  body.reserve(kWalHeaderSize - 4 + payload.size());
  PutU32(&body, static_cast<uint32_t>(payload.size()));
  PutU64(&body, epoch);
  PutU64(&body, sequence);
  body.append(payload);
  std::string frame;
  frame.reserve(kWalHeaderSize + payload.size());
  PutU32(&frame, Crc32(body));
  frame += body;
  return frame;
}

Result<WalSegmentScan> ScanWalSegment(Vfs* vfs, const std::string& path) {
  DWC_ASSIGN_OR_RETURN(std::string content, vfs->ReadFile(path));
  WalSegmentScan scan;
  if (content.size() < kWalMagicSize) {
    // The preamble itself never became durable: an empty (torn-at-birth)
    // segment.
    scan.torn_tail = !content.empty();
    scan.truncated_bytes = content.size();
    scan.valid_bytes = 0;
    return scan;
  }
  if (content.compare(0, kWalMagicSize, kWalMagic, kWalMagicSize) != 0) {
    return Status::FailedPrecondition(
        StrCat("WAL segment '", path, "' has a corrupt magic preamble"));
  }
  size_t offset = kWalMagicSize;
  while (offset < content.size()) {
    const size_t remaining = content.size() - offset;
    if (remaining < kWalHeaderSize) {
      scan.torn_tail = true;
      break;
    }
    const uint32_t crc = GetU32(content, offset);
    const uint32_t length = GetU32(content, offset + 4);
    if (length > kWalMaxRecordBytes ||
        static_cast<uint64_t>(length) + kWalHeaderSize > remaining) {
      // The declared payload runs past end-of-file (or is absurd): the
      // record was cut short before it was ever whole. Torn tail.
      scan.torn_tail = true;
      break;
    }
    const std::string_view body(content.data() + offset + 4,
                                kWalHeaderSize - 4 + length);
    if (Crc32(body) != crc) {
      if (offset + kWalHeaderSize + length == content.size()) {
        // The damaged record is the very last thing in the segment: it was
        // never followed by a durable successor, so treating it as a torn
        // (un-committed) tail is safe.
        scan.torn_tail = true;
        break;
      }
      // Valid frames follow the damaged one: committed history rotted.
      // This must not be silently truncated — fail with the exact spot.
      return Status::FailedPrecondition(
          StrCat("WAL segment '", path, "' is corrupt at offset ", offset,
                 ": record CRC mismatch with ",
                 content.size() - offset - kWalHeaderSize - length,
                 " committed bytes after it; refusing to recover past "
                 "silent data loss"));
    }
    WalRecord record;
    record.epoch = GetU64(content, offset + 8);
    record.sequence = GetU64(content, offset + 16);
    record.payload = content.substr(offset + kWalHeaderSize, length);
    record.offset = offset;
    scan.records.push_back(std::move(record));
    offset += kWalHeaderSize + length;
  }
  scan.valid_bytes = offset;
  scan.truncated_bytes = content.size() - offset;
  return scan;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Vfs* vfs, std::string dir,
                                                   uint64_t segment_id,
                                                   uint64_t existing_bytes,
                                                   WalWriterOptions options) {
  std::unique_ptr<WalWriter> writer(
      new WalWriter(vfs, std::move(dir), options));
  DWC_RETURN_IF_ERROR(writer->OpenSegment(segment_id, existing_bytes));
  return writer;
}

Status WalWriter::OpenSegment(uint64_t segment_id, uint64_t existing_bytes) {
  const std::string path = JoinPath(dir_, WalSegmentName(segment_id));
  if (existing_bytes > 0) {
    DWC_ASSIGN_OR_RETURN(file_, vfs_->OpenAppend(path));
  } else {
    // Fresh segment: preamble, fsync, and make the directory entry durable
    // before any record lands in it — a recovered manifest must never point
    // at a segment the directory forgot.
    DWC_ASSIGN_OR_RETURN(file_, vfs_->Create(path));
    DWC_RETURN_IF_ERROR(file_->Append(std::string_view(kWalMagic,
                                                       kWalMagicSize)));
    DWC_RETURN_IF_ERROR(file_->Sync());
    DWC_RETURN_IF_ERROR(vfs_->SyncDir(dir_));
    existing_bytes = kWalMagicSize;
  }
  segment_id_ = segment_id;
  segment_bytes_ = existing_bytes;
  return Status::Ok();
}

Result<size_t> WalWriter::Append(uint64_t epoch, uint64_t sequence,
                                 std::string_view payload) {
  if (segment_bytes_ >= options_.segment_max_bytes) {
    DWC_RETURN_IF_ERROR(RotateTo(segment_id_ + 1));
  }
  const std::string frame = EncodeWalRecord(epoch, sequence, payload);
  DWC_RETURN_IF_ERROR(file_->Append(frame));
  if (options_.sync_each_record) {
    DWC_RETURN_IF_ERROR(file_->Sync());
  }
  segment_bytes_ += frame.size();
  return frame.size();
}

Status WalWriter::RotateTo(uint64_t segment_id) {
  if (file_ != nullptr) {
    DWC_RETURN_IF_ERROR(file_->Sync());
    DWC_RETURN_IF_ERROR(file_->Close());
  }
  ++segments_rotated_;
  return OpenSegment(segment_id, /*existing_bytes=*/0);
}

}  // namespace dwc
