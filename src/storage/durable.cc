#include "storage/durable.h"

#include <utility>
#include <vector>

#include "parser/script_io.h"
#include "util/string_util.h"

namespace dwc {

namespace {

bool AtOrBelow(uint64_t epoch, uint64_t sequence, const JournalStamp& stamp) {
  if (epoch != stamp.epoch) {
    return epoch < stamp.epoch;
  }
  return sequence <= stamp.sequence;
}

}  // namespace

std::string StorageStats::ToString() const {
  return StrCat("wal_appends=", wal_appends, " wal_skips=", wal_skips,
                " wal_bytes=", wal_bytes, " checkpoints=", checkpoints,
                " policy_checkpoints=", policy_checkpoints,
                " reset_checkpoints=", reset_checkpoints,
                " checkpoint_id=", checkpoint_id, " segment_id=", segment_id,
                " journal_bytes=", journal_bytes,
                " journal_records=", journal_records,
                " stamp=", stamp.epoch, ":", stamp.sequence,
                " last=", last.epoch, ":", last.sequence);
}

Result<std::unique_ptr<DurableWarehouse>> DurableWarehouse::Bootstrap(
    Vfs* vfs, std::string dir, Warehouse* warehouse, JournalStamp stamp,
    StorageOptions options) {
  DWC_RETURN_IF_ERROR(vfs->CreateDir(dir));
  std::unique_ptr<DurableWarehouse> durable(
      new DurableWarehouse(vfs, std::move(dir), warehouse, options));
  DWC_ASSIGN_OR_RETURN(std::string script, WarehouseToScript(*warehouse));
  DWC_ASSIGN_OR_RETURN(
      Manifest manifest,
      WriteCheckpoint(vfs, durable->dir_, script, /*checkpoint_id=*/1, stamp,
                      /*wal_start=*/1));
  durable->checkpoint_id_ = manifest.checkpoint_id;
  durable->stamp_ = stamp;
  durable->checkpoints_ = 1;
  DWC_ASSIGN_OR_RETURN(
      durable->wal_,
      WalWriter::Open(vfs, durable->dir_, /*segment_id=*/1,
                      /*existing_bytes=*/0, options.wal));
  return durable;
}

Result<DurableWarehouse::Resumed> DurableWarehouse::Resume(
    Vfs* vfs, std::string dir, StorageOptions options,
    MaintenanceStrategy strategy, const ComplementOptions& complement_options) {
  Resumed resumed;
  RecoveryManager manager(vfs, dir);
  DWC_ASSIGN_OR_RETURN(
      resumed.recovered,
      manager.Recover(/*repair=*/true, strategy, complement_options));
  const RecoveredStorage& recovered = resumed.recovered;
  std::unique_ptr<DurableWarehouse> durable(new DurableWarehouse(
      vfs, std::move(dir), recovered.restored.warehouse.get(), options));
  durable->journal_ = recovered.journal;
  durable->stamp_ = recovered.manifest.stamp;
  durable->checkpoint_id_ = recovered.manifest.checkpoint_id;
  durable->checkpoints_ = recovered.manifest.checkpoint_id;
  DWC_ASSIGN_OR_RETURN(
      durable->wal_,
      WalWriter::Open(vfs, durable->dir_, recovered.report.next_segment_id,
                      recovered.report.next_segment_bytes, options.wal));
  resumed.durable = std::move(durable);
  return resumed;
}

JournalStamp DurableWarehouse::CurrentStamp() const {
  return journal_.has_sequenced() ? journal_.last() : stamp_;
}

Status DurableWarehouse::Integrate(const CanonicalDelta& delta,
                                   Source* source) {
  DWC_RETURN_IF_ERROR(warehouse_->Integrate(delta, source));
  return Append(delta);
}

Status DurableWarehouse::Append(const CanonicalDelta& delta) {
  const std::string script = DeltaToScript(delta);
  DWC_ASSIGN_OR_RETURN(size_t framed,
                       wal_->Append(delta.epoch, delta.sequence, script));
  journal_.AppendScript(script, delta.epoch, delta.sequence);
  ++wal_appends_;
  wal_bytes_ += framed;
  return MaybePolicyCheckpoint();
}

Status DurableWarehouse::NoteConsumed(uint64_t epoch, uint64_t sequence) {
  if (sequence == 0 || AtOrBelow(epoch, sequence, CurrentStamp())) {
    return Status::Ok();  // Already covered by the log or the checkpoint.
  }
  DWC_ASSIGN_OR_RETURN(size_t framed, wal_->Append(epoch, sequence, ""));
  journal_.NoteConsumed(epoch, sequence);
  ++wal_skips_;
  wal_bytes_ += framed;
  return MaybePolicyCheckpoint();
}

Status DurableWarehouse::Checkpoint() { return DoCheckpoint(CurrentStamp()); }

Status DurableWarehouse::OnCommit(const CommitEvent& event) {
  switch (event.kind) {
    case CommitEvent::Kind::kDelta:
      return Append(*event.delta);
    case CommitEvent::Kind::kSkip:
    case CommitEvent::Kind::kResync:
      // Both are acknowledged watermark movements whose effects are already
      // in the log (kResync's corrections arrived as kDelta events).
      return NoteConsumed(event.epoch, event.sequence);
    case CommitEvent::Kind::kReset: {
      // The rebuild came from source queries — nothing in the log can
      // reproduce it. Checkpoint the post-reset state immediately.
      JournalStamp stamp{event.epoch, event.sequence};
      if (AtOrBelow(stamp.epoch, stamp.sequence, CurrentStamp())) {
        stamp = CurrentStamp();
      }
      ++reset_checkpoints_;
      return DoCheckpoint(stamp);
    }
  }
  return Status::Internal("unhandled commit event kind");
}

void DurableWarehouse::Attach(DeltaIngestor* ingestor) {
  ingestor->set_commit_hook(
      [this](const CommitEvent& event) { return OnCommit(event); });
}

Status DurableWarehouse::MaybePolicyCheckpoint() {
  if (!options_.policy.ShouldCheckpoint(journal_)) {
    return Status::Ok();
  }
  ++policy_checkpoints_;
  return DoCheckpoint(CurrentStamp());
}

Status DurableWarehouse::DoCheckpoint(JournalStamp stamp) {
  DWC_ASSIGN_OR_RETURN(std::string script, WarehouseToScript(*warehouse_));
  // Fresh segment first: the manifest about to be committed names it as
  // wal-start, and a manifest must never point at a segment the directory
  // does not durably hold.
  DWC_RETURN_IF_ERROR(wal_->RotateTo(wal_->segment_id() + 1));
  const uint64_t wal_start = wal_->segment_id();
  DWC_ASSIGN_OR_RETURN(
      Manifest manifest,
      WriteCheckpoint(vfs_, dir_, script, checkpoint_id_ + 1, stamp,
                      wal_start));
  checkpoint_id_ = manifest.checkpoint_id;
  stamp_ = stamp;
  journal_.Clear();
  ++checkpoints_;
  // The manifest no longer references the old checkpoint or the rotated
  // segments: sweep them. A crash mid-sweep just leaves garbage for the
  // next recovery's sweep.
  DWC_ASSIGN_OR_RETURN(std::vector<std::string> names, vfs_->ListDir(dir_));
  bool removed = false;
  for (const std::string& name : names) {
    bool keep = name == kManifestName || name == manifest.checkpoint_file;
    if (name.rfind("wal-", 0) == 0) {
      uint64_t id = 0;
      for (char ch : name.substr(4)) {
        if (ch < '0' || ch > '9') break;
        id = id * 10 + static_cast<uint64_t>(ch - '0');
      }
      keep = id >= wal_start;
    }
    if (!keep) {
      DWC_RETURN_IF_ERROR(vfs_->Remove(JoinPath(dir_, name)));
      removed = true;
    }
  }
  if (removed) {
    DWC_RETURN_IF_ERROR(vfs_->SyncDir(dir_));
  }
  return Status::Ok();
}

StorageStats DurableWarehouse::stats() const {
  StorageStats stats;
  stats.wal_appends = wal_appends_;
  stats.wal_skips = wal_skips_;
  stats.wal_bytes = wal_bytes_;
  stats.checkpoints = checkpoints_;
  stats.policy_checkpoints = policy_checkpoints_;
  stats.reset_checkpoints = reset_checkpoints_;
  stats.checkpoint_id = checkpoint_id_;
  stats.segment_id = wal_ != nullptr ? wal_->segment_id() : 0;
  stats.journal_bytes = journal_.bytes();
  stats.journal_records = journal_.entries();
  stats.stamp = stamp_;
  stats.last = CurrentStamp();
  return stats;
}

}  // namespace dwc
