#ifndef DWC_STORAGE_DURABLE_H_
#define DWC_STORAGE_DURABLE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/recovery.h"
#include "storage/vfs.h"
#include "storage/wal.h"
#include "util/result.h"
#include "warehouse/ingest.h"
#include "warehouse/persistence.h"

namespace dwc {

struct StorageOptions {
  JournalPolicy policy;
  WalWriterOptions wal;
};

// A live snapshot of the storage layer, for `storage stats` and tests.
struct StorageStats {
  uint64_t wal_appends = 0;        // Data records written.
  uint64_t wal_skips = 0;          // Skip (watermark) records written.
  uint64_t wal_bytes = 0;          // Framed bytes appended since open.
  uint64_t checkpoints = 0;        // Total checkpoints committed.
  uint64_t policy_checkpoints = 0; // Triggered by JournalPolicy.
  uint64_t reset_checkpoints = 0;  // Forced by a kReset commit event.
  uint64_t checkpoint_id = 0;      // Live checkpoint id.
  uint64_t segment_id = 0;         // Live WAL segment id.
  uint64_t journal_bytes = 0;      // Pending (un-checkpointed) journal.
  uint64_t journal_records = 0;
  JournalStamp stamp;              // The live checkpoint's stamp.
  JournalStamp last;               // Last consumed (epoch, sequence).

  std::string ToString() const;
};

// Durability for one warehouse over one storage directory: every committed
// state transition is fsync'd into the WAL before the call that caused it
// returns, and the JournalPolicy folds the log into a fresh atomic
// checkpoint before it grows unbounded. Non-owning over the warehouse.
//
// Two ways in:
//   Bootstrap — first boot: checkpoint the warehouse as-is, start segment 1.
//   Resume    — after a crash: RecoveryManager replays the directory, then
//               the writer picks up at the exact torn-tail-truncated byte.
//
// Wire to a DeltaIngestor with Attach (or call Integrate directly): the
// ingestor's CommitEvents drive Append / NoteConsumed / Checkpoint.
class DurableWarehouse {
 public:
  // Checkpoints `warehouse` into `dir` (created if missing) as checkpoint 1
  // and opens WAL segment 1. `stamp` is the delivery watermark the
  // warehouse state already reflects — (source->epoch(),
  // source->last_sequence()) when attaching at load time.
  static Result<std::unique_ptr<DurableWarehouse>> Bootstrap(
      Vfs* vfs, std::string dir, Warehouse* warehouse, JournalStamp stamp,
      StorageOptions options = StorageOptions());

  struct Resumed {
    RecoveredStorage recovered;  // Owns the rebuilt warehouse.
    std::unique_ptr<DurableWarehouse> durable;
  };

  // Recovers `dir` (repairing torn tails and sweeping unreferenced files)
  // and resumes logging where the clean WAL prefix ended.
  static Result<Resumed> Resume(
      Vfs* vfs, std::string dir, StorageOptions options = StorageOptions(),
      MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
      const ComplementOptions& complement_options = ComplementOptions());

  // Integrate-then-log, for driving the warehouse directly (the REPL path).
  // The delta is durable by the time this returns.
  Status Integrate(const CanonicalDelta& delta, Source* source);

  // Logs an already-integrated delta (the commit hook's kDelta path).
  Status Append(const CanonicalDelta& delta);

  // Logs an acknowledged watermark jump: (epoch, sequence) was consumed
  // with no record to replay. Stale notes (at or below what the log
  // already covers) are ignored.
  Status NoteConsumed(uint64_t epoch, uint64_t sequence);

  // Takes a checkpoint now, regardless of policy.
  Status Checkpoint();

  // The DeltaIngestor durability hook (see warehouse/ingest.h CommitEvent).
  Status OnCommit(const CommitEvent& event);

  // Installs OnCommit as `ingestor`'s commit hook. This object must outlive
  // the ingestor (or the hook must be cleared first).
  void Attach(DeltaIngestor* ingestor);

  StorageStats stats() const;
  const std::string& dir() const { return dir_; }
  Warehouse* warehouse() const { return warehouse_; }

 private:
  DurableWarehouse(Vfs* vfs, std::string dir, Warehouse* warehouse,
                   StorageOptions options)
      : vfs_(vfs),
        dir_(std::move(dir)),
        warehouse_(warehouse),
        options_(options) {}

  // Checkpoint protocol: rotate the WAL into a fresh segment, write the
  // snapshot + manifest (atomic), then garbage-collect everything the new
  // manifest no longer references.
  Status DoCheckpoint(JournalStamp stamp);
  Status MaybePolicyCheckpoint();
  // The stamp a checkpoint taken right now would carry.
  JournalStamp CurrentStamp() const;

  Vfs* vfs_;
  std::string dir_;
  Warehouse* warehouse_;
  StorageOptions options_;
  std::unique_ptr<WalWriter> wal_;
  DeltaJournal journal_;
  JournalStamp stamp_;  // Stamp of the live (manifest) checkpoint.
  uint64_t checkpoint_id_ = 0;
  uint64_t wal_appends_ = 0;
  uint64_t wal_skips_ = 0;
  uint64_t wal_bytes_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t policy_checkpoints_ = 0;
  uint64_t reset_checkpoints_ = 0;
};

}  // namespace dwc

#endif  // DWC_STORAGE_DURABLE_H_
