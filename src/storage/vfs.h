#ifndef DWC_STORAGE_VFS_H_
#define DWC_STORAGE_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace dwc {

// Minimal filesystem abstraction under the durability layer (wal.h,
// checkpoint.h, recovery.h). Two backends: PosixVfs (real files, real
// fsync) and FaultVfs (fault_vfs.h — an in-memory filesystem with the
// crash semantics of a real disk: un-fsynced data does not survive, torn
// writes happen, directory entries need their own fsync).
//
// The interface is deliberately append-only-plus-rename: that is all a WAL
// and an atomic-checkpoint protocol need, and it keeps the fault model
// tractable. Paths are plain '/'-joined strings; storage lives in a single
// flat directory.

// An open writable file (created or opened for append).
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  // Appends `data` at the end of the file. Buffered: not durable until
  // Sync().
  virtual Status Append(std::string_view data) = 0;

  // fsync: everything appended so far survives a crash.
  virtual Status Sync() = 0;

  // Closes the handle (without implying durability). Idempotent.
  virtual Status Close() = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  // Creates (or truncates) `path` for writing. The new directory entry is
  // durable only after SyncDir on the parent.
  virtual Result<std::unique_ptr<VfsFile>> Create(const std::string& path) = 0;

  // Opens an existing file for appending.
  virtual Result<std::unique_ptr<VfsFile>> OpenAppend(
      const std::string& path) = 0;

  // Whole-file read.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  // Shrinks `path` to `size` bytes (recovery's torn-tail cleanup).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  // Atomically replaces `to` with `from` (POSIX rename semantics). Durable
  // only after SyncDir on the parent.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  // Creates `dir` if absent; ok when it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  // fsync on the directory: pending entry creations/renames/removals
  // survive a crash.
  virtual Status SyncDir(const std::string& dir) = 0;

  // File names (not paths) directly inside `dir`, sorted.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  virtual Result<bool> Exists(const std::string& path) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;
};

// "<dir>/<name>"; just string assembly, no normalization.
std::string JoinPath(std::string_view dir, std::string_view name);

// The real thing: POSIX files, POSIX fsync. Crash-consistency of the
// storage formats over this backend is exactly what FaultVfs's adversarial
// schedule certifies.
class PosixVfs : public Vfs {
 public:
  Result<std::unique_ptr<VfsFile>> Create(const std::string& path) override;
  Result<std::unique_ptr<VfsFile>> OpenAppend(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<bool> Exists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
};

}  // namespace dwc

#endif  // DWC_STORAGE_VFS_H_
