#include "storage/checkpoint.h"

#include <cstdio>

#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Parses "<token> " off the front of `line`, then a u64. Returns false on
// any mismatch.
bool EatToken(std::string_view* line, std::string_view token) {
  if (line->size() < token.size() ||
      line->compare(0, token.size(), token) != 0) {
    return false;
  }
  line->remove_prefix(token.size());
  while (!line->empty() && line->front() == ' ') {
    line->remove_prefix(1);
  }
  return true;
}

bool EatU64(std::string_view* line, uint64_t* value) {
  if (line->empty() || line->front() < '0' || line->front() > '9') {
    return false;
  }
  uint64_t v = 0;
  while (!line->empty() && line->front() >= '0' && line->front() <= '9') {
    v = v * 10 + static_cast<uint64_t>(line->front() - '0');
    line->remove_prefix(1);
  }
  while (!line->empty() && line->front() == ' ') {
    line->remove_prefix(1);
  }
  *value = v;
  return true;
}

bool EatWord(std::string_view* line, std::string* word) {
  size_t end = line->find(' ');
  if (end == 0 || line->empty()) {
    return false;
  }
  if (end == std::string_view::npos) {
    end = line->size();
  }
  word->assign(line->substr(0, end));
  line->remove_prefix(end);
  while (!line->empty() && line->front() == ' ') {
    line->remove_prefix(1);
  }
  return true;
}

Result<Manifest> ManifestError(std::string_view detail) {
  return Status::FailedPrecondition(
      StrCat("corrupt MANIFEST: ", detail));
}

// Writes `content` to <dir>/<name> via the atomic dance: the content hits a
// temp name, is fsync'd, renamed over the target, and the directory entry
// is fsync'd. A crash anywhere in the middle leaves either the old file or
// the new one, never a hybrid.
Status AtomicWrite(Vfs* vfs, const std::string& dir, const std::string& name,
                   std::string_view content) {
  const std::string tmp = JoinPath(dir, name + ".tmp");
  const std::string target = JoinPath(dir, name);
  DWC_ASSIGN_OR_RETURN(std::unique_ptr<VfsFile> file, vfs->Create(tmp));
  DWC_RETURN_IF_ERROR(file->Append(content));
  DWC_RETURN_IF_ERROR(file->Sync());
  DWC_RETURN_IF_ERROR(file->Close());
  DWC_RETURN_IF_ERROR(vfs->Rename(tmp, target));
  return vfs->SyncDir(dir);
}

}  // namespace

std::string CheckpointFileName(uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%016llu.dwc",
                static_cast<unsigned long long>(id));
  return buf;
}

std::string Manifest::Serialize() const {
  std::string body = StrCat(
      "dwc-manifest v1\n",
      "checkpoint ", checkpoint_file, " crc ", Crc32ToHex(checkpoint_crc),
      " id ", checkpoint_id, "\n",
      "stamp epoch ", stamp.epoch, " seq ", stamp.sequence, "\n",
      "wal-start ", wal_start, "\n");
  return StrCat(body, "crc ", Crc32ToHex(Crc32(body)), "\n");
}

Result<Manifest> Manifest::Parse(std::string_view text) {
  // Peel the trailing self-CRC line first; everything above it is covered.
  size_t crc_line = text.rfind("crc ");
  if (crc_line == std::string_view::npos ||
      (crc_line != 0 && text[crc_line - 1] != '\n')) {
    return ManifestError("missing trailing crc line");
  }
  std::string_view crc_hex = Trim(text.substr(crc_line + 4));
  uint32_t want = 0;
  if (!HexToCrc32(crc_hex, &want)) {
    return ManifestError("unparseable crc line");
  }
  std::string_view body = text.substr(0, crc_line);
  if (Crc32(body) != want) {
    return ManifestError("self-checksum mismatch (torn or rotted write)");
  }

  Manifest manifest;
  std::vector<std::string> lines = Split(std::string(body), '\n');
  if (lines.size() < 4 || Trim(lines[0]) != "dwc-manifest v1") {
    return ManifestError("bad header line");
  }
  {
    std::string_view line = lines[1];
    std::string crc_word;
    uint64_t id = 0;
    uint32_t file_crc = 0;
    if (!EatToken(&line, "checkpoint") ||
        !EatWord(&line, &manifest.checkpoint_file) ||
        !EatToken(&line, "crc") || !EatWord(&line, &crc_word) ||
        !HexToCrc32(crc_word, &file_crc) || !EatToken(&line, "id") ||
        !EatU64(&line, &id)) {
      return ManifestError("bad checkpoint line");
    }
    manifest.checkpoint_crc = file_crc;
    manifest.checkpoint_id = id;
  }
  {
    std::string_view line = lines[2];
    if (!EatToken(&line, "stamp") || !EatToken(&line, "epoch") ||
        !EatU64(&line, &manifest.stamp.epoch) || !EatToken(&line, "seq") ||
        !EatU64(&line, &manifest.stamp.sequence)) {
      return ManifestError("bad stamp line");
    }
  }
  {
    std::string_view line = lines[3];
    if (!EatToken(&line, "wal-start") || !EatU64(&line, &manifest.wal_start)) {
      return ManifestError("bad wal-start line");
    }
  }
  return manifest;
}

Result<Manifest> ReadManifest(Vfs* vfs, const std::string& dir) {
  DWC_ASSIGN_OR_RETURN(std::string text,
                       vfs->ReadFile(JoinPath(dir, kManifestName)));
  return Manifest::Parse(text);
}

Status WriteManifest(Vfs* vfs, const std::string& dir,
                     const Manifest& manifest) {
  return AtomicWrite(vfs, dir, kManifestName, manifest.Serialize());
}

Result<Manifest> WriteCheckpoint(Vfs* vfs, const std::string& dir,
                                 const std::string& script,
                                 uint64_t checkpoint_id,
                                 const JournalStamp& stamp,
                                 uint64_t wal_start) {
  Manifest manifest;
  manifest.checkpoint_id = checkpoint_id;
  manifest.checkpoint_file = CheckpointFileName(checkpoint_id);
  manifest.checkpoint_crc = Crc32(script);
  manifest.stamp = stamp;
  manifest.wal_start = wal_start;
  // The snapshot must be durable before the manifest names it; the manifest
  // commit (its own atomic rename) is the checkpoint's commit point.
  DWC_RETURN_IF_ERROR(
      AtomicWrite(vfs, dir, manifest.checkpoint_file, script));
  DWC_RETURN_IF_ERROR(WriteManifest(vfs, dir, manifest));
  return manifest;
}

}  // namespace dwc
