#include "storage/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace dwc {

std::string JoinPath(std::string_view dir, std::string_view name) {
  if (dir.empty()) {
    return std::string(name);
  }
  std::string out(dir);
  if (out.back() != '/') {
    out += '/';
  }
  out += name;
  return out;
}

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(
      StrCat(op, " '", path, "' failed: ", std::strerror(errno)));
}

class PosixFile : public VfsFile {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override { (void)Close(); }

  Status Append(std::string_view data) override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("append on closed file " + path_);
    }
    size_t written = 0;
    while (written < data.size()) {
      ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return ErrnoStatus("write", path_);
      }
      written += static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (fd_ < 0) {
      return Status::FailedPrecondition("sync on closed file " + path_);
    }
    if (::fsync(fd_) != 0) {
      return ErrnoStatus("fsync", path_);
    }
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) {
      return Status::Ok();
    }
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoStatus("close", path_);
    }
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

Result<std::unique_ptr<VfsFile>> PosixVfs::Create(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return ErrnoStatus("create", path);
  }
  return std::unique_ptr<VfsFile>(new PosixFile(fd, path));
}

Result<std::unique_ptr<VfsFile>> PosixVfs::OpenAppend(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return ErrnoStatus("open-append", path);
  }
  return std::unique_ptr<VfsFile>(new PosixFile(fd, path));
}

Result<std::string> PosixVfs::ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      Status status = ErrnoStatus("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) {
      break;
    }
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status PosixVfs::Truncate(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return Status::Ok();
}

Status PosixVfs::Rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from);
  }
  return Status::Ok();
}

Status PosixVfs::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    return ErrnoStatus("unlink", path);
  }
  return Status::Ok();
}

Status PosixVfs::CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return ErrnoStatus("mkdir", dir);
  }
  return Status::Ok();
}

Status PosixVfs::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return ErrnoStatus("open-dir", dir);
  }
  Status status = Status::Ok();
  if (::fsync(fd) != 0) {
    // Some filesystems refuse fsync on directories; that is a real
    // durability hole, report it.
    status = ErrnoStatus("fsync-dir", dir);
  }
  ::close(fd);
  return status;
}

Result<std::vector<std::string>> PosixVfs::ListDir(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return ErrnoStatus("opendir", dir);
  }
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(handle)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    names.push_back(std::move(name));
  }
  ::closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

Result<bool> PosixVfs::Exists(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    return true;
  }
  if (errno == ENOENT) {
    return false;
  }
  return ErrnoStatus("stat", path);
}

Result<uint64_t> PosixVfs::FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return ErrnoStatus("stat", path);
  }
  return static_cast<uint64_t>(st.st_size);
}

}  // namespace dwc
