#include "workload/star_schema.h"

#include "util/string_util.h"
#include "workload/update_stream.h"

namespace dwc {

namespace {

Schema MakeSchema(std::initializer_list<Attribute> attrs) {
  return Schema(std::vector<Attribute>(attrs));
}

Status AddDim(Catalog* catalog, Database* db, const std::string& name,
              Schema schema, const std::string& key) {
  DWC_RETURN_IF_ERROR(catalog->AddRelation(name, schema));
  DWC_RETURN_IF_ERROR(catalog->AddKey(name, AttrSet{key}));
  return db->AddEmptyRelation(name, std::move(schema));
}

}  // namespace

Result<StarSchema> BuildStarSchema(const StarSchemaConfig& config) {
  StarSchema star;
  star.catalog = std::make_shared<Catalog>();
  star.db = Database(star.catalog);
  Catalog* cat = star.catalog.get();
  Database* db = &star.db;
  Rng rng(config.seed);

  DWC_RETURN_IF_ERROR(AddDim(cat, db, "Customer",
                             MakeSchema({{"cust_key", ValueType::kInt},
                                         {"cust_name", ValueType::kString},
                                         {"cust_region", ValueType::kString}}),
                             "cust_key"));
  DWC_RETURN_IF_ERROR(AddDim(cat, db, "Supplier",
                             MakeSchema({{"supp_key", ValueType::kInt},
                                         {"supp_name", ValueType::kString},
                                         {"supp_region", ValueType::kString}}),
                             "supp_key"));
  DWC_RETURN_IF_ERROR(AddDim(cat, db, "Part",
                             MakeSchema({{"part_key", ValueType::kInt},
                                         {"part_name", ValueType::kString},
                                         {"part_type", ValueType::kString}}),
                             "part_key"));
  DWC_RETURN_IF_ERROR(AddDim(cat, db, "Location",
                             MakeSchema({{"loc_key", ValueType::kInt},
                                         {"loc_city", ValueType::kString},
                                         {"loc_country", ValueType::kString}}),
                             "loc_key"));
  DWC_RETURN_IF_ERROR(AddDim(cat, db, "Orders",
                             MakeSchema({{"order_key", ValueType::kInt},
                                         {"cust_key", ValueType::kInt},
                                         {"loc_key", ValueType::kInt},
                                         {"order_month", ValueType::kInt}}),
                             "order_key"));
  DWC_RETURN_IF_ERROR(AddDim(cat, db, "Sales",
                             MakeSchema({{"sale_key", ValueType::kInt},
                                         {"order_key", ValueType::kInt},
                                         {"part_key", ValueType::kInt},
                                         {"supp_key", ValueType::kInt},
                                         {"quantity", ValueType::kInt}}),
                             "sale_key"));

  DWC_RETURN_IF_ERROR(cat->AddInclusion(
      InclusionDependency{"Orders", {"cust_key"}, "Customer", {"cust_key"}}));
  DWC_RETURN_IF_ERROR(cat->AddInclusion(
      InclusionDependency{"Orders", {"loc_key"}, "Location", {"loc_key"}}));
  DWC_RETURN_IF_ERROR(cat->AddInclusion(
      InclusionDependency{"Sales", {"order_key"}, "Orders", {"order_key"}}));
  DWC_RETURN_IF_ERROR(cat->AddInclusion(
      InclusionDependency{"Sales", {"part_key"}, "Part", {"part_key"}}));
  DWC_RETURN_IF_ERROR(cat->AddInclusion(
      InclusionDependency{"Sales", {"supp_key"}, "Supplier", {"supp_key"}}));

  // --- Data.
  const char* regions[] = {"emea", "apac", "amer", "latam"};
  auto region = [&](Rng* r) {
    return Value::String(regions[r->Below(4)]);
  };
  Relation* customer = db->FindMutableRelation("Customer");
  for (size_t i = 0; i < config.customers; ++i) {
    customer->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                            Value::String(StrCat("cust", i)), region(&rng)}));
  }
  Relation* supplier = db->FindMutableRelation("Supplier");
  for (size_t i = 0; i < config.suppliers; ++i) {
    supplier->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                            Value::String(StrCat("supp", i)), region(&rng)}));
  }
  Relation* part = db->FindMutableRelation("Part");
  const char* types[] = {"bolt", "nut", "gear", "rod", "plate"};
  for (size_t i = 0; i < config.parts; ++i) {
    part->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                        Value::String(StrCat("part", i)),
                        Value::String(types[rng.Below(5)])}));
  }
  Relation* location = db->FindMutableRelation("Location");
  for (size_t i = 0; i < config.locations; ++i) {
    location->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                            Value::String(StrCat("city", i)),
                            Value::String(StrCat("country", i % 5))}));
  }
  Relation* orders = db->FindMutableRelation("Orders");
  for (size_t i = 0; i < config.orders; ++i) {
    orders->Insert(
        Tuple({Value::Int(static_cast<int64_t>(i)),
               Value::Int(rng.Range(0, static_cast<int64_t>(config.customers) - 1)),
               Value::Int(rng.Range(0, static_cast<int64_t>(config.locations) - 1)),
               Value::Int(rng.Range(1, 12))}));
  }
  Relation* sales = db->FindMutableRelation("Sales");
  for (size_t i = 0; i < config.sales; ++i) {
    sales->Insert(
        Tuple({Value::Int(static_cast<int64_t>(i)),
               Value::Int(rng.Range(0, static_cast<int64_t>(config.orders) - 1)),
               Value::Int(rng.Range(0, static_cast<int64_t>(config.parts) - 1)),
               Value::Int(rng.Range(0, static_cast<int64_t>(config.suppliers) - 1)),
               Value::Int(rng.Range(1, 50))}));
  }
  DWC_RETURN_IF_ERROR(db->ValidateConstraints());

  // --- Warehouse views: dimension copies + fact views.
  star.views.push_back(ViewDef{"DimCustomer", Expr::Base("Customer")});
  star.views.push_back(ViewDef{"DimSupplier", Expr::Base("Supplier")});
  star.views.push_back(ViewDef{"DimPart", Expr::Base("Part")});
  star.views.push_back(ViewDef{"DimLocation", Expr::Base("Location")});
  star.views.push_back(ViewDef{
      "FactOrders",
      Expr::JoinAll({Expr::Base("Orders"), Expr::Base("Customer"),
                     Expr::Base("Location")})});
  star.views.push_back(ViewDef{
      "FactSales",
      Expr::JoinAll({Expr::Base("Sales"), Expr::Base("Orders"),
                     Expr::Base("Part"), Expr::Base("Supplier")})});
  return star;
}

Result<UpdateOp> GenerateSalesBatch(const Database& db, size_t count,
                                    Rng* rng) {
  RandomDbOptions options;
  // Sale keys need headroom beyond the current population.
  options.int_domain =
      static_cast<int64_t>(db.FindRelation("Sales")->size()) * 4 + 1024;
  return GenerateInsertBatch(db, "Sales", count, rng, options);
}

}  // namespace dwc
