#include "workload/update_stream.h"

#include "util/string_util.h"

namespace dwc {

namespace {

// Is `tuple` of `relation` referenced by some lhs tuple through an IND whose
// rhs is `relation`? Deleting such a tuple would dangle the reference.
Result<bool> IsReferenced(const Database& db, const std::string& relation,
                          const Tuple& tuple) {
  const Catalog& catalog = db.catalog();
  const Relation* rel = db.FindRelation(relation);
  for (const InclusionDependency& ind : catalog.inclusions()) {
    if (ind.rhs_relation != relation) {
      continue;
    }
    const Relation* lhs = db.FindRelation(ind.lhs_relation);
    if (lhs == nullptr || lhs->empty()) {
      continue;
    }
    DWC_ASSIGN_OR_RETURN(std::vector<size_t> rhs_idx,
                         rel->schema().IndicesOf(ind.rhs_attrs));
    Tuple key = tuple.Project(rhs_idx);
    const Relation::Index& lhs_index = lhs->GetIndex(ind.lhs_attrs);
    if (lhs_index.find(key) != lhs_index.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<UpdateOp> GenerateRandomUpdate(const Database& current,
                                      const std::string& relation, Rng* rng,
                                      const UpdateStreamOptions& options) {
  const Relation* rel = current.FindRelation(relation);
  if (rel == nullptr) {
    return Status::NotFound(StrCat("unknown relation '", relation, "'"));
  }
  UpdateOp op;
  op.relation = relation;

  // Deletions: sample unreferenced tuples.
  size_t want_deletes = rng->Below(options.max_deletes + 1);
  if (want_deletes > 0 && !rel->empty()) {
    std::vector<Tuple> tuples = rel->SortedTuples();
    size_t start = rng->Below(tuples.size());
    for (size_t step = 0; step < tuples.size() && op.deletes.size() < want_deletes;
         ++step) {
      const Tuple& candidate = tuples[(start + step) % tuples.size()];
      DWC_ASSIGN_OR_RETURN(bool referenced,
                           IsReferenced(current, relation, candidate));
      if (!referenced) {
        op.deletes.push_back(candidate);
      }
    }
  }

  // Insertions: fresh constraint-respecting tuples. Insertions must also not
  // collide with each other on the key; generate against a scratch copy.
  size_t want_inserts = rng->Below(options.max_inserts + 1);
  if (want_inserts > 0) {
    Database scratch(current.catalog_ptr());
    for (const auto& [name, r] : current.relations()) {
      DWC_RETURN_IF_ERROR(scratch.AddRelation(name, *r));
    }
    Relation* scratch_rel = scratch.FindMutableRelation(relation);
    for (size_t i = 0; i < want_inserts; ++i) {
      Result<Tuple> tuple =
          GenerateInsertableTuple(scratch, relation, rng, options.db_options);
      if (!tuple.ok()) {
        break;  // Domain exhausted; an update with fewer inserts is fine.
      }
      scratch_rel->Insert(tuple.value());
      op.inserts.push_back(std::move(tuple).value());
    }
  }
  return op;
}

Result<UpdateOp> GenerateInsertBatch(const Database& current,
                                     const std::string& relation, size_t count,
                                     Rng* rng,
                                     const RandomDbOptions& options) {
  UpdateOp op;
  op.relation = relation;
  Database scratch(current.catalog_ptr());
  for (const auto& [name, r] : current.relations()) {
    DWC_RETURN_IF_ERROR(scratch.AddRelation(name, *r));
  }
  Relation* scratch_rel = scratch.FindMutableRelation(relation);
  if (scratch_rel == nullptr) {
    return Status::NotFound(StrCat("unknown relation '", relation, "'"));
  }
  for (size_t i = 0; i < count; ++i) {
    Result<Tuple> tuple =
        GenerateInsertableTuple(scratch, relation, rng, options);
    if (!tuple.ok()) {
      break;
    }
    scratch_rel->Insert(tuple.value());
    op.inserts.push_back(std::move(tuple).value());
  }
  return op;
}

}  // namespace dwc
