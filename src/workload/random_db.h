#ifndef DWC_WORKLOAD_RANDOM_DB_H_
#define DWC_WORKLOAD_RANDOM_DB_H_

#include <memory>

#include "relational/catalog.h"
#include "relational/database.h"
#include "util/result.h"
#include "util/rng.h"

namespace dwc {

// Knobs for random state generation.
struct RandomDbOptions {
  size_t min_tuples = 4;
  size_t max_tuples = 24;
  // Integer attributes draw from [0, int_domain).
  int64_t int_domain = 16;
  // String attributes draw from "s0" .. "s<domain-1>".
  int64_t string_domain = 16;
};

// Generates a random state over `catalog` that satisfies all declared key
// constraints and inclusion dependencies: relations are generated in
// reverse IND-topological order so that an IND's right-hand side exists
// before the left-hand side samples foreign values from it. Overlapping
// IND attribute sets on one relation may be unsatisfiable together; this
// generator assumes the usual disjoint-foreign-key shape and validates the
// result, failing loudly otherwise.
Result<Database> GenerateRandomDatabase(std::shared_ptr<const Catalog> catalog,
                                        Rng* rng,
                                        const RandomDbOptions& options =
                                            RandomDbOptions());

// Generates one random tuple for `schema`, with foreign attributes (those
// constrained by an IND whose lhs is `relation`) sampled from the current
// contents of the referenced relations in `db`, and key uniqueness against
// the current contents of `relation` (retrying a few times; may return a
// duplicate-key-free tuple or NotFound if the domain is exhausted).
Result<Tuple> GenerateInsertableTuple(const Database& db,
                                      const std::string& relation, Rng* rng,
                                      const RandomDbOptions& options =
                                          RandomDbOptions());

}  // namespace dwc

#endif  // DWC_WORKLOAD_RANDOM_DB_H_
