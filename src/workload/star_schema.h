#ifndef DWC_WORKLOAD_STAR_SCHEMA_H_
#define DWC_WORKLOAD_STAR_SCHEMA_H_

#include <memory>
#include <vector>

#include "algebra/view.h"
#include "relational/catalog.h"
#include "relational/database.h"
#include "util/result.h"
#include "util/rng.h"
#include "warehouse/update.h"

namespace dwc {

// A TPC-D-flavoured business schema (Section 5): dimension relations with
// surrogate keys and fact relations whose foreign keys are declared as
// key + inclusion constraints — exactly the setting in which Theorem 2.2
// makes fact-view complements vanish.
//
//   Customer(cust_key KEY, cust_name, cust_region)
//   Supplier(supp_key KEY, supp_name, supp_region)
//   Part(part_key KEY, part_name, part_type)
//   Location(loc_key KEY, loc_city, loc_country)
//   Orders(order_key KEY, cust_key -> Customer, loc_key -> Location,
//          order_month)
//   Sales(sale_key KEY, order_key -> Orders, part_key -> Part,
//         supp_key -> Supplier, quantity)
struct StarSchemaConfig {
  size_t customers = 50;
  size_t suppliers = 20;
  size_t parts = 100;
  size_t locations = 10;
  size_t orders = 200;
  size_t sales = 500;
  uint64_t seed = 42;
};

struct StarSchema {
  std::shared_ptr<Catalog> catalog;
  Database db;
  // The warehouse definition: dimension copies plus two fact views
  //   FactOrders = Orders |x| Customer |x| Location
  //   FactSales  = Sales |x| Orders |x| Part |x| Supplier
  std::vector<ViewDef> views;
};

// Builds catalog, constraint set, data and warehouse views deterministically
// from `config.seed`.
Result<StarSchema> BuildStarSchema(const StarSchemaConfig& config =
                                       StarSchemaConfig());

// A batch of `count` fresh sales (new sale keys referencing existing orders,
// parts and suppliers) against the current state `db`.
Result<UpdateOp> GenerateSalesBatch(const Database& db, size_t count,
                                    Rng* rng);

}  // namespace dwc

#endif  // DWC_WORKLOAD_STAR_SCHEMA_H_
