#ifndef DWC_WORKLOAD_RANDOM_VIEWS_H_
#define DWC_WORKLOAD_RANDOM_VIEWS_H_

#include <vector>

#include "algebra/view.h"
#include "relational/catalog.h"
#include "util/result.h"
#include "util/rng.h"

namespace dwc {

struct RandomViewOptions {
  size_t min_views = 1;
  size_t max_views = 4;
  size_t max_bases_per_view = 3;
  // Probability of wrapping a selection around the join.
  double select_probability = 0.35;
  // Probability of projecting (instead of keeping the full SJ schema).
  double project_probability = 0.6;
  // Per-attribute keep probability when projecting.
  double keep_attr_probability = 0.7;
  // When projecting, always retain declared keys of the joined relations
  // (makes the views useful for Theorem 2.2 covers more often).
  bool keep_keys = true;
  // Integer constant domain for selection predicates; must match the data
  // generator's domain for selections to be non-trivially selective.
  int64_t int_domain = 16;
};

// Generates a random set of PSJ views over `catalog`, preferring connected
// join trees (relations sharing attributes). Every returned view passes
// AnalyzePsj. Names are "V1", "V2", ...
Result<std::vector<ViewDef>> GenerateRandomPsjViews(
    const Catalog& catalog, Rng* rng,
    const RandomViewOptions& options = RandomViewOptions());

struct RandomQueryOptions {
  size_t max_depth = 4;
  int64_t int_domain = 16;
};

// Generates a random *query* over the base relations using the full algebra
// (select / project / join / union / difference), type-correct by
// construction. Used by the query-independence property tests (E9).
Result<ExprRef> GenerateRandomQuery(const Catalog& catalog, Rng* rng,
                                    const RandomQueryOptions& options =
                                        RandomQueryOptions());

}  // namespace dwc

#endif  // DWC_WORKLOAD_RANDOM_VIEWS_H_
