#ifndef DWC_WORKLOAD_UPDATE_STREAM_H_
#define DWC_WORKLOAD_UPDATE_STREAM_H_

#include <string>

#include "relational/database.h"
#include "util/result.h"
#include "util/rng.h"
#include "warehouse/update.h"
#include "workload/random_db.h"

namespace dwc {

struct UpdateStreamOptions {
  size_t max_inserts = 3;
  size_t max_deletes = 2;
  RandomDbOptions db_options;
};

// Generates a random update against `relation` that keeps `current` (the
// authoritative source state) constraint-consistent:
//  * inserted tuples respect the key and sample IND-constrained attributes
//    from the referenced relations;
//  * deleted tuples are chosen among tuples not referenced through any
//    inclusion dependency (so no dangling references appear).
// The update is *not* applied; feed it to Source::Apply.
Result<UpdateOp> GenerateRandomUpdate(const Database& current,
                                      const std::string& relation, Rng* rng,
                                      const UpdateStreamOptions& options =
                                          UpdateStreamOptions());

// Insert-only variant with exactly `count` fresh tuples (or fewer if the
// domain runs dry).
Result<UpdateOp> GenerateInsertBatch(const Database& current,
                                     const std::string& relation, size_t count,
                                     Rng* rng,
                                     const RandomDbOptions& options =
                                         RandomDbOptions());

}  // namespace dwc

#endif  // DWC_WORKLOAD_UPDATE_STREAM_H_
