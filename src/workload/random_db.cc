#include "workload/random_db.h"

#include <algorithm>

#include "util/string_util.h"

namespace dwc {

namespace {

Value RandomValue(ValueType type, Rng* rng, const RandomDbOptions& options) {
  switch (type) {
    case ValueType::kInt:
      return Value::Int(rng->Range(0, options.int_domain - 1));
    case ValueType::kDouble:
      return Value::Double(
          static_cast<double>(rng->Range(0, options.int_domain - 1)) + 0.5);
    case ValueType::kString:
      return Value::String(
          StrCat("s", rng->Range(0, options.string_domain - 1)));
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

// Builds a tuple for `relation`: foreign-constrained attributes sampled from
// referenced relations (already populated), the rest random.
Result<Tuple> BuildTuple(const Database& db, const Catalog& catalog,
                         const std::string& relation, Rng* rng,
                         const RandomDbOptions& options) {
  const Schema& schema = *catalog.FindSchema(relation);
  std::vector<Value> values(schema.size());
  std::vector<bool> assigned(schema.size(), false);

  for (const InclusionDependency& ind : catalog.inclusions()) {
    if (ind.lhs_relation != relation) {
      continue;
    }
    const Relation* rhs = db.FindRelation(ind.rhs_relation);
    if (rhs == nullptr || rhs->empty()) {
      return Status::FailedPrecondition(
          StrCat("cannot generate tuple for ", relation, ": referenced ",
                 ind.rhs_relation, " is empty"));
    }
    // Pick a uniformly random tuple of rhs and copy the X values over.
    // (std::next over the hash set: O(n) pointer chase, but no sort/copy —
    // this sits on the update-generation hot path.)
    auto it = rhs->tuples().begin();
    std::advance(it, rng->Below(rhs->size()));
    const Tuple& source = *it;
    DWC_ASSIGN_OR_RETURN(std::vector<size_t> rhs_idx,
                         rhs->schema().IndicesOf(ind.rhs_attrs));
    DWC_ASSIGN_OR_RETURN(std::vector<size_t> lhs_idx,
                         schema.IndicesOf(ind.lhs_attrs));
    for (size_t k = 0; k < lhs_idx.size(); ++k) {
      values[lhs_idx[k]] = source.at(rhs_idx[k]);
      assigned[lhs_idx[k]] = true;
    }
  }
  for (size_t i = 0; i < schema.size(); ++i) {
    if (!assigned[i]) {
      values[i] = RandomValue(schema.attribute(i).type, rng, options);
    }
  }
  return Tuple(std::move(values));
}

// Does inserting `tuple` violate the key of `relation`?
bool ViolatesKey(const Database& db, const Catalog& catalog,
                 const std::string& relation, const Tuple& tuple) {
  auto key = catalog.FindKey(relation);
  if (!key.has_value()) {
    return false;
  }
  const Relation* rel = db.FindRelation(relation);
  if (rel == nullptr || rel->empty()) {
    return false;
  }
  std::vector<std::string> key_attrs(key->attrs.begin(), key->attrs.end());
  const Relation::Index& index = rel->GetIndex(key_attrs);
  Result<std::vector<size_t>> indices = rel->schema().IndicesOf(key_attrs);
  if (!indices.ok()) {
    return true;
  }
  return index.find(tuple.Project(*indices)) != index.end();
}

}  // namespace

Result<Database> GenerateRandomDatabase(std::shared_ptr<const Catalog> catalog,
                                        Rng* rng,
                                        const RandomDbOptions& options) {
  Database db(catalog);
  for (const std::string& name : catalog->RelationNames()) {
    DWC_RETURN_IF_ERROR(
        db.AddEmptyRelation(name, *catalog->FindSchema(name)));
  }
  // Reverse topological order: IND right-hand sides first.
  std::vector<std::string> order = catalog->IndTopologicalOrder();
  std::reverse(order.begin(), order.end());
  for (const std::string& name : order) {
    size_t target = options.min_tuples +
                    rng->Below(options.max_tuples - options.min_tuples + 1);
    Relation* rel = db.FindMutableRelation(name);
    size_t attempts = 0;
    while (rel->size() < target && attempts < target * 8) {
      ++attempts;
      Result<Tuple> tuple = BuildTuple(db, *catalog, name, rng, options);
      if (!tuple.ok()) {
        return tuple.status();
      }
      if (ViolatesKey(db, *catalog, name, *tuple)) {
        continue;
      }
      rel->Insert(std::move(tuple).value());
    }
  }
  DWC_RETURN_IF_ERROR(db.ValidateConstraints());
  return db;
}

Result<Tuple> GenerateInsertableTuple(const Database& db,
                                      const std::string& relation, Rng* rng,
                                      const RandomDbOptions& options) {
  const Catalog& catalog = db.catalog();
  if (!catalog.HasRelation(relation)) {
    return Status::NotFound(StrCat("unknown relation '", relation, "'"));
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    DWC_ASSIGN_OR_RETURN(Tuple tuple,
                         BuildTuple(db, catalog, relation, rng, options));
    if (!ViolatesKey(db, catalog, relation, tuple)) {
      return tuple;
    }
  }
  return Status::NotFound(
      StrCat("could not generate a key-unique tuple for ", relation,
             " (domain exhausted?)"));
}

}  // namespace dwc
