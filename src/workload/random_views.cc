#include "workload/random_views.h"

#include <algorithm>

#include "algebra/schema_inference.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Attribute names shared by `schema` and any schema in `names`.
bool SharesAttrs(const Catalog& catalog, const std::string& candidate,
                 const std::vector<std::string>& chosen) {
  const Schema* cs = catalog.FindSchema(candidate);
  for (const std::string& name : chosen) {
    const Schema* schema = catalog.FindSchema(name);
    for (const Attribute& attr : cs->attributes()) {
      if (schema->Contains(attr.name)) {
        return true;
      }
    }
  }
  return false;
}

Value RandomConstFor(ValueType type, Rng* rng, int64_t domain) {
  switch (type) {
    case ValueType::kInt:
      return Value::Int(rng->Range(0, domain - 1));
    case ValueType::kDouble:
      return Value::Double(static_cast<double>(rng->Range(0, domain - 1)) +
                           0.5);
    case ValueType::kString:
      return Value::String(StrCat("s", rng->Range(0, domain - 1)));
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

PredicateRef RandomComparison(const Schema& schema, Rng* rng, int64_t domain) {
  const Attribute& attr =
      schema.attribute(rng->Below(schema.size()));
  // Mostly equalities (selective), occasionally ranges on ints.
  if (attr.type == ValueType::kInt && rng->Chance(0.4)) {
    CmpOp op = rng->Chance(0.5) ? CmpOp::kLe : CmpOp::kGe;
    return Predicate::Cmp(Operand::Attr(attr.name), op,
                          Operand::Const(Value::Int(rng->Range(0, domain - 1))));
  }
  return Predicate::AttrEq(attr.name, RandomConstFor(attr.type, rng, domain));
}

}  // namespace

Result<std::vector<ViewDef>> GenerateRandomPsjViews(
    const Catalog& catalog, Rng* rng, const RandomViewOptions& options) {
  std::vector<std::string> relations = catalog.RelationNames();
  if (relations.empty()) {
    return Status::InvalidArgument("catalog has no relations");
  }
  size_t n_views =
      options.min_views + rng->Below(options.max_views - options.min_views + 1);
  std::vector<ViewDef> views;
  for (size_t v = 0; v < n_views; ++v) {
    // Grow a connected set of bases.
    std::vector<std::string> bases;
    bases.push_back(relations[rng->Below(relations.size())]);
    size_t want = 1 + rng->Below(options.max_bases_per_view);
    while (bases.size() < want) {
      std::vector<std::string> candidates;
      for (const std::string& name : relations) {
        if (std::find(bases.begin(), bases.end(), name) != bases.end()) {
          continue;
        }
        if (SharesAttrs(catalog, name, bases)) {
          candidates.push_back(name);
        }
      }
      if (candidates.empty()) {
        break;
      }
      bases.push_back(candidates[rng->Below(candidates.size())]);
    }

    std::vector<ExprRef> leaves;
    leaves.reserve(bases.size());
    AttrSet full_attrs;
    for (const std::string& base : bases) {
      leaves.push_back(Expr::Base(base));
      AttrSet names = catalog.FindSchema(base)->attr_names();
      full_attrs.insert(names.begin(), names.end());
    }
    ExprRef expr = Expr::JoinAll(leaves);

    if (rng->Chance(options.select_probability)) {
      // Predicate over the full join schema (any attribute works).
      std::vector<Attribute> attrs;
      for (const std::string& base : bases) {
        for (const Attribute& attr : catalog.FindSchema(base)->attributes()) {
          if (std::none_of(attrs.begin(), attrs.end(),
                           [&attr](const Attribute& a) {
                             return a.name == attr.name;
                           })) {
            attrs.push_back(attr);
          }
        }
      }
      Schema join_schema(attrs);
      expr = Expr::Select(RandomComparison(join_schema, rng, options.int_domain),
                          expr);
    }

    if (rng->Chance(options.project_probability)) {
      AttrSet keep;
      if (options.keep_keys) {
        for (const std::string& base : bases) {
          auto key = catalog.FindKey(base);
          if (key.has_value()) {
            keep.insert(key->attrs.begin(), key->attrs.end());
          }
        }
      }
      for (const std::string& attr : full_attrs) {
        if (rng->Chance(options.keep_attr_probability)) {
          keep.insert(attr);
        }
      }
      if (keep.empty()) {
        keep.insert(*full_attrs.begin());
      }
      if (keep != full_attrs) {
        expr = Expr::Project(
            std::vector<std::string>(keep.begin(), keep.end()), expr);
      }
    }
    views.push_back(ViewDef{StrCat("V", v + 1), std::move(expr)});
  }
  return views;
}

Result<ExprRef> GenerateRandomQuery(const Catalog& catalog, Rng* rng,
                                    const RandomQueryOptions& options) {
  std::vector<std::string> relations = catalog.RelationNames();
  if (relations.empty()) {
    return Status::InvalidArgument("catalog has no relations");
  }
  SchemaResolver resolver = ResolverFromCatalog(catalog);

  // Recursive generator; returns a type-correct expression.
  auto gen = [&](auto&& self, size_t depth) -> Result<ExprRef> {
    if (depth == 0 || rng->Chance(0.35)) {
      return Expr::Base(relations[rng->Below(relations.size())]);
    }
    switch (rng->Below(5)) {
      case 0: {  // select
        DWC_ASSIGN_OR_RETURN(ExprRef child, self(self, depth - 1));
        DWC_ASSIGN_OR_RETURN(Schema schema, InferSchema(*child, resolver));
        return Expr::Select(RandomComparison(schema, rng, options.int_domain),
                            child);
      }
      case 1: {  // project
        DWC_ASSIGN_OR_RETURN(ExprRef child, self(self, depth - 1));
        DWC_ASSIGN_OR_RETURN(Schema schema, InferSchema(*child, resolver));
        std::vector<std::string> keep;
        for (const Attribute& attr : schema.attributes()) {
          if (rng->Chance(0.6)) {
            keep.push_back(attr.name);
          }
        }
        if (keep.empty()) {
          keep.push_back(schema.attribute(0).name);
        }
        return Expr::Project(std::move(keep), child);
      }
      case 2: {  // join
        DWC_ASSIGN_OR_RETURN(ExprRef left, self(self, depth - 1));
        DWC_ASSIGN_OR_RETURN(ExprRef right, self(self, depth - 1));
        return Expr::Join(left, right);
      }
      default: {  // union / difference of common projections
        DWC_ASSIGN_OR_RETURN(ExprRef left, self(self, depth - 1));
        DWC_ASSIGN_OR_RETURN(ExprRef right, self(self, depth - 1));
        DWC_ASSIGN_OR_RETURN(Schema ls, InferSchema(*left, resolver));
        DWC_ASSIGN_OR_RETURN(Schema rs, InferSchema(*right, resolver));
        std::vector<std::string> common = ls.CommonWith(rs);
        // Drop attributes whose types disagree (union needs matching types).
        std::vector<std::string> usable;
        for (const std::string& name : common) {
          size_t li = *ls.IndexOf(name);
          size_t ri = *rs.IndexOf(name);
          if (ls.attribute(li).type == rs.attribute(ri).type) {
            usable.push_back(name);
          }
        }
        if (usable.empty()) {
          return left;  // No common attributes: fall back to the left arm.
        }
        ExprRef lp = Expr::Project(usable, left);
        ExprRef rp = Expr::Project(usable, right);
        return rng->Chance(0.5) ? Expr::Union(lp, rp)
                                : Expr::Difference(lp, rp);
      }
    }
  };
  return gen(gen, options.max_depth);
}

}  // namespace dwc
