#include "warehouse/persistence.h"

#include "parser/interpreter.h"
#include "parser/script_io.h"
#include "util/string_util.h"

namespace dwc {

Result<std::string> WarehouseToScript(const Warehouse& warehouse) {
  // Complements and inverses are *derived* artifacts: only the catalog, the
  // base state (exactly recoverable through W^-1, Proposition 2.1), the view
  // definitions and the summary definitions need to be written.
  DWC_ASSIGN_OR_RETURN(Database bases, warehouse.ReconstructSources());
  std::string script = CatalogToScript(warehouse.spec().catalog());
  script += DatabaseToScript(bases);
  for (const ViewDef& view : warehouse.spec().views()) {
    script += ViewToScript(view);
  }
  // Aggregates are reachable through the evaluation environment: any bound
  // name that is not a warehouse relation is a summary table.
  Environment env = warehouse.Env();
  for (const auto& [name, rel] : env.bindings()) {
    (void)rel;
    if (warehouse.spec().FindWarehouseSchema(name) != nullptr) {
      continue;
    }
    const AggregateView* aggregate = warehouse.FindAggregate(name);
    if (aggregate != nullptr) {
      script += SummaryToScript(aggregate->def());
    }
  }
  return script;
}

Result<RestoredWarehouse> WarehouseFromScript(
    const std::string& script, MaintenanceStrategy strategy,
    const ComplementOptions& options) {
  DWC_ASSIGN_OR_RETURN(ScriptContext context, RunScript(script));
  DWC_RETURN_IF_ERROR(context.db.ValidateConstraints());
  DWC_ASSIGN_OR_RETURN(
      WarehouseSpec spec,
      SpecifyWarehouse(context.catalog, context.views, options));
  RestoredWarehouse restored;
  restored.spec = std::make_shared<WarehouseSpec>(std::move(spec));
  restored.source = std::make_unique<Source>(std::move(context.db));
  DWC_ASSIGN_OR_RETURN(
      Warehouse warehouse,
      Warehouse::Load(restored.spec, restored.source->db(), strategy));
  restored.warehouse = std::make_unique<Warehouse>(std::move(warehouse));
  for (const AggregateViewDef& def : context.summaries) {
    DWC_RETURN_IF_ERROR(restored.warehouse->AddAggregateView(def));
  }
  return restored;
}

void DeltaJournal::Account(uint64_t epoch, uint64_t sequence, bool is_note) {
  if (sequence == 0) {
    return;  // Unsequenced records carry no watermark.
  }
  if (!has_first_) {
    has_first_ = true;
    first_ = {epoch, sequence};
    first_is_note_ = is_note;
  } else if (!is_note) {
    // A journaled record must continue the previous watermark exactly; a
    // NoteConsumed may jump (it is an explicit acknowledgment).
    bool continues =
        (epoch == last_.epoch && sequence == last_.sequence + 1) ||
        (epoch > last_.epoch && sequence == 1);
    if (!continues) {
      contiguous_ = false;
    }
  }
  if (epoch > last_.epoch ||
      (epoch == last_.epoch && sequence > last_.sequence)) {
    last_ = {epoch, sequence};
  }
}

void DeltaJournal::Append(const CanonicalDelta& delta) {
  script_ += DeltaToScript(delta);
  ++entries_;
  Account(delta.epoch, delta.sequence, /*is_note=*/false);
}

void DeltaJournal::AppendScript(std::string_view delta_script, uint64_t epoch,
                                uint64_t sequence) {
  script_ += delta_script;
  ++entries_;
  Account(epoch, sequence, /*is_note=*/false);
}

void DeltaJournal::NoteConsumed(uint64_t epoch, uint64_t sequence) {
  Account(epoch, sequence, /*is_note=*/true);
}

namespace {

// Shared validation + replay core of the two RecoverWarehouse overloads.
Result<RestoredWarehouse> RecoverValidated(
    const std::string& checkpoint_script, const DeltaJournal& journal,
    const JournalStamp* stamp, MaintenanceStrategy strategy,
    const ComplementOptions& options) {
  if (!journal.contiguous()) {
    return Status::FailedPrecondition(
        "journal has an internal sequence gap: a DELTA record between two "
        "surviving records was lost; refusing to replay a torn journal");
  }
  if (stamp != nullptr && journal.has_sequenced()) {
    const JournalStamp first = journal.first();
    bool continues;
    if (journal.first_is_note()) {
      // An acknowledged jump only has to land past the stamp.
      continues = first.epoch > stamp->epoch ||
                  (first.epoch == stamp->epoch &&
                   first.sequence > stamp->sequence);
    } else {
      continues =
          (first.epoch == stamp->epoch &&
           first.sequence == stamp->sequence + 1) ||
          (first.epoch > stamp->epoch && first.sequence == 1);
    }
    if (!continues) {
      return Status::FailedPrecondition(StrCat(
          "journal does not continue the checkpoint: checkpoint stamp is "
          "epoch ", stamp->epoch, " seq ", stamp->sequence,
          " but the journal's first record is epoch ", first.epoch, " seq ",
          first.sequence,
          "; deltas between checkpoint and journal were lost"));
    }
  }
  return WarehouseFromScript(checkpoint_script + journal.script(), strategy,
                             options);
}

}  // namespace

Result<RestoredWarehouse> RecoverWarehouse(
    const std::string& checkpoint_script, const DeltaJournal& journal,
    MaintenanceStrategy strategy, const ComplementOptions& options) {
  return RecoverValidated(checkpoint_script, journal, /*stamp=*/nullptr,
                          strategy, options);
}

Result<RestoredWarehouse> RecoverWarehouse(
    const std::string& checkpoint_script, const DeltaJournal& journal,
    const JournalStamp& stamp, MaintenanceStrategy strategy,
    const ComplementOptions& options) {
  return RecoverValidated(checkpoint_script, journal, &stamp, strategy,
                          options);
}

}  // namespace dwc
