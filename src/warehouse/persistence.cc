#include "warehouse/persistence.h"

#include "parser/interpreter.h"
#include "parser/script_io.h"

namespace dwc {

Result<std::string> WarehouseToScript(const Warehouse& warehouse) {
  // Complements and inverses are *derived* artifacts: only the catalog, the
  // base state (exactly recoverable through W^-1, Proposition 2.1), the view
  // definitions and the summary definitions need to be written.
  DWC_ASSIGN_OR_RETURN(Database bases, warehouse.ReconstructSources());
  std::string script = CatalogToScript(warehouse.spec().catalog());
  script += DatabaseToScript(bases);
  for (const ViewDef& view : warehouse.spec().views()) {
    script += ViewToScript(view);
  }
  // Aggregates are reachable through the evaluation environment: any bound
  // name that is not a warehouse relation is a summary table.
  Environment env = warehouse.Env();
  for (const auto& [name, rel] : env.bindings()) {
    (void)rel;
    if (warehouse.spec().FindWarehouseSchema(name) != nullptr) {
      continue;
    }
    const AggregateView* aggregate = warehouse.FindAggregate(name);
    if (aggregate != nullptr) {
      script += SummaryToScript(aggregate->def());
    }
  }
  return script;
}

Result<RestoredWarehouse> WarehouseFromScript(
    const std::string& script, MaintenanceStrategy strategy,
    const ComplementOptions& options) {
  DWC_ASSIGN_OR_RETURN(ScriptContext context, RunScript(script));
  DWC_RETURN_IF_ERROR(context.db.ValidateConstraints());
  DWC_ASSIGN_OR_RETURN(
      WarehouseSpec spec,
      SpecifyWarehouse(context.catalog, context.views, options));
  RestoredWarehouse restored;
  restored.spec = std::make_shared<WarehouseSpec>(std::move(spec));
  restored.source = std::make_unique<Source>(std::move(context.db));
  DWC_ASSIGN_OR_RETURN(
      Warehouse warehouse,
      Warehouse::Load(restored.spec, restored.source->db(), strategy));
  restored.warehouse = std::make_unique<Warehouse>(std::move(warehouse));
  for (const AggregateViewDef& def : context.summaries) {
    DWC_RETURN_IF_ERROR(restored.warehouse->AddAggregateView(def));
  }
  return restored;
}

void DeltaJournal::Append(const CanonicalDelta& delta) {
  script_ += DeltaToScript(delta);
  ++entries_;
}

Result<RestoredWarehouse> RecoverWarehouse(
    const std::string& checkpoint_script, const DeltaJournal& journal,
    MaintenanceStrategy strategy, const ComplementOptions& options) {
  return WarehouseFromScript(checkpoint_script + journal.script(), strategy,
                             options);
}

}  // namespace dwc
