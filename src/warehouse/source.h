#ifndef DWC_WAREHOUSE_SOURCE_H_
#define DWC_WAREHOUSE_SOURCE_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "relational/database.h"
#include "util/result.h"
#include "warehouse/update.h"

namespace dwc {

// Simulates the operational source databases: decoupled from the warehouse,
// they apply updates locally and *report* canonical deltas. They also expose
// an ad-hoc query interface — the expensive channel the paper's whole
// construction exists to avoid — which counts every access so tests and
// benchmarks can assert (or measure) source traffic.
class Source {
 public:
  explicit Source(Database db) : db_(std::move(db)) {}

  const Database& db() const { return db_; }
  Database& mutable_db() { return db_; }

  // Applies `op` and returns the canonical delta to report to the
  // integrator. Fails if the relation is unknown or a tuple is malformed.
  Result<CanonicalDelta> Apply(const UpdateOp& op);

  // Applies `ops` sequentially as one transaction and returns the *net*
  // canonical deltas relative to the pre-transaction state, merged to at
  // most one delta per relation (delete-then-reinsert and
  // insert-then-delete sequences cancel). Feed the result to
  // Warehouse::IntegrateTransaction.
  Result<std::vector<CanonicalDelta>> ApplyTransaction(
      const std::vector<UpdateOp>& ops);

  // Ad-hoc query service (dashed arrows in Figure 1). Each call increments
  // query_count(): an update-independent warehouse never triggers it.
  Result<Relation> AnswerQuery(const ExprRef& query) const;

  size_t query_count() const { return query_count_; }
  void ResetQueryCount() { query_count_ = 0; }

 private:
  Database db_;
  mutable size_t query_count_ = 0;
};

}  // namespace dwc

#endif  // DWC_WAREHOUSE_SOURCE_H_
