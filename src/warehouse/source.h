#ifndef DWC_WAREHOUSE_SOURCE_H_
#define DWC_WAREHOUSE_SOURCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "relational/database.h"
#include "util/checksum.h"
#include "util/result.h"
#include "warehouse/update.h"

namespace dwc {

// Simulates the operational source databases: decoupled from the warehouse,
// they apply updates locally and *report* canonical deltas. They also expose
// an ad-hoc query interface — the expensive channel the paper's whole
// construction exists to avoid — which counts every access so tests and
// benchmarks can assert (or measure) source traffic.
//
// Reported deltas are stamped with a delivery envelope (source id, epoch,
// monotone sequence number, post-state digest — see CanonicalDelta) so a
// downstream DeltaChannel/DeltaIngestor pair can detect duplicated, dropped,
// reordered and corrupted deliveries. Updates are atomic: a failing op (or a
// failing op inside a transaction) leaves the source state exactly as it was.
class Source {
 public:
  explicit Source(Database db, std::string source_id = "")
      : db_(std::move(db)), source_id_(std::move(source_id)), digest_(db_) {}

  const Database& db() const { return db_; }
  // Direct mutation bypasses the delta envelope; call RefreshDigest()
  // afterwards if sequenced delivery is in use.
  Database& mutable_db() { return db_; }

  const std::string& source_id() const { return source_id_; }
  void set_source_id(std::string id) { source_id_ = std::move(id); }

  // Applies `op` and returns the canonical delta to report to the
  // integrator. Fails if the relation is unknown or a tuple is malformed;
  // every tuple is validated before anything mutates, so a failure leaves
  // the source untouched.
  Result<CanonicalDelta> Apply(const UpdateOp& op);

  // Applies `ops` sequentially as one transaction and returns the *net*
  // canonical deltas relative to the pre-transaction state, merged to at
  // most one delta per relation (delete-then-reinsert and
  // insert-then-delete sequences cancel). Feed the result to
  // Warehouse::IntegrateTransaction. On any error the pre-transaction state
  // is restored (the already-applied prefix is rolled back).
  Result<std::vector<CanonicalDelta>> ApplyTransaction(
      const std::vector<UpdateOp>& ops);

  // Ad-hoc query service (dashed arrows in Figure 1). Each call increments
  // query_count(): an update-independent warehouse never triggers it.
  Result<Relation> AnswerQuery(const ExprRef& query) const;

  size_t query_count() const {
    return query_count_.load(std::memory_order_relaxed);
  }
  void ResetQueryCount() { query_count_.store(0, std::memory_order_relaxed); }

  // Fault injection for outage drills: when set, every AnswerQuery call
  // consults the hook first and propagates a non-Ok status instead of
  // answering (the query still counts — a failed RPC is still source
  // traffic). Pass an empty function to restore service. Toggle only from
  // the thread driving integrations; the query path itself stays const.
  void set_outage_hook(std::function<Status()> hook) {
    outage_hook_ = std::move(hook);
  }

  // Delivery-envelope state. `last_sequence` is the highest sequence number
  // stamped in the current epoch; `last_sequence_for` the highest one that
  // touched `relation` (the watermark a targeted resync hands back).
  uint64_t epoch() const { return epoch_; }
  uint64_t last_sequence() const { return next_sequence_ - 1; }
  uint64_t last_sequence_for(const std::string& relation) const;

  // Starts a new epoch (models a source restart/resync): the sequence
  // counter rewinds to the beginning of the new epoch.
  void BeginEpoch();

  // Recomputes the incremental per-relation digests from db_ — required
  // after external mutation through mutable_db().
  void RefreshDigest() { digest_.Reset(db_); }
  const StateDigest& digest() const { return digest_; }

 private:
  // Stamps the envelope onto a freshly produced non-empty delta.
  void StampEnvelope(CanonicalDelta* delta);

  Database db_;
  std::string source_id_;
  StateDigest digest_;
  uint64_t epoch_ = 1;
  uint64_t next_sequence_ = 1;
  std::map<std::string, uint64_t> relation_watermark_;
  mutable std::atomic<size_t> query_count_ = 0;
  std::function<Status()> outage_hook_;
};

}  // namespace dwc

#endif  // DWC_WAREHOUSE_SOURCE_H_
