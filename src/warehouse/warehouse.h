#ifndef DWC_WAREHOUSE_WAREHOUSE_H_
#define DWC_WAREHOUSE_WAREHOUSE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "aggregate/aggregate_view.h"
#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "analysis/selfmaint.h"
#include "core/query_translation.h"
#include "core/warehouse_spec.h"
#include "maintenance/plan.h"
#include "relational/database.h"
#include "util/result.h"
#include "warehouse/epoch.h"
#include "warehouse/source.h"
#include "warehouse/update.h"

namespace dwc {

// How the integrator refreshes the warehouse when a source reports a delta.
enum class MaintenanceStrategy {
  // Evaluate the precomputed incremental maintenance expressions against the
  // old warehouse state plus the delta (the paper's approach; zero source
  // queries, O(|delta|)-ish work).
  kIncremental,
  // Reconstruct all base relations through W^-1, apply the delta, recompute
  // every warehouse relation from scratch. Still zero source queries (update
  // independent), but O(|database|) per refresh. The paper's Section 4
  // "not feasible ... to recompute from scratch" strawman; used as the
  // second baseline in bench/bench_maintenance.cc.
  kRecomputeFromInverse,
  // Recompute the warehouse by querying the sources (the traditional,
  // non-self-maintainable integrator). Requires a live Source; every refresh
  // increments its query counter. First baseline in the benchmarks.
  kQuerySource,
};

const char* MaintenanceStrategyName(MaintenanceStrategy strategy);

// A running warehouse: the materialized state of W = V ∪ C plus the machinery
// to answer translated queries and integrate reported source deltas.
//
// Concurrency model (see warehouse/epoch.h and DESIGN.md §12): one writer —
// whoever drives Integrate/IntegrateTransaction/ResetFromSources/
// AddAggregateView — plus any number of concurrent reader threads going
// through PinSnapshot/AnswerQuery/AnswerQueryAt. Every successful state
// transition publishes a new snapshot epoch as its final act; readers
// evaluate against the pinned epoch's frozen version set and never observe a
// half-applied integration. Configuration setters (SetEvaluatorOptions,
// SetEpochOptions, set_validate_deltas, ...) are writer-side: call them
// before concurrent serving starts. All other accessors that touch `state()`
// directly (FindRelation, Env, ReconstructSources, ...) read the writer's
// live state and are not synchronized against it.
class Warehouse {
 public:
  // Materializes all warehouse relations from the initial source state and
  // (for kIncremental) derives the maintenance plan.
  static Result<Warehouse> Load(std::shared_ptr<const WarehouseSpec> spec,
                                const Database& sources,
                                MaintenanceStrategy strategy =
                                    MaintenanceStrategy::kIncremental);

  // A copied warehouse is an independent store: deep-copied state (fresh
  // relation uids), its own epoch timeline starting at 1, shared subplan
  // cache (safe: fresh uids can never falsely hit the original's entries).
  Warehouse(const Warehouse& other)
      : spec_(other.spec_), strategy_(other.strategy_) {
    CopyFrom(other);
  }
  Warehouse& operator=(const Warehouse& other) {
    if (this != &other) {
      CopyFrom(other);
    }
    return *this;
  }
  Warehouse(Warehouse&&) noexcept = default;
  Warehouse& operator=(Warehouse&&) noexcept = default;

  const WarehouseSpec& spec() const { return *spec_; }
  MaintenanceStrategy strategy() const { return strategy_; }
  const MaintenancePlan& plan() const { return plan_; }

  // Materialized warehouse relation by name; nullptr when absent.
  const Relation* FindRelation(const std::string& name) const {
    return state_.FindRelation(name);
  }
  const Database& state() const { return state_; }

  // Integrates one reported delta. `source` is only consulted under
  // kQuerySource (pass nullptr otherwise).
  Status Integrate(const CanonicalDelta& delta, const Source* source = nullptr);

  // Integrates a multi-relation transaction atomically: all deltas are
  // treated as one state transition (maintenance expressions are derived
  // for the simultaneous update — Theorem 4.1 places no single-relation
  // restriction on u). Deltas must be canonical relative to the pre-
  // transaction state and carry at most one entry per relation
  // (Source::ApplyTransaction produces exactly this form).
  Status IntegrateTransaction(const std::vector<CanonicalDelta>& deltas,
                              const Source* source = nullptr);

  // Registers a summary table (Section 5's OLAP layer) over warehouse
  // relations and materializes it from the current state. Under
  // kIncremental it is maintained from the exact deltas of its source
  // expression; under the other strategies it is re-initialized per
  // refresh. The materialized aggregate is visible to AnswerQuery under its
  // name.
  Status AddAggregateView(AggregateViewDef def);
  // nullptr when absent.
  const AggregateView* FindAggregate(const std::string& name) const;

  // Pins the current snapshot epoch. The handle's version set (all
  // warehouse relations + aggregate views) stays frozen and readable for
  // the handle's lifetime, no matter how many integrations commit
  // meanwhile. Readers on other threads use this + AnswerQueryAt.
  SnapshotHandle PinSnapshot() const { return epochs_->Pin(); }

  // Answers a query over the *base* relations using warehouse data only
  // (Theorem 3.1: translate through W^-1, evaluate locally). Queries may
  // also reference warehouse views and aggregate views by name. When
  // `stats` is non-null it receives the evaluator's EXPLAIN counters.
  // Pins the current epoch for the duration of the call; safe to invoke
  // from any thread concurrently with an in-flight integration.
  //
  // `cancel` (borrowed; may be null) makes the evaluation deadline-,
  // budget- and cancel-bounded: a fired token surfaces as DeadlineExceeded
  // / ResourceExhausted / Aborted, the partial result is discarded, the
  // snapshot pin is released (RAII), and the subplan cache is untouched
  // (only successful evaluations are ever inserted). See DESIGN.md §13.
  Result<Relation> AnswerQuery(const ExprRef& query,
                               EvalStats* stats = nullptr,
                               const CancelToken* cancel = nullptr) const;

  // AnswerQuery against an explicitly pinned epoch: the result reflects
  // exactly that epoch's committed state. Fails with Status::Aborted once
  // the snapshot has been shed by the epoch-lag backpressure policy.
  Result<Relation> AnswerQueryAt(const SnapshotHandle& snapshot,
                                 const ExprRef& query,
                                 EvalStats* stats = nullptr,
                                 const CancelToken* cancel = nullptr) const;

  // Snapshot-epoch observability. current_epoch() is the number of the
  // most recently published epoch (1 right after Load; +1 per committed
  // state transition; distinct from the *delivery* epochs on
  // CanonicalDelta envelopes).
  uint64_t current_epoch() const { return epochs_->current_epoch(); }
  EpochStats epoch_stats() const { return epochs_->stats(); }
  // Reclamation/backpressure knobs (writer-side; see EpochOptions).
  void SetEpochOptions(const EpochOptions& options) {
    epochs_->set_options(options);
  }
  void SetShedCallback(EpochManager::ShedCallback callback) {
    epochs_->set_shed_callback(std::move(callback));
  }

  // Rebuilds the full base database state through W^-1 (Proposition 2.1's
  // one-to-one mapping, inverted). Used by consistency checks and tests.
  Result<Database> ReconstructSources() const;

  // Rebuilds one base relation through its inverse expression (aligned to
  // the declared schema). NotFound when the base has no inverse — e.g. a
  // partial warehouse. Used by delta validation and the recovery ladder's
  // targeted resync (ingest.h).
  Result<Relation> ReconstructBase(const std::string& name) const;

  // Rung 3 of the recovery ladder (ingest.h): rematerializes every
  // warehouse relation from a fresh copy of the base state and
  // re-initializes the aggregates, abandoning whatever the current state
  // holds. Leaves the old state in place on failure.
  Status ResetFromSources(const Database& sources);

  // When enabled, Integrate/IntegrateTransaction reconstruct each affected
  // base through W^-1 and reject non-canonical deltas (an insert already
  // present, or a delete of an absent tuple) before touching any state.
  // Off by default: the check costs O(|base|) per refresh, which would
  // forfeit the O(|delta|) incremental story on trusted channels; the
  // fault-tolerant ingestion layer and the tests enable it.
  void set_validate_deltas(bool validate) { validate_deltas_ = validate; }
  bool validate_deltas() const { return validate_deltas_; }

  // Execution knobs for every evaluator this warehouse constructs (parallel
  // kernel thread count, morsel sizing, pushdown thresholds, subplan-cache
  // budget). Takes effect for subsequent operations; neither thread count
  // nor cache budget ever changes results (see EvaluatorOptions).
  void SetEvaluatorOptions(const EvaluatorOptions& options) {
    evaluator_options_ = options;
    subplan_cache_->set_budget(options.cache_budget_tuples);
  }
  const EvaluatorOptions& evaluator_options() const {
    return evaluator_options_;
  }

  // Evaluator counters accumulated during the most recent
  // Integrate/IntegrateTransaction call, with every parallel task's stats
  // merged in (EvalStats::MergeFrom). Returns a copy taken under the stats
  // mutex, so it is safe to call from any thread while an integration is
  // in flight (the copy is the last *finished* integration's view).
  EvalStats last_integrate_stats() const {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    return last_integrate_stats_;
  }
  // The snapshot epoch published by that integration (0 when the last
  // integration didn't publish — e.g. it failed — or none ran yet). Lets a
  // monitor correlate the counters with exactly one committed state.
  uint64_t last_integrate_epoch() const {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    return last_integrate_epoch_;
  }

  // Debug cross-check of the static analyzer (src/analysis/): after each
  // integration, if the evaluators touched source-tagged bindings
  // (EvalStats::source_reads > 0) but no certificate for an affected
  // (base, delta-kind) admits SOURCE maintenance, the integration fails
  // loudly with Status::Internal — a SELF/COMPLEMENT certificate was
  // violated at runtime. Pass nullptr to disable (the default; the check
  // is for tests and debugging, not the hot path).
  void EnforceCertificates(std::shared_ptr<const SelfMaintReport> report) {
    certificates_ = std::move(report);
  }
  const SelfMaintReport* certificates() const { return certificates_.get(); }

  // The subplan recycler cache shared by every evaluator this warehouse
  // constructs (see algebra/subplan_cache.h). Purely derived state: it is
  // never checkpointed and starts cold after DurableWarehouse::Resume.
  // Inert until SetEvaluatorOptions grants a nonzero cache_budget_tuples.
  const SubplanCache& subplan_cache() const { return *subplan_cache_; }

  // Testing hook for the crash-injection harness: invoked with a step index
  // that increases through each integration call; a non-OK return aborts
  // integration at exactly that internal step, simulating a crash whose
  // partial state is then discarded by checkpoint + journal recovery
  // (persistence.h). Pass nullptr to clear.
  void SetIntegrationHook(std::function<Status(int)> hook) {
    integration_hook_ = std::move(hook);
  }

  // An evaluation environment over the warehouse state (including
  // materialized aggregate views). Writer-side: binds the live state, not
  // a snapshot.
  Environment Env() const {
    Environment env = Environment::FromDatabase(state_);
    for (const auto& [name, view] : aggregates_) {
      env.Bind(name, &view.materialized());
    }
    return env;
  }

 private:
  Warehouse(std::shared_ptr<const WarehouseSpec> spec,
            MaintenanceStrategy strategy)
      : spec_(std::move(spec)), strategy_(strategy) {}

  void CopyFrom(const Warehouse& other);

  Status IntegrateIncremental(const CanonicalDelta& delta);
  Status IntegrateRecompute(const std::vector<const CanonicalDelta*>& deltas);
  Status IntegrateQuerySource(const Source& source);
  // Shared entry checks: known base relation, and (when enabled) canonical
  // form against the W^-1-reconstructed base. Resets the hook step counter.
  Status BeginIntegration(const std::vector<const CanonicalDelta*>& deltas);
  // Crash-injection hook call site; no-op without a hook installed.
  Status HookStep() {
    return integration_hook_ ? integration_hook_(hook_step_++) : Status::Ok();
  }
  // Shared incremental core: evaluates `per_relation_plan` against the old
  // state with every delta bound, applies the results, then folds summary
  // tables.
  Status ApplyPlanned(const std::map<std::string, DeltaPair>& per_relation_plan,
                      const std::vector<const CanonicalDelta*>& deltas);
  // The EnforceCertificates() cross-check; Ok when no report is installed.
  Status CheckCertificates(
      const std::vector<const CanonicalDelta*>& deltas) const;

  // Materializes all warehouse relations from an environment that binds the
  // base relations, writing into `state_` (replacing existing relations).
  // Does not publish: callers publish on overall success.
  Status MaterializeFrom(const Environment& base_env);

  // The frozen version set of the current live state (relations +
  // aggregate tables), ready to publish as an epoch.
  EpochManager::VersionSet CurrentVersions() const;
  // Publishes the live state as the next snapshot epoch and tags the
  // last-integrate stats with it. Every successful state transition ends
  // here (or in ApplyPlanned's Commit::Publish).
  void PublishCurrent();

  void ResetIntegrateStats() {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    last_integrate_stats_ = EvalStats();
    last_integrate_epoch_ = 0;
  }
  void MergeIntegrateStats(const EvalStats& stats) {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    last_integrate_stats_.MergeFrom(stats);
  }
  void TagIntegrateEpoch(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(*stats_mu_);
    last_integrate_epoch_ = epoch;
  }

  // Every evaluator the warehouse runs is wired to the spec's interner and
  // this warehouse's subplan cache (a no-op while the budget is 0).
  Evaluator MakeEvaluator(const Environment* env) const {
    return Evaluator(env, evaluator_options_, spec_->interner().get(),
                     subplan_cache_.get());
  }
  // Same, with a per-operation cancellation token layered onto the
  // warehouse-wide options (the query path; integrations stay ungoverned
  // here — admission control bounds them before they start).
  Evaluator MakeEvaluator(const Environment* env,
                          const CancelToken* cancel) const {
    EvaluatorOptions options = evaluator_options_;
    options.cancel = cancel;
    return Evaluator(env, options, spec_->interner().get(),
                     subplan_cache_.get());
  }
  // Rebuilds every aggregate view from the current state.
  Status ReinitializeAggregates();

  std::shared_ptr<const WarehouseSpec> spec_;
  MaintenanceStrategy strategy_;
  MaintenancePlan plan_;
  Database state_;
  std::map<std::string, AggregateView> aggregates_;
  // Cached source-delta expressions per (aggregate, set of changed
  // warehouse relations), keyed by "<aggregate>|<rel1>,<rel2>".
  std::map<std::string, DeltaPair> aggregate_delta_cache_;
  // Cached transaction plans keyed by the comma-joined sorted base set.
  std::map<std::string, std::map<std::string, DeltaPair>> transaction_plans_;
  EvaluatorOptions evaluator_options_;
  // Held by pointer so Warehouse stays movable/copyable (the cache embeds a
  // mutex). A copied warehouse shares the cache storage, which is safe: its
  // relations carry fresh uids, so it can never falsely hit the original's
  // entries. AnswerQuery and the reconstruction helpers are logically const
  // but still recycle (and populate) cached subplans.
  std::shared_ptr<SubplanCache> subplan_cache_ =
      std::make_shared<SubplanCache>();
  // Snapshot-epoch timeline (warehouse/epoch.h). shared_ptr: snapshot
  // handles keep the manager alive even past the warehouse, and the
  // warehouse stays movable.
  std::shared_ptr<EpochManager> epochs_ = std::make_shared<EpochManager>();
  // Guards last_integrate_stats_/last_integrate_epoch_ against concurrent
  // monitor reads while the writer integrates. Heap-held so the warehouse
  // stays movable.
  std::shared_ptr<std::mutex> stats_mu_ = std::make_shared<std::mutex>();
  EvalStats last_integrate_stats_;
  uint64_t last_integrate_epoch_ = 0;
  std::shared_ptr<const SelfMaintReport> certificates_;
  bool validate_deltas_ = false;
  std::function<Status(int)> integration_hook_;
  int hook_step_ = 0;
};

// Verifies that every warehouse relation equals its definition evaluated on
// `sources` (the ground truth): the dashed-arrow check in Figure 3.
Status CheckConsistency(const Warehouse& warehouse, const Database& sources);

}  // namespace dwc

#endif  // DWC_WAREHOUSE_WAREHOUSE_H_
