#include "warehouse/source.h"

#include <map>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "util/string_util.h"

namespace dwc {

uint64_t DeltaPayloadDigest(const CanonicalDelta& delta) {
  uint64_t h = StringDigest(delta.relation);
  h = Mix64(h ^ StringDigest(delta.source_id));
  h = Mix64(h ^ delta.epoch);
  h = Mix64(h ^ delta.sequence);
  h = Mix64(h ^ delta.state_digest);
  // Distinct constants keep "insert t" and "delete t" from cancelling.
  h = Mix64(h ^ (RelationDigest(delta.inserts) + 0x71D67FFFEDA60000ULL));
  h = Mix64(h ^ (RelationDigest(delta.deletes) + 0xFFF7EEE000000001ULL));
  return h;
}

namespace {

// Validation half of validate-then-apply: every tuple of `op` checked
// against the schema before any mutation.
Status ValidateOp(const UpdateOp& op, const Relation& rel) {
  for (const std::vector<Tuple>* tuples : {&op.deletes, &op.inserts}) {
    for (const Tuple& tuple : *tuples) {
      if (tuple.size() != rel.schema().size()) {
        return Status::InvalidArgument(
            StrCat("tuple ", tuple.ToString(), " does not match schema of ",
                   op.relation));
      }
    }
  }
  return Status::Ok();
}

// Mutation half: cannot fail once ValidateOp passed. Produces the canonical
// per-op delta (only tuples that actually changed the state, with
// delete-then-reinsert pairs cancelled).
CanonicalDelta ApplyValidated(const UpdateOp& op, Relation* rel) {
  CanonicalDelta delta;
  delta.relation = op.relation;
  delta.inserts = Relation(rel->schema());
  delta.deletes = Relation(rel->schema());
  for (const Tuple& tuple : op.deletes) {
    if (rel->Erase(tuple)) {
      delta.deletes.Insert(tuple);
    }
  }
  for (const Tuple& tuple : op.inserts) {
    if (rel->Insert(tuple)) {
      delta.inserts.Insert(tuple);
    }
  }
  // Cancel delete-then-reinsert pairs: the net effect is no change, and the
  // maintenance expressions rely on canonical deltas (inserts disjoint from
  // the old state, deletes contained in it).
  std::vector<Tuple> cancelled;
  for (const Tuple& tuple : delta.inserts.tuples()) {
    if (delta.deletes.Contains(tuple)) {
      cancelled.push_back(tuple);
    }
  }
  for (const Tuple& tuple : cancelled) {
    delta.inserts.Erase(tuple);
    delta.deletes.Erase(tuple);
  }
  return delta;
}

// Undoes a canonical delta against its relation (exact inverse: the delta's
// inserts were new and its deletes were present).
void UndoDelta(const CanonicalDelta& delta, Relation* rel) {
  for (const Tuple& tuple : delta.inserts.tuples()) {
    rel->Erase(tuple);
  }
  for (const Tuple& tuple : delta.deletes.tuples()) {
    rel->Insert(tuple);
  }
}

}  // namespace

void Source::StampEnvelope(CanonicalDelta* delta) {
  delta->source_id = source_id_;
  delta->epoch = epoch_;
  delta->sequence = next_sequence_++;
  delta->state_digest = digest_.Get(delta->relation);
  delta->payload_digest = DeltaPayloadDigest(*delta);
  relation_watermark_[delta->relation] = delta->sequence;
}

uint64_t Source::last_sequence_for(const std::string& relation) const {
  auto it = relation_watermark_.find(relation);
  return it == relation_watermark_.end() ? 0 : it->second;
}

void Source::BeginEpoch() {
  ++epoch_;
  next_sequence_ = 1;
  relation_watermark_.clear();
}

Result<CanonicalDelta> Source::Apply(const UpdateOp& op) {
  Relation* rel = db_.FindMutableRelation(op.relation);
  if (rel == nullptr) {
    return Status::NotFound(
        StrCat("source relation '", op.relation, "' does not exist"));
  }
  DWC_RETURN_IF_ERROR(ValidateOp(op, *rel));
  CanonicalDelta delta = ApplyValidated(op, rel);
  if (!delta.empty()) {
    digest_.Apply(delta.relation, delta.inserts, delta.deletes);
    StampEnvelope(&delta);
  }
  return delta;
}

Result<std::vector<CanonicalDelta>> Source::ApplyTransaction(
    const std::vector<UpdateOp>& ops) {
  // Net deltas per relation; composition keeps them canonical relative to
  // the pre-transaction state. Steps apply unstamped — only the net deltas
  // consume sequence numbers, and their digests must describe the
  // post-transaction state, not intermediate ones.
  std::map<std::string, CanonicalDelta> net;
  std::vector<CanonicalDelta> applied;  // Undo log, in application order.
  for (const UpdateOp& op : ops) {
    Relation* rel = db_.FindMutableRelation(op.relation);
    Status status =
        rel == nullptr
            ? Status::NotFound(StrCat("source relation '", op.relation,
                                      "' does not exist"))
            : ValidateOp(op, *rel);
    if (!status.ok()) {
      // Restore the pre-transaction state: undo the applied prefix in
      // reverse order.
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        UndoDelta(*it, db_.FindMutableRelation(it->relation));
      }
      return status;
    }
    CanonicalDelta step = ApplyValidated(op, rel);
    applied.push_back(step);
    auto it = net.find(step.relation);
    if (it == net.end()) {
      std::string relation = step.relation;
      net.emplace(std::move(relation), std::move(step));
      continue;
    }
    CanonicalDelta& acc = it->second;
    for (const Tuple& tuple : step.deletes.tuples()) {
      // Deleting something this transaction inserted cancels; deleting a
      // pre-transaction tuple records.
      if (!acc.inserts.Erase(tuple)) {
        acc.deletes.Insert(tuple);
      }
    }
    for (const Tuple& tuple : step.inserts.tuples()) {
      if (!acc.deletes.Erase(tuple)) {
        acc.inserts.Insert(tuple);
      }
    }
  }
  std::vector<CanonicalDelta> result;
  for (auto& [relation, delta] : net) {
    (void)relation;
    if (!delta.empty()) {
      digest_.Apply(delta.relation, delta.inserts, delta.deletes);
      StampEnvelope(&delta);
      result.push_back(std::move(delta));
    }
  }
  return result;
}

Result<Relation> Source::AnswerQuery(const ExprRef& query) const {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (outage_hook_) {
    DWC_RETURN_IF_ERROR(outage_hook_());
  }
  Environment env = Environment::FromDatabase(db_);
  return EvalExpr(*query, env);
}

}  // namespace dwc
