#include "warehouse/source.h"

#include <map>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "util/string_util.h"

namespace dwc {

Result<CanonicalDelta> Source::Apply(const UpdateOp& op) {
  Relation* rel = db_.FindMutableRelation(op.relation);
  if (rel == nullptr) {
    return Status::NotFound(
        StrCat("source relation '", op.relation, "' does not exist"));
  }
  CanonicalDelta delta;
  delta.relation = op.relation;
  delta.inserts = Relation(rel->schema());
  delta.deletes = Relation(rel->schema());
  for (const Tuple& tuple : op.deletes) {
    if (tuple.size() != rel->schema().size()) {
      return Status::InvalidArgument(
          StrCat("tuple ", tuple.ToString(), " does not match schema of ",
                 op.relation));
    }
    if (rel->Erase(tuple)) {
      delta.deletes.Insert(tuple);
    }
  }
  for (const Tuple& tuple : op.inserts) {
    if (tuple.size() != rel->schema().size()) {
      return Status::InvalidArgument(
          StrCat("tuple ", tuple.ToString(), " does not match schema of ",
                 op.relation));
    }
    if (rel->Insert(tuple)) {
      delta.inserts.Insert(tuple);
    }
  }
  // Cancel delete-then-reinsert pairs: the net effect is no change, and the
  // maintenance expressions rely on canonical deltas (inserts disjoint from
  // the old state, deletes contained in it).
  std::vector<Tuple> cancelled;
  for (const Tuple& tuple : delta.inserts.tuples()) {
    if (delta.deletes.Contains(tuple)) {
      cancelled.push_back(tuple);
    }
  }
  for (const Tuple& tuple : cancelled) {
    delta.inserts.Erase(tuple);
    delta.deletes.Erase(tuple);
  }
  return delta;
}

Result<std::vector<CanonicalDelta>> Source::ApplyTransaction(
    const std::vector<UpdateOp>& ops) {
  // Net deltas per relation; composition keeps them canonical relative to
  // the pre-transaction state.
  std::map<std::string, CanonicalDelta> net;
  for (const UpdateOp& op : ops) {
    DWC_ASSIGN_OR_RETURN(CanonicalDelta step, Apply(op));
    auto it = net.find(step.relation);
    if (it == net.end()) {
      std::string relation = step.relation;
      net.emplace(std::move(relation), std::move(step));
      continue;
    }
    CanonicalDelta& acc = it->second;
    for (const Tuple& tuple : step.deletes.tuples()) {
      // Deleting something this transaction inserted cancels; deleting a
      // pre-transaction tuple records.
      if (!acc.inserts.Erase(tuple)) {
        acc.deletes.Insert(tuple);
      }
    }
    for (const Tuple& tuple : step.inserts.tuples()) {
      if (!acc.deletes.Erase(tuple)) {
        acc.inserts.Insert(tuple);
      }
    }
  }
  std::vector<CanonicalDelta> result;
  for (auto& [relation, delta] : net) {
    (void)relation;
    if (!delta.empty()) {
      result.push_back(std::move(delta));
    }
  }
  return result;
}

Result<Relation> Source::AnswerQuery(const ExprRef& query) const {
  ++query_count_;
  Environment env = Environment::FromDatabase(db_);
  return EvalExpr(*query, env);
}

}  // namespace dwc
