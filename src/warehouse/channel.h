#ifndef DWC_WAREHOUSE_CHANNEL_H_
#define DWC_WAREHOUSE_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

#include "util/result.h"
#include "util/rng.h"
#include "warehouse/update.h"

namespace dwc {

// Fault model for the delta transport between a Source and the integrator.
// All rates are per delivery attempt (first transmission and retransmission
// alike); everything is driven by one seeded Rng, so a (profile, seed,
// update stream) triple reproduces the exact same fault pattern.
struct FaultProfile {
  double drop_rate = 0.0;       // Delta silently lost.
  double duplicate_rate = 0.0;  // Delta delivered twice.
  double reorder_rate = 0.0;    // Delta delayed behind later traffic.
  double corrupt_rate = 0.0;    // Payload or envelope mutated in flight.
  // A delayed delta overtakes at most this many later ones — the bound the
  // ingestor's reorder buffer is sized against.
  size_t reorder_window = 4;
  uint64_t seed = 0;

  bool faultless() const {
    return drop_rate == 0 && duplicate_rate == 0 && reorder_rate == 0 &&
           corrupt_rate == 0;
  }
};

// Delivery counters, from the channel's own (omniscient) viewpoint. Tests
// cross-check these against what the ingestor *detected*.
struct ChannelStats {
  size_t sent = 0;
  size_t delivered = 0;
  size_t dropped = 0;
  size_t duplicated = 0;
  size_t reordered = 0;
  size_t corrupted = 0;
  size_t retransmit_requests = 0;
  size_t retransmit_failures = 0;

  std::string ToString() const;
};

// The lossy pipe between one Source and the warehouse. Send() logs the
// pristine delta (the source's outbox — what a real reporter keeps until
// acknowledged) and enqueues a delivery on which the fault profile acts;
// Poll() hands the integrator the next delivery. Retransmit() models the
// cheap dashed re-request arrow for a single sequence number: it re-sends
// from the outbox log, again subject to drop/corrupt faults, so the
// ingestor's capped-retry ladder has something real to climb.
class DeltaChannel {
 public:
  explicit DeltaChannel(FaultProfile profile = FaultProfile())
      : profile_(profile), rng_(profile.seed ^ 0xC4A11EDB17ULL) {}

  // Queues a sequenced delta for delivery. Empty/unsequenced deltas are not
  // sent (a source reports nothing for a no-op update).
  void Send(const CanonicalDelta& delta);

  // Next delivered delta, faults applied; nullopt once the pipe is drained.
  std::optional<CanonicalDelta> Poll();

  // True when no deliveries are pending (dropped deltas leave no trace).
  bool drained() const { return in_flight_.empty(); }

  // Re-request of (epoch, sequence) against the outbox log. Fails when the
  // log no longer holds the sequence (TruncateLog, or a pre-attachment
  // delta) or when the re-delivery is itself dropped; a corrupted
  // re-delivery is returned corrupted, like any delivery.
  Result<CanonicalDelta> Retransmit(uint64_t epoch, uint64_t sequence);

  // Testing: forget the outbox log, forcing retransmissions to fail and the
  // ingestor to escalate to source resync.
  void TruncateLog() { log_.clear(); }

  const ChannelStats& stats() const { return stats_; }

 private:
  // Applies in-flight faults to one delivery attempt; false = dropped.
  bool Deliver(const CanonicalDelta& delta, bool retransmission);
  void Corrupt(CanonicalDelta* delta);

  FaultProfile profile_;
  Rng rng_;
  std::deque<CanonicalDelta> in_flight_;
  // Reordered deliveries: held back until `countdown` later sends have
  // passed (or the pipe otherwise drains), bounding how far a delta can be
  // overtaken to profile_.reorder_window.
  struct Delayed {
    CanonicalDelta delta;
    size_t countdown;
  };
  std::deque<Delayed> delayed_;
  std::map<std::pair<uint64_t, uint64_t>, CanonicalDelta> log_;
  ChannelStats stats_;
};

}  // namespace dwc

#endif  // DWC_WAREHOUSE_CHANNEL_H_
