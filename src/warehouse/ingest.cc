#include "warehouse/ingest.h"

#include "util/string_util.h"

namespace dwc {

std::string IntegrationStats::ToString() const {
  return StrCat("applied=", applied, " deduped=", deduped,
                " reordered=", reordered, " corrupt_dropped=", corrupt_dropped,
                " stale_dropped=", stale_dropped,
                " gaps_detected=", gaps_detected,
                " divergences=", divergences,
                " retransmit_attempts=", retransmit_attempts,
                " retransmits=", retransmits, " backoff_ticks=", backoff_ticks,
                " base_resyncs=", base_resyncs, " full_resyncs=", full_resyncs,
                " source_queries=", source_queries);
}

DeltaIngestor::DeltaIngestor(Warehouse* warehouse, Source* source,
                             DeltaChannel* channel, RetryPolicy policy)
    : warehouse_(warehouse),
      source_(source),
      channel_(channel),
      policy_(policy),
      epoch_(source->epoch()),
      next_seq_(source->last_sequence() + 1),
      digest_(source->digest()) {}

uint64_t DeltaIngestor::FloorFor(const std::string& relation) const {
  auto it = floor_.find(relation);
  return it == floor_.end() ? 0 : it->second;
}

Status DeltaIngestor::FireCommit(CommitEvent::Kind kind,
                                 const CanonicalDelta* delta,
                                 uint64_t sequence) {
  if (!commit_hook_) {
    return Status::Ok();
  }
  CommitEvent event;
  event.kind = kind;
  event.delta = delta;
  event.epoch = epoch_;
  event.sequence = sequence;
  return commit_hook_(event);
}

void DeltaIngestor::AdvancePast(uint64_t watermark) {
  if (watermark + 1 > next_seq_) {
    next_seq_ = watermark + 1;
  }
  while (!buffer_.empty() && buffer_.begin()->first < next_seq_) {
    buffer_.erase(buffer_.begin());
    ++stats_.stale_dropped;
  }
}

Status DeltaIngestor::Receive(const CanonicalDelta& delta) {
  if (!delta.sequenced()) {
    return Status::InvalidArgument(
        "the ingestor only accepts sequenced deltas (Source stamps them)");
  }
  if (delta.epoch < epoch_) {
    ++stats_.stale_dropped;
    return Status::Ok();
  }
  if (delta.epoch > epoch_) {
    // Source restarted into a new epoch: the old stream is void.
    epoch_ = delta.epoch;
    next_seq_ = 1;
    stats_.stale_dropped += buffer_.size();
    buffer_.clear();
    floor_.clear();
  }
  if (!DeltaPayloadIntact(delta)) {
    // Damaged in flight — anywhere: payload, envelope, or the checksum
    // itself. Drop it; the sequence hole is recovered like a plain loss.
    // (If the sequence field itself was damaged, re-requesting the damaged
    // number would chase a ghost; the true number surfaces as a gap.)
    ++stats_.corrupt_dropped;
    return Status::Ok();
  }
  if (delta.sequence < next_seq_) {
    ++stats_.deduped;
    return Status::Ok();
  }
  if (delta.sequence > next_seq_) {
    auto [it, inserted] = buffer_.emplace(delta.sequence, delta);
    (void)it;
    if (!inserted) {
      ++stats_.deduped;
      return Status::Ok();
    }
    if (delta.sequence > next_seq_ + policy_.reorder_slack ||
        buffer_.size() > policy_.reorder_slack) {
      // The hole is older than any reordering bound allows: confirmed gap.
      DWC_RETURN_IF_ERROR(RecoverMissing());
    }
    return Status::Ok();
  }
  DWC_RETURN_IF_ERROR(TryApply(delta, /*from_buffer=*/false));
  return DrainBuffer();
}

Status DeltaIngestor::Drain() {
  for (std::optional<CanonicalDelta> delta = channel_->Poll(); delta;
       delta = channel_->Poll()) {
    DWC_RETURN_IF_ERROR(Receive(*delta));
  }
  // End-of-stream reconciliation. The source's sequence watermark is the
  // protocol's ack frame: every sequence at or below it was reported, so
  // anything not yet consumed is a confirmed gap (a trailing drop leaves no
  // other trace). RecoverMissing always advances next_seq_, so this
  // terminates.
  while (epoch_ == source_->epoch() && next_seq_ <= source_->last_sequence()) {
    DWC_RETURN_IF_ERROR(RecoverMissing());
  }
  return Status::Ok();
}

Status DeltaIngestor::TryApply(const CanonicalDelta& delta, bool from_buffer) {
  // Invariant: delta.sequence == next_seq_, payload intact, current epoch.
  if (delta.sequence <= FloorFor(delta.relation)) {
    // A resync already folded this delta's effect in; consume the sequence
    // number without re-applying.
    ++stats_.stale_dropped;
    ++next_seq_;
    return FireCommit(CommitEvent::Kind::kSkip, nullptr, delta.sequence);
  }
  // Divergence probe before mutating anything: applying the delta to the
  // state we believe the source had must land on the digest the source
  // stamped. The checksum was verified, so a mismatch means *our* state is
  // wrong — re-requesting the same bytes cannot help; go straight to the
  // ladder's resync rung.
  uint64_t candidate = digest_.Get(delta.relation);
  for (const Tuple& tuple : delta.inserts.tuples()) {
    candidate ^= TupleDigest(tuple);
  }
  for (const Tuple& tuple : delta.deletes.tuples()) {
    candidate ^= TupleDigest(tuple);
  }
  if (candidate != delta.state_digest) {
    ++stats_.divergences;
    Status status = ResyncBase(delta.relation);
    if (!status.ok()) {
      DWC_RETURN_IF_ERROR(FullResync());
    }
    // The resync brought the base to source-now, which includes this
    // delta's effect; its floor (or the full-resync watermark) now covers
    // it, so consume the sequence.
    ++next_seq_;
    return FireCommit(CommitEvent::Kind::kSkip, nullptr, delta.sequence);
  }
  Status status = warehouse_->Integrate(delta, source_);
  if (!status.ok()) {
    // In-order, intact, digest-matched deltas should integrate; treat a
    // refusal as divergence and repair through the ladder.
    ++stats_.divergences;
    Status resync = ResyncBase(delta.relation);
    if (!resync.ok()) {
      DWC_RETURN_IF_ERROR(FullResync());
    }
    ++next_seq_;
    return FireCommit(CommitEvent::Kind::kSkip, nullptr, delta.sequence);
  }
  digest_.Apply(delta.relation, delta.inserts, delta.deletes);
  ++stats_.applied;
  if (from_buffer) {
    ++stats_.reordered;
  }
  ++next_seq_;
  return FireCommit(CommitEvent::Kind::kDelta, &delta, delta.sequence);
}

Status DeltaIngestor::DrainBuffer() {
  while (!buffer_.empty()) {
    auto it = buffer_.begin();
    if (it->first < next_seq_) {
      buffer_.erase(it);
      ++stats_.stale_dropped;
      continue;
    }
    if (it->first != next_seq_) {
      break;
    }
    CanonicalDelta delta = std::move(it->second);
    buffer_.erase(it);
    DWC_RETURN_IF_ERROR(TryApply(delta, /*from_buffer=*/true));
  }
  return Status::Ok();
}

Status DeltaIngestor::RecoverMissing() {
  ++stats_.gaps_detected;
  const uint64_t missing = next_seq_;
  // Rung 1: targeted re-request, capped retries, deterministic exponential
  // backoff (simulated ticks — reproducible, clockless).
  for (int attempt = 0; attempt < policy_.max_retries; ++attempt) {
    ++stats_.retransmit_attempts;
    stats_.backoff_ticks += policy_.base_backoff << attempt;
    Result<CanonicalDelta> again = channel_->Retransmit(epoch_, missing);
    if (!again.ok()) {
      continue;  // Lost again, or fell off the outbox log; retry.
    }
    if (!DeltaPayloadIntact(*again) || again->sequence != missing ||
        again->epoch != epoch_) {
      ++stats_.corrupt_dropped;
      continue;
    }
    ++stats_.retransmits;
    DWC_RETURN_IF_ERROR(TryApply(*again, /*from_buffer=*/false));
    return DrainBuffer();
  }
  // Rungs 2/3: the lost delta's relation is unknown, so reconcile digests
  // against the source and repair exactly what differs.
  DWC_RETURN_IF_ERROR(Resync());
  return DrainBuffer();
}

Status DeltaIngestor::ResyncBase(const std::string& relation) {
  ++stats_.base_resyncs;
  ++stats_.source_queries;
  DWC_ASSIGN_OR_RETURN(Relation actual,
                       source_->AnswerQuery(Expr::Base(relation)));
  DWC_ASSIGN_OR_RETURN(Relation mine, warehouse_->ReconstructBase(relation));
  DWC_ASSIGN_OR_RETURN(Relation truth, actual.AlignTo(mine.schema()));
  // Corrective canonical delta: what the source has that we don't, minus
  // what we have that it doesn't.
  CanonicalDelta corrective;
  corrective.relation = relation;
  corrective.inserts = Relation(mine.schema());
  corrective.deletes = Relation(mine.schema());
  for (const Tuple& tuple : truth.tuples()) {
    if (!mine.Contains(tuple)) {
      corrective.inserts.Insert(tuple);
    }
  }
  for (const Tuple& tuple : mine.tuples()) {
    if (!truth.Contains(tuple)) {
      corrective.deletes.Insert(tuple);
    }
  }
  if (!corrective.empty()) {
    DWC_RETURN_IF_ERROR(warehouse_->Integrate(corrective, source_));
    // The corrective delta is ordinary replayable history: logged
    // unsequenced (the watermark jump it enables is reported separately).
    DWC_RETURN_IF_ERROR(
        FireCommit(CommitEvent::Kind::kDelta, &corrective, 0));
  }
  digest_.SetRelation(relation, truth);
  // Everything the source ever reported for this base is now folded in;
  // in-flight deltas at or below the watermark are superseded.
  floor_[relation] = source_->last_sequence_for(relation);
  return Status::Ok();
}

Status DeltaIngestor::Resync() {
  // Cheap out-of-band digest exchange (the Merkle-handshake of the
  // protocol), then per-base corrections for exactly the differing bases.
  const StateDigest& truth = source_->digest();
  for (const auto& [name, theirs] : truth.digests()) {
    if (!warehouse_->spec().catalog().HasRelation(name)) {
      continue;  // Source relations outside this warehouse's scope.
    }
    if (digest_.Get(name) == theirs) {
      continue;
    }
    Status status = ResyncBase(name);
    if (!status.ok()) {
      return FullResync();
    }
  }
  AdvancePast(source_->last_sequence());
  return FireCommit(CommitEvent::Kind::kResync, nullptr, next_seq_ - 1);
}

Status DeltaIngestor::FullResync() {
  ++stats_.full_resyncs;
  Database fresh;
  for (const auto& [name, rel] : source_->db().relations()) {
    (void)rel;
    if (!warehouse_->spec().catalog().HasRelation(name)) {
      continue;
    }
    ++stats_.source_queries;
    DWC_ASSIGN_OR_RETURN(Relation copy, source_->AnswerQuery(Expr::Base(name)));
    digest_.SetRelation(name, copy);
    DWC_RETURN_IF_ERROR(fresh.AddRelation(name, std::move(copy)));
    floor_[name] = source_->last_sequence_for(name);
  }
  DWC_RETURN_IF_ERROR(warehouse_->ResetFromSources(fresh));
  AdvancePast(source_->last_sequence());
  // A reset is not replayable from logged deltas (it came from source
  // queries): the hook must take a fresh checkpoint.
  return FireCommit(CommitEvent::Kind::kReset, nullptr, next_seq_ - 1);
}

}  // namespace dwc
