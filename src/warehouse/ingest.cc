#include "warehouse/ingest.h"

#include "util/string_util.h"

namespace dwc {

std::string IntegrationStats::ToString() const {
  return StrCat("applied=", applied, " deduped=", deduped,
                " reordered=", reordered, " corrupt_dropped=", corrupt_dropped,
                " stale_dropped=", stale_dropped,
                " gaps_detected=", gaps_detected,
                " divergences=", divergences,
                " retransmit_attempts=", retransmit_attempts,
                " retransmits=", retransmits, " backoff_ticks=", backoff_ticks,
                " base_resyncs=", base_resyncs, " full_resyncs=", full_resyncs,
                " source_queries=", source_queries,
                " resync_failures=", resync_failures,
                " breaker_deferred=", breaker_deferred);
}

DeltaIngestor::DeltaIngestor(Warehouse* warehouse, Source* source,
                             DeltaChannel* channel, RetryPolicy policy)
    : warehouse_(warehouse),
      source_(source),
      channel_(channel),
      policy_(policy),
      epoch_(source->epoch()),
      next_seq_(source->last_sequence() + 1),
      digest_(source->digest()),
      breaker_(policy_.breaker) {}

uint64_t DeltaIngestor::FloorFor(const std::string& relation) const {
  auto it = floor_.find(relation);
  return it == floor_.end() ? 0 : it->second;
}

Status DeltaIngestor::FireCommit(CommitEvent::Kind kind,
                                 const CanonicalDelta* delta,
                                 uint64_t sequence) {
  if (!commit_hook_) {
    return Status::Ok();
  }
  CommitEvent event;
  event.kind = kind;
  event.delta = delta;
  event.epoch = epoch_;
  event.sequence = sequence;
  return commit_hook_(event);
}

void DeltaIngestor::AdvancePast(uint64_t watermark) {
  if (watermark + 1 > next_seq_) {
    next_seq_ = watermark + 1;
  }
  while (!buffer_.empty() && buffer_.begin()->first < next_seq_) {
    buffer_.erase(buffer_.begin());
    ++stats_.stale_dropped;
  }
}

Status DeltaIngestor::GuardedRepair(const std::function<Status()>& rung,
                                    bool* deferred) {
  *deferred = false;
  if (!breaker_.AllowProbe()) {
    ++stats_.breaker_deferred;
    *deferred = true;
    return Status::Ok();
  }
  source_query_failed_ = false;
  Status status = rung();
  if (status.ok()) {
    breaker_.RecordSuccess();
    return Status::Ok();
  }
  if (source_query_failed_) {
    // The source itself refused or failed: breaker fodder, not fatal. The
    // repair defers exactly as if the breaker had been open.
    ++stats_.resync_failures;
    breaker_.RecordFailure();
    ++stats_.breaker_deferred;
    *deferred = true;
    return Status::Ok();
  }
  return status;
}

Status DeltaIngestor::Receive(const CanonicalDelta& delta) {
  breaker_.Tick();
  if (!delta.sequenced()) {
    return Status::InvalidArgument(
        "the ingestor only accepts sequenced deltas (Source stamps them)");
  }
  if (delta.epoch < epoch_) {
    ++stats_.stale_dropped;
    return Status::Ok();
  }
  if (delta.epoch > epoch_) {
    // Source restarted into a new epoch: the old stream is void.
    epoch_ = delta.epoch;
    next_seq_ = 1;
    stats_.stale_dropped += buffer_.size();
    buffer_.clear();
    floor_.clear();
  }
  if (!DeltaPayloadIntact(delta)) {
    // Damaged in flight — anywhere: payload, envelope, or the checksum
    // itself. Drop it; the sequence hole is recovered like a plain loss.
    // (If the sequence field itself was damaged, re-requesting the damaged
    // number would chase a ghost; the true number surfaces as a gap.)
    ++stats_.corrupt_dropped;
    return Status::Ok();
  }
  if (delta.sequence < next_seq_) {
    ++stats_.deduped;
    return Status::Ok();
  }
  if (delta.sequence > next_seq_) {
    auto [it, inserted] = buffer_.emplace(delta.sequence, delta);
    (void)it;
    if (!inserted) {
      ++stats_.deduped;
      return Status::Ok();
    }
    if (delta.sequence > next_seq_ + policy_.reorder_slack ||
        buffer_.size() > policy_.reorder_slack) {
      // The hole is older than any reordering bound allows: confirmed gap.
      DWC_RETURN_IF_ERROR(RecoverMissing());
    }
    return Status::Ok();
  }
  DWC_RETURN_IF_ERROR(TryApply(delta, /*from_buffer=*/false));
  if (apply_deferred_) {
    return Status::Ok();
  }
  return DrainBuffer();
}

Status DeltaIngestor::Drain() {
  breaker_.Tick();
  for (std::optional<CanonicalDelta> delta = channel_->Poll(); delta;
       delta = channel_->Poll()) {
    DWC_RETURN_IF_ERROR(Receive(*delta));
  }
  // End-of-stream reconciliation. The source's sequence watermark is the
  // protocol's ack frame: every sequence at or below it was reported, so
  // anything not yet consumed is a confirmed gap (a trailing drop leaves no
  // other trace). RecoverMissing advances next_seq_ except when a repair is
  // deferred behind the open breaker — then stop and let a later Drain
  // (after the half-open probe) pick the backlog up.
  while (epoch_ == source_->epoch() && next_seq_ <= source_->last_sequence()) {
    const uint64_t before = next_seq_;
    DWC_RETURN_IF_ERROR(RecoverMissing());
    if (next_seq_ == before) {
      break;
    }
  }
  return Status::Ok();
}

Status DeltaIngestor::TryApply(const CanonicalDelta& delta, bool from_buffer) {
  // Invariant: delta.sequence == next_seq_, payload intact, current epoch.
  apply_deferred_ = false;
  if (delta.sequence <= FloorFor(delta.relation)) {
    // A resync already folded this delta's effect in; consume the sequence
    // number without re-applying.
    ++stats_.stale_dropped;
    ++next_seq_;
    return FireCommit(CommitEvent::Kind::kSkip, nullptr, delta.sequence);
  }
  // Divergence probe before mutating anything: applying the delta to the
  // state we believe the source had must land on the digest the source
  // stamped. The checksum was verified, so a mismatch means *our* state is
  // wrong — re-requesting the same bytes cannot help; go straight to the
  // ladder's resync rung.
  uint64_t candidate = digest_.Get(delta.relation);
  for (const Tuple& tuple : delta.inserts.tuples()) {
    candidate ^= TupleDigest(tuple);
  }
  for (const Tuple& tuple : delta.deletes.tuples()) {
    candidate ^= TupleDigest(tuple);
  }
  if (candidate != delta.state_digest) {
    ++stats_.divergences;
    // A diverged belief for this base means others may be diverged too
    // (one storm drops deltas for many relations); repair them together —
    // Resync sweeps every differing base in one atomic correction.
    bool deferred = false;
    DWC_RETURN_IF_ERROR(GuardedRepair([this] { return Resync(); },
                                      &deferred));
    if (deferred) {
      // Park the delta back in the reorder buffer: the sequence is *not*
      // consumed, integration of other sources/relations proceeds, and the
      // backlog replays once the half-open probe restores the source.
      apply_deferred_ = true;
      buffer_.emplace(delta.sequence, delta);
      return Status::Ok();
    }
    // The resync brought every diverged base to source-now and advanced
    // the watermark past everything the source has stamped — including
    // this delta. Consume the sequence only if the jump somehow missed it.
    if (next_seq_ <= delta.sequence) {
      ++next_seq_;
      return FireCommit(CommitEvent::Kind::kSkip, nullptr, delta.sequence);
    }
    return Status::Ok();
  }
  Status status = warehouse_->Integrate(delta, source_);
  if (!status.ok()) {
    // In-order, intact, digest-matched deltas should integrate; treat a
    // refusal as divergence and repair through the ladder.
    ++stats_.divergences;
    bool deferred = false;
    DWC_RETURN_IF_ERROR(GuardedRepair([this] { return Resync(); },
                                      &deferred));
    if (deferred) {
      apply_deferred_ = true;
      buffer_.emplace(delta.sequence, delta);
      return Status::Ok();
    }
    if (next_seq_ <= delta.sequence) {
      ++next_seq_;
      return FireCommit(CommitEvent::Kind::kSkip, nullptr, delta.sequence);
    }
    return Status::Ok();
  }
  digest_.Apply(delta.relation, delta.inserts, delta.deletes);
  ++stats_.applied;
  if (from_buffer) {
    ++stats_.reordered;
  }
  ++next_seq_;
  return FireCommit(CommitEvent::Kind::kDelta, &delta, delta.sequence);
}

Status DeltaIngestor::DrainBuffer() {
  while (!buffer_.empty()) {
    auto it = buffer_.begin();
    if (it->first < next_seq_) {
      buffer_.erase(it);
      ++stats_.stale_dropped;
      continue;
    }
    if (it->first != next_seq_) {
      break;
    }
    CanonicalDelta delta = std::move(it->second);
    buffer_.erase(it);
    DWC_RETURN_IF_ERROR(TryApply(delta, /*from_buffer=*/true));
    if (apply_deferred_) {
      // The delta went back into the buffer; applying it needs a repair the
      // open breaker is deferring. Stop — retrying now would spin.
      break;
    }
  }
  return Status::Ok();
}

Status DeltaIngestor::RecoverMissing() {
  ++stats_.gaps_detected;
  const uint64_t missing = next_seq_;
  // Rung 1: targeted re-request, capped retries, deterministic exponential
  // backoff (simulated ticks — reproducible, clockless).
  for (int attempt = 0; attempt < policy_.max_retries; ++attempt) {
    ++stats_.retransmit_attempts;
    stats_.backoff_ticks += policy_.base_backoff << attempt;
    Result<CanonicalDelta> again = channel_->Retransmit(epoch_, missing);
    if (!again.ok()) {
      continue;  // Lost again, or fell off the outbox log; retry.
    }
    if (!DeltaPayloadIntact(*again) || again->sequence != missing ||
        again->epoch != epoch_) {
      ++stats_.corrupt_dropped;
      continue;
    }
    ++stats_.retransmits;
    DWC_RETURN_IF_ERROR(TryApply(*again, /*from_buffer=*/false));
    if (apply_deferred_) {
      return Status::Ok();
    }
    return DrainBuffer();
  }
  // Rungs 2/3: the lost delta's relation is unknown, so reconcile digests
  // against the source and repair exactly what differs.
  bool deferred = false;
  DWC_RETURN_IF_ERROR(GuardedRepair([this] { return Resync(); }, &deferred));
  if (deferred) {
    return Status::Ok();
  }
  return DrainBuffer();
}

Result<Relation> DeltaIngestor::QuerySource(const std::string& relation) {
  ++stats_.source_queries;
  Result<Relation> result = source_->AnswerQuery(Expr::Base(relation));
  if (!result.ok()) {
    source_query_failed_ = true;
  }
  return result;
}

Result<DeltaIngestor::BaseCorrection> DeltaIngestor::ComputeCorrection(
    const std::string& relation) {
  ++stats_.base_resyncs;
  DWC_ASSIGN_OR_RETURN(Relation actual, QuerySource(relation));
  DWC_ASSIGN_OR_RETURN(Relation mine, warehouse_->ReconstructBase(relation));
  DWC_ASSIGN_OR_RETURN(Relation truth, actual.AlignTo(mine.schema()));
  // Corrective canonical delta: what the source has that we don't, minus
  // what we have that it doesn't.
  CanonicalDelta corrective;
  corrective.relation = relation;
  corrective.inserts = Relation(mine.schema());
  corrective.deletes = Relation(mine.schema());
  for (const Tuple& tuple : truth.tuples()) {
    if (!mine.Contains(tuple)) {
      corrective.inserts.Insert(tuple);
    }
  }
  for (const Tuple& tuple : mine.tuples()) {
    if (!truth.Contains(tuple)) {
      corrective.deletes.Insert(tuple);
    }
  }
  return BaseCorrection{relation, std::move(corrective), std::move(truth)};
}

Status DeltaIngestor::Resync() {
  // Cheap out-of-band digest exchange (the Merkle-handshake of the
  // protocol), then per-base corrections for exactly the differing bases.
  const StateDigest& truth = source_->digest();
  std::vector<BaseCorrection> corrections;
  for (const auto& [name, theirs] : truth.digests()) {
    if (!warehouse_->spec().catalog().HasRelation(name)) {
      continue;  // Source relations outside this warehouse's scope.
    }
    if (digest_.Get(name) == theirs) {
      continue;
    }
    Result<BaseCorrection> correction = ComputeCorrection(name);
    if (!correction.ok()) {
      return FullResync();
    }
    corrections.push_back(std::move(correction).value());
  }
  // Fold every corrective in as ONE state transition. Integrating them
  // base-by-base would pick an arbitrary order, and a corrective for a
  // referencing base can carry tuples whose dimension rows arrive only in
  // a later corrective; the maintenance plans assume the spec's inclusion
  // dependencies, so those transiently dangling tuples would be silently
  // lost even though the joint post-resync state is consistent.
  std::vector<CanonicalDelta> correctives;
  for (const BaseCorrection& correction : corrections) {
    if (!correction.corrective.empty()) {
      correctives.push_back(correction.corrective);
    }
  }
  if (!correctives.empty()) {
    Status status = warehouse_->IntegrateTransaction(correctives, source_);
    if (!status.ok()) {
      return FullResync();
    }
    if (correctives.size() == 1) {
      // A lone corrective is ordinary replayable history: logged
      // unsequenced (the watermark jump it enables is reported
      // separately).
      DWC_RETURN_IF_ERROR(
          FireCommit(CommitEvent::Kind::kDelta, &correctives[0], 0));
    } else {
      // The journal has no transaction record, so a multi-base corrective
      // group cannot be replayed delta-by-delta without re-creating the
      // ordering hazard above. Report it as a reset: the storage layer
      // takes a fresh checkpoint of the (consistent) post-sweep state.
      DWC_RETURN_IF_ERROR(
          FireCommit(CommitEvent::Kind::kReset, nullptr, next_seq_ - 1));
    }
  }
  for (const BaseCorrection& correction : corrections) {
    digest_.SetRelation(correction.relation, correction.truth);
    // Everything the source ever reported for this base is now folded in;
    // in-flight deltas at or below the watermark are superseded.
    floor_[correction.relation] =
        source_->last_sequence_for(correction.relation);
  }
  AdvancePast(source_->last_sequence());
  return FireCommit(CommitEvent::Kind::kResync, nullptr, next_seq_ - 1);
}

Status DeltaIngestor::FullResync() {
  ++stats_.full_resyncs;
  Database fresh;
  for (const auto& [name, rel] : source_->db().relations()) {
    (void)rel;
    if (!warehouse_->spec().catalog().HasRelation(name)) {
      continue;
    }
    DWC_ASSIGN_OR_RETURN(Relation copy, QuerySource(name));
    digest_.SetRelation(name, copy);
    DWC_RETURN_IF_ERROR(fresh.AddRelation(name, std::move(copy)));
    floor_[name] = source_->last_sequence_for(name);
  }
  DWC_RETURN_IF_ERROR(warehouse_->ResetFromSources(fresh));
  AdvancePast(source_->last_sequence());
  // A reset is not replayable from logged deltas (it came from source
  // queries): the hook must take a fresh checkpoint.
  return FireCommit(CommitEvent::Kind::kReset, nullptr, next_seq_ - 1);
}

}  // namespace dwc
