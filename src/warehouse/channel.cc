#include "warehouse/channel.h"

#include "util/checksum.h"
#include "util/string_util.h"

namespace dwc {

std::string ChannelStats::ToString() const {
  return StrCat("sent=", sent, " delivered=", delivered, " dropped=", dropped,
                " duplicated=", duplicated, " reordered=", reordered,
                " corrupted=", corrupted,
                " retransmit_requests=", retransmit_requests,
                " retransmit_failures=", retransmit_failures);
}

void DeltaChannel::Corrupt(CanonicalDelta* delta) {
  ++stats_.corrupted;
  // Pick the corruption site: payload tuple, sequence, state digest, or the
  // checksum itself — the receiver must detect all four.
  switch (rng_.Below(4)) {
    case 0: {
      Relation* target = delta->inserts.empty() ? &delta->deletes
                                                : &delta->inserts;
      if (target->empty()) {
        delta->sequence += 1000;
        return;
      }
      std::vector<Tuple> tuples = target->SortedTuples();
      const Tuple& victim = tuples[rng_.Below(tuples.size())];
      std::vector<Value> values = victim.values();
      size_t i = rng_.Below(values.size());
      switch (values[i].type()) {
        case ValueType::kInt:
          values[i] = Value::Int(values[i].AsInt() + 1);
          break;
        case ValueType::kDouble:
          values[i] = Value::Double(values[i].AsDouble() + 1.0);
          break;
        case ValueType::kString:
          values[i] = Value::String(values[i].AsString() + "~");
          break;
        case ValueType::kNull:
          values[i] = Value::Int(13);
          break;
      }
      target->Erase(victim);
      target->Insert(Tuple(std::move(values)));
      return;
    }
    case 1:
      delta->sequence += 1000;
      return;
    case 2:
      delta->state_digest = Mix64(delta->state_digest + 1);
      return;
    default:
      delta->payload_digest = Mix64(delta->payload_digest + 1);
      return;
  }
}

bool DeltaChannel::Deliver(const CanonicalDelta& delta, bool retransmission) {
  if (rng_.Chance(profile_.drop_rate)) {
    ++stats_.dropped;
    return false;
  }
  CanonicalDelta copy = delta;
  if (rng_.Chance(profile_.corrupt_rate)) {
    Corrupt(&copy);
  }
  if (!retransmission && rng_.Chance(profile_.reorder_rate) &&
      profile_.reorder_window > 0) {
    ++stats_.reordered;
    delayed_.push_back(
        Delayed{std::move(copy), 1 + rng_.Below(profile_.reorder_window)});
  } else {
    in_flight_.push_back(std::move(copy));
  }
  return true;
}

void DeltaChannel::Send(const CanonicalDelta& delta) {
  if (delta.empty() || !delta.sequenced()) {
    return;
  }
  ++stats_.sent;
  log_.emplace(std::make_pair(delta.epoch, delta.sequence), delta);
  // Duplication forks an extra, independently-faulted delivery attempt.
  size_t copies = rng_.Chance(profile_.duplicate_rate) ? 2 : 1;
  if (copies == 2) {
    ++stats_.duplicated;
  }
  for (size_t i = 0; i < copies; ++i) {
    Deliver(delta, /*retransmission=*/false);
  }
  // A send pushes the stream forward: delayed deliveries it overtook get
  // one step closer to release.
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (--it->countdown == 0) {
      in_flight_.push_back(std::move(it->delta));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<CanonicalDelta> DeltaChannel::Poll() {
  if (in_flight_.empty() && !delayed_.empty()) {
    // The pipe idled out: everything still held back arrives now.
    for (Delayed& d : delayed_) {
      in_flight_.push_back(std::move(d.delta));
    }
    delayed_.clear();
  }
  if (in_flight_.empty()) {
    return std::nullopt;
  }
  CanonicalDelta next = std::move(in_flight_.front());
  in_flight_.pop_front();
  ++stats_.delivered;
  return next;
}

Result<CanonicalDelta> DeltaChannel::Retransmit(uint64_t epoch,
                                                uint64_t sequence) {
  ++stats_.retransmit_requests;
  auto it = log_.find(std::make_pair(epoch, sequence));
  if (it == log_.end()) {
    ++stats_.retransmit_failures;
    return Status::NotFound(
        StrCat("sequence ", sequence, " (epoch ", epoch,
               ") is no longer in the channel log"));
  }
  if (rng_.Chance(profile_.drop_rate)) {
    ++stats_.dropped;
    ++stats_.retransmit_failures;
    return Status::NotFound(
        StrCat("retransmission of sequence ", sequence, " was lost"));
  }
  CanonicalDelta copy = it->second;
  if (rng_.Chance(profile_.corrupt_rate)) {
    Corrupt(&copy);
  }
  return copy;
}

}  // namespace dwc
