#include "warehouse/epoch.h"

#include <utility>

#include "util/string_util.h"

namespace dwc {

std::string EpochStats::ToString() const {
  return StrCat("epoch=", current_epoch, " published=", published,
                " live_snapshots=", live_snapshots,
                " retired_epochs=", retired_epochs,
                " retired_versions=", retired_versions,
                " reclaimed_epochs=", reclaimed_epochs,
                " shed_snapshots=", shed_snapshots,
                " cow_commits=", cow_commits,
                " inplace_commits=", inplace_commits);
}

void SnapshotHandle::Release() {
  if (epoch_ != nullptr && manager_ != nullptr) {
    manager_->Unpin(epoch_);
  }
  epoch_.reset();
  manager_.reset();
}

const Relation* SnapshotHandle::Find(const std::string& name) const {
  if (!valid()) {
    return nullptr;
  }
  auto it = epoch_->relations.find(name);
  return it == epoch_->relations.end() ? nullptr : it->second.get();
}

const std::map<std::string, std::shared_ptr<const Relation>>&
SnapshotHandle::relations() const {
  static const std::map<std::string, std::shared_ptr<const Relation>> kEmpty;
  return valid() ? epoch_->relations : kEmpty;
}

SnapshotHandle EpochManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  if (epochs_.empty()) {
    return SnapshotHandle();
  }
  std::shared_ptr<epoch_internal::EpochRecord> current = epochs_.back();
  ++current->pins;
  ++live_pins_;
  return SnapshotHandle(shared_from_this(), std::move(current));
}

void EpochManager::Unpin(
    const std::shared_ptr<epoch_internal::EpochRecord>& epoch) {
  // Destroy reclaimed relation storage outside the lock: a large version
  // set's destructor must not extend the writer's critical section (or a
  // concurrent reader's Pin latency).
  std::vector<std::shared_ptr<epoch_internal::EpochRecord>> graveyard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --epoch->pins;
    --live_pins_;
    ReclaimLocked(&graveyard);
  }
}

EpochManager::Commit::~Commit() {
  if (manager_ != nullptr && !published_) {
    // Abort path: nothing was published, the previous epoch stays current.
    // Just drop the lock (if the in-place path held it).
    if (lock_.owns_lock()) {
      lock_.unlock();
    }
  }
}

void EpochManager::Commit::Publish(VersionSet versions) {
  std::vector<std::shared_ptr<epoch_internal::EpochRecord>> graveyard;
  std::vector<EpochManager::ShedEvent> shed_events;
  ShedCallback callback;
  {
    if (!lock_.owns_lock()) {
      lock_.lock();
    }
    manager_->PublishLocked(std::move(versions), &graveyard, &shed_events);
    if (in_place_) {
      ++manager_->inplace_commits_;
    } else {
      ++manager_->cow_commits_;
    }
    published_ = true;
    callback = manager_->shed_callback_;
    lock_.unlock();
  }
  if (callback != nullptr) {
    for (const ShedEvent& event : shed_events) {
      callback(event.epoch, event.lag, event.pins);
    }
  }
}

EpochManager::Commit EpochManager::BeginCommit() {
  std::unique_lock<std::mutex> lock(mu_);
  const bool in_place = live_pins_ == 0;
  if (!in_place) {
    lock.unlock();
  }
  return Commit(this, std::move(lock), in_place);
}

void EpochManager::Publish(VersionSet versions) {
  std::vector<std::shared_ptr<epoch_internal::EpochRecord>> graveyard;
  std::vector<ShedEvent> shed_events;
  ShedCallback callback;
  {
    std::lock_guard<std::mutex> lock(mu_);
    PublishLocked(std::move(versions), &graveyard, &shed_events);
    callback = shed_callback_;
  }
  if (callback != nullptr) {
    for (const ShedEvent& event : shed_events) {
      callback(event.epoch, event.lag, event.pins);
    }
  }
}

void EpochManager::PublishLocked(
    VersionSet versions,
    std::vector<std::shared_ptr<epoch_internal::EpochRecord>>* graveyard,
    std::vector<ShedEvent>* shed_events) {
  auto record = std::make_shared<epoch_internal::EpochRecord>();
  record->number = next_epoch_++;
  record->relations = std::move(versions);
  epochs_.push_back(std::move(record));
  ++published_count_;
  const uint64_t current = epochs_.back()->number;
  // Backpressure policy: flag pinned snapshots that have fallen more than
  // max_epoch_lag epochs behind. The flag stops new queries on the handle
  // (Status::Aborted) and surfaces through the callback/stats; the memory
  // itself frees when the handle finally drops.
  if (options_.max_epoch_lag > 0) {
    for (const auto& epoch : epochs_) {
      const uint64_t lag = current - epoch->number;
      if (lag > options_.max_epoch_lag && epoch->pins > 0 &&
          !epoch->shed.load(std::memory_order_relaxed)) {
        epoch->shed.store(true, std::memory_order_release);
        shed_count_ += epoch->pins;
        shed_events->push_back(ShedEvent{epoch->number, lag, epoch->pins});
      }
    }
  }
  ReclaimLocked(graveyard);
}

void EpochManager::ReclaimLocked(
    std::vector<std::shared_ptr<epoch_internal::EpochRecord>>* graveyard) {
  // Every superseded epoch with no pins is dead: nobody can reach it again
  // (Pin only hands out the back). Intermediate epochs reclaim too, not
  // just the front — a long-pinned old snapshot must not hold hostage the
  // epochs published after it.
  for (size_t i = 0; i + 1 < epochs_.size();) {
    if (epochs_[i]->pins == 0) {
      graveyard->push_back(std::move(epochs_[i]));
      epochs_.erase(epochs_.begin() + static_cast<long>(i));
      ++reclaimed_epochs_;
    } else {
      ++i;
    }
  }
}

uint64_t EpochManager::RetiredVersionsLocked() const {
  if (epochs_.empty()) {
    return 0;
  }
  // Relation versions held only by superseded epochs: entries whose slot
  // object differs from the current epoch's slot for the same name. An
  // object shared by several retired epochs counts once per epoch — the
  // number is a pressure gauge, not an exact byte count.
  const auto& current = epochs_.back()->relations;
  uint64_t retired = 0;
  for (size_t i = 0; i + 1 < epochs_.size(); ++i) {
    for (const auto& [name, rel] : epochs_[i]->relations) {
      auto it = current.find(name);
      if (it == current.end() || it->second.get() != rel.get()) {
        ++retired;
      }
    }
  }
  return retired;
}

uint64_t EpochManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_.empty() ? 0 : epochs_.back()->number;
}

EpochStats EpochManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EpochStats stats;
  stats.current_epoch = epochs_.empty() ? 0 : epochs_.back()->number;
  stats.published = published_count_;
  stats.live_snapshots = live_pins_;
  stats.retired_epochs =
      epochs_.empty() ? 0 : static_cast<uint64_t>(epochs_.size()) - 1;
  stats.retired_versions = RetiredVersionsLocked();
  stats.reclaimed_epochs = reclaimed_epochs_;
  stats.shed_snapshots = shed_count_;
  stats.cow_commits = cow_commits_;
  stats.inplace_commits = inplace_commits_;
  return stats;
}

void EpochManager::set_options(const EpochOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
}

EpochOptions EpochManager::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void EpochManager::set_shed_callback(ShedCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  shed_callback_ = std::move(callback);
}

}  // namespace dwc
