#ifndef DWC_WAREHOUSE_INGEST_H_
#define DWC_WAREHOUSE_INGEST_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "runtime/breaker.h"
#include "util/checksum.h"
#include "util/result.h"
#include "warehouse/channel.h"
#include "warehouse/source.h"
#include "warehouse/update.h"
#include "warehouse/warehouse.h"

namespace dwc {

// Tuning for the recovery ladder's first rung (targeted re-request).
struct RetryPolicy {
  // Retransmission attempts per missing sequence before escalating to a
  // source resync.
  int max_retries = 3;
  // Simulated exponential backoff: attempt i costs base_backoff << i ticks,
  // accumulated in IntegrationStats::backoff_ticks. Deterministic — no
  // clocks, no jitter — so chaos runs replay exactly.
  uint64_t base_backoff = 1;
  // How far ahead of the expected sequence a buffered delta may sit before
  // the hole is declared a gap (rather than mere reordering still in
  // flight). Size this at or above the channel's reorder window; an
  // undersized slack is safe but causes premature (successful)
  // retransmissions.
  uint64_t reorder_slack = 8;
  // Circuit breaker over the ladder's source-backed rungs (2 and 3): after
  // `breaker.failure_threshold` consecutive resync failures the source is
  // declared down, repairs are deferred instead of retried, and a
  // jittered-backoff half-open probe restores service. Rung 1 (channel
  // retransmission) is never gated — it does not touch the source. Set
  // failure_threshold <= 0 to disable.
  BreakerOptions breaker;
};

// Everything the ingestor did and detected, for tests, the REPL `stats`
// command, and bench/bench_fault_tolerance.cc.
struct IntegrationStats {
  size_t applied = 0;            // Deltas integrated into the warehouse.
  size_t deduped = 0;            // Duplicate deliveries discarded.
  size_t reordered = 0;          // Applied out of arrival order (buffered).
  size_t corrupt_dropped = 0;    // Failed the payload checksum.
  size_t stale_dropped = 0;      // Superseded by a resync or an old epoch.
  size_t gaps_detected = 0;      // Missing sequences the ladder recovered.
  size_t divergences = 0;        // State-digest mismatches detected.
  size_t retransmit_attempts = 0;
  size_t retransmits = 0;        // Attempts that recovered the delta.
  uint64_t backoff_ticks = 0;    // Simulated waiting across all retries.
  size_t base_resyncs = 0;       // Ladder rung 2: single-base corrections.
  size_t full_resyncs = 0;       // Ladder rung 3: full fallback rebuilds.
  size_t source_queries = 0;     // Source queries issued by the ladder.
  size_t resync_failures = 0;    // Source-backed rungs that failed outright.
  size_t breaker_deferred = 0;   // Repairs deferred behind an open breaker.

  std::string ToString() const;
};

// One committed state transition of the warehouse, reported to the commit
// hook *after* the in-memory state changed. The storage layer
// (storage/durable.h) uses these to write-ahead-log exactly what happened:
//
//   kDelta  — a delta was integrated. `delta` points at it for the duration
//             of the call. Sequenced deltas carry their envelope sequence;
//             corrective deltas synthesized by a base resync are
//             unsequenced (sequence 0) but equally replayable.
//   kSkip   — `sequence` was consumed without integrating anything (floor-
//             superseded, or its effect was folded in by a resync): an
//             acknowledged jump the log must record, or replay would see a
//             gap.
//   kResync — a digest-reconciliation resync advanced the watermark to
//             `sequence`. The per-base corrections were already reported as
//             kDelta events, so the log replays this like a kSkip.
//   kReset  — a full resync rebuilt the warehouse from source queries.
//             *Not* replayable from the log; the storage layer must take a
//             fresh checkpoint.
//
// A hook error aborts the ingest call that triggered it: the in-memory
// state is ahead of the log, and the process is expected to treat that as
// fatal (crash and recover from the log, which is exactly consistent).
struct CommitEvent {
  enum class Kind { kDelta, kSkip, kResync, kReset };
  Kind kind = Kind::kDelta;
  const CanonicalDelta* delta = nullptr;  // kDelta only; borrowed.
  uint64_t epoch = 0;
  uint64_t sequence = 0;  // Consumed sequence, or the watermark jumped to.
};

using CommitHook = std::function<Status(const CommitEvent&)>;

// The warehouse-side endpoint of a DeltaChannel: consumes possibly
// duplicated / reordered / corrupted / gapped deliveries from one source and
// keeps the warehouse exactly consistent anyway.
//
//   - Duplicates are discarded by sequence number.
//   - Reordered deltas wait in a bounded buffer until their predecessors
//     arrive.
//   - Corrupted deltas (payload checksum mismatch) are dropped; the
//     resulting hole is recovered like any other gap.
//   - Gaps and divergences climb a graceful-degradation ladder:
//       1. targeted re-request of the missing sequence from the channel's
//          outbox log, capped retries with deterministic exponential
//          backoff;
//       2. bounded resync of only the affected base: one source query,
//          diffed against the W^-1-reconstructed base to form a corrective
//          canonical delta;
//       3. full resync: re-pull every base and rebuild the warehouse
//          (Warehouse::ResetFromSources).
//     Every source query this costs is counted; on a faultless channel the
//     ladder never fires and the update-independence guarantee (zero source
//     queries) is preserved.
//
// Attach at a moment when the warehouse is consistent with the source (e.g.
// right after Warehouse::Load): the ingestor snapshots the source's digests
// and sequence watermark as its starting point. Single-source; run one
// ingestor per channel.
class DeltaIngestor {
 public:
  DeltaIngestor(Warehouse* warehouse, Source* source, DeltaChannel* channel,
                RetryPolicy policy = RetryPolicy());

  // Processes one delivered delta (apply / buffer / dedup / recover).
  Status Receive(const CanonicalDelta& delta);

  // Polls the channel dry, then reconciles against the source's sequence
  // watermark (the ack frame of the protocol): any sequence at or below it
  // that never arrived is a confirmed gap and gets recovered. After a
  // successful Drain the warehouse has integrated every update the source
  // ever reported.
  Status Drain();

  const IntegrationStats& stats() const { return stats_; }
  uint64_t next_expected() const { return next_seq_; }
  size_t buffered() const { return buffer_.size(); }

  // The per-source circuit breaker guarding the ladder's resync rungs.
  // While it is open, repairs are deferred: deltas that cannot be applied
  // stay in (or return to) the reorder buffer, integration of healthy
  // traffic continues, and the watermark simply stops advancing past the
  // damage. Each Receive/Drain call ticks the breaker's logical clock, so
  // a half-open probe fires after a deterministic (seeded-jitter) number
  // of calls and — on success — the buffered backlog replays.
  const CircuitBreaker& breaker() const { return breaker_; }

  // Installs the durability hook (see CommitEvent). Pass an empty function
  // to detach.
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

 private:
  // Applies the delta with sequence == next_seq_: divergence probe first,
  // then Warehouse::Integrate, then digest bookkeeping. Consumes the
  // sequence number even when the delta is superseded by a resync
  // watermark.
  Status TryApply(const CanonicalDelta& delta, bool from_buffer);
  // Applies buffered successors of next_seq_ in order, dropping stale ones.
  Status DrainBuffer();
  // The ladder, for the missing sequence next_seq_.
  Status RecoverMissing();
  // One base's computed repair: the corrective delta that takes the
  // warehouse's reconstruction of `relation` to `truth`, the source's
  // current state aligned to the warehouse schema.
  struct BaseCorrection {
    std::string relation;
    CanonicalDelta corrective;
    Relation truth;
  };
  // Rung 2 for one base: source query + diff against the reconstructed
  // base. Computes only — Resync integrates every diverged base's
  // corrective as one transaction.
  Result<BaseCorrection> ComputeCorrection(const std::string& relation);
  // Rung 2 sweep: digest reconciliation against the source, folding the
  // correctives for exactly the differing bases into the warehouse as a
  // single transaction (per-base application could order a referencing
  // base ahead of the dimension it references and silently lose tuples
  // that are dangling mid-sweep but valid in the joint state); escalates
  // to FullResync when a correction cannot be computed or the transaction
  // is refused.
  Status Resync();
  // Rung 3.
  Status FullResync();
  // One counted base pull from the source; flags source_query_failed_ on
  // error so GuardedRepair can attribute the failure.
  Result<Relation> QuerySource(const std::string& relation);
  // Runs one source-backed repair rung under the breaker. Breaker open →
  // defer (*deferred = true, Ok returned, no state change). Source failure
  // inside the rung → breaker records it and the repair defers likewise.
  // Non-source errors (integration, commit hook) propagate: they mean the
  // *warehouse* is in trouble, and deferring would hide corruption.
  Status GuardedRepair(const std::function<Status()>& rung, bool* deferred);
  // Advances next_seq_ past a resync watermark, dropping superseded
  // buffered deltas.
  void AdvancePast(uint64_t watermark);
  uint64_t FloorFor(const std::string& relation) const;
  // Reports one committed transition to the hook (no-op when unset).
  Status FireCommit(CommitEvent::Kind kind, const CanonicalDelta* delta,
                    uint64_t sequence);

  Warehouse* warehouse_;
  Source* source_;
  DeltaChannel* channel_;
  RetryPolicy policy_;
  uint64_t epoch_;
  uint64_t next_seq_;
  // Out-of-order arrivals, keyed by sequence; bounded by reorder_slack via
  // the gap escalation in Receive.
  std::map<uint64_t, CanonicalDelta> buffer_;
  // The base-state digests the warehouse believes the source has; compared
  // against each delta's piggybacked post-state digest.
  StateDigest digest_;
  // Per-relation resync watermarks: in-flight deltas at or below the floor
  // were already folded into a resync and must be skipped, not re-applied.
  std::map<std::string, uint64_t> floor_;
  IntegrationStats stats_;
  CommitHook commit_hook_;
  CircuitBreaker breaker_;
  // Set by TryApply when a needed repair was deferred behind the breaker:
  // the sequence was *not* consumed and the caller must stop draining.
  bool apply_deferred_ = false;
  // Set whenever a ladder source query fails; GuardedRepair uses it to
  // distinguish source outages (breaker fodder) from fatal local errors.
  bool source_query_failed_ = false;
};

}  // namespace dwc

#endif  // DWC_WAREHOUSE_INGEST_H_
