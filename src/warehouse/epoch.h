#ifndef DWC_WAREHOUSE_EPOCH_H_
#define DWC_WAREHOUSE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "relational/relation.h"

namespace dwc {

// Epoch-based snapshot isolation for the warehouse (ROADMAP: "queries never
// block integration").
//
// The model: the warehouse's committed states form a monotone sequence of
// *snapshot epochs*, each an immutable map from relation name to a frozen
// relation version (a shared_ptr<const Relation>). Integration publishes a
// new epoch as the final act of its serial commit phase; readers pin the
// current epoch through an RAII SnapshotHandle and evaluate against that
// frozen version set without taking any lock on the evaluation path. Old
// epochs are reclaimed when the last pinning reader drops.
//
// Not to be confused with the *delivery* epochs stamped on CanonicalDelta
// envelopes (warehouse/channel.h, JournalStamp): those sequence the source →
// warehouse transport and reset on resync; snapshot epochs sequence committed
// warehouse states and are process-local (they restart at 1 after Resume —
// durability of state is the storage layer's job, epochs only order the
// in-memory present).
//
// Concurrency contract:
//  * One writer at a time (the integrator); any number of concurrent
//    readers. The manager's mutex guards only the epoch list and pin
//    counts — never evaluation.
//  * A relation referenced by any epoch other than the writer's current
//    working state is immutable. The warehouse enforces this with a
//    dual-path commit (see Warehouse::ApplyPlanned): with zero pins it
//    mutates relations in place while holding the commit lock (so no reader
//    can pin mid-mutation); with pins outstanding it clones changed
//    relations and swaps the slots (copy-on-write), leaving every pinned
//    version untouched.
//  * Memory ordering: all epoch/pin state is published under mu_, so a
//    reader that obtains a handle sees every write the publishing thread
//    made before Publish (the mutex provides the happens-before edge). The
//    only lock-free read is the `shed` flag, an acquire/release atomic.

struct EpochOptions {
  // A pinned snapshot more than this many epochs behind the current one is
  // "shed": its handle is flagged, queries through it fail with
  // Status::Aborted, and the shed callback (if any) fires. Shedding cannot
  // force-free memory — the handle still owns its version set — but it
  // stops new work on the stale snapshot and tells the operator which
  // reader is stuck. 0 disables shedding.
  uint64_t max_epoch_lag = 64;
};

struct EpochStats {
  uint64_t current_epoch = 0;      // 0 until the first Publish.
  uint64_t published = 0;          // Total epochs ever published.
  uint64_t live_snapshots = 0;     // Outstanding pinned handles.
  uint64_t retired_epochs = 0;     // Superseded epochs still held by pins.
  uint64_t retired_versions = 0;   // Relation versions only those epochs hold.
  uint64_t reclaimed_epochs = 0;   // Superseded epochs already freed.
  uint64_t shed_snapshots = 0;     // Handles flagged by the lag bound.
  uint64_t cow_commits = 0;        // Commits that took the clone-and-swap path.
  uint64_t inplace_commits = 0;    // Commits that mutated under the lock.

  std::string ToString() const;
};

namespace epoch_internal {

// One published epoch. `pins` is guarded by the owning manager's mutex;
// `shed` is read lock-free by query threads.
struct EpochRecord {
  uint64_t number = 0;
  std::map<std::string, std::shared_ptr<const Relation>> relations;
  uint64_t pins = 0;
  std::atomic<bool> shed{false};
};

}  // namespace epoch_internal

class EpochManager;

// Move-only RAII pin on one published epoch. While alive, every relation in
// relations() is frozen: the warehouse will copy-on-write around it. The pin
// is released (and reclamation may run) on destruction or Release().
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  SnapshotHandle(SnapshotHandle&& other) noexcept
      : manager_(std::move(other.manager_)), epoch_(std::move(other.epoch_)) {
    other.manager_.reset();
    other.epoch_.reset();
  }
  SnapshotHandle& operator=(SnapshotHandle&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = std::move(other.manager_);
      epoch_ = std::move(other.epoch_);
      other.manager_.reset();
      other.epoch_.reset();
    }
    return *this;
  }
  SnapshotHandle(const SnapshotHandle&) = delete;
  SnapshotHandle& operator=(const SnapshotHandle&) = delete;
  ~SnapshotHandle() { Release(); }

  // Unpins now (idempotent). The version set stays readable through any
  // shared_ptrs the caller copied out, but the epoch itself may be
  // reclaimed.
  void Release();

  bool valid() const { return epoch_ != nullptr; }
  uint64_t epoch() const { return valid() ? epoch_->number : 0; }
  // True once the reclamation policy flagged this snapshot as too far
  // behind; queries through a shed snapshot fail with Status::Aborted.
  bool shed() const {
    return valid() && epoch_->shed.load(std::memory_order_acquire);
  }

  // nullptr when absent. The pointer is valid for the life of the handle.
  const Relation* Find(const std::string& name) const;
  const std::map<std::string, std::shared_ptr<const Relation>>& relations()
      const;

 private:
  friend class EpochManager;
  SnapshotHandle(std::shared_ptr<EpochManager> manager,
                 std::shared_ptr<epoch_internal::EpochRecord> epoch)
      : manager_(std::move(manager)), epoch_(std::move(epoch)) {}

  std::shared_ptr<EpochManager> manager_;
  std::shared_ptr<epoch_internal::EpochRecord> epoch_;
};

// Owns the epoch list. Always held through shared_ptr (handles keep it
// alive past the owning warehouse if a snapshot outlives it).
class EpochManager : public std::enable_shared_from_this<EpochManager> {
 public:
  using VersionSet = std::map<std::string, std::shared_ptr<const Relation>>;

  explicit EpochManager(EpochOptions options = EpochOptions())
      : options_(options) {}

  // Pins the current epoch. Invalid handle when nothing is published yet.
  SnapshotHandle Pin();

  // Scoped writer commit. BeginCommit() decides the path: with zero pins it
  // keeps the manager locked (in_place() == true) so the caller may mutate
  // published relations directly — no reader can pin a half-mutated state;
  // with pins outstanding it releases the lock and the caller must
  // copy-on-write. Either way the commit ends with Publish() (the success
  // path) or destruction without it (the abort path: the previous epoch
  // stays current, readers never see the attempt).
  class Commit {
   public:
    Commit(Commit&&) = default;
    Commit(const Commit&) = delete;
    Commit& operator=(const Commit&) = delete;
    Commit& operator=(Commit&&) = delete;
    ~Commit();

    bool in_place() const { return in_place_; }
    void Publish(VersionSet versions);

   private:
    friend class EpochManager;
    Commit(EpochManager* manager, std::unique_lock<std::mutex> lock,
           bool in_place)
        : manager_(manager), lock_(std::move(lock)), in_place_(in_place) {}

    EpochManager* manager_;
    std::unique_lock<std::mutex> lock_;  // Held across the commit iff in_place_.
    bool in_place_ = false;
    bool published_ = false;
  };
  Commit BeginCommit();

  // Publishes a prebuilt version set as the next epoch (load / reset /
  // rebuild paths, which never mutate published relations in place).
  void Publish(VersionSet versions);

  uint64_t current_epoch() const;
  EpochStats stats() const;

  void set_options(const EpochOptions& options);
  EpochOptions options() const;

  // Fires (outside the manager lock) whenever the lag bound sheds a pinned
  // snapshot: (epoch number, lag in epochs, pins on it).
  using ShedCallback = std::function<void(uint64_t, uint64_t, uint64_t)>;
  void set_shed_callback(ShedCallback callback);

 private:
  friend class SnapshotHandle;
  friend class Commit;

  struct ShedEvent {
    uint64_t epoch;
    uint64_t lag;
    uint64_t pins;
  };

  void Unpin(const std::shared_ptr<epoch_internal::EpochRecord>& epoch);
  // All Locked helpers require mu_ held.
  void PublishLocked(VersionSet versions,
                     std::vector<std::shared_ptr<epoch_internal::EpochRecord>>*
                         graveyard,
                     std::vector<ShedEvent>* shed_events);
  void ReclaimLocked(
      std::vector<std::shared_ptr<epoch_internal::EpochRecord>>* graveyard);
  uint64_t RetiredVersionsLocked() const;

  mutable std::mutex mu_;
  // Front = oldest still-live epoch, back = current.
  std::deque<std::shared_ptr<epoch_internal::EpochRecord>> epochs_;
  EpochOptions options_;
  ShedCallback shed_callback_;
  uint64_t next_epoch_ = 1;
  uint64_t live_pins_ = 0;
  uint64_t published_count_ = 0;
  uint64_t reclaimed_epochs_ = 0;
  uint64_t shed_count_ = 0;
  uint64_t cow_commits_ = 0;
  uint64_t inplace_commits_ = 0;
};

}  // namespace dwc

#endif  // DWC_WAREHOUSE_EPOCH_H_
