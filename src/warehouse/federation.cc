#include "warehouse/federation.h"

#include "util/string_util.h"

namespace dwc {

Status Federation::AddSource(const std::string& name, const Database& db,
                             const std::vector<std::string>& relations) {
  if (sources_.count(name) > 0) {
    return Status::AlreadyExists(StrCat("source '", name, "' already added"));
  }
  Database slice(db.catalog_ptr());
  for (const std::string& relation : relations) {
    const Relation* rel = db.FindRelation(relation);
    if (rel == nullptr) {
      return Status::NotFound(
          StrCat("relation '", relation, "' not in the seed database"));
    }
    auto owner = owner_.find(relation);
    if (owner != owner_.end()) {
      return Status::AlreadyExists(StrCat("relation '", relation,
                                          "' already owned by source '",
                                          owner->second, "'"));
    }
    DWC_RETURN_IF_ERROR(slice.AddRelation(relation, *rel));
  }
  for (const std::string& relation : relations) {
    owner_[relation] = name;
  }
  // The source name doubles as the delta-envelope source id, so the
  // ingestion layer can keep per-source sequencing state.
  sources_.emplace(name, std::make_unique<Source>(std::move(slice), name));
  return Status::Ok();
}

Source* Federation::FindOwner(const std::string& relation) {
  auto it = owner_.find(relation);
  if (it == owner_.end()) {
    return nullptr;
  }
  return sources_.at(it->second).get();
}

const Source* Federation::FindSource(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.get();
}

Source* Federation::FindMutableSource(const std::string& name) {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : it->second.get();
}

Result<CanonicalDelta> Federation::Apply(const UpdateOp& op) {
  Source* owner = FindOwner(op.relation);
  if (owner == nullptr) {
    return Status::NotFound(
        StrCat("no source owns relation '", op.relation, "'"));
  }
  return owner->Apply(op);
}

Result<std::vector<CanonicalDelta>> Federation::ApplyTransaction(
    const std::vector<UpdateOp>& ops) {
  // Group ops per owning source (preserving order within a source) and let
  // each source compose its net deltas.
  std::map<std::string, std::vector<UpdateOp>> per_source;
  for (const UpdateOp& op : ops) {
    auto it = owner_.find(op.relation);
    if (it == owner_.end()) {
      return Status::NotFound(
          StrCat("no source owns relation '", op.relation, "'"));
    }
    per_source[it->second].push_back(op);
  }
  std::vector<CanonicalDelta> result;
  for (auto& [name, source_ops] : per_source) {
    DWC_ASSIGN_OR_RETURN(std::vector<CanonicalDelta> deltas,
                         sources_.at(name)->ApplyTransaction(source_ops));
    for (CanonicalDelta& delta : deltas) {
      result.push_back(std::move(delta));
    }
  }
  return result;
}

Result<Database> Federation::CombinedState() const {
  Database combined;
  for (const auto& [name, source] : sources_) {
    (void)name;
    for (const auto& [rel_name, rel] : source->db().relations()) {
      DWC_RETURN_IF_ERROR(combined.AddRelation(rel_name, *rel));
    }
  }
  return combined;
}

size_t Federation::TotalQueryCount() const {
  size_t total = 0;
  for (const auto& [name, source] : sources_) {
    (void)name;
    total += source->query_count();
  }
  return total;
}

}  // namespace dwc
