#ifndef DWC_WAREHOUSE_UPDATE_H_
#define DWC_WAREHOUSE_UPDATE_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/tuple.h"

namespace dwc {

// An update against one source base relation: a set of tuples to insert and
// a set to delete (the paper's updates; modifications are a delete plus an
// insert, footnote 1).
struct UpdateOp {
  std::string relation;
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
};

// What a source reports to the integrator after applying an UpdateOp:
// canonicalized deltas — `inserts` contains only tuples that were actually
// new, `deletes` only tuples that were actually present. The maintenance
// expressions assume this canonical form.
//
// Non-empty deltas additionally carry a delivery envelope stamped by the
// reporting Source: its id, a per-source epoch, a sequence number that is
// monotone within the epoch (shared across that source's relations, so the
// integrator can detect gaps without knowing which relation a lost delta
// touched), and a digest of the affected relation's post-apply state. The
// fault-tolerant channel and ingestion layer (channel.h, ingest.h) use the
// envelope for dedup, reordering, gap and divergence detection; sequence 0
// marks an unsequenced delta (empty, or built by hand in tests), which the
// ingestion layer applies without sequencing checks.
struct CanonicalDelta {
  std::string relation;
  Relation inserts;
  Relation deletes;

  std::string source_id;
  uint64_t epoch = 0;
  uint64_t sequence = 0;
  // XOR-of-tuple-digests of the source's `relation` after applying this
  // delta (util/checksum.h); the integrator's divergence check.
  uint64_t state_digest = 0;
  // DeltaPayloadDigest over the other fields, stamped at the source; the
  // receiver recomputes it, so any in-flight mutation (payload, envelope,
  // or this field itself) is detected.
  uint64_t payload_digest = 0;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  bool sequenced() const { return sequence != 0; }
};

// Envelope + payload checksum of a delta: covers the relation name, the
// envelope fields (except payload_digest itself) and every tuple.
// Recomputable by any hop, so in-flight corruption is detectable without
// trusting the carrier. Defined in source.cc.
uint64_t DeltaPayloadDigest(const CanonicalDelta& delta);

// True when the delta's stamped payload_digest matches its content.
inline bool DeltaPayloadIntact(const CanonicalDelta& delta) {
  return delta.payload_digest == DeltaPayloadDigest(delta);
}

}  // namespace dwc

#endif  // DWC_WAREHOUSE_UPDATE_H_
