#ifndef DWC_WAREHOUSE_UPDATE_H_
#define DWC_WAREHOUSE_UPDATE_H_

#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/tuple.h"

namespace dwc {

// An update against one source base relation: a set of tuples to insert and
// a set to delete (the paper's updates; modifications are a delete plus an
// insert, footnote 1).
struct UpdateOp {
  std::string relation;
  std::vector<Tuple> inserts;
  std::vector<Tuple> deletes;
};

// What a source reports to the integrator after applying an UpdateOp:
// canonicalized deltas — `inserts` contains only tuples that were actually
// new, `deletes` only tuples that were actually present. The maintenance
// expressions assume this canonical form.
struct CanonicalDelta {
  std::string relation;
  Relation inserts;
  Relation deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
};

}  // namespace dwc

#endif  // DWC_WAREHOUSE_UPDATE_H_
