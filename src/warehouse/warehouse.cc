#include "warehouse/warehouse.h"

#include <optional>
#include <utility>

#include "algebra/evaluator.h"
#include "algebra/optimizer.h"
#include "algebra/rewriter.h"
#include "algebra/simplifier.h"
#include "exec/thread_pool.h"
#include "util/string_util.h"

namespace dwc {

const char* MaintenanceStrategyName(MaintenanceStrategy strategy) {
  switch (strategy) {
    case MaintenanceStrategy::kIncremental:
      return "incremental";
    case MaintenanceStrategy::kRecomputeFromInverse:
      return "recompute-from-inverse";
    case MaintenanceStrategy::kQuerySource:
      return "query-source";
  }
  return "unknown";
}

Result<Warehouse> Warehouse::Load(std::shared_ptr<const WarehouseSpec> spec,
                                  const Database& sources,
                                  MaintenanceStrategy strategy) {
  if (spec == nullptr) {
    return Status::InvalidArgument("spec must not be null");
  }
  Warehouse warehouse(std::move(spec), strategy);
  if (strategy == MaintenanceStrategy::kIncremental) {
    DWC_ASSIGN_OR_RETURN(warehouse.plan_,
                         DeriveMaintenancePlan(*warehouse.spec_));
    // Cross-expression CSE over the plan: shared structure (each R̂i, the
    // inverse expressions, repeated delta-semijoins) collapses onto the
    // spec's canonical DAG, so the subplan cache can recycle results
    // between maintenance rounds and translated queries.
    warehouse.plan_.Canonicalize(warehouse.spec_->interner().get());
  }
  Environment env = Environment::FromDatabase(sources);
  DWC_RETURN_IF_ERROR(warehouse.MaterializeFrom(env));
  // Epoch 1: the loaded state. Every later committed transition publishes
  // the next epoch; readers pin whatever is current when they arrive.
  warehouse.epochs_->Publish(warehouse.CurrentVersions());
  return warehouse;
}

void Warehouse::CopyFrom(const Warehouse& other) {
  spec_ = other.spec_;
  strategy_ = other.strategy_;
  plan_ = other.plan_;
  state_ = other.state_;
  aggregates_ = other.aggregates_;
  aggregate_delta_cache_ = other.aggregate_delta_cache_;
  transaction_plans_ = other.transaction_plans_;
  evaluator_options_ = other.evaluator_options_;
  subplan_cache_ = other.subplan_cache_;
  // An independent epoch timeline: snapshots pinned on the original must
  // not see (or delay reclamation of) the copy's state, and vice versa.
  epochs_ = std::make_shared<EpochManager>(other.epochs_->options());
  stats_mu_ = std::make_shared<std::mutex>();
  {
    std::lock_guard<std::mutex> lock(*other.stats_mu_);
    last_integrate_stats_ = other.last_integrate_stats_;
  }
  last_integrate_epoch_ = 0;
  certificates_ = other.certificates_;
  validate_deltas_ = other.validate_deltas_;
  integration_hook_ = other.integration_hook_;
  hook_step_ = other.hook_step_;
  epochs_->Publish(CurrentVersions());
}

EpochManager::VersionSet Warehouse::CurrentVersions() const {
  EpochManager::VersionSet versions;
  for (const auto& [name, rel] : state_.relations()) {
    versions.emplace(name, rel);
  }
  for (const auto& [name, view] : aggregates_) {
    versions.emplace(name, view.shared_materialized());
  }
  return versions;
}

void Warehouse::PublishCurrent() {
  epochs_->Publish(CurrentVersions());
  TagIntegrateEpoch(epochs_->current_epoch());
}

Status Warehouse::MaterializeFrom(const Environment& base_env) {
  // Views may be referenced by complement definitions, so bind them as they
  // materialize.
  Environment env = base_env;
  Database fresh;
  for (const ViewDef& view : spec_->AllWarehouseViews()) {
    Evaluator evaluator = MakeEvaluator(&env);
    Result<Relation> rel = evaluator.Materialize(*view.expr);
    if (!rel.ok()) {
      return rel.status();
    }
    DWC_RETURN_IF_ERROR(fresh.AddRelation(view.name, std::move(rel).value()));
    env.Bind(view.name, fresh.FindRelation(view.name));
  }
  // Whole-map swap: relation objects referenced by published epochs stay
  // alive through their shared slots, so pinned readers are unaffected.
  state_ = std::move(fresh);
  return Status::Ok();
}

Status Warehouse::BeginIntegration(
    const std::vector<const CanonicalDelta*>& deltas) {
  hook_step_ = 0;
  ResetIntegrateStats();
  for (const CanonicalDelta* delta : deltas) {
    if (!spec_->catalog().HasRelation(delta->relation)) {
      return Status::NotFound(StrCat("delta targets unknown base relation '",
                                     delta->relation, "'"));
    }
    if (!validate_deltas_ || delta->empty() ||
        spec_->FindInverse(delta->relation) == nullptr) {
      continue;
    }
    // Canonical-form check against the reconstructed base: inserts must be
    // new, deletes must be present. Rejecting here keeps every later phase
    // infallible-by-construction on the delta's account.
    DWC_ASSIGN_OR_RETURN(Relation base, ReconstructBase(delta->relation));
    DWC_ASSIGN_OR_RETURN(Relation inserts,
                         delta->inserts.AlignTo(base.schema()));
    for (const Tuple& tuple : inserts.tuples()) {
      if (base.Contains(tuple)) {
        return Status::InvalidArgument(
            StrCat("non-canonical delta for '", delta->relation,
                   "': insert ", tuple.ToString(), " is already present"));
      }
    }
    DWC_ASSIGN_OR_RETURN(Relation deletes,
                         delta->deletes.AlignTo(base.schema()));
    for (const Tuple& tuple : deletes.tuples()) {
      if (!base.Contains(tuple)) {
        return Status::InvalidArgument(
            StrCat("non-canonical delta for '", delta->relation,
                   "': delete ", tuple.ToString(), " is not present"));
      }
    }
  }
  return Status::Ok();
}

Status Warehouse::Integrate(const CanonicalDelta& delta,
                            const Source* source) {
  DWC_RETURN_IF_ERROR(BeginIntegration({&delta}));
  Status status = Status::Internal("unknown strategy");
  switch (strategy_) {
    case MaintenanceStrategy::kIncremental:
      status = IntegrateIncremental(delta);
      break;
    case MaintenanceStrategy::kRecomputeFromInverse:
      status = IntegrateRecompute({&delta});
      break;
    case MaintenanceStrategy::kQuerySource:
      if (source == nullptr) {
        return Status::InvalidArgument(
            "kQuerySource maintenance needs a live Source");
      }
      status = IntegrateQuerySource(*source);
      break;
  }
  DWC_RETURN_IF_ERROR(status);
  return CheckCertificates({&delta});
}

Status Warehouse::IntegrateTransaction(
    const std::vector<CanonicalDelta>& deltas, const Source* source) {
  std::vector<const CanonicalDelta*> nonempty;
  std::set<std::string> bases;
  for (const CanonicalDelta& delta : deltas) {
    if (delta.empty()) {
      continue;
    }
    if (!bases.insert(delta.relation).second) {
      return Status::InvalidArgument(
          StrCat("transaction carries two deltas for '", delta.relation,
                 "'; merge them first (Source::ApplyTransaction does)"));
    }
    nonempty.push_back(&delta);
  }
  if (nonempty.empty()) {
    return Status::Ok();
  }
  DWC_RETURN_IF_ERROR(BeginIntegration(nonempty));
  Status status = Status::Internal("unknown strategy");
  switch (strategy_) {
    case MaintenanceStrategy::kIncremental: {
      if (nonempty.size() == 1) {
        status = IntegrateIncremental(*nonempty[0]);
        break;
      }
      std::string key = Join(bases, ",");
      auto it = transaction_plans_.find(key);
      if (it == transaction_plans_.end()) {
        Result<std::map<std::string, DeltaPair>> plan =
            DeriveTransactionPlan(*spec_, bases);
        if (!plan.ok()) {
          return plan.status();
        }
        for (auto& [relation, pair] : *plan) {
          (void)relation;
          pair.plus = spec_->interner()->Intern(pair.plus);
          pair.minus = spec_->interner()->Intern(pair.minus);
        }
        it = transaction_plans_.emplace(key, std::move(plan).value()).first;
      }
      status = ApplyPlanned(it->second, nonempty);
      break;
    }
    case MaintenanceStrategy::kRecomputeFromInverse:
      status = IntegrateRecompute(nonempty);
      break;
    case MaintenanceStrategy::kQuerySource:
      if (source == nullptr) {
        return Status::InvalidArgument(
            "kQuerySource maintenance needs a live Source");
      }
      status = IntegrateQuerySource(*source);
      break;
  }
  DWC_RETURN_IF_ERROR(status);
  return CheckCertificates(nonempty);
}

Status Warehouse::IntegrateIncremental(const CanonicalDelta& delta) {
  std::map<std::string, DeltaPair> per_relation;
  for (const auto& [relation, per_base] : plan_.entries()) {
    auto it = per_base.find(delta.relation);
    if (it != per_base.end()) {
      per_relation.emplace(relation, it->second);
    }
  }
  return ApplyPlanned(per_relation, {&delta});
}

Status Warehouse::ApplyPlanned(
    const std::map<std::string, DeltaPair>& per_relation_plan,
    const std::vector<const CanonicalDelta*>& deltas) {
  // Bind the old warehouse state plus all reported deltas.
  Environment env = Env();
  for (const CanonicalDelta* delta : deltas) {
    env.Bind(DeltaInsName(delta->relation), &delta->inserts);
    env.Bind(DeltaDelName(delta->relation), &delta->deletes);
  }
  // Evaluate all deltas against the *old* state first, then apply.
  // Everything fallible (evaluation, relation lookup, schema alignment)
  // happens in this phase, before the first mutation — the commit phase
  // below cannot fail on the delta's account.
  //
  // The per-relation maintenance expressions are independent reads of the
  // old state, so they run as pool tasks (one evaluator each, stats merged
  // afterwards). The crash-injection hook steps are hoisted serially in
  // front: evaluation is side-effect-free, so firing the hooks up front
  // preserves the exact serial step numbering and abort semantics.
  struct Pending {
    std::string relation;
    Relation* target = nullptr;
    Relation plus;
    Relation minus;
  };
  struct PlanItem {
    const std::string* relation;
    const DeltaPair* pair;
  };
  std::vector<PlanItem> items;
  items.reserve(per_relation_plan.size());
  for (const auto& [relation, pair] : per_relation_plan) {
    items.push_back(PlanItem{&relation, &pair});
  }
  std::vector<Pending> pending(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    DWC_RETURN_IF_ERROR(HookStep());
    pending[i].relation = *items[i].relation;
    pending[i].target = state_.FindMutableRelation(*items[i].relation);
    if (pending[i].target == nullptr) {
      return Status::Internal(
          StrCat("warehouse relation '", *items[i].relation, "' missing"));
    }
  }
  std::vector<Status> statuses(items.size(), Status::Ok());
  std::vector<EvalStats> task_stats(items.size());
  ThreadPool::Shared().ParallelFor(
      items.size(), evaluator_options_.exec().ResolvedThreads(),
      [&](size_t i) {
        // Tasks share the warehouse subplan cache: lookups/inserts are
        // serialized inside the cache, cache misses evaluate in parallel.
        Evaluator task_evaluator = MakeEvaluator(&env);
        auto eval_one = [&](const ExprRef& expr,
                            Relation* out) -> Status {
          Result<Relation> rel = task_evaluator.Materialize(*expr);
          if (!rel.ok()) {
            return rel.status();
          }
          Result<Relation> aligned =
              rel->AlignTo(pending[i].target->schema());
          if (!aligned.ok()) {
            return aligned.status();
          }
          *out = std::move(aligned).value();
          return Status::Ok();
        };
        Status status = eval_one(items[i].pair->plus, &pending[i].plus);
        if (status.ok()) {
          status = eval_one(items[i].pair->minus, &pending[i].minus);
        }
        statuses[i] = std::move(status);
        task_stats[i] = task_evaluator.stats();
      });
  {
    EvalStats merged;
    for (const EvalStats& stats : task_stats) {
      merged.MergeFrom(stats);
    }
    MergeIntegrateStats(merged);
  }
  for (const Status& status : statuses) {
    DWC_RETURN_IF_ERROR(status);
  }

  // Summary tables: derive (and cache) the exact deltas of each aggregate's
  // source expression with respect to the changed warehouse relations, and
  // evaluate them against the old state before applying anything.
  struct AggregatePending {
    AggregateView* view;
    Relation plus;
    Relation minus;
  };
  std::vector<AggregatePending> aggregate_pending;
  if (!aggregates_.empty()) {
    std::set<std::string> changed;
    for (const Pending& p : pending) {
      if (!p.plus.empty() || !p.minus.empty()) {
        changed.insert(p.relation);
      }
    }
    if (!changed.empty()) {
      // Bind ins:/del: for every changed warehouse relation.
      Environment agg_env = env;
      for (const Pending& p : pending) {
        agg_env.Bind(DeltaInsName(p.relation), &p.plus);
        agg_env.Bind(DeltaDelName(p.relation), &p.minus);
      }
      SchemaResolver resolver = spec_->WarehouseResolver();
      for (auto& [name, view] : aggregates_) {
        bool touched = false;
        for (const std::string& ref : view.def().source->ReferencedNames()) {
          if (changed.count(ref) > 0) {
            touched = true;
            break;
          }
        }
        if (!touched) {
          continue;
        }
        DWC_RETURN_IF_ERROR(HookStep());
        std::string cache_key =
            StrCat(name, "|", Join(changed, ","));
        auto cached = aggregate_delta_cache_.find(cache_key);
        if (cached == aggregate_delta_cache_.end()) {
          DeltaDeriver deriver(changed, resolver);
          Result<DeltaPair> derived = deriver.Derive(view.def().source);
          if (!derived.ok()) {
            return derived.status();
          }
          derived->plus = spec_->interner()->Intern(derived->plus);
          derived->minus = spec_->interner()->Intern(derived->minus);
          cached = aggregate_delta_cache_
                       .emplace(cache_key, std::move(derived).value())
                       .first;
        }
        Evaluator agg_evaluator = MakeEvaluator(&agg_env);
        Result<Relation> plus = agg_evaluator.Materialize(*cached->second.plus);
        if (!plus.ok()) {
          return plus.status();
        }
        Result<Relation> minus =
            agg_evaluator.Materialize(*cached->second.minus);
        MergeIntegrateStats(agg_evaluator.stats());
        if (!minus.ok()) {
          return minus.status();
        }
        aggregate_pending.push_back(AggregatePending{
            &view, std::move(plus).value(), std::move(minus).value()});
      }
    }
  }

  // Commit phase. The epoch manager picks the path: with zero pinned
  // snapshots the commit mutates relations in place while holding the
  // commit lock — no reader can pin a half-mutated state, the relations
  // keep their lazily built indexes, and the work stays O(|delta|). With
  // readers in flight it clones every changed relation off to the side and
  // swaps the slots at the end (copy-on-write), so every pinned version
  // set stays frozen. Either way the new epoch publishes as the commit's
  // final act: a failing HookStep() (simulated crash — returns without
  // rollback, torn in-memory state discarded by the caller via checkpoint +
  // journal recovery, persistence.h) or a genuine fold error (rolls back,
  // "state unchanged" contract) never publishes, so concurrent readers
  // keep the previous epoch — never a half-epoch.
  //
  // Aggregate folds go copy-then-swap on both paths: folding a deep copy
  // and installing it only after every fold succeeded means a failed fold
  // has nothing to restore — and never dirties a table object that a
  // published epoch still references.
  EpochManager::Commit commit = epochs_->BeginCommit();
  if (commit.in_place()) {
    struct Undo {
      Relation* target;
      std::vector<Tuple> inserted;
      std::vector<Tuple> erased;
    };
    std::vector<Undo> undo;
    undo.reserve(pending.size());
    auto rollback_relations = [&undo]() {
      for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
        for (const Tuple& tuple : it->inserted) {
          it->target->Erase(tuple);
        }
        for (const Tuple& tuple : it->erased) {
          it->target->Insert(tuple);
        }
      }
    };
    for (Pending& p : pending) {
      DWC_RETURN_IF_ERROR(HookStep());
      Undo u{p.target, {}, {}};
      // Apply deletions before insertions: the delta pair is exact, so the
      // two sets are disjoint and order only matters for storage churn.
      for (const Tuple& tuple : p.minus.tuples()) {
        if (p.target->Erase(tuple)) {
          u.erased.push_back(tuple);
        }
      }
      for (const Tuple& tuple : p.plus.tuples()) {
        if (p.target->Insert(tuple)) {
          u.inserted.push_back(tuple);
        }
      }
      undo.push_back(std::move(u));
    }
    // Fold aggregate deltas against the new state (MIN/MAX group recomputes
    // read the updated fact views).
    if (!aggregate_pending.empty()) {
      Environment new_env = Env();
      std::vector<std::pair<AggregateView*, AggregateView>> folded;
      folded.reserve(aggregate_pending.size());
      for (AggregatePending& p : aggregate_pending) {
        DWC_RETURN_IF_ERROR(HookStep());
        AggregateView tmp = *p.view;
        Status status = tmp.ApplyDelta(p.plus, p.minus, new_env);
        if (!status.ok()) {
          rollback_relations();
          return status;
        }
        folded.emplace_back(p.view, std::move(tmp));
      }
      for (auto& [view, tmp] : folded) {
        *view = std::move(tmp);
      }
    }
    // Final commit point: a crash here happens after all mutations but
    // before the caller journals the delta, so recovery replays up to the
    // previous refresh.
    DWC_RETURN_IF_ERROR(HookStep());
    commit.Publish(CurrentVersions());
    TagIntegrateEpoch(epochs_->current_epoch());
    return Status::Ok();
  }

  // Copy-on-write path: pinned readers exist, so published relations are
  // immutable. All work happens off to the side with no lock held; only
  // the slot swap + publish at the end synchronizes with readers (through
  // the epoch manager). A failure anywhere before the installs leaves the
  // live state byte-identical — there is nothing to roll back.
  struct Swap {
    std::string name;
    std::shared_ptr<Relation> relation;
  };
  std::vector<Swap> swaps;
  swaps.reserve(pending.size());
  // Post-update environment for the aggregate folds: live state with every
  // changed relation's binding overridden by its updated clone.
  Environment cow_env = Env();
  for (Pending& p : pending) {
    DWC_RETURN_IF_ERROR(HookStep());
    auto clone = std::make_shared<Relation>(*p.target);
    for (const Tuple& tuple : p.minus.tuples()) {
      clone->Erase(tuple);
    }
    for (const Tuple& tuple : p.plus.tuples()) {
      clone->Insert(tuple);
    }
    cow_env.Bind(p.relation, clone.get());
    swaps.push_back(Swap{p.relation, std::move(clone)});
  }
  std::vector<std::pair<AggregateView*, AggregateView>> folded;
  folded.reserve(aggregate_pending.size());
  for (AggregatePending& p : aggregate_pending) {
    DWC_RETURN_IF_ERROR(HookStep());
    AggregateView tmp = *p.view;
    Status status = tmp.ApplyDelta(p.plus, p.minus, cow_env);
    if (!status.ok()) {
      return status;
    }
    folded.emplace_back(p.view, std::move(tmp));
  }
  DWC_RETURN_IF_ERROR(HookStep());
  for (Swap& swap : swaps) {
    DWC_RETURN_IF_ERROR(
        state_.ReplaceRelation(swap.name, std::move(swap.relation)));
  }
  for (auto& [view, tmp] : folded) {
    *view = std::move(tmp);
  }
  commit.Publish(CurrentVersions());
  TagIntegrateEpoch(epochs_->current_epoch());
  return Status::Ok();
}

Status Warehouse::AddAggregateView(AggregateViewDef def) {
  if (aggregates_.count(def.name) > 0 ||
      spec_->FindWarehouseSchema(def.name) != nullptr ||
      spec_->catalog().HasRelation(def.name)) {
    return Status::AlreadyExists(
        StrCat("name '", def.name, "' already in use"));
  }
  for (const std::string& ref : def.source->ReferencedNames()) {
    if (spec_->FindWarehouseSchema(ref) == nullptr) {
      return Status::InvalidArgument(
          StrCat("aggregate source references '", ref,
                 "', which is not a warehouse relation (aggregates sit on "
                 "top of the maintained views)"));
    }
  }
  std::string name = def.name;
  SchemaResolver resolver = spec_->WarehouseResolver();
  Result<AggregateView> view = AggregateView::Create(std::move(def), resolver);
  if (!view.ok()) {
    return view.status();
  }
  auto [it, inserted] = aggregates_.emplace(name, std::move(view).value());
  (void)inserted;
  Environment env = Env();
  Status status = it->second.Initialize(env);
  if (!status.ok()) {
    // Never leave a half-initialized view registered (it would poison every
    // later Env()/epoch publication).
    aggregates_.erase(it);
    return status;
  }
  PublishCurrent();
  return Status::Ok();
}

const AggregateView* Warehouse::FindAggregate(const std::string& name) const {
  auto it = aggregates_.find(name);
  return it == aggregates_.end() ? nullptr : &it->second;
}

Status Warehouse::ReinitializeAggregates() {
  Environment env = Env();
  for (auto& [name, view] : aggregates_) {
    (void)name;
    DWC_RETURN_IF_ERROR(view.Initialize(env));
  }
  return Status::Ok();
}

Status Warehouse::IntegrateRecompute(
    const std::vector<const CanonicalDelta*>& deltas) {
  // Reconstruct the base state through W^-1, apply the deltas, re-derive.
  // All of this happens on a local copy, so failures before the state swap
  // leave the warehouse untouched.
  DWC_RETURN_IF_ERROR(HookStep());
  Result<Database> bases = ReconstructSources();
  if (!bases.ok()) {
    return bases.status();
  }
  for (const CanonicalDelta* delta : deltas) {
    Relation* rel = bases->FindMutableRelation(delta->relation);
    if (rel == nullptr) {
      return Status::NotFound(
          StrCat("unknown base relation '", delta->relation, "'"));
    }
    Result<Relation> deletes = delta->deletes.AlignTo(rel->schema());
    if (!deletes.ok()) {
      return deletes.status();
    }
    for (const Tuple& tuple : deletes->tuples()) {
      rel->Erase(tuple);
    }
    Result<Relation> inserts = delta->inserts.AlignTo(rel->schema());
    if (!inserts.ok()) {
      return inserts.status();
    }
    for (const Tuple& tuple : inserts->tuples()) {
      rel->Insert(tuple);
    }
  }
  Environment env = Environment::FromDatabase(*bases);
  if (aggregates_.empty()) {
    // MaterializeFrom builds the new state fully before swapping, so a
    // failure leaves the old state in place.
    DWC_RETURN_IF_ERROR(MaterializeFrom(env));
    DWC_RETURN_IF_ERROR(HookStep());
    PublishCurrent();
    return Status::Ok();
  }
  // Aggregate re-init installs fresh tables; snapshot live state for
  // rollback. The copies are acceptable on this already-O(|database|) path.
  Database old_state = state_;
  std::map<std::string, AggregateView> old_aggregates = aggregates_;
  DWC_RETURN_IF_ERROR(MaterializeFrom(env));
  // A crash between the swap and aggregate re-init leaves torn state the
  // caller discards (checkpoint + journal recovery) — and, per the epoch
  // contract, publishes nothing: pinned readers keep the previous epoch.
  DWC_RETURN_IF_ERROR(HookStep());
  Status status = ReinitializeAggregates();
  if (!status.ok()) {
    state_ = std::move(old_state);
    aggregates_ = std::move(old_aggregates);
    return status;
  }
  DWC_RETURN_IF_ERROR(HookStep());
  PublishCurrent();
  return Status::Ok();
}

Status Warehouse::CheckCertificates(
    const std::vector<const CanonicalDelta*>& deltas) const {
  const EvalStats stats = last_integrate_stats();
  if (certificates_ == nullptr || stats.source_reads == 0) {
    return Status::Ok();
  }
  // Source traffic happened. That is fine exactly when some affected
  // (base, delta-kind) is certified SOURCE; otherwise a SELF/COMPLEMENT
  // certificate just lied and we fail loudly.
  for (const CanonicalDelta* delta : deltas) {
    bool insert_affected = !delta->inserts.empty();
    bool delete_affected = !delta->deletes.empty();
    if ((insert_affected &&
         certificates_->Overall(delta->relation, DeltaKind::kInsert) ==
             MaintVerdict::kSource) ||
        (delete_affected &&
         certificates_->Overall(delta->relation, DeltaKind::kDelete) ==
             MaintVerdict::kSource)) {
      return Status::Ok();
    }
  }
  std::vector<std::string> bases;
  for (const CanonicalDelta* delta : deltas) {
    bases.push_back(delta->relation);
  }
  return Status::Internal(
      StrCat("certificate violation: integration of deltas on {",
             Join(bases, ", "), "} performed ", stats.source_reads,
             " source read(s), but every affected (base, delta-kind) is "
             "certified SELF or COMPLEMENT"));
}

Status Warehouse::IntegrateQuerySource(const Source& source) {
  // The traditional integrator: recompute every view by querying the source
  // databases (and the complements too, so state stays comparable).
  Environment env;  // Views bound as they materialize; bases via queries.
  Database fresh;
  // Pull every base relation the warehouse definitions mention.
  std::set<std::string> needed;
  for (const ViewDef& view : spec_->AllWarehouseViews()) {
    for (const std::string& name : view.expr->ReferencedNames()) {
      if (spec_->catalog().HasRelation(name)) {
        needed.insert(name);
      }
    }
  }
  Database base_copy;
  for (const std::string& name : needed) {
    Result<Relation> rel = source.AnswerQuery(Expr::Base(name));
    if (!rel.ok()) {
      return rel.status();
    }
    DWC_RETURN_IF_ERROR(base_copy.AddRelation(name, std::move(rel).value()));
  }
  env.BindDatabase(base_copy);
  // These bindings came off the wire from the source, not from the
  // warehouse store: tag them so every resolution lands in source_reads.
  for (const std::string& name : needed) {
    env.MarkSource(name);
  }
  for (const ViewDef& view : spec_->AllWarehouseViews()) {
    Evaluator evaluator = MakeEvaluator(&env);
    Result<Relation> rel = evaluator.Materialize(*view.expr);
    MergeIntegrateStats(evaluator.stats());
    if (!rel.ok()) {
      return rel.status();
    }
    DWC_RETURN_IF_ERROR(fresh.AddRelation(view.name, std::move(rel).value()));
    env.Bind(view.name, fresh.FindRelation(view.name));
  }
  DWC_RETURN_IF_ERROR(HookStep());
  if (aggregates_.empty()) {
    state_ = std::move(fresh);
    DWC_RETURN_IF_ERROR(HookStep());
    PublishCurrent();
    return Status::Ok();
  }
  Database old_state = std::move(state_);
  std::map<std::string, AggregateView> old_aggregates = aggregates_;
  state_ = std::move(fresh);
  Status status = ReinitializeAggregates();
  if (!status.ok()) {
    state_ = std::move(old_state);
    aggregates_ = std::move(old_aggregates);
    return status;
  }
  DWC_RETURN_IF_ERROR(HookStep());
  PublishCurrent();
  return Status::Ok();
}

Result<Relation> Warehouse::AnswerQuery(const ExprRef& query,
                                        EvalStats* stats,
                                        const CancelToken* cancel) const {
  return AnswerQueryAt(PinSnapshot(), query, stats, cancel);
}

Result<Relation> Warehouse::AnswerQueryAt(const SnapshotHandle& snapshot,
                                          const ExprRef& query,
                                          EvalStats* stats,
                                          const CancelToken* cancel) const {
  // Fail before rewriting or binding anything when the token has already
  // fired (e.g. the deadline elapsed while queued for admission).
  if (cancel != nullptr) {
    DWC_RETURN_IF_ERROR(cancel->Check());
  }
  if (!snapshot.valid()) {
    return Status::FailedPrecondition(
        "snapshot handle is empty (released, moved-from, or pinned before "
        "the warehouse published its first epoch)");
  }
  if (snapshot.shed()) {
    return Status::Aborted(
        StrCat("snapshot of epoch ", snapshot.epoch(),
               " was shed by the epoch-lag backpressure policy (current "
               "epoch is ", epochs_->current_epoch(), "); re-pin and retry"));
  }
  // Like TranslateQuery, but aggregate views are additionally addressable.
  // Name checks and schema resolution go through the snapshot (not the
  // live aggregate map): the writer may be registering views concurrently.
  for (const std::string& name : query->ReferencedNames()) {
    if (spec_->FindInverse(name) == nullptr &&
        spec_->FindWarehouseSchema(name) == nullptr &&
        snapshot.Find(name) == nullptr) {
      return Status::NotFound(
          StrCat("query references '", name,
                 "', which is neither a base relation, a warehouse view, "
                 "nor an aggregate view"));
    }
  }
  ExprRef translated = SubstituteNames(query, spec_->inverses());
  SchemaResolver warehouse_resolver = spec_->WarehouseResolver();
  auto resolver = [&snapshot, &warehouse_resolver](
                      const std::string& name) -> const Schema* {
    const Schema* schema = warehouse_resolver(name);
    if (schema != nullptr) {
      return schema;
    }
    const Relation* rel = snapshot.Find(name);
    return rel == nullptr ? nullptr : &rel->schema();
  };
  SchemaResolver resolver_fn = resolver;
  translated = Simplify(translated, &resolver_fn);
  translated = PushDownSelections(translated, resolver_fn);
  translated = Simplify(translated, &resolver_fn);
  // Canonicalize the optimized plan: a repeated query against an unchanged
  // warehouse recycles every one of its subplans from the cache (the
  // (uid, version) snapshot keys make cached results epoch-correct: a hit
  // can only come from the exact relation versions this snapshot pinned).
  translated = spec_->interner()->Intern(translated);
  Environment env;
  for (const auto& [name, rel] : snapshot.relations()) {
    env.Bind(name, rel.get());
  }
  // On a token-triggered failure everything unwinds cleanly: the snapshot
  // pin is RAII-released by the caller's handle, the partial Relation is
  // destroyed here, and the subplan cache saw only completed subplans
  // (EvalInternal inserts strictly after a successful evaluation).
  Evaluator evaluator = MakeEvaluator(&env, cancel);
  Result<Relation> result = evaluator.Materialize(*translated);
  if (stats != nullptr) {
    *stats = evaluator.stats();
  }
  return result;
}

Status Warehouse::ResetFromSources(const Database& sources) {
  Environment env = Environment::FromDatabase(sources);
  if (aggregates_.empty()) {
    DWC_RETURN_IF_ERROR(MaterializeFrom(env));
    PublishCurrent();
    return Status::Ok();
  }
  Database old_state = state_;
  std::map<std::string, AggregateView> old_aggregates = aggregates_;
  DWC_RETURN_IF_ERROR(MaterializeFrom(env));
  Status status = ReinitializeAggregates();
  if (!status.ok()) {
    state_ = std::move(old_state);
    aggregates_ = std::move(old_aggregates);
    return status;
  }
  PublishCurrent();
  return Status::Ok();
}

Result<Relation> Warehouse::ReconstructBase(const std::string& name) const {
  const ExprRef* inverse = spec_->FindInverse(name);
  if (inverse == nullptr) {
    return Status::NotFound(
        StrCat("base relation '", name, "' has no inverse expression"));
  }
  Environment env = Env();
  Evaluator evaluator = MakeEvaluator(&env);
  DWC_ASSIGN_OR_RETURN(Relation rel, evaluator.Materialize(**inverse));
  const Schema* declared = spec_->catalog().FindSchema(name);
  if (declared != nullptr && !(rel.schema() == *declared)) {
    DWC_ASSIGN_OR_RETURN(rel, rel.AlignTo(*declared));
  }
  return rel;
}

Result<Database> Warehouse::ReconstructSources() const {
  // Each base's inverse expression reads the warehouse state independently,
  // so the per-relation reconstructions run as pool tasks; the results are
  // installed serially in catalog order afterwards, which keeps the output
  // Database identical to the serial build at any thread count.
  Environment env = Env();
  struct Item {
    const std::string* base;
    const ExprRef* inverse;
  };
  std::vector<Item> items;
  for (const auto& [base, inverse] : spec_->inverses()) {
    items.push_back(Item{&base, &inverse});
  }
  std::vector<std::optional<Relation>> rels(items.size());
  std::vector<Status> statuses(items.size(), Status::Ok());
  ThreadPool::Shared().ParallelFor(
      items.size(), evaluator_options_.exec().ResolvedThreads(),
      [&](size_t i) {
        Evaluator evaluator = MakeEvaluator(&env);
        Result<Relation> rel = evaluator.Materialize(*(*items[i].inverse));
        if (!rel.ok()) {
          statuses[i] = rel.status();
          return;
        }
        const Schema* declared = spec_->catalog().FindSchema(*items[i].base);
        if (declared != nullptr && !(rel->schema() == *declared)) {
          Result<Relation> aligned = rel->AlignTo(*declared);
          if (!aligned.ok()) {
            statuses[i] = aligned.status();
            return;
          }
          rels[i] = std::move(aligned).value();
          return;
        }
        rels[i] = std::move(rel).value();
      });
  for (const Status& status : statuses) {
    DWC_RETURN_IF_ERROR(status);
  }
  Database bases(spec_->catalog_ptr());
  for (size_t i = 0; i < items.size(); ++i) {
    DWC_RETURN_IF_ERROR(
        bases.AddRelation(*items[i].base, std::move(*rels[i])));
  }
  return bases;
}

Status CheckConsistency(const Warehouse& warehouse, const Database& sources) {
  Environment env = Environment::FromDatabase(sources);
  std::vector<std::unique_ptr<Relation>> materialized;
  for (const ViewDef& view : warehouse.spec().AllWarehouseViews()) {
    Evaluator evaluator(&env);
    Result<Relation> expected = evaluator.Materialize(*view.expr);
    if (!expected.ok()) {
      return expected.status();
    }
    const Relation* actual = warehouse.FindRelation(view.name);
    if (actual == nullptr) {
      return Status::Internal(
          StrCat("warehouse relation '", view.name, "' missing"));
    }
    if (!actual->SameContentAs(*expected)) {
      return Status::Internal(StrCat(
          "warehouse relation '", view.name, "' is stale:\n  expected ",
          expected->ToString(), "\n  actual   ", actual->ToString()));
    }
    materialized.push_back(
        std::make_unique<Relation>(std::move(expected).value()));
    env.Bind(view.name, materialized.back().get());
  }
  return Status::Ok();
}

}  // namespace dwc
