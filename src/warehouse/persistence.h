#ifndef DWC_WAREHOUSE_PERSISTENCE_H_
#define DWC_WAREHOUSE_PERSISTENCE_H_

#include <string>

#include "util/result.h"
#include "warehouse/warehouse.h"

namespace dwc {

// Serializes a running warehouse into a DSL script (parser/script_io.h):
// catalog + constraints, the reconstructed base state (through W^-1 —
// Proposition 2.1 makes this exact), the view definitions and summary
// definitions. Running the script through RunScript / SpecifyWarehouse /
// Warehouse::Load reproduces an equivalent warehouse — a plain-text
// checkpoint format.
Result<std::string> WarehouseToScript(const Warehouse& warehouse);

// Rebuilds a warehouse (and its backing Source) from a checkpoint script.
struct RestoredWarehouse {
  std::shared_ptr<WarehouseSpec> spec;
  std::unique_ptr<Source> source;
  std::unique_ptr<Warehouse> warehouse;
};

Result<RestoredWarehouse> WarehouseFromScript(
    const std::string& script,
    MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
    const ComplementOptions& options = ComplementOptions());

// Append-only commit log of integrated deltas, each rendered as a DSL
// DELTA statement (script_io.h). Append *after* Warehouse::Integrate
// succeeds: the journal then holds exactly the committed refreshes since
// the last checkpoint, so no matter where a crash tears the in-memory
// state, RecoverWarehouse(checkpoint, journal) lands on the last
// consistent pre-crash state — a half-applied refresh was never journaled.
class DeltaJournal {
 public:
  void Append(const CanonicalDelta& delta);

  // The concatenated DELTA statements since the last Clear().
  const std::string& script() const { return script_; }
  size_t entries() const { return entries_; }
  bool empty() const { return entries_ == 0; }

  // Truncate after taking a fresh checkpoint.
  void Clear() {
    script_.clear();
    entries_ = 0;
  }

 private:
  std::string script_;
  size_t entries_ = 0;
};

// Checkpoint + journal replay: runs the checkpoint script (WarehouseToScript)
// with the journal's DELTA records appended and loads a fresh warehouse from
// the result. Sequenced records re-verify their piggybacked state digests
// during replay, so a damaged journal fails loudly.
Result<RestoredWarehouse> RecoverWarehouse(
    const std::string& checkpoint_script, const DeltaJournal& journal,
    MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
    const ComplementOptions& options = ComplementOptions());

}  // namespace dwc

#endif  // DWC_WAREHOUSE_PERSISTENCE_H_
