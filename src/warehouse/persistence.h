#ifndef DWC_WAREHOUSE_PERSISTENCE_H_
#define DWC_WAREHOUSE_PERSISTENCE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "warehouse/warehouse.h"

namespace dwc {

// Serializes a running warehouse into a DSL script (parser/script_io.h):
// catalog + constraints, the reconstructed base state (through W^-1 —
// Proposition 2.1 makes this exact), the view definitions and summary
// definitions. Running the script through RunScript / SpecifyWarehouse /
// Warehouse::Load reproduces an equivalent warehouse — a plain-text
// checkpoint format.
Result<std::string> WarehouseToScript(const Warehouse& warehouse);

// Rebuilds a warehouse (and its backing Source) from a checkpoint script.
struct RestoredWarehouse {
  std::shared_ptr<WarehouseSpec> spec;
  std::unique_ptr<Source> source;
  std::unique_ptr<Warehouse> warehouse;
};

Result<RestoredWarehouse> WarehouseFromScript(
    const std::string& script,
    MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
    const ComplementOptions& options = ComplementOptions());

// The delivery-envelope watermark a checkpoint was taken at: every delta
// with (epoch, sequence) at or below the stamp is folded into the snapshot.
// Epoch/sequence 0 means "nothing consumed yet" (a warehouse checkpointed
// before any sequenced delta arrived).
struct JournalStamp {
  uint64_t epoch = 0;
  uint64_t sequence = 0;

  bool operator==(const JournalStamp& other) const {
    return epoch == other.epoch && sequence == other.sequence;
  }
};

// Append-only commit log of integrated deltas, each rendered as a DSL
// DELTA statement (script_io.h). Append *after* Warehouse::Integrate
// succeeds: the journal then holds exactly the committed refreshes since
// the last checkpoint, so no matter where a crash tears the in-memory
// state, RecoverWarehouse(checkpoint, journal) lands on the last
// consistent pre-crash state — a half-applied refresh was never journaled.
//
// Besides the script text the journal tracks byte size (the checkpoint
// policy's trigger — see storage/durable.h — so the log cannot grow without
// bound) and the envelope watermarks of what it holds: the first and last
// consumed (epoch, sequence), and whether the sequenced records form a
// contiguous run. RecoverWarehouse refuses journals with internal gaps or
// journals that do not continue their checkpoint's stamp — a lost journal
// prefix must fail loudly, not replay silently into a diverged state.
class DeltaJournal {
 public:
  void Append(const CanonicalDelta& delta);

  // Storage-layer variant: appends an already-rendered DELTA statement
  // (a WAL record payload) with its frame envelope. Equivalent to Append
  // for accounting; `sequence` 0 marks an unsequenced record.
  void AppendScript(std::string_view delta_script, uint64_t epoch,
                    uint64_t sequence);

  // Records that (epoch, sequence) was consumed without a journal record —
  // a resync folded its effect in, or the ingestor skipped a superseded
  // delta. Explicitly acknowledged jumps are not gaps: the next Append may
  // continue from here.
  void NoteConsumed(uint64_t epoch, uint64_t sequence);

  // The concatenated DELTA statements since the last Clear().
  const std::string& script() const { return script_; }
  size_t entries() const { return entries_; }
  bool empty() const { return entries_ == 0; }
  // Byte size of the pending script — the growth the checkpoint policy
  // bounds.
  size_t bytes() const { return script_.size(); }

  // Envelope accounting. first()/last() are the consumed range; valid only
  // when has_sequenced() (unsequenced-only journals carry no watermarks).
  bool has_sequenced() const { return has_first_; }
  JournalStamp first() const { return first_; }
  JournalStamp last() const { return last_; }
  // True when the first consumption was a NoteConsumed (an acknowledged
  // jump), which is allowed to land anywhere past the checkpoint stamp.
  bool first_is_note() const { return first_is_note_; }
  // False once a sequenced Append failed to continue the previous watermark
  // (same epoch: sequence + 1; new epoch: sequence 1).
  bool contiguous() const { return contiguous_; }

  // Truncate after taking a fresh checkpoint.
  void Clear() {
    script_.clear();
    entries_ = 0;
    has_first_ = false;
    first_ = JournalStamp();
    last_ = JournalStamp();
    first_is_note_ = false;
    contiguous_ = true;
  }

 private:
  void Account(uint64_t epoch, uint64_t sequence, bool is_note);

  std::string script_;
  size_t entries_ = 0;
  bool has_first_ = false;
  JournalStamp first_;
  JournalStamp last_;
  bool first_is_note_ = false;
  bool contiguous_ = true;
};

// Checkpoint-trigger policy: when either bound is exceeded the caller
// should snapshot (WarehouseToScript) and Clear() the journal. Bounds the
// journal's memory/disk footprint and — since recovery time is linear in
// journal length (EXPERIMENTS.md B10) — the recovery time.
struct JournalPolicy {
  size_t max_bytes = 1 << 20;
  size_t max_records = 1024;

  bool ShouldCheckpoint(const DeltaJournal& journal) const {
    return journal.bytes() >= max_bytes || journal.entries() >= max_records;
  }
};

// Checkpoint + journal replay: runs the checkpoint script (WarehouseToScript)
// with the journal's DELTA records appended and loads a fresh warehouse from
// the result. Sequenced records re-verify their piggybacked state digests
// during replay, so a damaged journal fails loudly — as does a journal with
// an internal sequence gap (a record was lost between two survivors).
Result<RestoredWarehouse> RecoverWarehouse(
    const std::string& checkpoint_script, const DeltaJournal& journal,
    MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
    const ComplementOptions& options = ComplementOptions());

// As above, additionally validating that the journal *begins* where the
// checkpoint stopped: a first record that does not continue `stamp` means
// deltas between the checkpoint and the journal's first survivor were lost,
// which unchecked replay would silently absorb. The storage layer's
// RecoveryManager always has the stamp (it is in the manifest) and always
// passes it.
Result<RestoredWarehouse> RecoverWarehouse(
    const std::string& checkpoint_script, const DeltaJournal& journal,
    const JournalStamp& stamp,
    MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
    const ComplementOptions& options = ComplementOptions());

}  // namespace dwc

#endif  // DWC_WAREHOUSE_PERSISTENCE_H_
