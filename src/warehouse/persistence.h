#ifndef DWC_WAREHOUSE_PERSISTENCE_H_
#define DWC_WAREHOUSE_PERSISTENCE_H_

#include <string>

#include "util/result.h"
#include "warehouse/warehouse.h"

namespace dwc {

// Serializes a running warehouse into a DSL script (parser/script_io.h):
// catalog + constraints, the reconstructed base state (through W^-1 —
// Proposition 2.1 makes this exact), the view definitions and summary
// definitions. Running the script through RunScript / SpecifyWarehouse /
// Warehouse::Load reproduces an equivalent warehouse — a plain-text
// checkpoint format.
Result<std::string> WarehouseToScript(const Warehouse& warehouse);

// Rebuilds a warehouse (and its backing Source) from a checkpoint script.
struct RestoredWarehouse {
  std::shared_ptr<WarehouseSpec> spec;
  std::unique_ptr<Source> source;
  std::unique_ptr<Warehouse> warehouse;
};

Result<RestoredWarehouse> WarehouseFromScript(
    const std::string& script,
    MaintenanceStrategy strategy = MaintenanceStrategy::kIncremental,
    const ComplementOptions& options = ComplementOptions());

}  // namespace dwc

#endif  // DWC_WAREHOUSE_PERSISTENCE_H_
