#ifndef DWC_WAREHOUSE_FEDERATION_H_
#define DWC_WAREHOUSE_FEDERATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/database.h"
#include "util/result.h"
#include "warehouse/source.h"
#include "warehouse/update.h"

namespace dwc {

// Figure 1's architecture, literally: multiple autonomous source databases
// (the Sales database, the Company database, ...), each owning a disjoint
// subset of the base relations, all reporting their deltas to one
// integrator. The federation routes updates to the owning source and keeps
// per-source query counters so update independence can be asserted per
// source.
class Federation {
 public:
  // Adds a source owning `relations` (all must exist in `db` and be owned
  // by no other source). The source receives copies of those relations.
  Status AddSource(const std::string& name, const Database& db,
                   const std::vector<std::string>& relations);

  // The source owning `relation`; nullptr if unowned.
  Source* FindOwner(const std::string& relation);
  const Source* FindSource(const std::string& name) const;
  Source* FindMutableSource(const std::string& name);

  // Routes the update to the owning source and returns its canonical delta.
  Result<CanonicalDelta> Apply(const UpdateOp& op);
  // Routes every op; composes per-relation net deltas (ops for relations of
  // different sources simply land at their owners).
  Result<std::vector<CanonicalDelta>> ApplyTransaction(
      const std::vector<UpdateOp>& ops);

  // The union of all source states (for consistency checks / ground truth).
  Result<Database> CombinedState() const;

  // Total ad-hoc queries issued against any source.
  size_t TotalQueryCount() const;

  const std::map<std::string, std::unique_ptr<Source>>& sources() const {
    return sources_;
  }

 private:
  std::map<std::string, std::unique_ptr<Source>> sources_;
  std::map<std::string, std::string> owner_;  // relation -> source name.
};

}  // namespace dwc

#endif  // DWC_WAREHOUSE_FEDERATION_H_
