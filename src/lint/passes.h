#ifndef DWC_LINT_PASSES_H_
#define DWC_LINT_PASSES_H_

#include <vector>

#include "lint/diagnostic.h"
#include "lint/spec.h"

namespace dwc {

// One analysis pass over a warehouse specification. Passes are stateless
// and independent: each reports every finding it can see and never aborts,
// so a single run surfaces all problems at once (unlike AnalyzeAllPsj,
// which stops at the first offender).
class LintPass {
 public:
  virtual ~LintPass() = default;
  // Stable pass name, e.g. "psj-shape" (usable for pass selection).
  virtual const char* name() const = 0;
  virtual const char* description() const = 0;
  virtual void Run(const LintInput& input, DiagnosticSink* sink) const = 0;
};

// The registered passes in execution order:
//   psj-shape       DWC-E002/E003/E004/E005, DWC-W006/W007
//   ind-cycles      DWC-E006
//   predicates      DWC-W001/W002
//   key-coverage    DWC-W003/W004, DWC-N002
//   redundant-views DWC-W005
//   canonical-duplicates DWC-N003/N004
//   semantic        DWC-S001..S006 (src/analysis/ verdict engines)
const std::vector<const LintPass*>& AllLintPasses();

// The semantic pass alone (defined in analysis_pass.cc): runs the
// self-maintainability, invertibility and complement-usage engines over
// the spec and reports their verdicts as diagnostics. Silent when the
// views do not form a valid warehouse (shape passes own those findings).
const LintPass* SemanticAnalysisPass();

}  // namespace dwc

#endif  // DWC_LINT_PASSES_H_
