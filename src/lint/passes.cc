#include "lint/passes.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algebra/implication.h"
#include "algebra/interner.h"
#include "algebra/schema_inference.h"
#include "algebra/simplifier.h"
#include "core/psj.h"
#include "lint/predicate_analysis.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// ---------------------------------------------------------------------------
// psj-shape: the lint-path replacement for AnalyzePsj's first-error abort.
// Walks every view and reports all shape violations with positions.

class ShapeChecker {
 public:
  ShapeChecker(const LintInput& input, const LintedView& view,
               const std::set<std::string>& view_names, DiagnosticSink* sink)
      : input_(input), view_(view), view_names_(view_names), sink_(sink) {}

  void Run() {
    // The project/select prefix: the outermost projection determines Z;
    // any projection stacked below another is a no-op.
    ExprRef node = view_.def.expr;
    while (true) {
      if (node->kind() == Expr::Kind::kProject) {
        if (have_projection_) {
          sink_->Report(
              "DWC-W006", Loc(node),
              StrCat("in view '", view_.def.name,
                     "', this projection is shadowed by an outer projection "
                     "and has no effect"),
              view_.def.name);
        } else {
          have_projection_ = true;
          projection_ = AttrSet(node->attrs().begin(), node->attrs().end());
          projection_loc_ = Loc(node);
        }
        node = node->child();
      } else if (node->kind() == Expr::Kind::kSelect) {
        selects_.emplace_back(node->predicate(), Loc(node));
        node = node->child();
      } else {
        break;
      }
    }
    CollectJoin(node);

    if (!clean_) {
      return;  // Attribute checks below would be noise on a broken shape.
    }
    AttrSet full;
    for (const std::string& base : bases_) {
      AttrSet names = input_.catalog->FindSchema(base)->attr_names();
      full.insert(names.begin(), names.end());
    }
    if (have_projection_) {
      for (const std::string& attr : projection_) {
        if (full.find(attr) == full.end()) {
          sink_->Report("DWC-E003", projection_loc_,
                        StrCat("view '", view_.def.name,
                               "' projects attribute '", attr,
                               "' which no joined relation provides"),
                        view_.def.name);
        }
      }
      if (projection_ == full) {
        sink_->Report("DWC-W006", projection_loc_,
                      StrCat("in view '", view_.def.name,
                             "', the projection keeps every attribute of the "
                             "join and has no effect"),
                      view_.def.name);
      }
    }
    for (const auto& [pred, loc] : selects_) {
      for (const std::string& attr : pred->Attributes()) {
        if (full.find(attr) == full.end()) {
          sink_->Report("DWC-E003", loc,
                        StrCat("view '", view_.def.name,
                               "' selects on attribute '", attr,
                               "' which no joined relation provides"),
                        view_.def.name);
        }
      }
    }
  }

 private:
  SourceLocation Loc(const ExprRef& expr) const {
    // Prefer the clause anchor (projection list / selection predicate) so
    // findings on multi-line view definitions point at the offending
    // clause, not the leading keyword.
    SourceLocation loc = input_.source_map.ClauseLoc(expr);
    if (!loc.valid()) {
      loc = input_.source_map.ExprLoc(expr);
    }
    return loc.valid() ? loc : view_.loc;
  }

  // Below a non-PSJ operator only name resolution is still meaningful.
  void ReportNamesOnly(const ExprRef& node) {
    if (node == nullptr) {
      return;
    }
    if (node->kind() == Expr::Kind::kBase) {
      CheckBaseName(node, /*track_duplicates=*/false);
      return;
    }
    ReportNamesOnly(node->left());
    ReportNamesOnly(node->right());
  }

  void CheckBaseName(const ExprRef& node, bool track_duplicates) {
    const std::string& name = node->base_name();
    if (view_names_.find(name) != view_names_.end()) {
      sink_->Report("DWC-W007", Loc(node),
                    StrCat("view '", view_.def.name, "' references view '",
                           name,
                           "'; warehouse views must be PSJ expressions over "
                           "base relations"),
                    view_.def.name);
      clean_ = false;
      return;
    }
    if (!input_.catalog->HasRelation(name)) {
      sink_->Report("DWC-E002", Loc(node),
                    StrCat("view '", view_.def.name,
                           "' references undeclared relation '", name, "'"),
                    view_.def.name);
      clean_ = false;
      return;
    }
    if (!track_duplicates) {
      return;
    }
    if (std::find(bases_.begin(), bases_.end(), name) != bases_.end()) {
      sink_->Report(
          "DWC-E005", Loc(node),
          StrCat("view '", view_.def.name, "' joins base relation '", name,
                 "' twice; the paper's construction excludes self-joins"),
          view_.def.name);
      clean_ = false;
      return;
    }
    bases_.push_back(name);
  }

  void CollectJoin(const ExprRef& node) {
    switch (node->kind()) {
      case Expr::Kind::kBase:
        CheckBaseName(node, /*track_duplicates=*/true);
        return;
      case Expr::Kind::kSelect:
        selects_.emplace_back(node->predicate(), Loc(node));
        CollectJoin(node->child());
        return;
      case Expr::Kind::kJoin:
        CollectJoin(node->left());
        CollectJoin(node->right());
        return;
      case Expr::Kind::kProject:
        sink_->Report("DWC-E004", Loc(node),
                      StrCat("view '", view_.def.name,
                             "' nests a projection below a join; PSJ views "
                             "project only at the top"),
                      view_.def.name);
        clean_ = false;
        CollectJoin(node->child());
        return;
      case Expr::Kind::kUnion:
      case Expr::Kind::kDifference:
      case Expr::Kind::kRename:
      case Expr::Kind::kEmpty: {
        const char* op = node->kind() == Expr::Kind::kUnion ? "union"
                         : node->kind() == Expr::Kind::kDifference
                             ? "minus"
                         : node->kind() == Expr::Kind::kRename ? "rename"
                                                               : "empty";
        sink_->Report("DWC-E004", Loc(node),
                      StrCat("view '", view_.def.name, "' uses operator '", op,
                             "' which is outside the PSJ normal form"),
                      view_.def.name);
        clean_ = false;
        ReportNamesOnly(node->left());
        ReportNamesOnly(node->right());
        return;
      }
    }
  }

  const LintInput& input_;
  const LintedView& view_;
  const std::set<std::string>& view_names_;
  DiagnosticSink* sink_;
  bool clean_ = true;
  bool have_projection_ = false;
  AttrSet projection_;
  SourceLocation projection_loc_;
  std::vector<std::string> bases_;
  std::vector<std::pair<PredicateRef, SourceLocation>> selects_;
};

class PsjShapePass : public LintPass {
 public:
  const char* name() const override { return "psj-shape"; }
  const char* description() const override {
    return "PSJ normal form, name resolution, self-joins, projections";
  }
  void Run(const LintInput& input, DiagnosticSink* sink) const override {
    std::set<std::string> view_names;
    for (const LintedView& view : input.views) {
      view_names.insert(view.def.name);
    }
    for (const LintedView& view : input.views) {
      ShapeChecker(input, view, view_names, sink).Run();
    }
  }
};

// ---------------------------------------------------------------------------
// ind-cycles: Theorem 2.2 requires the IND set to be acyclic. Tarjan SCCs
// over the lhs -> rhs edges; any component with a cycle is reported once.

class IndCyclePass : public LintPass {
 public:
  const char* name() const override { return "ind-cycles"; }
  const char* description() const override {
    return "acyclicity of the inclusion-dependency graph (Theorem 2.2)";
  }

  void Run(const LintInput& input, DiagnosticSink* sink) const override {
    // Adjacency over relation names.
    std::map<std::string, std::vector<std::string>> edges;
    std::vector<std::string> nodes;
    for (const LintedInd& ind : input.inds) {
      edges[ind.ind.lhs_relation].push_back(ind.ind.rhs_relation);
      edges.try_emplace(ind.ind.rhs_relation);
    }
    for (const auto& [node, unused] : edges) {
      (void)unused;
      nodes.push_back(node);
    }

    TarjanState state;
    for (const std::string& node : nodes) {
      if (state.index.find(node) == state.index.end()) {
        StrongConnect(node, edges, &state);
      }
    }

    for (const std::vector<std::string>& scc : state.sccs) {
      bool cyclic = scc.size() > 1;
      if (scc.size() == 1) {
        // A single node is cyclic only with a self-loop edge.
        for (const std::string& succ : edges[scc[0]]) {
          cyclic = cyclic || succ == scc[0];
        }
      }
      if (!cyclic) {
        continue;
      }
      std::set<std::string> members(scc.begin(), scc.end());
      // Anchor the report at the first declared IND inside the cycle.
      SourceLocation loc;
      for (const LintedInd& ind : input.inds) {
        if (members.find(ind.ind.lhs_relation) != members.end() &&
            members.find(ind.ind.rhs_relation) != members.end()) {
          loc = ind.loc;
          break;
        }
      }
      sink->Report("DWC-E006", loc,
                   StrCat("inclusion dependencies form a cycle among ",
                          Join(members, ", "),
                          "; Theorem 2.2 requires an acyclic IND set"));
    }
  }

 private:
  struct TarjanState {
    std::map<std::string, size_t> index;
    std::map<std::string, size_t> lowlink;
    std::set<std::string> on_stack;
    std::vector<std::string> stack;
    size_t next_index = 0;
    std::vector<std::vector<std::string>> sccs;
  };

  static void StrongConnect(
      const std::string& node,
      const std::map<std::string, std::vector<std::string>>& edges,
      TarjanState* state) {
    state->index[node] = state->next_index;
    state->lowlink[node] = state->next_index;
    ++state->next_index;
    state->stack.push_back(node);
    state->on_stack.insert(node);

    auto it = edges.find(node);
    if (it != edges.end()) {
      for (const std::string& succ : it->second) {
        if (state->index.find(succ) == state->index.end()) {
          StrongConnect(succ, edges, state);
          state->lowlink[node] =
              std::min(state->lowlink[node], state->lowlink[succ]);
        } else if (state->on_stack.find(succ) != state->on_stack.end()) {
          state->lowlink[node] =
              std::min(state->lowlink[node], state->index[succ]);
        }
      }
    }

    if (state->lowlink[node] == state->index[node]) {
      std::vector<std::string> scc;
      while (true) {
        std::string top = state->stack.back();
        state->stack.pop_back();
        state->on_stack.erase(top);
        scc.push_back(top);
        if (top == node) {
          break;
        }
      }
      state->sccs.push_back(std::move(scc));
    }
  }
};

// ---------------------------------------------------------------------------
// predicates: per-selection tautology checks and a whole-view
// unsatisfiability check on the combined PSJ predicate.

class PredicatePass : public LintPass {
 public:
  const char* name() const override { return "predicates"; }
  const char* description() const override {
    return "unsatisfiable and tautological selection predicates";
  }

  void Run(const LintInput& input, DiagnosticSink* sink) const override {
    for (const LintedView& view : input.views) {
      SourceLocation first_select_loc;
      CheckSelects(input, view, view.def.expr, sink, &first_select_loc);

      Result<PsjView> psj = AnalyzePsj(view.def, *input.catalog);
      if (psj.ok() && ProvablyUnsatisfiable(psj->predicate)) {
        SourceLocation loc =
            first_select_loc.valid() ? first_select_loc : view.loc;
        sink->Report("DWC-W001", loc,
                     StrCat("the combined selection of view '", view.def.name,
                            "' is unsatisfiable; the view is provably empty "
                            "and its complement stores the full base "
                            "relations"),
                     view.def.name);
      }
    }
  }

 private:
  static void CheckSelects(const LintInput& input, const LintedView& view,
                           const ExprRef& node, DiagnosticSink* sink,
                           SourceLocation* first_select_loc) {
    if (node == nullptr) {
      return;
    }
    if (node->kind() == Expr::Kind::kSelect) {
      SourceLocation loc = input.source_map.ClauseLoc(node);
      if (!loc.valid()) {
        loc = input.source_map.ExprLoc(node);
      }
      if (!loc.valid()) {
        loc = view.loc;
      }
      if (!first_select_loc->valid()) {
        *first_select_loc = loc;
      }
      if (ProvablyTautological(node->predicate())) {
        sink->Report("DWC-W002", loc,
                     StrCat("in view '", view.def.name,
                            "', selection predicate '",
                            node->predicate()->ToString(),
                            "' is always true; the selection is redundant"),
                     view.def.name);
      }
    }
    CheckSelects(input, view, node->left(), sink, first_select_loc);
    CheckSelects(input, view, node->right(), sink, first_select_loc);
  }
};

// ---------------------------------------------------------------------------
// key-coverage: Theorem 2.2 builds covers from key-containing views. A
// base relation none of whose keys appear in any view gets no cover, and
// the complement falls back to storing Ri in full (the paper's worst
// case). Relations referenced by no view at all are the same worst case.

class KeyCoveragePass : public LintPass {
 public:
  const char* name() const override { return "key-coverage"; }
  const char* description() const override {
    return "per-relation key coverage by warehouse views (Theorem 2.2)";
  }

  void Run(const LintInput& input, DiagnosticSink* sink) const override {
    std::vector<PsjView> psjs;
    for (const LintedView& view : input.views) {
      Result<PsjView> psj = AnalyzePsj(view.def, *input.catalog);
      if (psj.ok()) {
        psjs.push_back(std::move(psj).value());
      }
    }
    for (const auto& [name, schema] : input.catalog->relations()) {
      (void)schema;
      SourceLocation loc;
      auto loc_it = input.relation_locs.find(name);
      if (loc_it != input.relation_locs.end()) {
        loc = loc_it->second;
      }
      bool referenced = false;
      for (const LintedView& view : input.views) {
        std::set<std::string> names = view.def.expr->ReferencedNames();
        referenced = referenced || names.find(name) != names.end();
      }
      if (!referenced) {
        sink->Report("DWC-N002", loc,
                     StrCat("relation '", name,
                            "' is not referenced by any view; the warehouse "
                            "complement must materialize it in full"),
                     name);
        continue;
      }
      std::optional<KeyConstraint> key = input.catalog->FindKey(name);
      if (!key.has_value()) {
        sink->Report("DWC-W004", loc,
                     StrCat("relation '", name,
                            "' declares no key; cover-based complement "
                            "reduction (Theorem 2.2) is unavailable for it"),
                     name);
        continue;
      }
      bool covered = false;
      for (const PsjView& psj : psjs) {
        covered = covered ||
                  (psj.InvolvesBase(name) &&
                   std::includes(psj.attrs.begin(), psj.attrs.end(),
                                 key->attrs.begin(), key->attrs.end()));
      }
      if (!covered) {
        sink->Report(
            "DWC-W003", loc,
            StrCat("no view exposes the key {", Join(key->attrs, ", "),
                   "} of relation '", name,
                   "'; cover enumeration finds no cover and the complement "
                   "stores all of '", name, "'"),
            name);
      }
    }
  }
};

// ---------------------------------------------------------------------------
// redundant-views: a view whose bases equal another view's, whose visible
// attributes are contained in it, and whose selection implies its
// selection contributes nothing the other view does not already hold.

class RedundantViewPass : public LintPass {
 public:
  const char* name() const override { return "redundant-views"; }
  const char* description() const override {
    return "views subsumed by other views over the same bases";
  }

  void Run(const LintInput& input, DiagnosticSink* sink) const override {
    std::vector<std::optional<PsjView>> psjs(input.views.size());
    for (size_t i = 0; i < input.views.size(); ++i) {
      Result<PsjView> psj = AnalyzePsj(input.views[i].def, *input.catalog);
      if (psj.ok()) {
        psjs[i] = std::move(psj).value();
      }
    }
    for (size_t i = 0; i < input.views.size(); ++i) {
      if (!psjs[i].has_value()) {
        continue;
      }
      for (size_t j = 0; j < input.views.size(); ++j) {
        if (j == i || !psjs[j].has_value()) {
          continue;
        }
        if (!Subsumes(*psjs[j], *psjs[i])) {
          continue;
        }
        // Mutually subsuming (equivalent) views: only the later one is
        // flagged, so exactly one of an identical pair is reported.
        if (Subsumes(*psjs[i], *psjs[j]) && j > i) {
          continue;
        }
        sink->Report("DWC-W005", input.views[i].loc,
                     StrCat("view '", input.views[i].def.name,
                            "' is subsumed by view '",
                            input.views[j].def.name,
                            "' (same bases, contained attributes, implied "
                            "selection)"),
                     input.views[i].def.name);
        break;
      }
    }
  }

 private:
  // True when `big` subsumes `small`.
  static bool Subsumes(const PsjView& big, const PsjView& small) {
    std::set<std::string> big_bases(big.bases.begin(), big.bases.end());
    std::set<std::string> small_bases(small.bases.begin(), small.bases.end());
    return big_bases == small_bases &&
           std::includes(big.attrs.begin(), big.attrs.end(),
                         small.attrs.begin(), small.attrs.end()) &&
           Implies(small.predicate, big.predicate);
  }
};

// ---------------------------------------------------------------------------
// canonical-duplicates: hash-cons every (simplifier-normalized) view
// definition through the same ExprInterner machinery the evaluator's subplan
// cache keys on, then flag views whose canonical class coincides with
// another view's (DWC-N003) or appears as a non-leaf subexpression inside
// another view's definition (DWC-N004). Unlike redundant-views, this is
// purely structural — no predicate implication — so it also covers shapes
// AnalyzePsj rejects, and it catches duplicates that differ only in
// commutative operand order (A JOIN B vs B JOIN A share a cid).

class CanonicalDuplicatePass : public LintPass {
 public:
  const char* name() const override { return "canonical-duplicates"; }
  const char* description() const override {
    return "views whose canonicalized definitions duplicate or appear "
           "inside other views";
  }

  void Run(const LintInput& input, DiagnosticSink* sink) const override {
    if (input.catalog == nullptr) {
      return;
    }
    ExprInterner interner;
    SchemaResolver resolver = ResolverFromCatalog(*input.catalog);
    std::vector<ExprRef> canon(input.views.size());
    for (size_t i = 0; i < input.views.size(); ++i) {
      canon[i] =
          interner.Intern(Simplify(input.views[i].def.expr, &resolver));
    }

    // DWC-N003: same commutative class ⇒ the same relation on every
    // database. Flag the later declaration of each pair, mirroring
    // redundant-views.
    std::vector<bool> is_duplicate(input.views.size(), false);
    std::map<uint64_t, size_t> first_with_cid;
    for (size_t i = 0; i < input.views.size(); ++i) {
      uint64_t cid = interner.CidOf(canon[i].get());
      auto [it, inserted] = first_with_cid.emplace(cid, i);
      if (inserted) {
        continue;
      }
      is_duplicate[i] = true;
      sink->Report("DWC-N003", input.views[i].loc,
                   StrCat("view '", input.views[i].def.name,
                          "' has the same canonicalized definition as view "
                          "'", input.views[it->second].def.name,
                          "'; the warehouse materializes it twice"),
                   input.views[i].def.name);
    }

    // DWC-N004: a view whose whole definition is a proper, non-leaf
    // subexpression of another view's. Leaves (bare base relations) are
    // skipped — an identity view would otherwise match every view over
    // that base. Exact duplicates already reported above are skipped too.
    std::vector<std::set<uint64_t>> subexprs(input.views.size());
    for (size_t j = 0; j < input.views.size(); ++j) {
      CollectProperSubexprCids(interner, *canon[j], &subexprs[j]);
    }
    for (size_t i = 0; i < input.views.size(); ++i) {
      if (is_duplicate[i] || IsLeaf(*canon[i])) {
        continue;
      }
      uint64_t cid = interner.CidOf(canon[i].get());
      for (size_t j = 0; j < input.views.size(); ++j) {
        if (j == i || subexprs[j].count(cid) == 0) {
          continue;
        }
        sink->Report(
            "DWC-N004", input.views[i].loc,
            StrCat("view '", input.views[i].def.name,
                   "'s canonicalized definition appears inside view '",
                   input.views[j].def.name,
                   "'; the subplan cache will recycle it, but the spec "
                   "repeats the structure"),
            input.views[i].def.name);
        break;
      }
    }
  }

 private:
  static bool IsLeaf(const Expr& expr) {
    return expr.kind() == Expr::Kind::kBase ||
           expr.kind() == Expr::Kind::kEmpty;
  }

  // Commutative class ids of every proper non-leaf subtree of `expr`.
  static void CollectProperSubexprCids(const ExprInterner& interner,
                                       const Expr& expr,
                                       std::set<uint64_t>* out) {
    for (const ExprRef* child : {&expr.left(), &expr.right()}) {
      if (*child == nullptr) {
        continue;
      }
      if (!IsLeaf(**child)) {
        out->insert(interner.CidOf(child->get()));
      }
      CollectProperSubexprCids(interner, **child, out);
    }
  }
};

}  // namespace

const std::vector<const LintPass*>& AllLintPasses() {
  static const PsjShapePass shape;
  static const IndCyclePass cycles;
  static const PredicatePass predicates;
  static const KeyCoveragePass coverage;
  static const RedundantViewPass redundant;
  static const CanonicalDuplicatePass canonical;
  static const std::vector<const LintPass*> kPasses = {
      &shape,     &cycles,    &predicates,           &coverage,
      &redundant, &canonical, SemanticAnalysisPass()};
  return kPasses;
}

}  // namespace dwc
