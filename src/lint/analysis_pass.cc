#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/facts.h"
#include "lint/passes.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Where to anchor a finding about warehouse relation `name`: its own
// declaration when the script declares it, else the declaration of `base`
// (for synthetic complements), else nowhere.
SourceLocation RelationLoc(const LintInput& input, const std::string& name,
                           const std::string& base) {
  for (const LintedView& view : input.views) {
    if (view.def.name == name) {
      return view.loc;
    }
  }
  auto it = input.relation_locs.find(base);
  return it == input.relation_locs.end() ? SourceLocation{} : it->second;
}

// The clause anchor of the view's outermost projection, falling back to
// the view declaration.
SourceLocation ProjectionLoc(const LintInput& input, const LintedView& view) {
  ExprRef node = view.def.expr;
  while (node != nullptr) {
    if (node->kind() == Expr::Kind::kProject) {
      SourceLocation loc = input.source_map.ClauseLoc(node);
      if (!loc.valid()) {
        loc = input.source_map.ExprLoc(node);
      }
      return loc.valid() ? loc : view.loc;
    }
    if (node->kind() == Expr::Kind::kSelect) {
      node = node->child();
      continue;
    }
    break;
  }
  return view.loc;
}

class SemanticPass : public LintPass {
 public:
  const char* name() const override { return "semantic"; }
  const char* description() const override {
    return "static self-maintainability, invertibility and complement "
           "usage (src/analysis/)";
  }

  void Run(const LintInput& input, DiagnosticSink* sink) const override {
    if (input.catalog == nullptr || input.views.empty()) {
      return;
    }
    AnalysisInput ain;
    ain.catalog = input.catalog;
    for (const LintedView& view : input.views) {
      ain.views.push_back(view.def);
    }
    for (const LintedQuery& query : input.queries) {
      ain.queries.push_back(query.expr);
    }
    AnalysisResult result = AnalyzeWarehouse(ain);

    ReportInvertibility(input, result, sink);
    if (!result.spec.has_value()) {
      // Not a valid PSJ warehouse; the shape passes own those findings and
      // the maintenance/usage engines have nothing sound to say.
      return;
    }
    ReportSelfMaintenance(input, result, sink);
    ReportLossyProjections(input, result, sink);
    ReportComplementUsage(input, result, sink);
  }

 private:
  static void ReportInvertibility(const LintInput& input,
                                  const AnalysisResult& result,
                                  DiagnosticSink* sink) {
    // Without claimed complements the warehouse constructs C itself and
    // W = V ∪ C is invertible by construction — nothing to verify.
    if (result.claimed_complements.empty()) {
      return;
    }
    for (const BaseInvertibility& entry : result.invertibility.per_base) {
      for (const InvertFinding& finding : entry.findings) {
        switch (finding.kind) {
          case InvertFindingKind::kMissingAttributes:
            sink->Report(
                "DWC-S002",
                RelationLoc(input, ClaimedName(result, entry.base),
                            entry.base),
                StrCat("base relation '", entry.base,
                       "' is not reconstructible: the claimed complement "
                       "drops {", Join(finding.missing, ", "),
                       "} (minimal missing-attribute witness)"),
                entry.base);
            break;
          case InvertFindingKind::kNoResidual:
          case InvertFindingKind::kUnverifiedSubtraction:
            sink->Report(
                "DWC-S003",
                RelationLoc(input, ClaimedName(result, entry.base),
                            entry.base),
                StrCat("base relation '", entry.base,
                       "' has no verified residual store: ", finding.detail),
                entry.base);
            break;
        }
      }
    }
  }

  static std::string ClaimedName(const AnalysisResult& result,
                                 const std::string& base) {
    for (const ViewDef& claimed : result.claimed_complements) {
      if (claimed.expr != nullptr &&
          claimed.expr->ReferencedNames().count(base) > 0) {
        return claimed.name;
      }
    }
    return base;
  }

  static void ReportSelfMaintenance(const LintInput& input,
                                    const AnalysisResult& result,
                                    DiagnosticSink* sink) {
    for (const SelfMaintCertificate& cert : result.selfmaint.certificates) {
      if (cert.verdict != MaintVerdict::kSource) {
        continue;
      }
      sink->Report(
          "DWC-S001", RelationLoc(input, cert.relation, cert.base),
          StrCat("maintenance of '", cert.relation, "' under a ", cert.base,
                 " ", DeltaKindName(cert.kind),
                 " is classified SOURCE; integration must re-query the "
                 "source (reads: ", Join(cert.reads, ", "), ")"),
          cert.relation);
    }
  }

  static void ReportLossyProjections(const LintInput& input,
                                     const AnalysisResult& result,
                                     DiagnosticSink* sink) {
    DataflowAnalyzer analyzer(input.catalog.get());
    // What every user view together still exposes, per base.
    std::map<std::string, AttrSet> exposed;
    for (const ViewDef& view : result.user_views) {
      const NodeFacts& facts = analyzer.Analyze(view.expr);
      for (const auto& [base, attrs] : facts.provenance) {
        exposed[base].insert(attrs.begin(), attrs.end());
      }
    }
    std::set<std::string> reported;
    for (const LintedView& view : input.views) {
      if (IsClaimedComplementName(view.def.name)) {
        continue;
      }
      const NodeFacts& facts = analyzer.Analyze(view.def.expr);
      for (const auto& [base, dropped] : facts.dropped) {
        AttrSet unexposed;
        for (const std::string& attr : dropped) {
          if (exposed[base].count(attr) == 0) {
            unexposed.insert(attr);
          }
        }
        if (unexposed.empty() || !reported.insert(base).second) {
          continue;
        }
        sink->Report(
            "DWC-S004", ProjectionLoc(input, view),
            StrCat("no view exposes {", Join(unexposed, ", "),
                   "} of base relation '", base,
                   "'; those attributes are recoverable only through the "
                   "complement"),
            base);
      }
    }
  }

  static void ReportComplementUsage(const LintInput& input,
                                    const AnalysisResult& result,
                                    DiagnosticSink* sink) {
    auto base_of = [&result](const std::string& complement) {
      const auto& per_base = result.spec->complement().per_base;
      for (const BaseComplementInfo& info : per_base) {
        if (info.complement_name == complement) {
          return info.base;
        }
      }
      return complement;
    };
    for (const auto& [name, dead] : result.usage.dead_columns) {
      sink->Report(
          "DWC-S005", RelationLoc(input, name, base_of(name)),
          StrCat("complement relation '", name, "' columns {",
                 Join(dead, ", "),
                 "} are read by no maintenance expression and no query"),
          name);
    }
    for (const std::string& name : result.usage.dead_relations) {
      sink->Report(
          "DWC-S006", RelationLoc(input, name, base_of(name)),
          StrCat("complement relation '", name,
                 "' is read by no view maintenance expression and no "
                 "query; the views are maintainable without it"),
          name);
    }
  }
};

}  // namespace

const LintPass* SemanticAnalysisPass() {
  static const SemanticPass pass;
  return &pass;
}

}  // namespace dwc
