#include "lint/diagnostic.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace dwc {

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kNote:
      return "note";
  }
  return "error";
}

bool Diagnostic::operator<(const Diagnostic& other) const {
  // Unknown locations (line 0) sort after known ones.
  bool known = loc.valid();
  bool other_known = other.loc.valid();
  if (known != other_known) {
    return known;
  }
  if (!(loc == other.loc)) {
    return loc < other.loc;
  }
  if (severity != other.severity) {
    return severity < other.severity;
  }
  return rule < other.rule;
}

const std::vector<LintRule>& LintRules() {
  static const std::vector<LintRule> kRules = {
      {"DWC-E001", LintSeverity::kError, "script does not parse", ""},
      {"DWC-E002", LintSeverity::kError,
       "reference to an undeclared relation", ""},
      {"DWC-E003", LintSeverity::kError,
       "reference to an attribute absent from the input schema", ""},
      {"DWC-E004", LintSeverity::kError,
       "view expression outside the PSJ normal form",
       "Section 2, PSJ views pi_Z(sigma_P(Ri1 |x| ... |x| Rik))"},
      {"DWC-E005", LintSeverity::kError,
       "base relation joined more than once (self-join)",
       "Section 2, the construction excludes self-joins"},
      {"DWC-E006", LintSeverity::kError,
       "cyclic inclusion dependencies",
       "Theorem 2.2, acyclicity precondition"},
      {"DWC-E007", LintSeverity::kError,
       "malformed inclusion dependency (arity, unknown name, or type "
       "mismatch)",
       "Section 2, Definition of IND"},
      {"DWC-E008", LintSeverity::kError,
       "duplicate declaration (relation, view, or second key)",
       "Section 2, at most one key per relation"},
      {"DWC-W001", LintSeverity::kWarning,
       "selection predicate is unsatisfiable; the view is always empty", ""},
      {"DWC-W002", LintSeverity::kWarning,
       "selection predicate is a tautology; the selection is redundant", ""},
      {"DWC-W003", LintSeverity::kWarning,
       "no warehouse view contains the relation's key; cover enumeration "
       "finds nothing and the complement stores the full relation",
       "Theorem 2.2, key-containing covers; Prop. 2.2 fallback"},
      {"DWC-W004", LintSeverity::kWarning,
       "base relation has no declared key; cover-based complement "
       "reduction is unavailable",
       "Theorem 2.2 requires declared keys"},
      {"DWC-W005", LintSeverity::kWarning,
       "view is subsumed by another view over the same base relations", ""},
      {"DWC-W006", LintSeverity::kWarning,
       "projection keeps every attribute of its input (no-op)", ""},
      {"DWC-W007", LintSeverity::kWarning,
       "view is defined over another view; warehouse views must be PSJ "
       "expressions over base relations",
       "Section 2, V defined over D"},
      {"DWC-S001", LintSeverity::kWarning,
       "maintenance under this delta is statically classified SOURCE; "
       "update independence is lost and integration must re-query the "
       "source",
       "Theorem 4.1, update independence"},
      {"DWC-S002", LintSeverity::kWarning,
       "base relation is not reconstructible from the warehouse; the "
       "claimed complement drops attributes (see the missing-attribute "
       "witness)",
       "Proposition 2.1, invertibility of W"},
      {"DWC-S003", LintSeverity::kWarning,
       "base relation has no verified residual store; tuples the views "
       "lose may be unrecoverable",
       "Equation (3), Ci = Ri \\ (R^i U R^i_ir)"},
      {"DWC-N001", LintSeverity::kNote,
       "inclusion dependency is not in common-attribute form; Theorem 2.2 "
       "machinery only exploits common-attribute INDs",
       "Footnote 3 / Theorem 2.2"},
      {"DWC-N002", LintSeverity::kNote,
       "relation is not referenced by any view; the complement must "
       "materialize it in full", "Prop. 2.2, Ci = Ri \\ R^i"},
      {"DWC-N003", LintSeverity::kNote,
       "view's canonicalized definition is identical to another view's; "
       "the warehouse materializes the same relation twice",
       "hash-consed expression DAG, algebra/interner.h"},
      {"DWC-N004", LintSeverity::kNote,
       "view's canonicalized definition appears as a subexpression of "
       "another view's definition; consider defining the larger view over "
       "the smaller one's bases once",
       "hash-consed expression DAG, algebra/interner.h"},
      {"DWC-S004", LintSeverity::kNote,
       "projection drops attributes of a base relation that no other view "
       "exposes; they are recoverable only through the complement",
       "Section 6, reduced complements"},
      {"DWC-S005", LintSeverity::kNote,
       "complement column is read by no view maintenance expression and no "
       "translated query; it is materialized dead weight",
       "Section 6, reduced complements"},
      {"DWC-S006", LintSeverity::kNote,
       "complement relation is read by no view maintenance expression and "
       "no translated query; the views are maintainable without it",
       "Section 4 closing remark, selection-only views"},
  };
  return kRules;
}

const LintRule* FindLintRule(std::string_view id) {
  for (const LintRule& rule : LintRules()) {
    if (rule.id == id) {
      return &rule;
    }
  }
  return nullptr;
}

void DiagnosticSink::Report(std::string_view rule, SourceLocation loc,
                            std::string message, std::string subject) {
  const LintRule* info = FindLintRule(rule);
  assert(info != nullptr && "unknown lint rule ID");
  Diagnostic diagnostic;
  diagnostic.severity = info ? info->severity : LintSeverity::kError;
  diagnostic.rule = std::string(rule);
  diagnostic.loc = loc;
  diagnostic.message = std::move(message);
  diagnostic.subject = std::move(subject);
  switch (diagnostic.severity) {
    case LintSeverity::kError:
      ++errors_;
      break;
    case LintSeverity::kWarning:
      ++warnings_;
      break;
    case LintSeverity::kNote:
      ++notes_;
      break;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::Sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end());
}

std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view file) {
  std::string out;
  if (!file.empty()) {
    out = StrCat(file, ":");
  }
  if (diagnostic.loc.valid()) {
    out = StrCat(out, diagnostic.loc.line, ":", diagnostic.loc.column, ":");
  }
  if (!out.empty()) {
    out += " ";
  }
  return StrCat(out, LintSeverityName(diagnostic.severity), ": ",
                diagnostic.message, " [", diagnostic.rule, "]");
}

std::string FormatDiagnosticsText(const std::vector<Diagnostic>& diagnostics,
                                  std::string_view file) {
  std::string out;
  size_t errors = 0;
  size_t warnings = 0;
  for (const Diagnostic& diagnostic : diagnostics) {
    out += FormatDiagnostic(diagnostic, file);
    out += "\n";
    errors += diagnostic.severity == LintSeverity::kError ? 1 : 0;
    warnings += diagnostic.severity == LintSeverity::kWarning ? 1 : 0;
  }
  if (!diagnostics.empty()) {
    out += StrCat(errors, " error(s), ", warnings, " warning(s), ",
                  diagnostics.size() - errors - warnings, " note(s)\n");
  }
  return out;
}

namespace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatDiagnosticsJson(const std::vector<Diagnostic>& diagnostics,
                                  std::string_view file) {
  std::string out = StrCat("{\"file\": \"", JsonEscape(file),
                           "\", \"diagnostics\": [");
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) {
      out += ", ";
    }
    out += StrCat("{\"rule\": \"", JsonEscape(d.rule), "\", \"severity\": \"",
                  LintSeverityName(d.severity), "\", \"line\": ", d.loc.line,
                  ", \"column\": ", d.loc.column, ", \"message\": \"",
                  JsonEscape(d.message), "\", \"subject\": \"",
                  JsonEscape(d.subject), "\"}");
    switch (d.severity) {
      case LintSeverity::kError:
        ++errors;
        break;
      case LintSeverity::kWarning:
        ++warnings;
        break;
      case LintSeverity::kNote:
        ++notes;
        break;
    }
  }
  out += StrCat("], \"errors\": ", errors, ", \"warnings\": ", warnings,
                ", \"notes\": ", notes, "}");
  return out;
}

}  // namespace dwc
