#ifndef DWC_LINT_SARIF_H_
#define DWC_LINT_SARIF_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostic.h"

namespace dwc {

// Diagnostics of one analyzed file, for multi-file SARIF logs.
struct SarifFileResults {
  std::string file;
  std::vector<Diagnostic> diagnostics;
};

// Renders a SARIF 2.1.0 log with a single run: `tool_name` as the driver,
// the catalog entries of every rule that produced a result, and one result
// per diagnostic with its physical location. GitHub code scanning accepts
// this directly.
std::string FormatSarif(const std::vector<SarifFileResults>& files,
                        std::string_view tool_name);

// Single-file convenience wrapper.
std::string FormatDiagnosticsSarif(const std::vector<Diagnostic>& diagnostics,
                                   std::string_view file,
                                   std::string_view tool_name);

}  // namespace dwc

#endif  // DWC_LINT_SARIF_H_
