#ifndef DWC_LINT_LINTER_H_
#define DWC_LINT_LINTER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "algebra/view.h"
#include "core/complement.h"
#include "core/warehouse_spec.h"
#include "lint/diagnostic.h"
#include "parser/parser.h"
#include "relational/catalog.h"
#include "util/result.h"

namespace dwc {

// The outcome of one analyzer run: every finding from every pass, sorted
// by source position.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;

  bool has_errors() const { return errors > 0; }
};

// Parses `source` and runs all passes. A parse failure is itself a
// diagnostic (DWC-E001) rather than an error return: lint always yields a
// report.
LintReport LintScript(std::string_view source);

// Runs all passes over an already-parsed script.
LintReport LintProgram(const ParsedProgram& program);

// Runs all passes over an in-memory specification (no source positions).
LintReport LintWarehouseViews(std::shared_ptr<const Catalog> catalog,
                              const std::vector<ViewDef>& views);

// SpecifyWarehouse with the analyzer wired in front: runs all passes and
// fails with the collected error diagnostics before any complement is
// computed. Non-error findings are appended to `*report` when non-null
// (errors too, for callers that want to render them).
Result<WarehouseSpec> SpecifyWarehouseChecked(
    std::shared_ptr<const Catalog> catalog, std::vector<ViewDef> views,
    const ComplementOptions& options = ComplementOptions(),
    LintReport* report = nullptr);

}  // namespace dwc

#endif  // DWC_LINT_LINTER_H_
