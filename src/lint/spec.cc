#include "lint/spec.h"

#include <utility>
#include <variant>

#include "util/string_util.h"

namespace dwc {

namespace {

// Validates one IND declaration against the catalog, reporting findings.
// Returns true when the IND is well-formed (regardless of acyclicity,
// which the cycle pass owns).
bool CheckInclusion(const InclusionStmt& stmt, const Catalog& catalog,
                    DiagnosticSink* sink) {
  const InclusionDependency& ind = stmt.ind;
  bool ok = true;
  const Schema* lhs = catalog.FindSchema(ind.lhs_relation);
  const Schema* rhs = catalog.FindSchema(ind.rhs_relation);
  if (lhs == nullptr) {
    sink->Report("DWC-E002", stmt.loc,
                 StrCat("inclusion dependency references undeclared relation '",
                        ind.lhs_relation, "'"),
                 ind.lhs_relation);
    ok = false;
  }
  if (rhs == nullptr) {
    sink->Report("DWC-E002", stmt.loc,
                 StrCat("inclusion dependency references undeclared relation '",
                        ind.rhs_relation, "'"),
                 ind.rhs_relation);
    ok = false;
  }
  if (ind.lhs_attrs.empty() || ind.lhs_attrs.size() != ind.rhs_attrs.size()) {
    sink->Report("DWC-E007", stmt.loc,
                 StrCat("inclusion dependency ", ind.ToString(),
                        " needs nonempty attribute lists of equal length"));
    return false;
  }
  if (!ok) {
    return false;
  }
  for (size_t i = 0; i < ind.lhs_attrs.size(); ++i) {
    std::optional<size_t> li = lhs->IndexOf(ind.lhs_attrs[i]);
    std::optional<size_t> ri = rhs->IndexOf(ind.rhs_attrs[i]);
    if (!li.has_value()) {
      sink->Report("DWC-E003", stmt.loc,
                   StrCat("inclusion dependency references attribute '",
                          ind.lhs_attrs[i], "' absent from '",
                          ind.lhs_relation, "'"),
                   ind.lhs_relation);
      ok = false;
    }
    if (!ri.has_value()) {
      sink->Report("DWC-E003", stmt.loc,
                   StrCat("inclusion dependency references attribute '",
                          ind.rhs_attrs[i], "' absent from '",
                          ind.rhs_relation, "'"),
                   ind.rhs_relation);
      ok = false;
    }
    if (li.has_value() && ri.has_value() &&
        lhs->attribute(*li).type != rhs->attribute(*ri).type) {
      sink->Report("DWC-E007", stmt.loc,
                   StrCat("inclusion dependency compares '", ind.lhs_attrs[i],
                          "' (", ValueTypeName(lhs->attribute(*li).type),
                          ") with '", ind.rhs_attrs[i], "' (",
                          ValueTypeName(rhs->attribute(*ri).type), ")"));
      ok = false;
    }
  }
  if (ok && !ind.IsCommonAttrForm()) {
    sink->Report("DWC-N001", stmt.loc,
                 StrCat("inclusion dependency ", ind.ToString(),
                        " renames attributes; Theorem 2.2 cover candidates "
                        "only arise from common-attribute INDs"));
  }
  return ok;
}

}  // namespace

LintInput BuildLintInput(const ParsedProgram& program, DiagnosticSink* sink) {
  LintInput input;
  auto catalog = std::make_shared<Catalog>();
  input.source_map = program.source_map;

  for (const Statement& statement : program.statements) {
    if (const auto* create = std::get_if<CreateTableStmt>(&statement)) {
      if (catalog->HasRelation(create->name)) {
        sink->Report("DWC-E008", create->loc,
                     StrCat("relation '", create->name, "' declared twice"),
                     create->name);
        continue;
      }
      Status status = catalog->AddRelation(create->name, create->schema);
      if (!status.ok()) {
        sink->Report("DWC-E008", create->loc, status.message(), create->name);
        continue;
      }
      input.relation_locs.emplace(create->name, create->loc);
      if (create->key.has_value()) {
        bool key_ok = true;
        for (const std::string& attr : *create->key) {
          if (!create->schema.Contains(attr)) {
            sink->Report("DWC-E003", create->loc,
                         StrCat("key of '", create->name,
                                "' names attribute '", attr,
                                "' absent from its schema"),
                         create->name);
            key_ok = false;
          }
        }
        if (key_ok) {
          // Cannot fail: the relation is fresh and the attributes exist.
          Status key_status = catalog->AddKey(create->name, *create->key);
          (void)key_status;
        }
      }
    } else if (const auto* inclusion = std::get_if<InclusionStmt>(&statement)) {
      if (CheckInclusion(*inclusion, *catalog, sink)) {
        input.inds.push_back(LintedInd{inclusion->ind, inclusion->loc});
        // Keep the catalog usable for downstream passes; cycle-closing
        // INDs stay out of it but are still in `inds` for the cycle pass.
        Status status = catalog->AddInclusion(inclusion->ind);
        (void)status;
      }
    } else if (const auto* view = std::get_if<ViewStmt>(&statement)) {
      bool duplicate = catalog->HasRelation(view->name);
      for (const LintedView& existing : input.views) {
        duplicate = duplicate || existing.def.name == view->name;
      }
      if (duplicate) {
        sink->Report("DWC-E008", view->loc,
                     StrCat("name '", view->name, "' already declared"),
                     view->name);
        continue;
      }
      input.views.push_back(
          LintedView{ViewDef{view->name, view->expr}, view->loc});
    } else if (const auto* insert = std::get_if<InsertStmt>(&statement)) {
      if (!catalog->HasRelation(insert->relation)) {
        sink->Report("DWC-E002", insert->loc,
                     StrCat("INSERT into undeclared relation '",
                            insert->relation, "'"),
                     insert->relation);
      }
    } else if (const auto* del = std::get_if<DeleteStmt>(&statement)) {
      if (!catalog->HasRelation(del->relation)) {
        sink->Report("DWC-E002", del->loc,
                     StrCat("DELETE from undeclared relation '",
                            del->relation, "'"),
                     del->relation);
      }
    } else if (const auto* delta = std::get_if<DeltaStmt>(&statement)) {
      if (!catalog->HasRelation(delta->relation)) {
        sink->Report("DWC-E002", delta->loc,
                     StrCat("DELTA against undeclared relation '",
                            delta->relation, "'"),
                     delta->relation);
      }
    } else if (const auto* query = std::get_if<QueryStmt>(&statement)) {
      input.queries.push_back(LintedQuery{query->expr, query->loc});
    }
    // SUMMARY statements are warehouse-load-time concerns; the
    // specification passes do not inspect them.
  }

  input.catalog = std::move(catalog);
  return input;
}

LintInput MakeLintInput(std::shared_ptr<const Catalog> catalog,
                        const std::vector<ViewDef>& views) {
  LintInput input;
  for (const InclusionDependency& ind : catalog->inclusions()) {
    input.inds.push_back(LintedInd{ind, SourceLocation{}});
  }
  for (const ViewDef& view : views) {
    input.views.push_back(LintedView{view, SourceLocation{}});
  }
  input.catalog = std::move(catalog);
  return input;
}

}  // namespace dwc
