#include "lint/linter.h"

#include <cctype>
#include <string>
#include <utility>

#include "lint/passes.h"
#include "lint/spec.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Lexer/parser errors carry their position inside the message ("... at
// line 3, column 7 ..."); recover it so DWC-E001 points somewhere useful.
SourceLocation LocationFromMessage(const std::string& message) {
  SourceLocation loc;
  size_t pos = message.rfind("line ");
  if (pos == std::string::npos) {
    return loc;
  }
  size_t line = 0;
  size_t i = pos + 5;
  while (i < message.size() &&
         std::isdigit(static_cast<unsigned char>(message[i]))) {
    line = line * 10 + static_cast<size_t>(message[i] - '0');
    ++i;
  }
  if (line == 0) {
    return loc;
  }
  loc.line = line;
  loc.column = 1;
  size_t col_pos = message.find("column ", i);
  if (col_pos != std::string::npos) {
    size_t column = 0;
    for (size_t j = col_pos + 7;
         j < message.size() &&
         std::isdigit(static_cast<unsigned char>(message[j]));
         ++j) {
      column = column * 10 + static_cast<size_t>(message[j] - '0');
    }
    if (column > 0) {
      loc.column = column;
    }
  }
  return loc;
}

LintReport ReportFromSink(DiagnosticSink sink) {
  sink.Sort();
  LintReport report;
  report.errors = sink.error_count();
  report.warnings = sink.warning_count();
  report.notes = sink.note_count();
  report.diagnostics = sink.diagnostics();
  return report;
}

LintReport RunPasses(const LintInput& input, DiagnosticSink sink) {
  for (const LintPass* pass : AllLintPasses()) {
    pass->Run(input, &sink);
  }
  return ReportFromSink(std::move(sink));
}

}  // namespace

LintReport LintScript(std::string_view source) {
  Result<ParsedProgram> program = ParseProgramWithLocations(source);
  if (!program.ok()) {
    DiagnosticSink sink;
    sink.Report("DWC-E001", LocationFromMessage(program.status().message()),
                program.status().message());
    return ReportFromSink(std::move(sink));
  }
  return LintProgram(*program);
}

LintReport LintProgram(const ParsedProgram& program) {
  DiagnosticSink sink;
  LintInput input = BuildLintInput(program, &sink);
  return RunPasses(input, std::move(sink));
}

LintReport LintWarehouseViews(std::shared_ptr<const Catalog> catalog,
                              const std::vector<ViewDef>& views) {
  return RunPasses(MakeLintInput(std::move(catalog), views),
                   DiagnosticSink());
}

Result<WarehouseSpec> SpecifyWarehouseChecked(
    std::shared_ptr<const Catalog> catalog, std::vector<ViewDef> views,
    const ComplementOptions& options, LintReport* report) {
  LintReport lint = LintWarehouseViews(catalog, views);
  if (report != nullptr) {
    *report = lint;
  }
  if (lint.has_errors()) {
    std::vector<std::string> messages;
    for (const Diagnostic& diagnostic : lint.diagnostics) {
      if (diagnostic.severity == LintSeverity::kError) {
        messages.push_back(StrCat(diagnostic.message, " [", diagnostic.rule,
                                  "]"));
      }
    }
    return Status::FailedPrecondition(
        StrCat("specification rejected by the analyzer: ",
               Join(messages, "; ")));
  }
  return SpecifyWarehouse(std::move(catalog), std::move(views), options);
}

}  // namespace dwc
