#ifndef DWC_LINT_SPEC_H_
#define DWC_LINT_SPEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/view.h"
#include "lint/diagnostic.h"
#include "parser/parser.h"
#include "relational/catalog.h"
#include "relational/constraints.h"

namespace dwc {

// A view definition together with where it was declared.
struct LintedView {
  ViewDef def;
  SourceLocation loc;
};

// An inclusion dependency together with where it was declared. Unlike
// Catalog (which rejects cycle-closing INDs outright), the lint input
// keeps every structurally valid IND so the cycle pass can report the
// whole cycle.
struct LintedInd {
  InclusionDependency ind;
  SourceLocation loc;
};

// A QUERY statement together with where it was issued. The semantic pass
// feeds these to the dead-complement demand analysis.
struct LintedQuery {
  ExprRef expr;
  SourceLocation loc;
};

// Everything the analysis passes look at: a best-effort catalog (valid
// declarations only), the declared views, the raw IND list, the script's
// queries, and source positions. Built either from a parsed script (with
// positions) or from in-memory objects (without).
struct LintInput {
  std::shared_ptr<const Catalog> catalog;
  std::vector<LintedView> views;
  std::vector<LintedInd> inds;
  std::vector<LintedQuery> queries;
  // Where each relation was declared; empty for in-memory input.
  std::map<std::string, SourceLocation> relation_locs;
  SourceMap source_map;
};

// Walks a parsed script, reporting declaration-level findings (duplicate
// declarations, malformed INDs, INSERT/DELETE into unknown relations) and
// assembling the input for the analysis passes. Invalid declarations are
// reported and skipped; analysis continues with what remains.
LintInput BuildLintInput(const ParsedProgram& program, DiagnosticSink* sink);

// Wraps an existing catalog + view set (no source positions) for the
// SpecifyWarehouseChecked path.
LintInput MakeLintInput(std::shared_ptr<const Catalog> catalog,
                        const std::vector<ViewDef>& views);

}  // namespace dwc

#endif  // DWC_LINT_SPEC_H_
