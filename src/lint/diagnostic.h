#ifndef DWC_LINT_DIAGNOSTIC_H_
#define DWC_LINT_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "parser/token.h"

namespace dwc {

// How bad a finding is. Errors make a specification unusable for the
// paper's machinery; warnings flag degraded behavior (e.g. full-`Ri`
// complements); notes are informational.
enum class LintSeverity {
  kError = 0,
  kWarning,
  kNote,
};

// "error", "warning", "note".
const char* LintSeverityName(LintSeverity severity);

// One finding of the static analyzer, addressable by a stable rule ID.
struct Diagnostic {
  LintSeverity severity = LintSeverity::kError;
  // Stable ID, e.g. "DWC-E002". The catalog of IDs lives in LintRules().
  std::string rule;
  // Invalid (line 0) when no source position is known.
  SourceLocation loc;
  std::string message;
  // The view / relation the finding is about, when there is one.
  std::string subject;

  bool operator<(const Diagnostic& other) const;
};

// Catalog entry describing one rule: its default severity, a one-line
// summary, and the paper precondition it enforces (empty when the rule is
// an engineering check rather than a paper one).
struct LintRule {
  const char* id;
  LintSeverity severity;
  const char* summary;
  const char* paper_ref;
};

// All known rules, grouped by severity (errors, then warnings, then
// notes) and numbered within each group.
const std::vector<LintRule>& LintRules();
// nullptr for unknown IDs.
const LintRule* FindLintRule(std::string_view id);

// Collects diagnostics across passes. Never aborts: passes report
// everything they find and the caller decides what to do with errors.
class DiagnosticSink {
 public:
  // Reports under `rule` with the catalog's default severity. The rule ID
  // must exist in LintRules() (asserted in debug builds; unknown IDs fall
  // back to kError).
  void Report(std::string_view rule, SourceLocation loc, std::string message,
              std::string subject = "");

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool has_errors() const { return errors_ > 0; }
  size_t error_count() const { return errors_; }
  size_t warning_count() const { return warnings_; }
  size_t note_count() const { return notes_; }

  // Stable-sorts findings by source position (unknown positions last),
  // then severity, then rule ID.
  void Sort();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t errors_ = 0;
  size_t warnings_ = 0;
  size_t notes_ = 0;
};

// "file:line:col: severity: message [RULE]" (clang style). `file` may be
// empty; unknown locations drop the line:col part.
std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view file);

// One line per diagnostic plus a trailing "N error(s), M warning(s)"
// summary line (omitted when there are no findings).
std::string FormatDiagnosticsText(const std::vector<Diagnostic>& diagnostics,
                                  std::string_view file);

// A JSON object {"file": ..., "diagnostics": [...], "errors": N,
// "warnings": N, "notes": N}. Unknown locations serialize as line 0.
std::string FormatDiagnosticsJson(const std::vector<Diagnostic>& diagnostics,
                                  std::string_view file);

}  // namespace dwc

#endif  // DWC_LINT_DIAGNOSTIC_H_
