#include "lint/predicate_analysis.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace dwc {

namespace {

// Keeps the DNF expansion from exploding on adversarial inputs; predicates
// that would need more disjuncts are simply not decided.
constexpr size_t kMaxDisjuncts = 128;

CmpOp NegateOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

// "const op attr" / "b op a" mirrored into "attr op' const" / "a op' b".
CmpOp MirrorOp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;
  }
}

bool EvalConstCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

// A normalized literal of one DNF conjunct.
struct Lit {
  enum class Kind {
    kTrue,      // Constant true: droppable.
    kFalse,     // Constant false: the conjunct is unsatisfiable.
    kCmp,       // attr <op> constant.
    kAttrPair,  // attr <op> rhs_attr (distinct attributes).
  };
  Kind kind = Kind::kTrue;
  std::string attr;
  CmpOp op = CmpOp::kEq;
  Value constant;
  std::string rhs_attr;
};

Lit ConstLit(bool truth) {
  Lit lit;
  lit.kind = truth ? Lit::Kind::kTrue : Lit::Kind::kFalse;
  return lit;
}

// Normalizes one comparison node (under an optional NOT) into a literal.
Lit MakeLit(const Predicate& cmp, bool negated) {
  CmpOp op = negated ? NegateOp(cmp.op()) : cmp.op();
  const Operand& lhs = cmp.lhs();
  const Operand& rhs = cmp.rhs();
  if (!lhs.is_attr() && !rhs.is_attr()) {
    return ConstLit(EvalConstCmp(lhs.value(), op, rhs.value()));
  }
  Lit lit;
  if (lhs.is_attr() && rhs.is_attr()) {
    if (lhs.attr() == rhs.attr()) {
      // Reflexive comparison: x op x.
      return ConstLit(op == CmpOp::kEq || op == CmpOp::kLe ||
                      op == CmpOp::kGe);
    }
    lit.kind = Lit::Kind::kAttrPair;
    lit.attr = lhs.attr();
    lit.op = op;
    lit.rhs_attr = rhs.attr();
    if (lit.rhs_attr < lit.attr) {
      std::swap(lit.attr, lit.rhs_attr);
      lit.op = MirrorOp(lit.op);
    }
    return lit;
  }
  lit.kind = Lit::Kind::kCmp;
  if (lhs.is_attr()) {
    lit.attr = lhs.attr();
    lit.op = op;
    lit.constant = rhs.value();
  } else {
    lit.attr = rhs.attr();
    lit.op = MirrorOp(op);
    lit.constant = lhs.value();
  }
  return lit;
}

using Conj = std::vector<Lit>;

// Expands `p` (negated when `negated`) into a disjunction of literal
// conjunctions. Returns false when the expansion would exceed the budget.
bool ToDnf(const PredicateRef& p, bool negated, std::vector<Conj>* out) {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      if (!negated) {
        out->push_back(Conj{});
      }
      // NOT true: the empty disjunction, i.e. false.
      return true;
    case Predicate::Kind::kCmp:
      out->push_back(Conj{MakeLit(*p, negated)});
      return true;
    case Predicate::Kind::kNot:
      return ToDnf(p->left(), !negated, out);
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr: {
      bool conjunctive = (p->kind() == Predicate::Kind::kAnd) != negated;
      std::vector<Conj> left;
      std::vector<Conj> right;
      if (!ToDnf(p->left(), negated, &left) ||
          !ToDnf(p->right(), negated, &right)) {
        return false;
      }
      if (!conjunctive) {
        if (left.size() + right.size() > kMaxDisjuncts) {
          return false;
        }
        *out = std::move(left);
        out->insert(out->end(), std::make_move_iterator(right.begin()),
                    std::make_move_iterator(right.end()));
        return true;
      }
      if (left.size() * right.size() > kMaxDisjuncts) {
        return false;
      }
      for (const Conj& a : left) {
        for (const Conj& b : right) {
          Conj merged = a;
          merged.insert(merged.end(), b.begin(), b.end());
          out->push_back(std::move(merged));
        }
      }
      return true;
    }
  }
  return false;
}

// True when {x : x a_op v} ∩ {x : x b_op w} is provably empty under the
// engine's total Value order (no density assumption is needed: every case
// below derives x < x or x != x directly).
bool PairUnsatCmp(CmpOp a_op, const Value& v, CmpOp b_op, const Value& w) {
  // Normalize so the equality (if any) comes first.
  if (b_op == CmpOp::kEq && a_op != CmpOp::kEq) {
    return PairUnsatCmp(b_op, w, a_op, v);
  }
  switch (a_op) {
    case CmpOp::kEq:
      // x = v contradicts x b_op w iff v fails the other constraint.
      return !EvalConstCmp(v, b_op, w);
    case CmpOp::kNe:
      return false;  // Only contradicted by an equality, handled above.
    case CmpOp::kLt:
      // x < v vs lower bounds.
      if (b_op == CmpOp::kGt || b_op == CmpOp::kGe) {
        return v <= w;
      }
      return false;
    case CmpOp::kLe:
      if (b_op == CmpOp::kGt) {
        return v <= w;
      }
      if (b_op == CmpOp::kGe) {
        return v < w;
      }
      return false;
    case CmpOp::kGt:
      if (b_op == CmpOp::kLt || b_op == CmpOp::kLe) {
        return w <= v;
      }
      return false;
    case CmpOp::kGe:
      if (b_op == CmpOp::kLt) {
        return w <= v;
      }
      if (b_op == CmpOp::kLe) {
        return w < v;
      }
      return false;
  }
  return false;
}

// True when (x a_op y) AND (x b_op y) is unsatisfiable for any x, y.
bool ContradictoryOps(CmpOp a, CmpOp b) {
  auto unordered = [&](CmpOp p, CmpOp q) {
    return (a == p && b == q) || (a == q && b == p);
  };
  return unordered(CmpOp::kEq, CmpOp::kNe) ||
         unordered(CmpOp::kEq, CmpOp::kLt) ||
         unordered(CmpOp::kEq, CmpOp::kGt) ||
         unordered(CmpOp::kLt, CmpOp::kGt) ||
         unordered(CmpOp::kLt, CmpOp::kGe) ||
         unordered(CmpOp::kGt, CmpOp::kLe);
}

bool ConjUnsat(const Conj& conj) {
  for (size_t i = 0; i < conj.size(); ++i) {
    const Lit& a = conj[i];
    if (a.kind == Lit::Kind::kFalse) {
      return true;
    }
    for (size_t j = i + 1; j < conj.size(); ++j) {
      const Lit& b = conj[j];
      if (a.kind == Lit::Kind::kCmp && b.kind == Lit::Kind::kCmp &&
          a.attr == b.attr &&
          PairUnsatCmp(a.op, a.constant, b.op, b.constant)) {
        return true;
      }
      if (a.kind == Lit::Kind::kAttrPair && b.kind == Lit::Kind::kAttrPair &&
          a.attr == b.attr && a.rhs_attr == b.rhs_attr &&
          ContradictoryOps(a.op, b.op)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

bool ProvablyUnsatisfiable(const PredicateRef& p) {
  std::vector<Conj> dnf;
  if (!ToDnf(p, /*negated=*/false, &dnf)) {
    return false;
  }
  return std::all_of(dnf.begin(), dnf.end(), ConjUnsat);
}

bool ProvablyTautological(const PredicateRef& p) {
  std::vector<Conj> dnf;
  if (!ToDnf(p, /*negated=*/true, &dnf)) {
    return false;
  }
  return std::all_of(dnf.begin(), dnf.end(), ConjUnsat);
}

}  // namespace dwc
