#ifndef DWC_LINT_PREDICATE_ANALYSIS_H_
#define DWC_LINT_PREDICATE_ANALYSIS_H_

#include "algebra/predicate.h"

namespace dwc {

// Sound-but-incomplete satisfiability tests used by the lint passes,
// complementing algebra/implication.h (which proves p => q but has no
// notion of an unsatisfiable p).
//
// The predicate is expanded to DNF over normalized literals (attr <op>
// constant, constant-folded const/const comparisons, opaque attr/attr
// comparisons) under a disjunct budget; a predicate is reported
// unsatisfiable only when *every* disjunct contains a contradiction
// provable by pairwise interval reasoning under the engine's total Value
// order. `false` therefore means "could not prove it", never "refuted".
bool ProvablyUnsatisfiable(const PredicateRef& p);

// p is a tautology iff NOT p is unsatisfiable.
bool ProvablyTautological(const PredicateRef& p);

}  // namespace dwc

#endif  // DWC_LINT_PREDICATE_ANALYSIS_H_
