#include "lint/sarif.h"

#include <set>

#include "util/string_util.h"

namespace dwc {

namespace {

std::string Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

// SARIF's result levels: error / warning / note match our severities.
const char* SarifLevel(LintSeverity severity) {
  return LintSeverityName(severity);
}

}  // namespace

std::string FormatSarif(const std::vector<SarifFileResults>& files,
                        std::string_view tool_name) {
  // Rule metadata for every rule that produced at least one result.
  std::set<std::string> used;
  for (const SarifFileResults& file : files) {
    for (const Diagnostic& diagnostic : file.diagnostics) {
      used.insert(diagnostic.rule);
    }
  }
  std::string rules;
  bool first_rule = true;
  for (const LintRule& rule : LintRules()) {
    if (used.count(std::string(rule.id)) == 0) {
      continue;
    }
    if (!first_rule) {
      rules += ", ";
    }
    first_rule = false;
    rules += StrCat("{\"id\": \"", Escape(rule.id),
                    "\", \"shortDescription\": {\"text\": \"",
                    Escape(rule.summary), "\"}");
    if (!std::string_view(rule.paper_ref).empty()) {
      rules += StrCat(", \"help\": {\"text\": \"", Escape(rule.paper_ref),
                      "\"}");
    }
    rules += "}";
  }

  std::string results;
  bool first_result = true;
  for (const SarifFileResults& file : files) {
    for (const Diagnostic& d : file.diagnostics) {
      if (!first_result) {
        results += ", ";
      }
      first_result = false;
      results += StrCat(
          "{\"ruleId\": \"", Escape(d.rule), "\", \"level\": \"",
          SarifLevel(d.severity), "\", \"message\": {\"text\": \"",
          Escape(d.message), "\"}");
      if (!file.file.empty()) {
        results += StrCat(
            ", \"locations\": [{\"physicalLocation\": "
            "{\"artifactLocation\": {\"uri\": \"",
            Escape(file.file), "\"}");
        if (d.loc.valid()) {
          results += StrCat(", \"region\": {\"startLine\": ", d.loc.line,
                            ", \"startColumn\": ", d.loc.column, "}");
        }
        results += "}}]";
      }
      results += "}";
    }
  }

  return StrCat(
      "{\"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\", "
      "\"version\": \"2.1.0\", \"runs\": [{\"tool\": {\"driver\": "
      "{\"name\": \"",
      Escape(tool_name),
      "\", \"informationUri\": "
      "\"https://github.com/dwc/dwc\", \"rules\": [",
      rules, "]}}, \"results\": [", results, "]}]}");
}

std::string FormatDiagnosticsSarif(const std::vector<Diagnostic>& diagnostics,
                                   std::string_view file,
                                   std::string_view tool_name) {
  std::vector<SarifFileResults> files(1);
  files[0].file = std::string(file);
  files[0].diagnostics = diagnostics;
  return FormatSarif(files, tool_name);
}

}  // namespace dwc
