#include "algebra/simplifier.h"

namespace dwc {

namespace {

bool IsEmptyNode(const ExprRef& expr) {
  return expr->kind() == Expr::Kind::kEmpty;
}

// Schema of `expr` via the resolver; nullopt if unavailable.
std::optional<Schema> TrySchema(const ExprRef& expr,
                                const SchemaResolver* resolver) {
  if (resolver == nullptr) {
    return std::nullopt;
  }
  Result<Schema> schema = InferSchema(*expr, *resolver);
  if (!schema.ok()) {
    return std::nullopt;
  }
  return std::move(schema).value();
}

}  // namespace

ExprRef Simplify(const ExprRef& expr, const SchemaResolver* resolver) {
  switch (expr->kind()) {
    case Expr::Kind::kBase:
    case Expr::Kind::kEmpty:
      return expr;
    case Expr::Kind::kSelect: {
      ExprRef child = Simplify(expr->child(), resolver);
      if (IsEmptyNode(child)) {
        return child;
      }
      if (expr->predicate()->kind() == Predicate::Kind::kTrue) {
        return child;
      }
      if (child->kind() == Expr::Kind::kSelect) {
        return Expr::Select(
            Predicate::And(expr->predicate(), child->predicate()),
            child->child());
      }
      return child == expr->child() ? expr
                                    : Expr::Select(expr->predicate(), child);
    }
    case Expr::Kind::kProject: {
      ExprRef child = Simplify(expr->child(), resolver);
      if (IsEmptyNode(child)) {
        // Empty projects to an empty relation over the projected attributes.
        std::vector<Attribute> attrs;
        for (const std::string& name : expr->attrs()) {
          std::optional<size_t> idx = child->empty_schema().IndexOf(name);
          if (!idx.has_value()) {
            return expr;  // Ill-typed; leave for the evaluator to report.
          }
          attrs.push_back(child->empty_schema().attribute(*idx));
        }
        Result<Schema> schema = Schema::Create(std::move(attrs));
        if (!schema.ok()) {
          return expr;
        }
        return Expr::Empty(std::move(schema).value());
      }
      if (child->kind() == Expr::Kind::kProject) {
        return Simplify(Expr::Project(expr->attrs(), child->child()),
                        resolver);
      }
      // Identity projection: same attribute list, same order as the child.
      std::optional<Schema> child_schema = TrySchema(child, resolver);
      if (child_schema.has_value() &&
          child_schema->size() == expr->attrs().size()) {
        bool identity = true;
        for (size_t i = 0; i < expr->attrs().size(); ++i) {
          if (child_schema->attribute(i).name != expr->attrs()[i]) {
            identity = false;
            break;
          }
        }
        if (identity) {
          return child;
        }
      }
      return child == expr->child() ? expr : Expr::Project(expr->attrs(), child);
    }
    case Expr::Kind::kRename: {
      ExprRef child = Simplify(expr->child(), resolver);
      bool trivial = true;
      for (const auto& [from, to] : expr->renames()) {
        if (from != to) {
          trivial = false;
          break;
        }
      }
      if (trivial) {
        return child;
      }
      return child == expr->child() ? expr
                                    : Expr::Rename(expr->renames(), child);
    }
    case Expr::Kind::kJoin: {
      ExprRef left = Simplify(expr->left(), resolver);
      ExprRef right = Simplify(expr->right(), resolver);
      if (IsEmptyNode(left) || IsEmptyNode(right)) {
        ExprRef joined = Expr::Join(left, right);
        std::optional<Schema> schema = TrySchema(joined, resolver);
        if (schema.has_value()) {
          return Expr::Empty(std::move(*schema));
        }
        return joined;
      }
      if (left == expr->left() && right == expr->right()) {
        return expr;
      }
      return Expr::Join(left, right);
    }
    case Expr::Kind::kUnion: {
      ExprRef left = Simplify(expr->left(), resolver);
      ExprRef right = Simplify(expr->right(), resolver);
      if (IsEmptyNode(left)) {
        return right;
      }
      if (IsEmptyNode(right)) {
        return left;
      }
      if (left->Equals(*right)) {
        return left;
      }
      if (left == expr->left() && right == expr->right()) {
        return expr;
      }
      return Expr::Union(left, right);
    }
    case Expr::Kind::kDifference: {
      ExprRef left = Simplify(expr->left(), resolver);
      ExprRef right = Simplify(expr->right(), resolver);
      if (IsEmptyNode(left)) {
        return left;
      }
      if (IsEmptyNode(right)) {
        return left;
      }
      if (left->Equals(*right)) {
        std::optional<Schema> schema = TrySchema(left, resolver);
        if (schema.has_value()) {
          return Expr::Empty(std::move(*schema));
        }
      }
      if (left == expr->left() && right == expr->right()) {
        return expr;
      }
      return Expr::Difference(left, right);
    }
  }
  return expr;
}

}  // namespace dwc
