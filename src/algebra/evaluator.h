#ifndef DWC_ALGEBRA_EVALUATOR_H_
#define DWC_ALGEBRA_EVALUATOR_H_

#include <memory>

#include "algebra/environment.h"
#include "algebra/expr.h"
#include "relational/relation.h"
#include "util/result.h"

namespace dwc {

// Evaluates relational-algebra expressions against an Environment.
//
// Name references resolve to bound relations without copying, so repeatedly
// evaluating small delta expressions against large materialized views is
// cheap. Natural joins are hash joins; when one operand is a bound
// (persistent) relation, the hash index is built — and cached — on that side
// and the computed side streams through it, which gives delta-maintenance
// expressions their O(|delta|) behaviour after the first refresh.
struct EvaluatorOptions {
  // Disables the semijoin/difference pushdown fast paths (plain bottom-up
  // evaluation). Exists for the ablation benchmark
  // (bench/bench_pushdown_ablation.cc) and for debugging.
  bool enable_pushdown = true;
};

// Execution counters, EXPLAIN-style: how an evaluation did its work.
// Retrieved via Evaluator::stats() after one or more evaluations.
struct EvalStats {
  // Join nodes evaluated, and how many took the pushdown fast path.
  size_t joins = 0;
  size_t pushdown_joins = 0;
  // Difference nodes evaluated / taking the restricted-right fast path.
  size_t differences = 0;
  size_t pushdown_differences = 0;
  // Index key lookups performed against base relations by pushed filters.
  size_t index_probes = 0;

  std::string ToString() const;
};

class Evaluator {
 public:
  // `env` must outlive the evaluator and is not owned.
  explicit Evaluator(const Environment* env,
                     EvaluatorOptions options = EvaluatorOptions())
      : env_(env), options_(options) {}

  // Returns a relation that may alias a bound relation (kBase leaves).
  // The result is invalidated by mutating the aliased relation.
  Result<std::shared_ptr<const Relation>> Eval(const Expr& expr);

  // Returns an owned copy of the result.
  Result<Relation> Materialize(const Expr& expr);

  // Counters accumulated across all evaluations by this evaluator.
  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats(); }

 private:
  struct EvalOut {
    std::shared_ptr<const Relation> rel;
    // True if `rel` aliases an environment binding (so its index cache
    // persists across evaluations).
    bool stable = false;
  };

  // Key filter for semijoin pushdown: only tuples whose projection onto
  // `attrs` is in `keys` survive.
  struct KeyFilter {
    std::vector<std::string> attrs;
    const Relation::TupleSet* keys;
  };

  Result<EvalOut> EvalInternal(const Expr& expr);
  Result<EvalOut> EvalJoin(const Expr& expr);
  Result<EvalOut> EvalDifference(const Expr& expr);

  // Evaluates `expr` restricted (exactly) to tuples matching `filter`.
  // This is what makes delta-maintenance expressions O(|delta|): a small
  // relation joined or differenced against a big reconstruction expression
  // pushes its key set through pi/sigma/union/difference/rename down to the
  // base relations, which are probed via their cached indexes instead of
  // being scanned.
  Result<EvalOut> EvalWithFilter(const Expr& expr, const KeyFilter& filter);

  // Crude cardinality estimate used to decide pushdown direction.
  size_t EstimateSize(const Expr& expr) const;

  const Environment* env_;
  EvaluatorOptions options_;
  EvalStats stats_;
};

// One-shot convenience.
Result<Relation> EvalExpr(const Expr& expr, const Environment& env);

}  // namespace dwc

#endif  // DWC_ALGEBRA_EVALUATOR_H_
