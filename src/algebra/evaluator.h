#ifndef DWC_ALGEBRA_EVALUATOR_H_
#define DWC_ALGEBRA_EVALUATOR_H_

#include <memory>

#include "algebra/environment.h"
#include "algebra/expr.h"
#include "algebra/interner.h"
#include "algebra/subplan_cache.h"
#include "exec/kernels.h"
#include "relational/relation.h"
#include "util/result.h"

namespace dwc {

// Evaluates relational-algebra expressions against an Environment.
//
// Name references resolve to bound relations without copying, so repeatedly
// evaluating small delta expressions against large materialized views is
// cheap. Natural joins are hash joins; when one operand is a bound
// (persistent) relation, the hash index is built — and cached — on that side
// and the computed side streams through it, which gives delta-maintenance
// expressions their O(|delta|) behaviour after the first refresh.
struct EvaluatorOptions {
  // Disables the semijoin/difference pushdown fast paths (plain bottom-up
  // evaluation). Exists for the ablation benchmark
  // (bench/bench_pushdown_ablation.cc) and for debugging.
  bool enable_pushdown = true;

  // Pushdown thresholds (see WorthPushdown): an already-evaluated operand of
  // `actual` tuples is pushed down when actual <= pushdown_max_keys, or when
  // actual * pushdown_selectivity_factor < the other side's size estimate.
  // Both are swept by bench_pushdown_ablation.
  size_t pushdown_max_keys = 8;
  size_t pushdown_selectivity_factor = 8;

  // Degree of parallelism for the morsel-driven kernels (parallel hash
  // join, select, project, difference): 0 = auto (hardware concurrency),
  // 1 = exact serial behaviour. Results are SameContentAs-identical at
  // every thread count — relations are sets, so kernel output order is
  // immaterial.
  size_t num_threads = 0;
  // Tuples per morsel, and the input size below which kernels stay serial.
  size_t morsel_size = 1024;
  size_t min_parallel_tuples = 4096;

  // Cached-tuples budget of the subplan recycler cache (see
  // algebra/subplan_cache.h). 0 disables memoization entirely, reproducing
  // pre-cache evaluation exactly; a nonzero budget lets the evaluator
  // recycle subplans whose input relation versions are unchanged, with LRU
  // eviction once the cached results exceed the budget.
  size_t cache_budget_tuples = 0;

  // Cooperative cancellation context (borrowed; may be null — the default,
  // which is exactly the ungoverned pipeline). The evaluator checks it at
  // every operator entry and charges every operator's materialized output
  // tuples against its budget; the morsel kernels it drives check it at
  // morsel boundaries (ExecOptions::cancel). A fired token surfaces as
  // DeadlineExceeded / ResourceExhausted / Aborted from Eval/Materialize;
  // no partial result is ever returned or cached (the subplan cache only
  // ever sees successful evaluations).
  const CancelToken* cancel = nullptr;

  // The kernel-layer view of these knobs.
  ExecOptions exec() const {
    ExecOptions exec_options;
    exec_options.num_threads = num_threads;
    exec_options.morsel_size = morsel_size;
    exec_options.min_parallel_tuples = min_parallel_tuples;
    exec_options.cancel = cancel;
    return exec_options;
  }
};

// Execution counters, EXPLAIN-style: how an evaluation did its work.
// Retrieved via Evaluator::stats() after one or more evaluations.
struct EvalStats {
  // Join nodes evaluated, and how many took the pushdown fast path.
  size_t joins = 0;
  size_t pushdown_joins = 0;
  // Difference nodes evaluated / taking the restricted-right fast path.
  size_t differences = 0;
  size_t pushdown_differences = 0;
  // Index key lookups performed against base relations by pushed filters.
  size_t index_probes = 0;
  // Operator instances that took a morsel-driven parallel path.
  size_t parallel_kernels = 0;
  // Subplan-cache outcomes: memoized results recycled / evaluated fresh /
  // entries evicted to hold the tuple budget. All zero when the cache is
  // disabled (cache_budget_tuples == 0) or not wired up.
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  size_t cache_evictions = 0;
  // Resolutions of environment bindings tagged with MarkSource — data the
  // warehouse pulled from a source. Zero on a SELF/COMPLEMENT-certified
  // integration; the warehouse's certificate cross-check asserts this.
  size_t source_reads = 0;

  // Accumulates `other` into this (all counters add). The warehouse uses
  // this to fold the per-task evaluator stats of a parallel refresh into
  // one report.
  void MergeFrom(const EvalStats& other);

  std::string ToString() const;
};

class Evaluator {
 public:
  // `env` must outlive the evaluator and is not owned. `interner` and
  // `cache` (both optional, both borrowed) enable subplan memoization:
  // expressions interned through `interner` carry canonical ids, and
  // results of id-carrying subplans are recycled from `cache` whenever the
  // (uid, version) snapshot of their input relations is unchanged. With
  // either absent — or with options.cache_budget_tuples == 0 — evaluation
  // is exactly the uncached pipeline.
  explicit Evaluator(const Environment* env,
                     EvaluatorOptions options = EvaluatorOptions(),
                     const ExprInterner* interner = nullptr,
                     SubplanCache* cache = nullptr)
      : env_(env),
        options_(options),
        interner_(interner),
        cache_(options.cache_budget_tuples > 0 ? cache : nullptr) {}

  // Returns a relation that may alias a bound relation (kBase leaves).
  // The result is invalidated by mutating the aliased relation.
  Result<std::shared_ptr<const Relation>> Eval(const Expr& expr);

  // Returns an owned copy of the result.
  Result<Relation> Materialize(const Expr& expr);

  // Counters accumulated across all evaluations by this evaluator.
  const EvalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = EvalStats(); }

 private:
  struct EvalOut {
    std::shared_ptr<const Relation> rel;
    // True if `rel` aliases an environment binding (so its index cache
    // persists across evaluations).
    bool stable = false;
  };

  // Key filter for semijoin pushdown: only tuples whose projection onto
  // `attrs` is in `keys` survive.
  struct KeyFilter {
    std::vector<std::string> attrs;
    const Relation::TupleSet* keys;
  };

  // Memo wrapper: consults the subplan cache (when wired) before delegating
  // to EvalNode, and stores fresh exact results afterwards. Every recursive
  // evaluation funnels through here, so sharing applies at all levels of
  // the DAG. Filter-restricted evaluations (EvalWithFilter) are *not*
  // routed through the cache: their results are subsets, not the subplan's
  // value.
  Result<EvalOut> EvalInternal(const Expr& expr);
  // The actual operator dispatch (the pre-cache EvalInternal).
  Result<EvalOut> EvalNode(const Expr& expr);
  Result<EvalOut> EvalJoin(const Expr& expr);
  Result<EvalOut> EvalDifference(const Expr& expr);

  // True when an already-evaluated operand of `actual` tuples is small
  // enough relative to the other operand's `estimate` that index probing
  // beats a scan (thresholds from options_).
  bool WorthPushdown(size_t actual, size_t estimate) const;

  // Per-operator cancellation point / budget accounting; Ok when no token
  // is wired (options_.cancel == nullptr).
  Status CheckCancel() const {
    return options_.cancel == nullptr ? Status::Ok()
                                      : options_.cancel->Check();
  }
  Status ChargeTuples(size_t tuples) const {
    return options_.cancel == nullptr ? Status::Ok()
                                      : options_.cancel->Charge(tuples);
  }

  // Morsel-driven kernels; each falls back to the serial path for small
  // inputs or num_threads == 1. In HashJoin, `prefer_build_right` marks the
  // right side as an environment binding whose cached index should be
  // (re)used instead of a transient partitioned build.
  Result<Relation> HashJoin(const Relation& left, const Relation& right,
                            bool prefer_build_right);
  Status FilterInto(const Relation& in, const Predicate& predicate,
                    Relation* out);
  Status ProjectInto(const Relation& in, const std::vector<size_t>& indices,
                     Relation* out);
  Result<Relation> SubtractInto(const Relation& left, const Relation& right);

  // Evaluates `expr` restricted (exactly) to tuples matching `filter`.
  // This is what makes delta-maintenance expressions O(|delta|): a small
  // relation joined or differenced against a big reconstruction expression
  // pushes its key set through pi/sigma/union/difference/rename down to the
  // base relations, which are probed via their cached indexes instead of
  // being scanned.
  Result<EvalOut> EvalWithFilter(const Expr& expr, const KeyFilter& filter);

  // Crude cardinality estimate used to decide pushdown direction.
  size_t EstimateSize(const Expr& expr) const;

  const Environment* env_;
  EvaluatorOptions options_;
  const ExprInterner* interner_ = nullptr;
  SubplanCache* cache_ = nullptr;
  EvalStats stats_;
};

// One-shot convenience.
Result<Relation> EvalExpr(const Expr& expr, const Environment& env);

}  // namespace dwc

#endif  // DWC_ALGEBRA_EVALUATOR_H_
