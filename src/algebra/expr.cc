#include "algebra/expr.h"

#include <cassert>

#include "util/string_util.h"

namespace dwc {

ExprRef Expr::Base(std::string name) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kBase;
  node->base_name_ = std::move(name);
  return node;
}

ExprRef Expr::Empty(Schema schema) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kEmpty;
  node->empty_schema_ = std::move(schema);
  return node;
}

ExprRef Expr::Select(PredicateRef predicate, ExprRef child) {
  assert(predicate != nullptr && child != nullptr);
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kSelect;
  node->predicate_ = std::move(predicate);
  node->left_ = std::move(child);
  return node;
}

ExprRef Expr::Project(std::vector<std::string> attrs, ExprRef child) {
  assert(child != nullptr);
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kProject;
  node->attrs_ = std::move(attrs);
  node->left_ = std::move(child);
  return node;
}

ExprRef Expr::Join(ExprRef left, ExprRef right) {
  assert(left != nullptr && right != nullptr);
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kJoin;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExprRef Expr::Union(ExprRef left, ExprRef right) {
  assert(left != nullptr && right != nullptr);
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kUnion;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExprRef Expr::Difference(ExprRef left, ExprRef right) {
  assert(left != nullptr && right != nullptr);
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kDifference;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExprRef Expr::Rename(std::map<std::string, std::string> renames,
                     ExprRef child) {
  assert(child != nullptr);
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = Kind::kRename;
  node->renames_ = std::move(renames);
  node->left_ = std::move(child);
  return node;
}

ExprRef Expr::JoinAll(const std::vector<ExprRef>& exprs) {
  assert(!exprs.empty());
  ExprRef result = exprs[0];
  for (size_t i = 1; i < exprs.size(); ++i) {
    result = Join(result, exprs[i]);
  }
  return result;
}

ExprRef Expr::UnionAll(const std::vector<ExprRef>& exprs) {
  assert(!exprs.empty());
  ExprRef result = exprs[0];
  for (size_t i = 1; i < exprs.size(); ++i) {
    result = Union(result, exprs[i]);
  }
  return result;
}

void Expr::CollectNames(std::set<std::string>* names) const {
  switch (kind_) {
    case Kind::kBase:
      names->insert(base_name_);
      break;
    case Kind::kEmpty:
      break;
    case Kind::kSelect:
    case Kind::kProject:
    case Kind::kRename:
      left_->CollectNames(names);
      break;
    case Kind::kJoin:
    case Kind::kUnion:
    case Kind::kDifference:
      left_->CollectNames(names);
      right_->CollectNames(names);
      break;
  }
}

std::set<std::string> Expr::ReferencedNames() const {
  std::set<std::string> names;
  CollectNames(&names);
  return names;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) {
    return false;
  }
  switch (kind_) {
    case Kind::kBase:
      return base_name_ == other.base_name_;
    case Kind::kEmpty:
      return empty_schema_ == other.empty_schema_;
    case Kind::kSelect:
      return predicate_->Equals(*other.predicate_) &&
             left_->Equals(*other.left_);
    case Kind::kProject:
      return attrs_ == other.attrs_ && left_->Equals(*other.left_);
    case Kind::kRename:
      return renames_ == other.renames_ && left_->Equals(*other.left_);
    case Kind::kJoin:
    case Kind::kUnion:
    case Kind::kDifference:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kBase:
      return base_name_;
    case Kind::kEmpty: {
      std::vector<std::string> names;
      for (const Attribute& attr : empty_schema_.attributes()) {
        names.push_back(attr.name);
      }
      return StrCat("empty[", ::dwc::Join(names, ", "), "]");
    }
    case Kind::kSelect:
      return StrCat("select[", predicate_->ToString(), "](",
                    left_->ToString(), ")");
    case Kind::kProject:
      return StrCat("project[", ::dwc::Join(attrs_, ", "), "](", left_->ToString(),
                    ")");
    case Kind::kRename: {
      std::vector<std::string> parts;
      for (const auto& [from, to] : renames_) {
        parts.push_back(StrCat(from, "->", to));
      }
      return StrCat("rename[", ::dwc::Join(parts, ", "), "](", left_->ToString(),
                    ")");
    }
    case Kind::kJoin:
      return StrCat("(", left_->ToString(), " join ", right_->ToString(), ")");
    case Kind::kUnion:
      return StrCat("(", left_->ToString(), " union ", right_->ToString(),
                    ")");
    case Kind::kDifference:
      return StrCat("(", left_->ToString(), " minus ", right_->ToString(),
                    ")");
  }
  return "?";
}

}  // namespace dwc
