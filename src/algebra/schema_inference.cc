#include "algebra/schema_inference.h"

#include "util/string_util.h"

namespace dwc {

SchemaResolver ResolverFromCatalog(const Catalog& catalog) {
  return [&catalog](const std::string& name) {
    return catalog.FindSchema(name);
  };
}

SchemaResolver ResolverFromEnvironment(const Environment& env) {
  return [&env](const std::string& name) -> const Schema* {
    const Relation* rel = env.Find(name);
    return rel == nullptr ? nullptr : &rel->schema();
  };
}

Result<Schema> InferSchema(const Expr& expr, const SchemaResolver& resolver) {
  switch (expr.kind()) {
    case Expr::Kind::kBase: {
      const Schema* schema = resolver(expr.base_name());
      if (schema == nullptr) {
        return Status::NotFound(
            StrCat("unknown relation '", expr.base_name(), "'"));
      }
      return *schema;
    }
    case Expr::Kind::kEmpty:
      return expr.empty_schema();
    case Expr::Kind::kSelect: {
      DWC_ASSIGN_OR_RETURN(Schema child, InferSchema(*expr.child(), resolver));
      for (const std::string& attr : expr.predicate()->Attributes()) {
        if (!child.Contains(attr)) {
          return Status::InvalidArgument(
              StrCat("selection predicate references '", attr,
                     "' which is not in ", child.ToString()));
        }
      }
      return child;
    }
    case Expr::Kind::kProject: {
      DWC_ASSIGN_OR_RETURN(Schema child, InferSchema(*expr.child(), resolver));
      std::vector<Attribute> attrs;
      attrs.reserve(expr.attrs().size());
      for (const std::string& name : expr.attrs()) {
        std::optional<size_t> idx = child.IndexOf(name);
        if (!idx.has_value()) {
          return Status::InvalidArgument(
              StrCat("projection attribute '", name, "' not in ",
                     child.ToString()));
        }
        attrs.push_back(child.attribute(*idx));
      }
      return Schema::Create(std::move(attrs));
    }
    case Expr::Kind::kRename: {
      DWC_ASSIGN_OR_RETURN(Schema child, InferSchema(*expr.child(), resolver));
      std::vector<Attribute> attrs;
      attrs.reserve(child.size());
      for (const Attribute& attr : child.attributes()) {
        auto it = expr.renames().find(attr.name);
        if (it != expr.renames().end()) {
          attrs.push_back(Attribute{it->second, attr.type});
        } else {
          attrs.push_back(attr);
        }
      }
      for (const auto& [from, to] : expr.renames()) {
        (void)to;
        if (!child.Contains(from)) {
          return Status::InvalidArgument(
              StrCat("rename source '", from, "' not in ", child.ToString()));
        }
      }
      return Schema::Create(std::move(attrs));
    }
    case Expr::Kind::kJoin: {
      DWC_ASSIGN_OR_RETURN(Schema left, InferSchema(*expr.left(), resolver));
      DWC_ASSIGN_OR_RETURN(Schema right, InferSchema(*expr.right(), resolver));
      std::vector<Attribute> attrs = left.attributes();
      for (const Attribute& attr : right.attributes()) {
        std::optional<size_t> idx = left.IndexOf(attr.name);
        if (idx.has_value()) {
          if (left.attribute(*idx).type != attr.type) {
            return Status::InvalidArgument(
                StrCat("join attribute '", attr.name,
                       "' has conflicting types"));
          }
        } else {
          attrs.push_back(attr);
        }
      }
      return Schema::Create(std::move(attrs));
    }
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference: {
      DWC_ASSIGN_OR_RETURN(Schema left, InferSchema(*expr.left(), resolver));
      DWC_ASSIGN_OR_RETURN(Schema right, InferSchema(*expr.right(), resolver));
      if (!left.SameAttrsAs(right)) {
        const char* op =
            expr.kind() == Expr::Kind::kUnion ? "union" : "difference";
        return Status::InvalidArgument(
            StrCat(op, " operands have different schemas: ", left.ToString(),
                   " vs ", right.ToString()));
      }
      return left;
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace dwc
