#ifndef DWC_ALGEBRA_PREDICATE_H_
#define DWC_ALGEBRA_PREDICATE_H_

#include <map>
#include <memory>
#include <string>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"
#include "util/result.h"

namespace dwc {

// Comparison operators of the selection language.
enum class CmpOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* CmpOpSymbol(CmpOp op);

// One side of a comparison: an attribute reference or a constant.
class Operand {
 public:
  static Operand Attr(std::string name) {
    Operand op;
    op.is_attr_ = true;
    op.attr_ = std::move(name);
    return op;
  }
  static Operand Const(Value value) {
    Operand op;
    op.is_attr_ = false;
    op.value_ = std::move(value);
    return op;
  }

  bool is_attr() const { return is_attr_; }
  const std::string& attr() const { return attr_; }
  const Value& value() const { return value_; }

  bool operator==(const Operand& other) const {
    return is_attr_ == other.is_attr_ && attr_ == other.attr_ &&
           value_ == other.value_;
  }

  std::string ToString() const { return is_attr_ ? attr_ : value_.ToString(); }

 private:
  Operand() = default;
  bool is_attr_ = false;
  std::string attr_;
  Value value_;
};

class Predicate;
using PredicateRef = std::shared_ptr<const Predicate>;

// An immutable boolean selection condition over one tuple: comparisons of
// attributes and constants combined with AND / OR / NOT. Shared via
// PredicateRef; all nodes are const after construction.
class Predicate {
 public:
  enum class Kind { kTrue, kCmp, kAnd, kOr, kNot };

  static PredicateRef True();
  static PredicateRef Cmp(Operand lhs, CmpOp op, Operand rhs);
  static PredicateRef And(PredicateRef left, PredicateRef right);
  static PredicateRef Or(PredicateRef left, PredicateRef right);
  static PredicateRef Not(PredicateRef child);

  // Convenience: attr = constant.
  static PredicateRef AttrEq(std::string attr, Value value) {
    return Cmp(Operand::Attr(std::move(attr)), CmpOp::kEq,
               Operand::Const(std::move(value)));
  }
  // Convenience: attr1 = attr2.
  static PredicateRef AttrsEq(std::string a, std::string b) {
    return Cmp(Operand::Attr(std::move(a)), CmpOp::kEq,
               Operand::Attr(std::move(b)));
  }

  Kind kind() const { return kind_; }
  const Operand& lhs() const { return lhs_; }
  const Operand& rhs() const { return rhs_; }
  CmpOp op() const { return op_; }
  const PredicateRef& left() const { return left_; }
  const PredicateRef& right() const { return right_; }

  // All attribute names referenced anywhere in the condition.
  AttrSet Attributes() const;

  // Evaluates against one tuple. Fails if a referenced attribute is missing
  // from `schema` (schema inference normally rules this out beforehand).
  Result<bool> Eval(const Schema& schema, const Tuple& tuple) const;

  // A structurally identical predicate with attributes renamed per `renames`
  // (names absent from the map are kept).
  PredicateRef RenameAttrs(
      const std::map<std::string, std::string>& renames) const;

  // Structural equality.
  bool Equals(const Predicate& other) const;

  std::string ToString() const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  CmpOp op_ = CmpOp::kEq;
  Operand lhs_ = Operand::Const(Value::Null());
  Operand rhs_ = Operand::Const(Value::Null());
  PredicateRef left_;
  PredicateRef right_;
};

}  // namespace dwc

#endif  // DWC_ALGEBRA_PREDICATE_H_
