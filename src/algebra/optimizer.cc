#include "algebra/optimizer.h"

#include <optional>

namespace dwc {

namespace {

// Splits a predicate into its top-level conjuncts ("true" disappears).
void CollectConjuncts(const PredicateRef& predicate,
                      std::vector<PredicateRef>* out) {
  if (predicate->kind() == Predicate::Kind::kTrue) {
    return;
  }
  if (predicate->kind() == Predicate::Kind::kAnd) {
    CollectConjuncts(predicate->left(), out);
    CollectConjuncts(predicate->right(), out);
    return;
  }
  out->push_back(predicate);
}

PredicateRef AndAll(const std::vector<PredicateRef>& conjuncts) {
  if (conjuncts.empty()) {
    return Predicate::True();
  }
  PredicateRef result = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    result = Predicate::And(result, conjuncts[i]);
  }
  return result;
}

std::optional<AttrSet> AttrsOf(const ExprRef& expr,
                               const SchemaResolver& resolver) {
  Result<Schema> schema = InferSchema(*expr, resolver);
  if (!schema.ok()) {
    return std::nullopt;
  }
  return schema->attr_names();
}

bool Covers(const AttrSet& attrs, const AttrSet& needed) {
  for (const std::string& name : needed) {
    if (attrs.find(name) == attrs.end()) {
      return false;
    }
  }
  return true;
}

// Pushes sigma_{predicate} into `expr` as far as possible; `predicate` must
// only reference attributes of `expr`'s output.
ExprRef PushSelect(PredicateRef predicate, const ExprRef& expr,
                   const SchemaResolver& resolver);

ExprRef Rewrite(const ExprRef& expr, const SchemaResolver& resolver) {
  switch (expr->kind()) {
    case Expr::Kind::kBase:
    case Expr::Kind::kEmpty:
      return expr;
    case Expr::Kind::kSelect: {
      // Gather stacked selections into one predicate, rewrite the child
      // first, then push the combined predicate into it.
      std::vector<PredicateRef> conjuncts;
      ExprRef node = expr;
      while (node->kind() == Expr::Kind::kSelect) {
        CollectConjuncts(node->predicate(), &conjuncts);
        node = node->child();
      }
      ExprRef child = Rewrite(node, resolver);
      return PushSelect(AndAll(conjuncts), child, resolver);
    }
    case Expr::Kind::kProject: {
      ExprRef child = Rewrite(expr->child(), resolver);
      return child == expr->child() ? expr
                                    : Expr::Project(expr->attrs(), child);
    }
    case Expr::Kind::kRename: {
      ExprRef child = Rewrite(expr->child(), resolver);
      return child == expr->child() ? expr
                                    : Expr::Rename(expr->renames(), child);
    }
    case Expr::Kind::kJoin:
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference: {
      ExprRef left = Rewrite(expr->left(), resolver);
      ExprRef right = Rewrite(expr->right(), resolver);
      if (left == expr->left() && right == expr->right()) {
        return expr;
      }
      switch (expr->kind()) {
        case Expr::Kind::kJoin:
          return Expr::Join(left, right);
        case Expr::Kind::kUnion:
          return Expr::Union(left, right);
        default:
          return Expr::Difference(left, right);
      }
    }
  }
  return expr;
}

ExprRef PushSelect(PredicateRef predicate, const ExprRef& expr,
                   const SchemaResolver& resolver) {
  if (predicate->kind() == Predicate::Kind::kTrue) {
    return expr;
  }
  switch (expr->kind()) {
    case Expr::Kind::kBase:
      return Expr::Select(predicate, expr);
    case Expr::Kind::kEmpty:
      return expr;  // sigma over empty is empty.
    case Expr::Kind::kSelect: {
      // Merge and push once.
      std::vector<PredicateRef> conjuncts;
      CollectConjuncts(predicate, &conjuncts);
      CollectConjuncts(expr->predicate(), &conjuncts);
      return PushSelect(AndAll(conjuncts), expr->child(), resolver);
    }
    case Expr::Kind::kProject:
      // p only references projected attributes, all present below.
      return Expr::Project(expr->attrs(),
                           PushSelect(predicate, expr->child(), resolver));
    case Expr::Kind::kRename: {
      // Map attribute names back through the rename.
      std::map<std::string, std::string> reverse;
      for (const auto& [from, to] : expr->renames()) {
        reverse[to] = from;
      }
      PredicateRef inner = predicate->RenameAttrs(reverse);
      return Expr::Rename(expr->renames(),
                          PushSelect(inner, expr->child(), resolver));
    }
    case Expr::Kind::kUnion:
      return Expr::Union(PushSelect(predicate, expr->left(), resolver),
                         PushSelect(predicate, expr->right(), resolver));
    case Expr::Kind::kDifference:
      // sigma_p(A \ B) = sigma_p(A) \ B.
      return Expr::Difference(PushSelect(predicate, expr->left(), resolver),
                              expr->right());
    case Expr::Kind::kJoin: {
      std::optional<AttrSet> left_attrs = AttrsOf(expr->left(), resolver);
      std::optional<AttrSet> right_attrs = AttrsOf(expr->right(), resolver);
      if (!left_attrs.has_value() || !right_attrs.has_value()) {
        return Expr::Select(predicate, expr);  // Cannot scope: stay put.
      }
      std::vector<PredicateRef> conjuncts;
      CollectConjuncts(predicate, &conjuncts);
      std::vector<PredicateRef> left_push, right_push, keep;
      for (const PredicateRef& conjunct : conjuncts) {
        AttrSet needed = conjunct->Attributes();
        bool left_ok = Covers(*left_attrs, needed);
        bool right_ok = Covers(*right_attrs, needed);
        if (left_ok) {
          left_push.push_back(conjunct);
        }
        if (right_ok) {
          right_push.push_back(conjunct);
        }
        if (!left_ok && !right_ok) {
          keep.push_back(conjunct);
        }
        // Conjuncts over shared attributes go to *both* sides (filtering
        // early on each) and need not be kept on top.
      }
      ExprRef left = expr->left();
      ExprRef right = expr->right();
      if (!left_push.empty()) {
        left = PushSelect(AndAll(left_push), left, resolver);
      }
      if (!right_push.empty()) {
        right = PushSelect(AndAll(right_push), right, resolver);
      }
      ExprRef joined = Expr::Join(left, right);
      if (keep.empty()) {
        return joined;
      }
      return Expr::Select(AndAll(keep), joined);
    }
  }
  return Expr::Select(predicate, expr);
}

}  // namespace

ExprRef PushDownSelections(const ExprRef& expr,
                           const SchemaResolver& resolver) {
  return Rewrite(expr, resolver);
}

}  // namespace dwc
