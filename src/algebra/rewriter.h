#ifndef DWC_ALGEBRA_REWRITER_H_
#define DWC_ALGEBRA_REWRITER_H_

#include <map>
#include <string>

#include "algebra/expr.h"

namespace dwc {

// Replaces every name reference in `expr` that appears in `substitutions`
// with the mapped expression. This single operation implements both of the
// paper's translation steps (Section 5):
//  * query translation — substitute each base relation by its inverse
//    expression over warehouse views (Step 2);
//  * maintenance-expression derivation — substitute base relations inside
//    incremental expressions by their inverses (Step 3).
ExprRef SubstituteNames(const ExprRef& expr,
                        const std::map<std::string, ExprRef>& substitutions);

// Replaces references to `name` with `replacement`.
ExprRef SubstituteName(const ExprRef& expr, const std::string& name,
                       const ExprRef& replacement);

}  // namespace dwc

#endif  // DWC_ALGEBRA_REWRITER_H_
