#include "algebra/predicate.h"

#include "util/string_util.h"

namespace dwc {

const char* CmpOpSymbol(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool Compare(const Value& lhs, CmpOp op, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

}  // namespace

PredicateRef Predicate::True() {
  auto node = std::shared_ptr<Predicate>(new Predicate());
  node->kind_ = Kind::kTrue;
  return node;
}

PredicateRef Predicate::Cmp(Operand lhs, CmpOp op, Operand rhs) {
  auto node = std::shared_ptr<Predicate>(new Predicate());
  node->kind_ = Kind::kCmp;
  node->lhs_ = std::move(lhs);
  node->op_ = op;
  node->rhs_ = std::move(rhs);
  return node;
}

PredicateRef Predicate::And(PredicateRef left, PredicateRef right) {
  auto node = std::shared_ptr<Predicate>(new Predicate());
  node->kind_ = Kind::kAnd;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

PredicateRef Predicate::Or(PredicateRef left, PredicateRef right) {
  auto node = std::shared_ptr<Predicate>(new Predicate());
  node->kind_ = Kind::kOr;
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

PredicateRef Predicate::Not(PredicateRef child) {
  auto node = std::shared_ptr<Predicate>(new Predicate());
  node->kind_ = Kind::kNot;
  node->left_ = std::move(child);
  return node;
}

AttrSet Predicate::Attributes() const {
  AttrSet attrs;
  switch (kind_) {
    case Kind::kTrue:
      break;
    case Kind::kCmp:
      if (lhs_.is_attr()) {
        attrs.insert(lhs_.attr());
      }
      if (rhs_.is_attr()) {
        attrs.insert(rhs_.attr());
      }
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      AttrSet left_attrs = left_->Attributes();
      AttrSet right_attrs = right_->Attributes();
      attrs.insert(left_attrs.begin(), left_attrs.end());
      attrs.insert(right_attrs.begin(), right_attrs.end());
      break;
    }
    case Kind::kNot:
      attrs = left_->Attributes();
      break;
  }
  return attrs;
}

namespace {

Result<Value> Resolve(const Operand& operand, const Schema& schema,
                      const Tuple& tuple) {
  if (!operand.is_attr()) {
    return operand.value();
  }
  std::optional<size_t> idx = schema.IndexOf(operand.attr());
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("predicate attribute '", operand.attr(),
                                   "' not in schema ", schema.ToString()));
  }
  return tuple.at(*idx);
}

}  // namespace

Result<bool> Predicate::Eval(const Schema& schema, const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp: {
      DWC_ASSIGN_OR_RETURN(Value lhs, Resolve(lhs_, schema, tuple));
      DWC_ASSIGN_OR_RETURN(Value rhs, Resolve(rhs_, schema, tuple));
      return Compare(lhs, op_, rhs);
    }
    case Kind::kAnd: {
      DWC_ASSIGN_OR_RETURN(bool left, left_->Eval(schema, tuple));
      if (!left) {
        return false;
      }
      return right_->Eval(schema, tuple);
    }
    case Kind::kOr: {
      DWC_ASSIGN_OR_RETURN(bool left, left_->Eval(schema, tuple));
      if (left) {
        return true;
      }
      return right_->Eval(schema, tuple);
    }
    case Kind::kNot: {
      DWC_ASSIGN_OR_RETURN(bool child, left_->Eval(schema, tuple));
      return !child;
    }
  }
  return Status::Internal("unknown predicate kind");
}

PredicateRef Predicate::RenameAttrs(
    const std::map<std::string, std::string>& renames) const {
  auto rename_operand = [&renames](const Operand& op) {
    if (!op.is_attr()) {
      return op;
    }
    auto it = renames.find(op.attr());
    return it == renames.end() ? op : Operand::Attr(it->second);
  };
  switch (kind_) {
    case Kind::kTrue:
      return True();
    case Kind::kCmp:
      return Cmp(rename_operand(lhs_), op_, rename_operand(rhs_));
    case Kind::kAnd:
      return And(left_->RenameAttrs(renames), right_->RenameAttrs(renames));
    case Kind::kOr:
      return Or(left_->RenameAttrs(renames), right_->RenameAttrs(renames));
    case Kind::kNot:
      return Not(left_->RenameAttrs(renames));
  }
  return True();
}

bool Predicate::Equals(const Predicate& other) const {
  if (kind_ != other.kind_) {
    return false;
  }
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kCmp:
      return op_ == other.op_ && lhs_ == other.lhs_ && rhs_ == other.rhs_;
    case Kind::kAnd:
    case Kind::kOr:
      return left_->Equals(*other.left_) && right_->Equals(*other.right_);
    case Kind::kNot:
      return left_->Equals(*other.left_);
  }
  return false;
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kCmp:
      return StrCat(lhs_.ToString(), " ", CmpOpSymbol(op_), " ",
                    rhs_.ToString());
    case Kind::kAnd:
      return StrCat("(", left_->ToString(), " and ", right_->ToString(), ")");
    case Kind::kOr:
      return StrCat("(", left_->ToString(), " or ", right_->ToString(), ")");
    case Kind::kNot:
      return StrCat("not (", left_->ToString(), ")");
  }
  return "?";
}

}  // namespace dwc
