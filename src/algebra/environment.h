#ifndef DWC_ALGEBRA_ENVIRONMENT_H_
#define DWC_ALGEBRA_ENVIRONMENT_H_

#include <map>
#include <set>
#include <string>

#include "relational/database.h"
#include "relational/relation.h"

namespace dwc {

// Maps relation names to (non-owning) relation instances for evaluation.
// Bound relations must outlive the Environment and any evaluation using it.
//
// One Environment can mix bindings from several stores — e.g. warehouse views
// plus the update deltas reported by a source — which is exactly the shape of
// the paper's maintenance expressions.
class Environment {
 public:
  Environment() = default;

  // Later bindings of the same name win.
  void Bind(const std::string& name, const Relation* relation) {
    bindings_[name] = relation;
  }

  // Binds every relation of `db` under its own name.
  void BindDatabase(const Database& db) {
    for (const auto& [name, relation] : db.relations()) {
      bindings_[name] = relation.get();
    }
  }

  static Environment FromDatabase(const Database& db) {
    Environment env;
    env.BindDatabase(db);
    return env;
  }

  // nullptr when unbound.
  const Relation* Find(const std::string& name) const {
    auto it = bindings_.find(name);
    return it == bindings_.end() ? nullptr : it->second;
  }

  const std::map<std::string, const Relation*>& bindings() const {
    return bindings_;
  }

  // Tags `name` as source-provided data: a binding the warehouse had to
  // pull from a source rather than find in its own store. The evaluator
  // counts resolutions of tagged names in EvalStats::source_reads, which
  // is how SELF-maintainability certificates are checked dynamically.
  void MarkSource(const std::string& name) { source_names_.insert(name); }
  bool IsSourceBinding(const std::string& name) const {
    return source_names_.count(name) > 0;
  }

 private:
  std::map<std::string, const Relation*> bindings_;
  std::set<std::string> source_names_;
};

}  // namespace dwc

#endif  // DWC_ALGEBRA_ENVIRONMENT_H_
