#ifndef DWC_ALGEBRA_INTERNER_H_
#define DWC_ALGEBRA_INTERNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "algebra/expr.h"

namespace dwc {

// Hash-conses Expr trees into a canonical DAG of shared immutable nodes.
//
// The paper's pipeline reuses the same algebraic structure everywhere: each
// reconstruction R̂i = ∪ π_Ri(Vj) appears inside every complement
// Ci = Ri \ R̂i, and the inverse expressions W⁻¹ are substituted verbatim
// into every translated query (Theorem 3.1) and maintenance expression
// (Theorem 4.1). Interning all of those trees turns the textual repetition
// into literal node sharing: structurally equal subtrees become one node
// with one structural id, which is what lets the evaluator memoize a
// subplan once and recycle it across complements, maintenance plans, and
// translated queries.
//
// Two ids per interned node:
//  * id  — structural identity: equal trees (same operator, payload, and
//    child ids, in order) get equal ids.
//  * cid — commutative-equivalence class: joins and unions additionally
//    identify A op B with B op A (operand cids sorted). Natural join and
//    set union are commutative up to column order, which the evaluator's
//    cache repairs by realignment; cids are exact equivalence classes
//    (canonical keys mapped through a table), never bare hashes, so a
//    collision can not silently merge different plans.
//
// Keys are built length-prefixed, so no payload string can collide with a
// delimiter. All methods are thread-safe (one internal mutex); interned
// nodes live as long as the interner (it keeps one ExprRef per class).
class ExprInterner {
 public:
  ExprInterner() = default;
  ExprInterner(const ExprInterner&) = delete;
  ExprInterner& operator=(const ExprInterner&) = delete;

  // Returns the canonical node for `expr`, interning every subtree
  // bottom-up. Child pointers of the result are themselves canonical, so
  // structurally equal subtrees are pointer-equal afterwards.
  ExprRef Intern(const ExprRef& expr);

  // Structural id of an interned node, or 0 if `expr` was not produced by
  // Intern() on this interner.
  uint64_t IdOf(const Expr* expr) const;
  // Commutative-class id, or 0 if unknown.
  uint64_t CidOf(const Expr* expr) const;
  // Sorted names of the base relations the node transitively reads, or
  // nullptr if unknown. The pointer stays valid for the interner lifetime.
  const std::vector<std::string>* InputsOf(const Expr* expr) const;

  // Number of distinct interned nodes (the DAG size; equal subtrees count
  // once). Exposed for the CSE tests and the lint duplicate-view pass.
  size_t size() const;

 private:
  struct NodeInfo {
    uint64_t id = 0;
    uint64_t cid = 0;
    std::vector<std::string> inputs;
  };

  // Must be called with mu_ held.
  ExprRef InternLocked(const ExprRef& expr);
  uint64_t CidForKeyLocked(const std::string& key);

  mutable std::mutex mu_;
  // Structural key → canonical node.
  std::unordered_map<std::string, ExprRef> by_key_;
  // Canonical node → its ids and inputs.
  std::unordered_map<const Expr*, NodeInfo> info_;
  // Commutative key → class id.
  std::unordered_map<std::string, uint64_t> cid_by_key_;
  uint64_t next_id_ = 1;
  uint64_t next_cid_ = 1;
};

}  // namespace dwc

#endif  // DWC_ALGEBRA_INTERNER_H_
