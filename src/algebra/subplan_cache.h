#ifndef DWC_ALGEBRA_SUBPLAN_CACHE_H_
#define DWC_ALGEBRA_SUBPLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "relational/relation.h"

namespace dwc {

// Recycler cache for evaluated subplans, keyed by the interner's
// commutative-class id (ExprInterner::CidOf) plus a snapshot of the input
// relations' (uid, version) identities at evaluation time.
//
// Invalidation is purely version-based: Source::Apply and Integrate mutate
// relations through Insert/Erase/assignment, which bump the per-relation
// version counters, so a lookup whose snapshot no longer matches is a miss
// (and the stale entry is dropped on the spot). After a delta touching one
// source, only subplans transitively reading that source fail their
// snapshot check; everything else recycles. Fresh per-integration delta
// relations get fresh uids, so a plan over ins:/del: bindings can never
// falsely match a previous integration's entry.
//
// Memory is bounded by a cached-tuples budget with LRU eviction; budget 0
// disables the cache entirely (and the evaluator then never consults it,
// reproducing pre-cache behavior exactly).
//
// Thread safety: all operations take one internal mutex — lookups and
// inserts are serial by design; only cache *misses* are evaluated in
// parallel (by the caller), never the cache bookkeeping itself.
class SubplanCache {
 public:
  // Ordered (uid, version) pairs, one per input relation, in the producer's
  // sorted-input-name order (so commutative twins build identical
  // snapshots).
  using Snapshot = std::vector<std::pair<uint64_t, uint64_t>>;

  struct Hit {
    std::shared_ptr<const Relation> rel;
    // Structural id of the node that produced the entry; a requester with a
    // different structural id (a commutative twin) may need to realign
    // columns.
    uint64_t producer_id = 0;
  };

  struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;      // Lookup failures, including stale entries.
    uint64_t evictions = 0;   // Entries dropped to fit the budget.
    uint64_t inserts = 0;
    std::string ToString() const;
  };

  SubplanCache() = default;
  SubplanCache(const SubplanCache&) = delete;
  SubplanCache& operator=(const SubplanCache&) = delete;

  // Sets the cached-tuples budget. 0 disables and clears the cache.
  void set_budget(size_t tuples);
  size_t budget() const;

  // Returns the cached result for `cid` if its snapshot still matches;
  // drops the entry when it exists but is stale.
  std::optional<Hit> Lookup(uint64_t cid, const Snapshot& snapshot);

  // Stores an evaluated subplan, replacing any previous entry for `cid`,
  // then evicts least-recently-used entries until the budget holds.
  // Returns the number of evictions performed. Entries larger than the
  // whole budget are not stored.
  size_t Insert(uint64_t cid, uint64_t producer_id, Snapshot snapshot,
                std::shared_ptr<const Relation> rel);

  void Clear();

  size_t entries() const;
  size_t cached_tuples() const;
  CacheStats stats() const;

 private:
  struct Entry {
    uint64_t producer_id = 0;
    Snapshot snapshot;
    std::shared_ptr<const Relation> rel;
    size_t tuples = 0;
    std::list<uint64_t>::iterator lru_pos;
  };

  // Must be called with mu_ held.
  void EraseLocked(uint64_t cid);

  mutable std::mutex mu_;
  size_t budget_ = 0;
  size_t total_tuples_ = 0;
  std::list<uint64_t> lru_;  // Front = most recently used.
  std::unordered_map<uint64_t, Entry> entries_;
  CacheStats stats_;
};

}  // namespace dwc

#endif  // DWC_ALGEBRA_SUBPLAN_CACHE_H_
