#ifndef DWC_ALGEBRA_SCHEMA_INFERENCE_H_
#define DWC_ALGEBRA_SCHEMA_INFERENCE_H_

#include <functional>
#include <string>

#include "algebra/environment.h"
#include "algebra/expr.h"
#include "relational/catalog.h"
#include "relational/schema.h"
#include "util/result.h"

namespace dwc {

// Resolves a relation name to its schema; returns nullptr for unknown names.
using SchemaResolver = std::function<const Schema*(const std::string&)>;

SchemaResolver ResolverFromCatalog(const Catalog& catalog);
SchemaResolver ResolverFromEnvironment(const Environment& env);

// Computes the output schema of `expr`, statically checking the tree:
//  * base names must resolve;
//  * projections must target existing attributes;
//  * selection predicates may only mention attributes of their input;
//  * union/difference operands must have identical attribute sets and types;
//  * natural-join common attributes must agree on type;
//  * renames must not collide.
Result<Schema> InferSchema(const Expr& expr, const SchemaResolver& resolver);

}  // namespace dwc

#endif  // DWC_ALGEBRA_SCHEMA_INFERENCE_H_
