#ifndef DWC_ALGEBRA_IMPLICATION_H_
#define DWC_ALGEBRA_IMPLICATION_H_

#include "algebra/predicate.h"

namespace dwc {

// Sufficient syntactic test that `p` implies `q`: every tuple satisfying
// `p` satisfies `q`. Sound but incomplete — `false` means "could not prove
// it", not "refuted".
//
// Reasoning:
//  * p is decomposed through AND (conjunct set) and OR (every disjunct must
//    imply q);
//  * q is decomposed through AND (every conjunct must follow) and OR (some
//    disjunct must follow);
//  * per-attribute interval reasoning over comparisons with constants
//    (a >= 3 and a < 7 implies a > 1, a != 9, ...), plus literal-match for
//    attribute-to-attribute comparisons and other opaque conjuncts;
//  * NOT over comparisons is rewritten to the complementary comparison;
//    other NOTs are treated as opaque literals.
//
// Used to decide when a selection view sigma_Q(R) can answer a query
// restriction sigma_P(R) locally (P implies Q), raising the warehouse's
// degree of query independence (Section 6).
bool Implies(const PredicateRef& p, const PredicateRef& q);

}  // namespace dwc

#endif  // DWC_ALGEBRA_IMPLICATION_H_
