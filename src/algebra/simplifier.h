#ifndef DWC_ALGEBRA_SIMPLIFIER_H_
#define DWC_ALGEBRA_SIMPLIFIER_H_

#include "algebra/expr.h"
#include "algebra/schema_inference.h"

namespace dwc {

// Applies semantics-preserving cleanup rules bottom-up:
//   select[true](e) -> e            select(empty) -> empty
//   select[p](select[q](e)) -> select[p and q](e)
//   project over project collapses; identity projections vanish
//   joins/unions/differences with the empty relation collapse
//   union/difference of structurally equal operands collapse
//   rename with an empty map vanishes
//
// Some rules need output schemas (e.g. `e join empty -> empty` must know the
// join schema); those only fire when `resolver` is non-null and succeeds.
// Translated queries (Q over W^-1) shrink considerably under these rules when
// constraints have made complements empty — see Example 2.4.
ExprRef Simplify(const ExprRef& expr, const SchemaResolver* resolver = nullptr);

}  // namespace dwc

#endif  // DWC_ALGEBRA_SIMPLIFIER_H_
