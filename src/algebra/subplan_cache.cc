#include "algebra/subplan_cache.h"

#include "util/string_util.h"

namespace dwc {

std::string SubplanCache::CacheStats::ToString() const {
  return StrCat("hits=", hits, ", misses=", misses, ", evictions=", evictions,
                ", inserts=", inserts);
}

void SubplanCache::set_budget(size_t tuples) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = tuples;
  if (budget_ == 0) {
    entries_.clear();
    lru_.clear();
    total_tuples_ = 0;
    return;
  }
  while (total_tuples_ > budget_ && !lru_.empty()) {
    EraseLocked(lru_.back());
    ++stats_.evictions;
  }
}

size_t SubplanCache::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

void SubplanCache::EraseLocked(uint64_t cid) {
  auto it = entries_.find(cid);
  if (it == entries_.end()) {
    return;
  }
  total_tuples_ -= it->second.tuples;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

std::optional<SubplanCache::Hit> SubplanCache::Lookup(
    uint64_t cid, const Snapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(cid);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.snapshot != snapshot) {
    // An input changed since this entry was produced: stale, drop it.
    EraseLocked(cid);
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++stats_.hits;
  return Hit{it->second.rel, it->second.producer_id};
}

size_t SubplanCache::Insert(uint64_t cid, uint64_t producer_id,
                            Snapshot snapshot,
                            std::shared_ptr<const Relation> rel) {
  if (rel == nullptr) {
    return 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ == 0) {
    return 0;
  }
  const size_t tuples = rel->size();
  EraseLocked(cid);
  if (tuples > budget_) {
    return 0;  // Would never fit; do not thrash the rest of the cache.
  }
  size_t evicted = 0;
  while (total_tuples_ + tuples > budget_ && !lru_.empty()) {
    EraseLocked(lru_.back());
    ++evicted;
  }
  lru_.push_front(cid);
  Entry entry;
  entry.producer_id = producer_id;
  entry.snapshot = std::move(snapshot);
  entry.rel = std::move(rel);
  entry.tuples = tuples;
  entry.lru_pos = lru_.begin();
  entries_.emplace(cid, std::move(entry));
  total_tuples_ += tuples;
  stats_.evictions += evicted;
  ++stats_.inserts;
  return evicted;
}

void SubplanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  total_tuples_ = 0;
}

size_t SubplanCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

size_t SubplanCache::cached_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_tuples_;
}

SubplanCache::CacheStats SubplanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dwc
