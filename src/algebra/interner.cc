#include "algebra/interner.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dwc {

namespace {

// Length-prefixes `part` onto `key` so parts can never bleed into each
// other, whatever characters they contain.
void AppendPart(std::string* key, const std::string& part) {
  key->append(std::to_string(part.size()));
  key->push_back(':');
  key->append(part);
}

void AppendOperand(std::string* key, const Operand& operand) {
  if (operand.is_attr()) {
    AppendPart(key, "a");
    AppendPart(key, operand.attr());
  } else {
    // Tag the type: Value::ToString quotes strings, but int 1 and double 1
    // could otherwise render identically.
    AppendPart(key, "c");
    AppendPart(key, ValueTypeName(operand.value().type()));
    AppendPart(key, operand.value().ToString());
  }
}

// Unambiguous structural key for a predicate (ToString is for humans; this
// must be injective up to Predicate::Equals).
void AppendPredicate(std::string* key, const Predicate& predicate) {
  switch (predicate.kind()) {
    case Predicate::Kind::kTrue:
      key->push_back('T');
      return;
    case Predicate::Kind::kCmp:
      key->push_back('C');
      AppendPart(key, CmpOpSymbol(predicate.op()));
      AppendOperand(key, predicate.lhs());
      AppendOperand(key, predicate.rhs());
      return;
    case Predicate::Kind::kAnd:
      key->push_back('&');
      AppendPredicate(key, *predicate.left());
      AppendPredicate(key, *predicate.right());
      return;
    case Predicate::Kind::kOr:
      key->push_back('|');
      AppendPredicate(key, *predicate.left());
      AppendPredicate(key, *predicate.right());
      return;
    case Predicate::Kind::kNot:
      key->push_back('!');
      AppendPredicate(key, *predicate.left());
      return;
  }
}

char KindTag(Expr::Kind kind) {
  switch (kind) {
    case Expr::Kind::kBase:
      return 'B';
    case Expr::Kind::kEmpty:
      return 'E';
    case Expr::Kind::kSelect:
      return 'S';
    case Expr::Kind::kProject:
      return 'P';
    case Expr::Kind::kJoin:
      return 'J';
    case Expr::Kind::kUnion:
      return 'U';
    case Expr::Kind::kDifference:
      return 'D';
    case Expr::Kind::kRename:
      return 'R';
  }
  return '?';
}

// The node-local payload (everything except children), length-prefixed.
std::string PayloadKey(const Expr& expr) {
  std::string key;
  switch (expr.kind()) {
    case Expr::Kind::kBase:
      AppendPart(&key, expr.base_name());
      break;
    case Expr::Kind::kEmpty:
      // Schema::ToString is injective for (names, types) lists.
      AppendPart(&key, expr.empty_schema().ToString());
      break;
    case Expr::Kind::kSelect:
      AppendPredicate(&key, *expr.predicate());
      break;
    case Expr::Kind::kProject:
      for (const std::string& attr : expr.attrs()) {
        AppendPart(&key, attr);
      }
      break;
    case Expr::Kind::kRename:
      for (const auto& [from, to] : expr.renames()) {
        AppendPart(&key, from);
        AppendPart(&key, to);
      }
      break;
    case Expr::Kind::kJoin:
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference:
      break;
  }
  return key;
}

std::vector<std::string> MergeInputs(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> merged;
  merged.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  return merged;
}

}  // namespace

ExprRef ExprInterner::Intern(const ExprRef& expr) {
  assert(expr != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(expr);
}

uint64_t ExprInterner::CidForKeyLocked(const std::string& key) {
  auto [it, inserted] = cid_by_key_.emplace(key, next_cid_);
  if (inserted) {
    ++next_cid_;
  }
  return it->second;
}

ExprRef ExprInterner::InternLocked(const ExprRef& expr) {
  // Already canonical? (Fast path when re-interning shared subtrees.)
  if (info_.find(expr.get()) != info_.end()) {
    return expr;
  }

  ExprRef left;
  ExprRef right;
  if (expr->left() != nullptr) {
    left = InternLocked(expr->left());
  }
  if (expr->right() != nullptr) {
    right = InternLocked(expr->right());
  }

  // Structural key: kind + payload + child structural ids. Children are
  // canonical at this point, so their ids fully identify them.
  std::string key;
  key.push_back(KindTag(expr->kind()));
  key += PayloadKey(*expr);
  if (left != nullptr) {
    AppendPart(&key, std::to_string(info_.at(left.get()).id));
  }
  if (right != nullptr) {
    AppendPart(&key, std::to_string(info_.at(right.get()).id));
  }

  auto existing = by_key_.find(key);
  if (existing != by_key_.end()) {
    return existing->second;
  }

  // New class: reuse the original node when its children were already
  // canonical, otherwise rebuild it over the canonical children. The
  // evaluation-facing tree is untouched either way — interning never
  // reorders operands, so column-order semantics are exactly preserved.
  ExprRef node = expr;
  if (left != expr->left() || right != expr->right()) {
    switch (expr->kind()) {
      case Expr::Kind::kSelect:
        node = Expr::Select(expr->predicate(), left);
        break;
      case Expr::Kind::kProject:
        node = Expr::Project(expr->attrs(), left);
        break;
      case Expr::Kind::kRename:
        node = Expr::Rename(expr->renames(), left);
        break;
      case Expr::Kind::kJoin:
        node = Expr::Join(left, right);
        break;
      case Expr::Kind::kUnion:
        node = Expr::Union(left, right);
        break;
      case Expr::Kind::kDifference:
        node = Expr::Difference(left, right);
        break;
      case Expr::Kind::kBase:
      case Expr::Kind::kEmpty:
        break;  // Leaves have no children; unreachable here.
    }
  }

  NodeInfo info;
  info.id = next_id_++;

  // Commutative class: joins and unions identify A∘B with B∘A by sorting
  // the operand *cids*; every other operator keys on ordered child cids.
  std::string cid_key;
  cid_key.push_back(KindTag(expr->kind()));
  cid_key += PayloadKey(*expr);
  if (expr->kind() == Expr::Kind::kJoin || expr->kind() == Expr::Kind::kUnion) {
    uint64_t lc = info_.at(left.get()).cid;
    uint64_t rc = info_.at(right.get()).cid;
    if (lc > rc) {
      std::swap(lc, rc);
    }
    AppendPart(&cid_key, std::to_string(lc));
    AppendPart(&cid_key, std::to_string(rc));
  } else {
    if (left != nullptr) {
      AppendPart(&cid_key, std::to_string(info_.at(left.get()).cid));
    }
    if (right != nullptr) {
      AppendPart(&cid_key, std::to_string(info_.at(right.get()).cid));
    }
  }
  info.cid = CidForKeyLocked(cid_key);

  if (expr->kind() == Expr::Kind::kBase) {
    info.inputs = {expr->base_name()};
  } else if (left != nullptr && right != nullptr) {
    info.inputs =
        MergeInputs(info_.at(left.get()).inputs, info_.at(right.get()).inputs);
  } else if (left != nullptr) {
    info.inputs = info_.at(left.get()).inputs;
  }

  info_.emplace(node.get(), std::move(info));
  by_key_.emplace(std::move(key), node);
  return node;
}

uint64_t ExprInterner::IdOf(const Expr* expr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = info_.find(expr);
  return it == info_.end() ? 0 : it->second.id;
}

uint64_t ExprInterner::CidOf(const Expr* expr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = info_.find(expr);
  return it == info_.end() ? 0 : it->second.cid;
}

const std::vector<std::string>* ExprInterner::InputsOf(const Expr* expr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = info_.find(expr);
  return it == info_.end() ? nullptr : &it->second.inputs;
}

size_t ExprInterner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return info_.size();
}

}  // namespace dwc
