#ifndef DWC_ALGEBRA_EXPR_H_
#define DWC_ALGEBRA_EXPR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "relational/schema.h"

namespace dwc {

class Expr;
using ExprRef = std::shared_ptr<const Expr>;

// Immutable relational-algebra expression tree. Operators follow the paper:
// named base relations, selection, projection, natural join, union, set
// difference, plus rename (footnote 3) and an explicit empty relation (used
// by the pi_Z(R)-else-empty convention and by simplified complements such as
// C2 = {} in Example 2.4).
//
// Expressions reference relations *by name*; what a name denotes (a source
// base relation, a materialized warehouse view, or an update delta) is
// decided by the Environment at evaluation time. This is what makes the
// paper's substitution steps — "replace every reference to a base relation by
// its inverse" — plain tree rewrites (see algebra/rewriter.h).
class Expr {
 public:
  enum class Kind {
    kBase,        // Named relation.
    kEmpty,       // Constant empty relation with a fixed schema.
    kSelect,      // sigma_{predicate}(child)
    kProject,     // pi_{attrs}(child)
    kJoin,        // left |x| right (natural join)
    kUnion,       // left U right
    kDifference,  // left \ right
    kRename,      // rho_{old->new}(child)
  };

  static ExprRef Base(std::string name);
  static ExprRef Empty(Schema schema);
  static ExprRef Select(PredicateRef predicate, ExprRef child);
  static ExprRef Project(std::vector<std::string> attrs, ExprRef child);
  static ExprRef Join(ExprRef left, ExprRef right);
  static ExprRef Union(ExprRef left, ExprRef right);
  static ExprRef Difference(ExprRef left, ExprRef right);
  static ExprRef Rename(std::map<std::string, std::string> renames,
                        ExprRef child);

  // n-ary conveniences; require at least one operand.
  static ExprRef JoinAll(const std::vector<ExprRef>& exprs);
  static ExprRef UnionAll(const std::vector<ExprRef>& exprs);

  Kind kind() const { return kind_; }
  const std::string& base_name() const { return base_name_; }
  const Schema& empty_schema() const { return empty_schema_; }
  const PredicateRef& predicate() const { return predicate_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  const std::map<std::string, std::string>& renames() const { return renames_; }
  const ExprRef& left() const { return left_; }
  const ExprRef& right() const { return right_; }
  // Unary child (select / project / rename).
  const ExprRef& child() const { return left_; }

  // Names of all referenced relations.
  void CollectNames(std::set<std::string>* names) const;
  std::set<std::string> ReferencedNames() const;

  // Structural equality.
  bool Equals(const Expr& other) const;

  // Compact ASCII rendering, e.g.
  //   project[clerk, age](Sold)  (Sale join Emp)  (Emp minus C1).
  std::string ToString() const;

 private:
  Expr() = default;

  Kind kind_ = Kind::kBase;
  std::string base_name_;
  Schema empty_schema_;
  PredicateRef predicate_;
  std::vector<std::string> attrs_;
  std::map<std::string, std::string> renames_;
  ExprRef left_;
  ExprRef right_;
};

}  // namespace dwc

#endif  // DWC_ALGEBRA_EXPR_H_
