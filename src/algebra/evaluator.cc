#include "algebra/evaluator.h"

#include <algorithm>
#include <optional>

#include "exec/kernels.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Wraps a borrowed relation in a non-owning shared_ptr.
std::shared_ptr<const Relation> Alias(const Relation* rel) {
  return std::shared_ptr<const Relation>(rel, [](const Relation*) {});
}

std::shared_ptr<const Relation> Own(Relation rel) {
  return std::make_shared<const Relation>(std::move(rel));
}

// Output attribute names of `expr` without evaluating it; nullopt if a name
// does not resolve (the caller falls back to plain evaluation, which
// reports the error properly).
std::optional<std::vector<std::string>> OutputNames(const Expr& expr,
                                                    const Environment& env) {
  switch (expr.kind()) {
    case Expr::Kind::kBase: {
      const Relation* rel = env.Find(expr.base_name());
      if (rel == nullptr) {
        return std::nullopt;
      }
      std::vector<std::string> names;
      names.reserve(rel->schema().size());
      for (const Attribute& attr : rel->schema().attributes()) {
        names.push_back(attr.name);
      }
      return names;
    }
    case Expr::Kind::kEmpty: {
      std::vector<std::string> names;
      for (const Attribute& attr : expr.empty_schema().attributes()) {
        names.push_back(attr.name);
      }
      return names;
    }
    case Expr::Kind::kSelect:
      return OutputNames(*expr.child(), env);
    case Expr::Kind::kProject:
      return expr.attrs();
    case Expr::Kind::kRename: {
      auto child = OutputNames(*expr.child(), env);
      if (!child.has_value()) {
        return std::nullopt;
      }
      for (std::string& name : *child) {
        auto it = expr.renames().find(name);
        if (it != expr.renames().end()) {
          name = it->second;
        }
      }
      return child;
    }
    case Expr::Kind::kJoin: {
      auto left = OutputNames(*expr.left(), env);
      auto right = OutputNames(*expr.right(), env);
      if (!left.has_value() || !right.has_value()) {
        return std::nullopt;
      }
      for (const std::string& name : *right) {
        if (std::find(left->begin(), left->end(), name) == left->end()) {
          left->push_back(name);
        }
      }
      return left;
    }
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference:
      return OutputNames(*expr.left(), env);
  }
  return std::nullopt;
}

// Concatenates one probe/build match into an output tuple in canonical
// left-then-right-extra column order.
Tuple ConcatMatch(const Tuple& pt, const Tuple& bt, bool build_right,
                  const std::vector<size_t>& right_extra) {
  const Tuple& lt = build_right ? pt : bt;
  const Tuple& rt = build_right ? bt : pt;
  std::vector<Value> values = lt.values();
  for (size_t idx : right_extra) {
    values.push_back(rt.at(idx));
  }
  return Tuple(std::move(values));
}

// Inserts `right`'s tuples into a copy of `left` (set union).
Result<Relation> UnionInto(const Relation& left, const Relation& right) {
  if (!left.schema().SameAttrsAs(right.schema())) {
    return Status::InvalidArgument(
        StrCat("union operands have different schemas: ",
               left.schema().ToString(), " vs ", right.schema().ToString()));
  }
  Relation out(left);
  out.Reserve(right.size());
  if (right.schema() == out.schema()) {
    for (const Tuple& tuple : right.tuples()) {
      out.Insert(tuple);
    }
  } else {
    DWC_ASSIGN_OR_RETURN(Relation aligned, right.AlignTo(out.schema()));
    for (const Tuple& tuple : aligned.tuples()) {
      out.Insert(tuple);
    }
  }
  return out;
}

// Extracts top-level `attr = constant` conjuncts of `predicate` whose
// attribute lives in `schema`, one per attribute (first occurrence wins —
// the caller re-applies the full predicate afterwards, so this is only a
// superset restriction). Appends attr names and key values in tandem.
void CollectEqualityConjuncts(const Predicate& predicate,
                              const Schema& schema,
                              std::vector<std::string>* attrs,
                              std::vector<Value>* values) {
  switch (predicate.kind()) {
    case Predicate::Kind::kAnd:
      CollectEqualityConjuncts(*predicate.left(), schema, attrs, values);
      CollectEqualityConjuncts(*predicate.right(), schema, attrs, values);
      return;
    case Predicate::Kind::kCmp: {
      if (predicate.op() != CmpOp::kEq) {
        return;
      }
      const Operand* attr_side = nullptr;
      const Operand* const_side = nullptr;
      if (predicate.lhs().is_attr() && !predicate.rhs().is_attr()) {
        attr_side = &predicate.lhs();
        const_side = &predicate.rhs();
      } else if (predicate.rhs().is_attr() && !predicate.lhs().is_attr()) {
        attr_side = &predicate.rhs();
        const_side = &predicate.lhs();
      } else {
        return;
      }
      if (!schema.Contains(attr_side->attr())) {
        return;
      }
      for (const std::string& existing : *attrs) {
        if (existing == attr_side->attr()) {
          return;  // One equality per attribute.
        }
      }
      attrs->push_back(attr_side->attr());
      values->push_back(const_side->value());
      return;
    }
    default:
      return;  // OR / NOT / TRUE contribute nothing (conservative).
  }
}

}  // namespace

void EvalStats::MergeFrom(const EvalStats& other) {
  joins += other.joins;
  pushdown_joins += other.pushdown_joins;
  differences += other.differences;
  pushdown_differences += other.pushdown_differences;
  index_probes += other.index_probes;
  parallel_kernels += other.parallel_kernels;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  source_reads += other.source_reads;
}

std::string EvalStats::ToString() const {
  return StrCat("joins=", joins, " (pushdown ", pushdown_joins,
                "), differences=", differences, " (pushdown ",
                pushdown_differences, "), index_probes=", index_probes,
                ", parallel_kernels=", parallel_kernels,
                ", cache=", cache_hits, "/", cache_hits + cache_misses,
                " hits (", cache_evictions, " evictions), source_reads=",
                source_reads);
}

bool Evaluator::WorthPushdown(size_t actual, size_t estimate) const {
  return actual <= options_.pushdown_max_keys ||
         actual * options_.pushdown_selectivity_factor < estimate;
}

// Hash-joins two materialized relations (natural join). Large probe sides
// run morsel-parallel; a large *unstable* build side is additionally built
// as a partitioned parallel index (a stable side keeps its cached
// Relation index, whose reuse across refreshes is what makes delta
// maintenance O(|delta|)).
Result<Relation> Evaluator::HashJoin(const Relation& left,
                                     const Relation& right,
                                     bool prefer_build_right) {
  const Schema& ls = left.schema();
  const Schema& rs = right.schema();
  std::vector<std::string> join_attrs = ls.CommonWith(rs);
  std::vector<Attribute> out_attrs = ls.attributes();
  std::vector<size_t> right_extra;
  for (size_t i = 0; i < rs.size(); ++i) {
    const Attribute& attr = rs.attribute(i);
    std::optional<size_t> idx = ls.IndexOf(attr.name);
    if (idx.has_value()) {
      if (ls.attribute(*idx).type != attr.type) {
        return Status::InvalidArgument(
            StrCat("join attribute '", attr.name, "' has conflicting types"));
      }
    } else {
      out_attrs.push_back(attr);
      right_extra.push_back(i);
    }
  }
  DWC_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(out_attrs)));
  Relation out(std::move(out_schema));

  if (join_attrs.empty()) {
    // Cross-product-shaped join (no common attributes) — the pathological
    // translated-query shape the governor exists to bound. Clamp the
    // up-front reservation to the remaining tuple budget, then check the
    // token and charge the budget every morsel_size emitted tuples, so a
    // deadline/budget fires mid-product instead of after |L|x|R| work.
    const size_t product = left.size() * right.size();
    size_t reserve = product;
    if (options_.cancel != nullptr) {
      reserve = std::min(product, options_.cancel->RemainingBudget());
    }
    out.Reserve(reserve);
    const size_t chunk = options_.morsel_size == 0 ? 1024 : options_.morsel_size;
    size_t emitted = 0;
    for (const Tuple& lt : left.tuples()) {
      for (const Tuple& rt : right.tuples()) {
        if (emitted >= chunk) {
          DWC_RETURN_IF_ERROR(ChargeTuples(emitted));
          DWC_RETURN_IF_ERROR(CheckCancel());
          emitted = 0;
        }
        std::vector<Value> values = lt.values();
        for (size_t idx : right_extra) {
          values.push_back(rt.at(idx));
        }
        out.Insert(Tuple(std::move(values)));
        ++emitted;
      }
    }
    DWC_RETURN_IF_ERROR(ChargeTuples(emitted));
    return out;
  }

  bool build_right =
      prefer_build_right ? true : right.size() >= left.size();
  const Relation& build = build_right ? right : left;
  const Relation& probe = build_right ? left : right;
  DWC_ASSIGN_OR_RETURN(std::vector<size_t> probe_key,
                       probe.schema().IndicesOf(join_attrs));
  const ExecOptions exec = options_.exec();

  if (!exec.ShouldParallelize(probe.size())) {
    const Relation::Index& index = build.GetIndex(join_attrs);
    // Key/foreign-key joins emit about one output row per probe row.
    out.Reserve(probe.size());
    const size_t chunk = exec.morsel_size == 0 ? 1024 : exec.morsel_size;
    size_t since_check = 0;
    for (const Tuple& pt : probe.tuples()) {
      if (++since_check >= chunk) {
        DWC_RETURN_IF_ERROR(CheckCancel());
        since_check = 0;
      }
      auto bucket = index.find(pt.Project(probe_key));
      if (bucket == index.end()) {
        continue;
      }
      for (const Tuple* bt : bucket->second) {
        out.Insert(ConcatMatch(pt, *bt, build_right, right_extra));
      }
    }
    DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
    return out;
  }

  ++stats_.parallel_kernels;
  const std::vector<const Tuple*> probe_tuples = SnapshotTuples(probe);
  // A stable build side reuses (and, once, builds) the relation's cached
  // index — shared lock-free by all probe morsels. An unstable side would
  // pay a full serial build on a throwaway relation, so it takes the
  // partitioned parallel build instead.
  const bool cached_build = prefer_build_right && build_right;
  std::optional<PartitionedIndex> transient;
  const Relation::Index* cached = nullptr;
  if (cached_build) {
    cached = &build.GetIndex(join_attrs);
  } else {
    DWC_ASSIGN_OR_RETURN(std::vector<size_t> build_key,
                         build.schema().IndicesOf(join_attrs));
    transient.emplace(
        PartitionedIndex::Build(SnapshotTuples(build), build_key, exec));
  }
  auto probe_morsel = [&](MorselRange range,
                          std::vector<Tuple>* buffer) -> Status {
    for (size_t i = range.begin; i < range.end; ++i) {
      const Tuple& pt = *probe_tuples[i];
      Tuple key = pt.Project(probe_key);
      const std::vector<const Tuple*>* bucket;
      if (cached != nullptr) {
        auto it = cached->find(key);
        bucket = it == cached->end() ? nullptr : &it->second;
      } else {
        bucket = transient->Find(key);
      }
      if (bucket == nullptr) {
        continue;
      }
      for (const Tuple* bt : *bucket) {
        buffer->push_back(ConcatMatch(pt, *bt, build_right, right_extra));
      }
    }
    return Status::Ok();
  };
  DWC_RETURN_IF_ERROR(
      ParallelProduce(probe_tuples.size(), exec, probe_morsel, &out));
  return out;
}

// Filters `in` through `predicate` into `out` (schemas equal), with the
// predicate evaluated morsel-parallel for large inputs.
Status Evaluator::FilterInto(const Relation& in, const Predicate& predicate,
                             Relation* out) {
  const ExecOptions exec = options_.exec();
  if (exec.ShouldParallelize(in.size())) {
    ++stats_.parallel_kernels;
  }
  const std::vector<const Tuple*> tuples = SnapshotTuples(in);
  const Schema& schema = in.schema();
  auto filter_morsel = [&](MorselRange range,
                           std::vector<Tuple>* buffer) -> Status {
    for (size_t i = range.begin; i < range.end; ++i) {
      DWC_ASSIGN_OR_RETURN(bool keep, predicate.Eval(schema, *tuples[i]));
      if (keep) {
        buffer->push_back(*tuples[i]);
      }
    }
    return Status::Ok();
  };
  return ParallelProduce(tuples.size(), exec, filter_morsel, out);
}

// Projects `in` onto `indices` into `out` (whose schema already matches),
// building the projected tuples morsel-parallel for large inputs.
Status Evaluator::ProjectInto(const Relation& in,
                              const std::vector<size_t>& indices,
                              Relation* out) {
  const ExecOptions exec = options_.exec();
  if (exec.ShouldParallelize(in.size())) {
    ++stats_.parallel_kernels;
  }
  const std::vector<const Tuple*> tuples = SnapshotTuples(in);
  auto project_morsel = [&](MorselRange range,
                            std::vector<Tuple>* buffer) -> Status {
    for (size_t i = range.begin; i < range.end; ++i) {
      buffer->push_back(tuples[i]->Project(indices));
    }
    return Status::Ok();
  };
  return ParallelProduce(tuples.size(), exec, project_morsel, out);
}

// Set difference left - right. Schemas must share attribute names. Large
// left sides run as a parallel anti-join membership scan; small ones keep
// the copy-then-erase path.
Result<Relation> Evaluator::SubtractInto(const Relation& left,
                                         const Relation& right) {
  if (!left.schema().SameAttrsAs(right.schema())) {
    return Status::InvalidArgument(
        StrCat("difference operands have different schemas: ",
               left.schema().ToString(), " vs ", right.schema().ToString()));
  }
  const ExecOptions exec = options_.exec();
  if (!exec.ShouldParallelize(left.size())) {
    Relation out(left);
    if (right.schema() == out.schema()) {
      for (const Tuple& tuple : right.tuples()) {
        out.Erase(tuple);
      }
    } else {
      DWC_ASSIGN_OR_RETURN(Relation aligned, right.AlignTo(out.schema()));
      for (const Tuple& tuple : aligned.tuples()) {
        out.Erase(tuple);
      }
    }
    DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
    return out;
  }

  ++stats_.parallel_kernels;
  // Align the right side once; morsels then do lock-free membership probes.
  const Relation* lookup = &right;
  std::optional<Relation> aligned;
  if (!(right.schema() == left.schema())) {
    DWC_ASSIGN_OR_RETURN(Relation realigned, right.AlignTo(left.schema()));
    aligned.emplace(std::move(realigned));
    lookup = &*aligned;
  }
  const std::vector<const Tuple*> tuples = SnapshotTuples(left);
  Relation out(left.schema());
  auto subtract_morsel = [&](MorselRange range,
                             std::vector<Tuple>* buffer) -> Status {
    for (size_t i = range.begin; i < range.end; ++i) {
      if (!lookup->Contains(*tuples[i])) {
        buffer->push_back(*tuples[i]);
      }
    }
    return Status::Ok();
  };
  DWC_RETURN_IF_ERROR(
      ParallelProduce(tuples.size(), exec, subtract_morsel, &out));
  return out;
}

Result<std::shared_ptr<const Relation>> Evaluator::Eval(const Expr& expr) {
  DWC_ASSIGN_OR_RETURN(EvalOut out, EvalInternal(expr));
  return std::move(out.rel);
}

Result<Relation> Evaluator::Materialize(const Expr& expr) {
  DWC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> rel, Eval(expr));
  return Relation(*rel);
}

size_t Evaluator::EstimateSize(const Expr& expr) const {
  switch (expr.kind()) {
    case Expr::Kind::kBase: {
      const Relation* rel = env_->Find(expr.base_name());
      return rel == nullptr ? 0 : rel->size();
    }
    case Expr::Kind::kEmpty:
      return 0;
    case Expr::Kind::kSelect:
      return EstimateSize(*expr.child()) / 3 + 1;
    case Expr::Kind::kProject:
    case Expr::Kind::kRename:
      return EstimateSize(*expr.child());
    case Expr::Kind::kJoin:
      // Joins here are key/foreign-key joins (view definitions) or
      // delta-semijoins (maintenance expressions); in both, output
      // cardinality tracks the *smaller* input. Underestimating is safe:
      // pushdown decisions re-check actual sizes after evaluation.
      return std::min(EstimateSize(*expr.left()),
                      EstimateSize(*expr.right()));
    case Expr::Kind::kUnion:
      return EstimateSize(*expr.left()) + EstimateSize(*expr.right());
    case Expr::Kind::kDifference:
      return EstimateSize(*expr.left());
  }
  return 0;
}

Result<Evaluator::EvalOut> Evaluator::EvalInternal(const Expr& expr) {
  // Fast path: no cache wired (or disabled by budget 0) — exactly the
  // pre-cache pipeline.
  if (cache_ == nullptr || interner_ == nullptr) {
    return EvalNode(expr);
  }
  // Leaves alias bindings or build empties; memoizing them only copies.
  if (expr.kind() == Expr::Kind::kBase || expr.kind() == Expr::Kind::kEmpty) {
    return EvalNode(expr);
  }
  const uint64_t id = interner_->IdOf(&expr);
  if (id == 0) {
    return EvalNode(expr);  // Not an interned node: nothing to key on.
  }
  const std::vector<std::string>* inputs = interner_->InputsOf(&expr);
  if (inputs == nullptr) {
    return EvalNode(expr);
  }
  // Snapshot the (uid, version) identity of every input relation, in the
  // interner's sorted-name order so commutative twins agree. An unresolved
  // name falls back to plain evaluation, which reports the error properly.
  SubplanCache::Snapshot snapshot;
  snapshot.reserve(inputs->size());
  for (const std::string& name : *inputs) {
    const Relation* rel = env_->Find(name);
    if (rel == nullptr) {
      return EvalNode(expr);
    }
    snapshot.emplace_back(rel->uid(), rel->version());
  }

  const uint64_t cid = interner_->CidOf(&expr);
  if (std::optional<SubplanCache::Hit> hit = cache_->Lookup(cid, snapshot)) {
    if (hit->producer_id == id) {
      // Same structural node: the cached result is bit-identical to what
      // evaluation would produce. Stable: the entry outlives this call and
      // its relation accumulates a reusable index cache.
      ++stats_.cache_hits;
      return EvalOut{std::move(hit->rel), /*stable=*/true};
    }
    // Commutative twin (e.g. A ⋈ B recycled for B ⋈ A): identical contents,
    // possibly different column order. Realign to exactly the order plain
    // evaluation of *this* node would emit; if that order cannot be
    // established, fall through and evaluate fresh.
    std::optional<std::vector<std::string>> names = OutputNames(expr, *env_);
    if (names.has_value() && names->size() == hit->rel->schema().size()) {
      const Schema& have = hit->rel->schema();
      bool already_aligned = true;
      std::vector<Attribute> attrs;
      attrs.reserve(names->size());
      bool resolvable = true;
      for (size_t i = 0; i < names->size(); ++i) {
        std::optional<size_t> idx = have.IndexOf((*names)[i]);
        if (!idx.has_value()) {
          resolvable = false;
          break;
        }
        already_aligned = already_aligned && *idx == i;
        attrs.push_back(have.attribute(*idx));
      }
      if (resolvable) {
        if (already_aligned) {
          ++stats_.cache_hits;
          return EvalOut{std::move(hit->rel), /*stable=*/true};
        }
        Result<Schema> target = Schema::Create(std::move(attrs));
        if (target.ok()) {
          Result<Relation> aligned = hit->rel->AlignTo(*target);
          if (aligned.ok()) {
            ++stats_.cache_hits;
            return EvalOut{Own(std::move(aligned).value()), /*stable=*/false};
          }
        }
      }
    }
  }

  ++stats_.cache_misses;
  Result<EvalOut> out = EvalNode(expr);
  if (!out.ok()) {
    return out;
  }
  // Non-leaf results are always owned (never env aliases), so the cache can
  // retain them safely.
  stats_.cache_evictions +=
      cache_->Insert(cid, id, std::move(snapshot), out->rel);
  return out;
}

Result<Evaluator::EvalOut> Evaluator::EvalNode(const Expr& expr) {
  // Per-operator cancellation point: every node of the plan re-checks the
  // token before doing its work, bounding overrun to one operator (or one
  // morsel, inside the kernels) past the deadline.
  DWC_RETURN_IF_ERROR(CheckCancel());
  switch (expr.kind()) {
    case Expr::Kind::kBase: {
      const Relation* rel = env_->Find(expr.base_name());
      if (rel == nullptr) {
        return Status::NotFound(
            StrCat("relation '", expr.base_name(), "' is not bound"));
      }
      if (env_->IsSourceBinding(expr.base_name())) {
        ++stats_.source_reads;
      }
      return EvalOut{Alias(rel), /*stable=*/true};
    }
    case Expr::Kind::kEmpty:
      return EvalOut{Own(Relation(expr.empty_schema())), false};
    case Expr::Kind::kSelect: {
      // Index fast path: an equality-to-constant conjunct over a bound base
      // relation probes the relation's hash index instead of scanning.
      if (options_.enable_pushdown &&
          expr.child()->kind() == Expr::Kind::kBase) {
        const Relation* rel = env_->Find(expr.child()->base_name());
        if (rel != nullptr && !rel->empty()) {
          std::vector<std::string> eq_attrs;
          std::vector<Value> eq_values;
          CollectEqualityConjuncts(*expr.predicate(), rel->schema(),
                                   &eq_attrs, &eq_values);
          if (!eq_attrs.empty()) {
            if (env_->IsSourceBinding(expr.child()->base_name())) {
              ++stats_.source_reads;
            }
            const Relation::Index& index = rel->GetIndex(eq_attrs);
            ++stats_.index_probes;
            Relation out(rel->schema());
            auto bucket = index.find(Tuple(std::move(eq_values)));
            if (bucket != index.end()) {
              for (const Tuple* tuple : bucket->second) {
                DWC_ASSIGN_OR_RETURN(
                    bool keep, expr.predicate()->Eval(rel->schema(), *tuple));
                if (keep) {
                  out.Insert(*tuple);
                }
              }
            }
            DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
            return EvalOut{Own(std::move(out)), false};
          }
        }
      }
      DWC_ASSIGN_OR_RETURN(EvalOut child, EvalInternal(*expr.child()));
      Relation out(child.rel->schema());
      DWC_RETURN_IF_ERROR(FilterInto(*child.rel, *expr.predicate(), &out));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kProject: {
      DWC_ASSIGN_OR_RETURN(EvalOut child, EvalInternal(*expr.child()));
      const Schema& in = child.rel->schema();
      DWC_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                           in.IndicesOf(expr.attrs()));
      std::vector<Attribute> attrs;
      attrs.reserve(indices.size());
      for (size_t idx : indices) {
        attrs.push_back(in.attribute(idx));
      }
      DWC_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(attrs)));
      Relation out(std::move(out_schema));
      DWC_RETURN_IF_ERROR(ProjectInto(*child.rel, indices, &out));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kRename: {
      DWC_ASSIGN_OR_RETURN(EvalOut child, EvalInternal(*expr.child()));
      const Schema& in = child.rel->schema();
      for (const auto& [from, to] : expr.renames()) {
        (void)to;
        if (!in.Contains(from)) {
          return Status::InvalidArgument(
              StrCat("rename source '", from, "' not in ", in.ToString()));
        }
      }
      std::vector<Attribute> attrs;
      attrs.reserve(in.size());
      for (const Attribute& attr : in.attributes()) {
        auto it = expr.renames().find(attr.name);
        attrs.push_back(
            Attribute{it == expr.renames().end() ? attr.name : it->second,
                      attr.type});
      }
      DWC_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(attrs)));
      Relation out(std::move(out_schema));
      out.Reserve(child.rel->size());
      for (const Tuple& tuple : child.rel->tuples()) {
        out.Insert(tuple);
      }
      DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kJoin:
      return EvalJoin(expr);
    case Expr::Kind::kDifference:
      return EvalDifference(expr);
    case Expr::Kind::kUnion: {
      DWC_ASSIGN_OR_RETURN(EvalOut left, EvalInternal(*expr.left()));
      DWC_ASSIGN_OR_RETURN(EvalOut right, EvalInternal(*expr.right()));
      DWC_ASSIGN_OR_RETURN(Relation out, UnionInto(*left.rel, *right.rel));
      DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
      return EvalOut{Own(std::move(out)), false};
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<Evaluator::EvalOut> Evaluator::EvalDifference(const Expr& expr) {
  ++stats_.differences;
  DWC_ASSIGN_OR_RETURN(EvalOut left, EvalInternal(*expr.left()));

  // If the left side is small relative to the right, restrict the right
  // side to the left side's tuples instead of materializing it: the
  // difference only needs right ∩ left.
  size_t right_estimate = EstimateSize(*expr.right());
  if (options_.enable_pushdown &&
      WorthPushdown(left.rel->size(), right_estimate)) {
    std::optional<std::vector<std::string>> right_names =
        OutputNames(*expr.right(), *env_);
    if (right_names.has_value()) {
      // Use the right side's attribute order for keys so the filter can be
      // pushed without alignment surprises; both sides share names.
      std::vector<std::string> attrs = *right_names;
      Result<std::vector<size_t>> key_idx =
          left.rel->schema().IndicesOf(attrs);
      if (key_idx.ok()) {
        Relation::TupleSet keys;
        for (const Tuple& tuple : left.rel->tuples()) {
          keys.insert(tuple.Project(*key_idx));
        }
        KeyFilter filter{std::move(attrs), &keys};
        ++stats_.pushdown_differences;
        DWC_ASSIGN_OR_RETURN(EvalOut right,
                             EvalWithFilter(*expr.right(), filter));
        DWC_ASSIGN_OR_RETURN(Relation out,
                             SubtractInto(*left.rel, *right.rel));
        return EvalOut{Own(std::move(out)), false};
      }
    }
  }
  DWC_ASSIGN_OR_RETURN(EvalOut right, EvalInternal(*expr.right()));
  DWC_ASSIGN_OR_RETURN(Relation out, SubtractInto(*left.rel, *right.rel));
  return EvalOut{Own(std::move(out)), false};
}

Result<Evaluator::EvalOut> Evaluator::EvalJoin(const Expr& expr) {
  ++stats_.joins;
  // Evaluate the smaller-looking side first; if it is genuinely small,
  // evaluate the other side with the join keys pushed down as a filter.
  size_t left_estimate = EstimateSize(*expr.left());
  size_t right_estimate = EstimateSize(*expr.right());
  bool first_is_left = left_estimate <= right_estimate;
  const Expr& first_expr = first_is_left ? *expr.left() : *expr.right();
  const Expr& second_expr = first_is_left ? *expr.right() : *expr.left();
  size_t second_estimate = first_is_left ? right_estimate : left_estimate;

  DWC_ASSIGN_OR_RETURN(EvalOut first, EvalInternal(first_expr));

  EvalOut second;
  bool have_second = false;
  if (options_.enable_pushdown &&
      WorthPushdown(first.rel->size(), second_estimate)) {
    std::optional<std::vector<std::string>> second_names =
        OutputNames(second_expr, *env_);
    if (second_names.has_value()) {
      std::vector<std::string> common;
      for (const Attribute& attr : first.rel->schema().attributes()) {
        if (std::find(second_names->begin(), second_names->end(),
                      attr.name) != second_names->end()) {
          common.push_back(attr.name);
        }
      }
      if (!common.empty()) {
        DWC_ASSIGN_OR_RETURN(std::vector<size_t> key_idx,
                             first.rel->schema().IndicesOf(common));
        Relation::TupleSet keys;
        for (const Tuple& tuple : first.rel->tuples()) {
          keys.insert(tuple.Project(key_idx));
        }
        KeyFilter filter{std::move(common), &keys};
        ++stats_.pushdown_joins;
        DWC_ASSIGN_OR_RETURN(second, EvalWithFilter(second_expr, filter));
        have_second = true;
      }
    }
  }
  if (!have_second) {
    DWC_ASSIGN_OR_RETURN(second, EvalInternal(second_expr));
  }

  const EvalOut& left = first_is_left ? first : second;
  const EvalOut& right = first_is_left ? second : first;
  // Index the stable side when exactly one side is stable (its index cache
  // persists across refreshes); otherwise HashJoin picks the larger side.
  if (left.stable != right.stable) {
    if (right.stable) {
      DWC_ASSIGN_OR_RETURN(Relation out,
                           HashJoin(*left.rel, *right.rel,
                                    /*prefer_build_right=*/true));
      return EvalOut{Own(std::move(out)), false};
    }
    // Left side is the stable one: join with swapped arguments so the index
    // lands on it, then realign the columns to the canonical
    // left-then-right-extra order.
    DWC_ASSIGN_OR_RETURN(Relation out,
                         HashJoin(*right.rel, *left.rel,
                                  /*prefer_build_right=*/true));
    std::vector<Attribute> out_attrs = left.rel->schema().attributes();
    for (const Attribute& attr : right.rel->schema().attributes()) {
      if (!left.rel->schema().Contains(attr.name)) {
        out_attrs.push_back(attr);
      }
    }
    DWC_ASSIGN_OR_RETURN(Schema target, Schema::Create(std::move(out_attrs)));
    DWC_ASSIGN_OR_RETURN(out, out.AlignTo(target));
    return EvalOut{Own(std::move(out)), false};
  }
  DWC_ASSIGN_OR_RETURN(Relation out, HashJoin(*left.rel, *right.rel,
                                              /*prefer_build_right=*/false));
  return EvalOut{Own(std::move(out)), false};
}

Result<Evaluator::EvalOut> Evaluator::EvalWithFilter(const Expr& expr,
                                                     const KeyFilter& filter) {
  DWC_RETURN_IF_ERROR(CheckCancel());
  switch (expr.kind()) {
    case Expr::Kind::kBase: {
      const Relation* rel = env_->Find(expr.base_name());
      if (rel == nullptr) {
        return Status::NotFound(
            StrCat("relation '", expr.base_name(), "' is not bound"));
      }
      if (env_->IsSourceBinding(expr.base_name())) {
        ++stats_.source_reads;
      }
      // Probe the (cached) index with every key.
      const Relation::Index& index = rel->GetIndex(filter.attrs);
      Relation out(rel->schema());
      stats_.index_probes += filter.keys->size();
      for (const Tuple& key : *filter.keys) {
        auto bucket = index.find(key);
        if (bucket == index.end()) {
          continue;
        }
        for (const Tuple* tuple : bucket->second) {
          out.Insert(*tuple);
        }
      }
      DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kEmpty:
      return EvalOut{Own(Relation(expr.empty_schema())), false};
    case Expr::Kind::kSelect: {
      DWC_ASSIGN_OR_RETURN(EvalOut child,
                           EvalWithFilter(*expr.child(), filter));
      Relation out(child.rel->schema());
      DWC_RETURN_IF_ERROR(FilterInto(*child.rel, *expr.predicate(), &out));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kProject: {
      // filter.attrs ⊆ expr.attrs() ⊆ child attrs: push straight through.
      DWC_ASSIGN_OR_RETURN(EvalOut child,
                           EvalWithFilter(*expr.child(), filter));
      const Schema& in = child.rel->schema();
      DWC_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                           in.IndicesOf(expr.attrs()));
      std::vector<Attribute> attrs;
      for (size_t idx : indices) {
        attrs.push_back(in.attribute(idx));
      }
      DWC_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(attrs)));
      Relation out(std::move(out_schema));
      DWC_RETURN_IF_ERROR(ProjectInto(*child.rel, indices, &out));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kRename: {
      // Map filter attribute names back through the rename, recurse, then
      // re-apply the rename.
      std::map<std::string, std::string> reverse;
      for (const auto& [from, to] : expr.renames()) {
        reverse[to] = from;
      }
      KeyFilter inner{filter.attrs, filter.keys};
      for (std::string& name : inner.attrs) {
        auto it = reverse.find(name);
        if (it != reverse.end()) {
          name = it->second;
        }
      }
      DWC_ASSIGN_OR_RETURN(EvalOut child,
                           EvalWithFilter(*expr.child(), inner));
      const Schema& in = child.rel->schema();
      std::vector<Attribute> attrs;
      for (const Attribute& attr : in.attributes()) {
        auto it = expr.renames().find(attr.name);
        attrs.push_back(
            Attribute{it == expr.renames().end() ? attr.name : it->second,
                      attr.type});
      }
      DWC_ASSIGN_OR_RETURN(Schema out_schema, Schema::Create(std::move(attrs)));
      Relation out(std::move(out_schema));
      out.Reserve(child.rel->size());
      for (const Tuple& tuple : child.rel->tuples()) {
        out.Insert(tuple);
      }
      DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kUnion: {
      DWC_ASSIGN_OR_RETURN(EvalOut left, EvalWithFilter(*expr.left(), filter));
      DWC_ASSIGN_OR_RETURN(EvalOut right,
                           EvalWithFilter(*expr.right(), filter));
      DWC_ASSIGN_OR_RETURN(Relation out, UnionInto(*left.rel, *right.rel));
      DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kDifference: {
      DWC_ASSIGN_OR_RETURN(EvalOut left, EvalWithFilter(*expr.left(), filter));
      DWC_ASSIGN_OR_RETURN(EvalOut right,
                           EvalWithFilter(*expr.right(), filter));
      DWC_ASSIGN_OR_RETURN(Relation out, SubtractInto(*left.rel, *right.rel));
      return EvalOut{Own(std::move(out)), false};
    }
    case Expr::Kind::kJoin: {
      // Push the filter attributes each child exposes into that child (an
      // over-approximation per child), join the small results, then apply
      // the exact filter.
      auto eval_child = [&](const Expr& child) -> Result<EvalOut> {
        std::optional<std::vector<std::string>> names =
            OutputNames(child, *env_);
        if (!names.has_value()) {
          return EvalInternal(child);  // Let plain evaluation report errors.
        }
        std::vector<std::string> sub_attrs;
        std::vector<size_t> positions;
        for (size_t i = 0; i < filter.attrs.size(); ++i) {
          if (std::find(names->begin(), names->end(), filter.attrs[i]) !=
              names->end()) {
            sub_attrs.push_back(filter.attrs[i]);
            positions.push_back(i);
          }
        }
        if (sub_attrs.empty()) {
          return EvalInternal(child);
        }
        if (sub_attrs.size() == filter.attrs.size()) {
          return EvalWithFilter(child, filter);
        }
        Relation::TupleSet sub_keys;
        for (const Tuple& key : *filter.keys) {
          sub_keys.insert(key.Project(positions));
        }
        KeyFilter sub_filter{std::move(sub_attrs), &sub_keys};
        return EvalWithFilter(child, sub_filter);
      };
      DWC_ASSIGN_OR_RETURN(EvalOut left, eval_child(*expr.left()));
      DWC_ASSIGN_OR_RETURN(EvalOut right, eval_child(*expr.right()));
      DWC_ASSIGN_OR_RETURN(Relation joined,
                           HashJoin(*left.rel, *right.rel,
                                    /*prefer_build_right=*/false));
      // Exact filter on the join output.
      DWC_ASSIGN_OR_RETURN(std::vector<size_t> key_idx,
                           joined.schema().IndicesOf(filter.attrs));
      Relation out(joined.schema());
      for (const Tuple& tuple : joined.tuples()) {
        if (filter.keys->find(tuple.Project(key_idx)) != filter.keys->end()) {
          out.Insert(tuple);
        }
      }
      DWC_RETURN_IF_ERROR(ChargeTuples(out.size()));
      return EvalOut{Own(std::move(out)), false};
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<Relation> EvalExpr(const Expr& expr, const Environment& env) {
  Evaluator evaluator(&env);
  return evaluator.Materialize(expr);
}

}  // namespace dwc
