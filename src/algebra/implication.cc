#include "algebra/implication.h"

#include <optional>
#include <vector>

namespace dwc {

namespace {

// A normalized comparison literal: attr <op> constant, or an opaque
// predicate matched only syntactically.
struct Literal {
  bool is_cmp = false;
  std::string attr;
  CmpOp op = CmpOp::kEq;
  Value constant;
  PredicateRef opaque;  // Set when !is_cmp.
};

CmpOp Negate(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

// Mirror "const op attr" into "attr op' const".
CmpOp Mirror(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;  // = and != are symmetric.
  }
}

// Normalizes a comparison node into a Literal. `negated` applies NOT.
Literal MakeLiteral(const Predicate& cmp, bool negated) {
  Literal literal;
  if (cmp.lhs().is_attr() && !cmp.rhs().is_attr()) {
    literal.is_cmp = true;
    literal.attr = cmp.lhs().attr();
    literal.op = cmp.op();
    literal.constant = cmp.rhs().value();
  } else if (!cmp.lhs().is_attr() && cmp.rhs().is_attr()) {
    literal.is_cmp = true;
    literal.attr = cmp.rhs().attr();
    literal.op = Mirror(cmp.op());
    literal.constant = cmp.lhs().value();
  } else {
    literal.opaque = Predicate::Cmp(cmp.lhs(), cmp.op(), cmp.rhs());
    if (negated) {
      literal.opaque = Predicate::Cmp(cmp.lhs(), Negate(cmp.op()), cmp.rhs());
    }
    return literal;
  }
  if (negated) {
    literal.op = Negate(literal.op);
  }
  return literal;
}

// Flattens `p` through ANDs into literals. Returns false if `p` contains an
// OR (caller handles disjunction separately) — out is then unusable.
bool FlattenConjunction(const PredicateRef& p, bool negated,
                        std::vector<Literal>* out) {
  switch (p->kind()) {
    case Predicate::Kind::kTrue:
      if (negated) {
        // NOT true: an unsatisfiable conjunct; encode as opaque.
        Literal literal;
        literal.opaque = Predicate::Not(Predicate::True());
        out->push_back(std::move(literal));
      }
      return true;
    case Predicate::Kind::kCmp:
      out->push_back(MakeLiteral(*p, negated));
      return true;
    case Predicate::Kind::kAnd:
      if (negated) {
        return false;  // NOT(a AND b) is a disjunction.
      }
      return FlattenConjunction(p->left(), false, out) &&
             FlattenConjunction(p->right(), false, out);
    case Predicate::Kind::kOr:
      if (!negated) {
        return false;
      }
      // NOT(a OR b) = NOT a AND NOT b.
      return FlattenConjunction(p->left(), true, out) &&
             FlattenConjunction(p->right(), true, out);
    case Predicate::Kind::kNot:
      return FlattenConjunction(p->left(), !negated, out);
  }
  return false;
}

// Does the conjunction `facts` entail the single comparison `goal`?
bool FactsEntailCmp(const std::vector<Literal>& facts, const Literal& goal) {
  for (const Literal& fact : facts) {
    if (!fact.is_cmp || fact.attr != goal.attr) {
      continue;
    }
    const Value& fv = fact.constant;
    const Value& gv = goal.constant;
    switch (goal.op) {
      case CmpOp::kEq:
        if (fact.op == CmpOp::kEq && fv == gv) {
          return true;
        }
        break;
      case CmpOp::kNe:
        if (fact.op == CmpOp::kNe && fv == gv) {
          return true;
        }
        if (fact.op == CmpOp::kEq && fv != gv) {
          return true;
        }
        if (fact.op == CmpOp::kLt && gv >= fv) {
          return true;  // a < fv and gv >= fv: a != gv.
        }
        if (fact.op == CmpOp::kLe && gv > fv) {
          return true;
        }
        if (fact.op == CmpOp::kGt && gv <= fv) {
          return true;
        }
        if (fact.op == CmpOp::kGe && gv < fv) {
          return true;
        }
        break;
      case CmpOp::kLt:
        if ((fact.op == CmpOp::kLt && fv <= gv) ||
            (fact.op == CmpOp::kLe && fv < gv) ||
            (fact.op == CmpOp::kEq && fv < gv)) {
          return true;
        }
        break;
      case CmpOp::kLe:
        if ((fact.op == CmpOp::kLt && fv <= gv) ||
            (fact.op == CmpOp::kLe && fv <= gv) ||
            (fact.op == CmpOp::kEq && fv <= gv)) {
          return true;
        }
        break;
      case CmpOp::kGt:
        if ((fact.op == CmpOp::kGt && fv >= gv) ||
            (fact.op == CmpOp::kGe && fv > gv) ||
            (fact.op == CmpOp::kEq && fv > gv)) {
          return true;
        }
        break;
      case CmpOp::kGe:
        if ((fact.op == CmpOp::kGt && fv >= gv) ||
            (fact.op == CmpOp::kGe && fv >= gv) ||
            (fact.op == CmpOp::kEq && fv >= gv)) {
          return true;
        }
        break;
    }
  }
  return false;
}

bool FactsEntailOpaque(const std::vector<Literal>& facts,
                       const PredicateRef& goal) {
  for (const Literal& fact : facts) {
    if (!fact.is_cmp && fact.opaque->Equals(*goal)) {
      return true;
    }
  }
  return false;
}

// facts |= q, with q decomposed structurally.
bool FactsEntail(const std::vector<Literal>& facts, const PredicateRef& q) {
  switch (q->kind()) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kAnd:
      return FactsEntail(facts, q->left()) && FactsEntail(facts, q->right());
    case Predicate::Kind::kOr:
      return FactsEntail(facts, q->left()) || FactsEntail(facts, q->right());
    case Predicate::Kind::kCmp: {
      Literal goal = MakeLiteral(*q, /*negated=*/false);
      if (goal.is_cmp) {
        return FactsEntailCmp(facts, goal);
      }
      return FactsEntailOpaque(facts, goal.opaque);
    }
    case Predicate::Kind::kNot: {
      // Only the comparison case is handled precisely.
      if (q->left()->kind() == Predicate::Kind::kCmp) {
        Literal goal = MakeLiteral(*q->left(), /*negated=*/true);
        if (goal.is_cmp) {
          return FactsEntailCmp(facts, goal);
        }
        return FactsEntailOpaque(facts, goal.opaque);
      }
      // Opaque NOT: literal match.
      return FactsEntailOpaque(facts, q);
    }
  }
  return false;
}

}  // namespace

bool Implies(const PredicateRef& p, const PredicateRef& q) {
  if (q->kind() == Predicate::Kind::kTrue) {
    return true;
  }
  // Case split over p's disjunctions.
  if (p->kind() == Predicate::Kind::kOr) {
    return Implies(p->left(), q) && Implies(p->right(), q);
  }
  if (p->kind() == Predicate::Kind::kNot &&
      p->left()->kind() == Predicate::Kind::kAnd) {
    // NOT(a AND b) = NOT a OR NOT b.
    return Implies(Predicate::Not(p->left()->left()), q) &&
           Implies(Predicate::Not(p->left()->right()), q);
  }
  if (p->kind() == Predicate::Kind::kAnd) {
    // Distribute nested ORs: (a OR b) AND c ⇒ q iff (a AND c ⇒ q) etc.
    // Handle the common shallow case; otherwise flatten below (which bails
    // to `false` when it meets an OR it cannot place).
    if (p->left()->kind() == Predicate::Kind::kOr) {
      return Implies(Predicate::And(p->left()->left(), p->right()), q) &&
             Implies(Predicate::And(p->left()->right(), p->right()), q);
    }
    if (p->right()->kind() == Predicate::Kind::kOr) {
      return Implies(Predicate::And(p->left(), p->right()->left()), q) &&
             Implies(Predicate::And(p->left(), p->right()->right()), q);
    }
  }
  std::vector<Literal> facts;
  if (!FlattenConjunction(p, /*negated=*/false, &facts)) {
    return false;  // Deeply nested OR shape we do not normalize.
  }
  return FactsEntail(facts, q);
}

}  // namespace dwc
