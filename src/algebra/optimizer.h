#ifndef DWC_ALGEBRA_OPTIMIZER_H_
#define DWC_ALGEBRA_OPTIMIZER_H_

#include "algebra/expr.h"
#include "algebra/schema_inference.h"

namespace dwc {

// Logical rewrite: pushes selections toward the leaves so that evaluation
// filters early (and, for equality conjuncts reaching a base relation, can
// use the relation's hash indexes — see Evaluator). Semantics preserving:
//
//   sigma_p(pi_Z(e))     -> pi_Z(sigma_p(e))           (p only sees Z)
//   sigma_p(rho_m(e))    -> rho_m(sigma_{m^-1(p)}(e))
//   sigma_p(e1 U e2)     -> sigma_p(e1) U sigma_p(e2)
//   sigma_p(e1 \ e2)     -> sigma_p(e1) \ e2
//   sigma_p(e1 |x| e2)   -> conjuncts of p referencing only one side move
//                           into that side; the rest stays on top
//   sigma_p(sigma_q(e))  -> sigma_{p and q}(e), then pushed as one
//
// The conjunct split needs attribute scopes, hence the resolver; when a
// subexpression's schema cannot be resolved the selection stays put (still
// correct, just unoptimized). Queries translated through W^-1 — big unions
// of projections — benefit the most: the per-branch selections turn into
// index probes.
ExprRef PushDownSelections(const ExprRef& expr, const SchemaResolver& resolver);

}  // namespace dwc

#endif  // DWC_ALGEBRA_OPTIMIZER_H_
