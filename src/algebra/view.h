#ifndef DWC_ALGEBRA_VIEW_H_
#define DWC_ALGEBRA_VIEW_H_

#include <string>

#include "algebra/expr.h"

namespace dwc {

// A named view definition: the pair <name, relational expression>. Warehouses
// are sets of these (the paper's V = {V1, ..., Vk}), and so are the computed
// complements C = {C1, ..., Cl}.
struct ViewDef {
  std::string name;
  ExprRef expr;
};

}  // namespace dwc

#endif  // DWC_ALGEBRA_VIEW_H_
