#include "algebra/rewriter.h"

namespace dwc {

ExprRef SubstituteNames(const ExprRef& expr,
                        const std::map<std::string, ExprRef>& substitutions) {
  switch (expr->kind()) {
    case Expr::Kind::kBase: {
      auto it = substitutions.find(expr->base_name());
      return it == substitutions.end() ? expr : it->second;
    }
    case Expr::Kind::kEmpty:
      return expr;
    case Expr::Kind::kSelect: {
      ExprRef child = SubstituteNames(expr->child(), substitutions);
      if (child == expr->child()) {
        return expr;
      }
      return Expr::Select(expr->predicate(), std::move(child));
    }
    case Expr::Kind::kProject: {
      ExprRef child = SubstituteNames(expr->child(), substitutions);
      if (child == expr->child()) {
        return expr;
      }
      return Expr::Project(expr->attrs(), std::move(child));
    }
    case Expr::Kind::kRename: {
      ExprRef child = SubstituteNames(expr->child(), substitutions);
      if (child == expr->child()) {
        return expr;
      }
      return Expr::Rename(expr->renames(), std::move(child));
    }
    case Expr::Kind::kJoin:
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference: {
      ExprRef left = SubstituteNames(expr->left(), substitutions);
      ExprRef right = SubstituteNames(expr->right(), substitutions);
      if (left == expr->left() && right == expr->right()) {
        return expr;
      }
      switch (expr->kind()) {
        case Expr::Kind::kJoin:
          return Expr::Join(std::move(left), std::move(right));
        case Expr::Kind::kUnion:
          return Expr::Union(std::move(left), std::move(right));
        default:
          return Expr::Difference(std::move(left), std::move(right));
      }
    }
  }
  return expr;
}

ExprRef SubstituteName(const ExprRef& expr, const std::string& name,
                       const ExprRef& replacement) {
  return SubstituteNames(expr, {{name, replacement}});
}

}  // namespace dwc
