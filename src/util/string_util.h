#ifndef DWC_UTIL_STRING_UTIL_H_
#define DWC_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dwc {

// Joins the elements of `parts` with `sep` using operator<< for formatting.
template <typename Container>
std::string Join(const Container& parts, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& part : parts) {
    if (!first) {
      out << sep;
    }
    first = false;
    out << part;
  }
  return out.str();
}

// Splits `input` on `delim`, trimming nothing; empty pieces are kept.
std::vector<std::string> Split(std::string_view input, char delim);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

// ASCII lower-casing (locale independent).
std::string ToLower(std::string_view input);

// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

}  // namespace dwc

#endif  // DWC_UTIL_STRING_UTIL_H_
