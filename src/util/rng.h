#ifndef DWC_UTIL_RNG_H_
#define DWC_UTIL_RNG_H_

#include <cstdint>

namespace dwc {

// Deterministic 64-bit PRNG (splitmix64). Used by the workload generators and
// property tests so that every run of the suite exercises identical data.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound); bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive; requires lo <= hi.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // True with probability p (0 <= p <= 1).
  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  uint64_t state_;
};

}  // namespace dwc

#endif  // DWC_UTIL_RNG_H_
