#ifndef DWC_UTIL_STATUS_H_
#define DWC_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dwc {

// Canonical error space for the library. Mirrors the usual database-engine
// convention (cf. rocksdb::Status, absl::Status): functions that can fail on
// user input return Status or Result<T> instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  // The operation was refused because the caller's context is no longer
  // serviceable (e.g. a shed snapshot past the epoch-lag bound). Retrying
  // against fresh context is expected to succeed.
  kAborted,
  // The operation's deadline passed before it finished. Partial work was
  // discarded; retrying with a larger (or no) deadline may succeed.
  kDeadlineExceeded,
  // A resource budget was exhausted (tuple/memory budget, admission queue
  // capacity, or a load-shedding decision). Retrying later — or with a
  // larger budget — may succeed.
  kResourceExhausted,
};

// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A cheap value type carrying success or an error code plus message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace dwc

// Propagates a non-OK Status from `expr` out of the enclosing function.
#define DWC_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dwc::Status dwc_status_tmp_ = (expr);      \
    if (!dwc_status_tmp_.ok()) {                 \
      return dwc_status_tmp_;                    \
    }                                            \
  } while (0)

#endif  // DWC_UTIL_STATUS_H_
