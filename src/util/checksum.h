#ifndef DWC_UTIL_CHECKSUM_H_
#define DWC_UTIL_CHECKSUM_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "relational/database.h"
#include "relational/relation.h"
#include "relational/tuple.h"

namespace dwc {

// Incremental state checksums for the fault-tolerant delivery layer
// (warehouse/channel.h, warehouse/ingest.h). A relation digest is the XOR of
// per-tuple digests, so it is order-independent over the tuple set and —
// given canonical deltas (inserts disjoint from the state, deletes contained
// in it) — maintainable in O(|delta|): XOR the inserted tuples in and the
// deleted tuples out. Digests are stable within a process run; the delta
// journal is replayed in-process, and checkpoint scripts recompute digests
// from the reconstructed state, so cross-process stability is not required.
//
// Header-only: dwc_util sits below dwc_relational in the link order, but
// these are inline functions compiled into their (relational-linking)
// consumers.

// splitmix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// Position-sensitive digest of one tuple. Stronger mixing than Tuple::Hash
// (whose low bits feed hash buckets): a single-bit value difference must
// flip about half the digest, because relation digests XOR these together.
inline uint64_t TupleDigest(const Tuple& tuple) {
  uint64_t h = 0x8C9A3B5D17E4F26BULL;
  for (const Value& value : tuple.values()) {
    h = Mix64(h ^ (static_cast<uint64_t>(value.Hash()) +
                   0x9E3779B97F4A7C15ULL));
  }
  return Mix64(h ^ tuple.size());
}

// XOR-fold of TupleDigest over the tuple set (0 for the empty relation).
inline uint64_t RelationDigest(const Relation& relation) {
  uint64_t digest = 0;
  for (const Tuple& tuple : relation.tuples()) {
    digest ^= TupleDigest(tuple);
  }
  return digest;
}

// CRC-32 (ISO-HDLC: polynomial 0xEDB88320, reflected, init/xorout
// 0xFFFFFFFF), table-driven. This is the storage layer's framing checksum
// (storage/wal.h, storage/checkpoint.h): unlike the XOR-fold digests above
// it detects burst errors and byte reordering, which is what torn sectors
// and bit rot actually look like. `seed` chains incremental computation:
// Crc32(b, Crc32(a)) == Crc32(ab).
inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = seed ^ 0xFFFFFFFFU;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

// Fixed-width lowercase hex of a CRC-32, and its inverse (manifest framing).
inline std::string Crc32ToHex(uint32_t crc) {
  static const char* kHex = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[crc & 0xF];
    crc >>= 4;
  }
  return out;
}

inline bool HexToCrc32(std::string_view hex, uint32_t* crc) {
  if (hex.size() != 8) {
    return false;
  }
  uint32_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *crc = value;
  return true;
}

// Digest of a string (FNV-1a), for folding relation/source names into
// envelope checksums.
inline uint64_t StringDigest(std::string_view text) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : text) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  return Mix64(h);
}

// Fixed-width lowercase hex rendering of a digest, and its inverse (used by
// the DELTA statement in the DSL). HexToDigest rejects anything that is not
// exactly 16 hex digits.
inline std::string DigestToHex(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

inline bool HexToDigest(std::string_view hex, uint64_t* digest) {
  if (hex.size() != 16) {
    return false;
  }
  uint64_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      value |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *digest = value;
  return true;
}

// Per-relation incremental checksums of a database state. The warehouse's
// ingestion layer tracks one of these for the *base* state it believes the
// sources are in and compares it against the post-state digest piggybacked
// on every sequenced delta: a mismatch is a divergence, caught in O(1)
// instead of an O(|database|) ground-truth comparison.
class StateDigest {
 public:
  StateDigest() = default;
  explicit StateDigest(const Database& db) { Reset(db); }

  void Reset(const Database& db) {
    digests_.clear();
    for (const auto& [name, rel] : db.relations()) {
      digests_[name] = RelationDigest(*rel);
    }
  }

  void SetRelation(const std::string& name, const Relation& relation) {
    digests_[name] = RelationDigest(relation);
  }

  // O(|delta|) maintenance; exactness relies on the delta being canonical.
  void Apply(const std::string& name, const Relation& inserts,
             const Relation& deletes) {
    uint64_t& digest = digests_[name];
    for (const Tuple& tuple : inserts.tuples()) {
      digest ^= TupleDigest(tuple);
    }
    for (const Tuple& tuple : deletes.tuples()) {
      digest ^= TupleDigest(tuple);
    }
  }

  // 0 for untracked relations (and for tracked empty ones; ambiguity is
  // fine, both mean "nothing to diverge from").
  uint64_t Get(const std::string& name) const {
    auto it = digests_.find(name);
    return it == digests_.end() ? 0 : it->second;
  }

  bool Tracks(const std::string& name) const {
    return digests_.find(name) != digests_.end();
  }

  // The per-relation digest map itself, for reconciliation sweeps (the
  // ingestor's resync rung compares two of these relation by relation).
  const std::map<std::string, uint64_t>& digests() const { return digests_; }

  // Order-independent digest of the whole state (relation names included,
  // so moving tuples between relations changes it).
  uint64_t Combined() const {
    uint64_t combined = 0;
    for (const auto& [name, digest] : digests_) {
      combined ^= Mix64(StringDigest(name) ^ digest);
    }
    return combined;
  }

  bool operator==(const StateDigest& other) const {
    return digests_ == other.digests_;
  }
  bool operator!=(const StateDigest& other) const { return !(*this == other); }

 private:
  std::map<std::string, uint64_t> digests_;
};

}  // namespace dwc

#endif  // DWC_UTIL_CHECKSUM_H_
