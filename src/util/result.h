#ifndef DWC_UTIL_RESULT_H_
#define DWC_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace dwc {

// Result<T> holds either a value of type T or a non-OK Status. This is the
// library's replacement for exceptions (see DESIGN.md): parser, schema and
// view-analysis errors travel through Result values.
//
// Usage:
//   Result<Schema> schema = InferSchema(expr, catalog);
//   if (!schema.ok()) return schema.status();
//   Use(schema.value());
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return MakeT();` and `return SomeStatus();`
  // both work, mirroring absl::StatusOr.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  // Requires ok(). The reference forms allow in-place access and moving out.
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  // Returns the error; an OK status when the result holds a value.
  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

}  // namespace dwc

// Evaluates `rexpr` (a Result<T>), propagates its error, otherwise moves the
// value into `lhs`. `lhs` may be a declaration: DWC_ASSIGN_OR_RETURN(auto x, F());
#define DWC_CONCAT_IMPL_(a, b) a##b
#define DWC_CONCAT_(a, b) DWC_CONCAT_IMPL_(a, b)
#define DWC_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto DWC_CONCAT_(dwc_result_tmp_, __LINE__) = (rexpr);        \
  if (!DWC_CONCAT_(dwc_result_tmp_, __LINE__).ok()) {           \
    return DWC_CONCAT_(dwc_result_tmp_, __LINE__).status();     \
  }                                                             \
  lhs = std::move(DWC_CONCAT_(dwc_result_tmp_, __LINE__)).value()

#endif  // DWC_UTIL_RESULT_H_
