#include "util/status.h"

namespace dwc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace dwc
