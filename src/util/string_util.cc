#include "util/string_util.h"

#include <cctype>

namespace dwc {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      break;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string result(input);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

}  // namespace dwc
