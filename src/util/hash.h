#ifndef DWC_UTIL_HASH_H_
#define DWC_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dwc {

// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit constant).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace dwc

#endif  // DWC_UTIL_HASH_H_
