#ifndef DWC_MAINTENANCE_PLAN_H_
#define DWC_MAINTENANCE_PLAN_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/interner.h"
#include "algebra/view.h"
#include "core/warehouse_spec.h"
#include "maintenance/delta.h"
#include "util/result.h"

namespace dwc {

// Precomputed incremental maintenance expressions for a warehouse
// (Section 4 / Section 5 Step 3): for every warehouse relation w and every
// base relation b, expressions computing Δ+w and Δ-w from
//   * the *old* warehouse state (views and complements), and
//   * the reported update (bound as "ins:b" / "del:b"),
// and nothing else — in particular no base relations, which is the paper's
// update-independence property. DeriveMaintenancePlan verifies this
// syntactically; tests/property verifies it dynamically with a query-counting
// source.
class MaintenancePlan {
 public:
  void Set(const std::string& warehouse_relation, const std::string& base,
           DeltaPair delta);

  // nullptr if no entry (e.g. the warehouse relation never changes under
  // updates to `base`).
  const DeltaPair* Find(const std::string& warehouse_relation,
                        const std::string& base) const;

  const std::map<std::string, std::map<std::string, DeltaPair>>& entries()
      const {
    return plans_;
  }

  // Interns every maintenance expression through `interner`, replacing the
  // trees with shared canonical nodes. After this, subexpressions repeated
  // across (warehouse relation, base) entries — and shared with the spec's
  // view/complement/inverse definitions interned through the same
  // instance — are pointer-equal, so the evaluator's subplan cache can
  // recycle their results across refreshes.
  void Canonicalize(ExprInterner* interner);

  // Multi-line listing of all maintenance expressions.
  std::string ToString() const;

 private:
  // warehouse relation -> updated base -> deltas.
  std::map<std::string, std::map<std::string, DeltaPair>> plans_;
};

// Derives the full plan for `spec`. Every expression in the result
// references only warehouse relation names and delta names.
//
// Derivation per (w, b): expand w's definition over base relations, apply
// exact delta rules (maintenance/delta.h), fold subtrees that equal a
// materialized warehouse relation's definition back to that relation's name
// (so the old view state is reused rather than recomputed — Example 4.1's
// shape), substitute W^-1 for remaining base references, and simplify.
Result<MaintenancePlan> DeriveMaintenancePlan(const WarehouseSpec& spec);

// Transaction variant: maintenance expressions for a *simultaneous* update
// of all base relations in `bases` (deltas bound as ins:/del: per base).
// Returns one DeltaPair per affected warehouse relation. Used by
// Warehouse::IntegrateTransaction for atomic multi-relation updates.
Result<std::map<std::string, DeltaPair>> DeriveTransactionPlan(
    const WarehouseSpec& spec, const std::set<std::string>& bases);

// The Section 4 closing remark: a warehouse consisting solely of
// selection-only views sigma_p(B) is update-independent *without* any
// complement. Returns the direct plan (Δ+V = sigma_p(ins:B),
// Δ-V = sigma_p(del:B)); fails with FailedPrecondition if some view is not
// selection-only.
Result<MaintenancePlan> DeriveSelectionOnlyPlan(
    const std::vector<ViewDef>& views, const Catalog& catalog);

}  // namespace dwc

#endif  // DWC_MAINTENANCE_PLAN_H_
