#ifndef DWC_MAINTENANCE_DELTA_H_
#define DWC_MAINTENANCE_DELTA_H_

#include <map>
#include <set>
#include <string>

#include "algebra/expr.h"
#include "algebra/rewriter.h"
#include "algebra/schema_inference.h"
#include "util/result.h"

namespace dwc {

// Conventional names under which a reported source update is bound in the
// evaluation environment: "ins:R" / "del:R" hold the inserted and deleted
// tuple sets of base relation R. The runtime canonicalizes them before
// binding (inserts disjoint from R, deletes a subset of R), which the delta
// rules below assume.
std::string DeltaInsName(const std::string& base);
std::string DeltaDelName(const std::string& base);

// A pair of expressions computing the exact insert / delete sets of some
// expression under an update.
struct DeltaPair {
  ExprRef plus;
  ExprRef minus;
};

// Derives exact set-semantics change-propagation expressions (after
// Griffin/Libkin, Qian/Wiederhold):
//
//   base R (updated)     Δ+ = ins:R                Δ- = del:R
//   base R (untouched)   Δ+ = Δ- = empty
//   sigma_p(E)           Δ+ = sigma_p(Δ+E)         Δ- = sigma_p(Δ-E)
//   pi_Z(E)              Δ+ = pi_Z(Δ+E) \ pi_Z(E)  Δ- = pi_Z(Δ-E) \ pi_Z(new E)
//   E1 |x| E2            Δ+ = (Δ+E1 |x| new E2) U (new E1 |x| Δ+E2)
//                        Δ- = (Δ-E1 |x| E2) U (E1 |x| Δ-E2)
//   E1 U E2              Δ+ = (Δ+E1 U Δ+E2) \ (E1 U E2)
//                        Δ- = (Δ-E1 U Δ-E2) \ (new E1 U new E2)
//   E1 \ E2              Δ+ = (Δ+E1 \ new E2) U (new E1 ∩ Δ-E2)
//                        Δ- = (Δ-E1 \ E2) U (E1 ∩ Δ+E2)
//   rho(E)               Δ+ = rho(Δ+E)             Δ- = rho(Δ-E)
//
// where `new E` is E with every updated base R replaced by
// (R U ins:R) \ del:R, and ∩ is spelled as a natural join of equal schemas.
// Subtrees not touching an updated base collapse to empty deltas.
class DeltaDeriver {
 public:
  // `updated_bases` lists the base relations with pending deltas. `resolver`
  // must know every relation name appearing in derived expressions (bases
  // and views) so empty-relation nodes get correct schemas.
  DeltaDeriver(std::set<std::string> updated_bases, SchemaResolver resolver)
      : updated_bases_(std::move(updated_bases)),
        resolver_(std::move(resolver)) {}

  // Exact deltas of `expr` under the update.
  Result<DeltaPair> Derive(const ExprRef& expr);

  // `expr` evaluated on the post-update state (bases rewritten).
  ExprRef NewState(const ExprRef& expr) const;

  // True if `expr` references an updated base.
  bool Touches(const Expr& expr) const;

 private:
  Result<Schema> SchemaOf(const ExprRef& expr) const;

  std::set<std::string> updated_bases_;
  SchemaResolver resolver_;
};

}  // namespace dwc

#endif  // DWC_MAINTENANCE_DELTA_H_
