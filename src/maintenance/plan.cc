#include "maintenance/plan.h"

#include "algebra/optimizer.h"
#include "algebra/simplifier.h"
#include "util/string_util.h"

namespace dwc {

void MaintenancePlan::Set(const std::string& warehouse_relation,
                          const std::string& base, DeltaPair delta) {
  plans_[warehouse_relation][base] = std::move(delta);
}

const DeltaPair* MaintenancePlan::Find(const std::string& warehouse_relation,
                                       const std::string& base) const {
  auto it = plans_.find(warehouse_relation);
  if (it == plans_.end()) {
    return nullptr;
  }
  auto inner = it->second.find(base);
  return inner == it->second.end() ? nullptr : &inner->second;
}

void MaintenancePlan::Canonicalize(ExprInterner* interner) {
  for (auto& [relation, per_base] : plans_) {
    (void)relation;
    for (auto& [base, delta] : per_base) {
      (void)base;
      delta.plus = interner->Intern(delta.plus);
      delta.minus = interner->Intern(delta.minus);
    }
  }
}

std::string MaintenancePlan::ToString() const {
  std::string out;
  for (const auto& [relation, per_base] : plans_) {
    for (const auto& [base, delta] : per_base) {
      out += StrCat("on update(", base, "): Δ+", relation, " = ",
                    delta.plus->ToString(), "\n");
      out += StrCat("on update(", base, "): Δ-", relation, " = ",
                    delta.minus->ToString(), "\n");
    }
  }
  return out;
}

namespace {

// Replaces subtrees structurally equal to a warehouse relation's expanded
// definition with a reference to the materialized relation. This makes the
// derived expressions reuse old view states (Example 4.1) instead of
// reconstructing them from inverses.
ExprRef FoldMaterialized(const ExprRef& expr,
                         const std::vector<ViewDef>& expanded) {
  for (const ViewDef& view : expanded) {
    if (expr->Equals(*view.expr)) {
      return Expr::Base(view.name);
    }
  }
  switch (expr->kind()) {
    case Expr::Kind::kBase:
    case Expr::Kind::kEmpty:
      return expr;
    case Expr::Kind::kSelect: {
      ExprRef child = FoldMaterialized(expr->child(), expanded);
      return child == expr->child()
                 ? expr
                 : Expr::Select(expr->predicate(), std::move(child));
    }
    case Expr::Kind::kProject: {
      ExprRef child = FoldMaterialized(expr->child(), expanded);
      return child == expr->child()
                 ? expr
                 : Expr::Project(expr->attrs(), std::move(child));
    }
    case Expr::Kind::kRename: {
      ExprRef child = FoldMaterialized(expr->child(), expanded);
      return child == expr->child()
                 ? expr
                 : Expr::Rename(expr->renames(), std::move(child));
    }
    case Expr::Kind::kJoin:
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference: {
      ExprRef left = FoldMaterialized(expr->left(), expanded);
      ExprRef right = FoldMaterialized(expr->right(), expanded);
      if (left == expr->left() && right == expr->right()) {
        return expr;
      }
      switch (expr->kind()) {
        case Expr::Kind::kJoin:
          return Expr::Join(std::move(left), std::move(right));
        case Expr::Kind::kUnion:
          return Expr::Union(std::move(left), std::move(right));
        default:
          return Expr::Difference(std::move(left), std::move(right));
      }
    }
  }
  return expr;
}

Status CheckIndependence(const ExprRef& expr, const WarehouseSpec& spec,
                         const std::set<std::string>& delta_names) {
  for (const std::string& name : expr->ReferencedNames()) {
    if (spec.FindWarehouseSchema(name) == nullptr &&
        delta_names.find(name) == delta_names.end()) {
      return Status::Internal(
          StrCat("maintenance expression still references '", name,
                 "': update independence violated"));
    }
  }
  return Status::Ok();
}

}  // namespace

namespace {

// Warehouse relation definitions expanded down to base relations.
std::vector<ViewDef> ExpandWarehouseViews(const WarehouseSpec& spec) {
  std::map<std::string, ExprRef> view_defs;
  for (const ViewDef& view : spec.views()) {
    view_defs[view.name] = view.expr;
  }
  std::vector<ViewDef> expanded;
  for (const ViewDef& view : spec.AllWarehouseViews()) {
    expanded.push_back(
        ViewDef{view.name, SubstituteNames(view.expr, view_defs)});
  }
  return expanded;
}

// Derives the deltas of every affected warehouse relation for a
// simultaneous update of `bases`; the core of both public entry points.
Result<std::map<std::string, DeltaPair>> DeriveForBases(
    const WarehouseSpec& spec, const std::set<std::string>& bases,
    const std::vector<ViewDef>& expanded) {
  const Catalog& catalog = spec.catalog();
  SchemaResolver base_resolver = ResolverFromCatalog(catalog);
  SchemaResolver warehouse_resolver = spec.WarehouseResolver();

  std::set<std::string> delta_names;
  std::map<std::string, const Schema*> delta_schemas;
  for (const std::string& base : bases) {
    const Schema* schema = catalog.FindSchema(base);
    if (schema == nullptr) {
      return Status::NotFound(StrCat("unknown base relation '", base, "'"));
    }
    delta_names.insert(DeltaInsName(base));
    delta_names.insert(DeltaDelName(base));
    delta_schemas[DeltaInsName(base)] = schema;
    delta_schemas[DeltaDelName(base)] = schema;
  }
  auto final_resolver = [&](const std::string& name) -> const Schema* {
    auto it = delta_schemas.find(name);
    if (it != delta_schemas.end()) {
      return it->second;
    }
    return warehouse_resolver(name);
  };
  SchemaResolver final_resolver_fn = final_resolver;

  std::map<std::string, DeltaPair> result;
  for (const ViewDef& view : expanded) {
    bool touched = false;
    for (const std::string& base : bases) {
      if (view.expr->ReferencedNames().count(base) > 0) {
        touched = true;
        break;
      }
    }
    if (!touched) {
      continue;
    }
    DeltaDeriver deriver(bases, base_resolver);
    DWC_ASSIGN_OR_RETURN(DeltaPair delta, deriver.Derive(view.expr));

    DeltaPair folded;
    folded.plus = FoldMaterialized(delta.plus, expanded);
    folded.minus = FoldMaterialized(delta.minus, expanded);

    DeltaPair substituted;
    substituted.plus = SubstituteNames(folded.plus, spec.inverses());
    substituted.minus = SubstituteNames(folded.minus, spec.inverses());

    DeltaPair simplified;
    simplified.plus = PushDownSelections(
        Simplify(substituted.plus, &final_resolver_fn), final_resolver_fn);
    simplified.minus = PushDownSelections(
        Simplify(substituted.minus, &final_resolver_fn), final_resolver_fn);
    simplified.plus = Simplify(simplified.plus, &final_resolver_fn);
    simplified.minus = Simplify(simplified.minus, &final_resolver_fn);

    DWC_RETURN_IF_ERROR(CheckIndependence(simplified.plus, spec, delta_names));
    DWC_RETURN_IF_ERROR(
        CheckIndependence(simplified.minus, spec, delta_names));
    result.emplace(view.name, std::move(simplified));
  }
  return result;
}

}  // namespace

Result<MaintenancePlan> DeriveMaintenancePlan(const WarehouseSpec& spec) {
  std::vector<ViewDef> expanded = ExpandWarehouseViews(spec);
  MaintenancePlan plan;
  for (const std::string& base : spec.catalog().RelationNames()) {
    DWC_ASSIGN_OR_RETURN(auto per_view,
                         DeriveForBases(spec, {base}, expanded));
    for (auto& [relation, delta] : per_view) {
      plan.Set(relation, base, std::move(delta));
    }
  }
  return plan;
}

Result<std::map<std::string, DeltaPair>> DeriveTransactionPlan(
    const WarehouseSpec& spec, const std::set<std::string>& bases) {
  std::vector<ViewDef> expanded = ExpandWarehouseViews(spec);
  return DeriveForBases(spec, bases, expanded);
}

Result<MaintenancePlan> DeriveSelectionOnlyPlan(
    const std::vector<ViewDef>& views, const Catalog& catalog) {
  MaintenancePlan plan;
  for (const ViewDef& view : views) {
    // Accept sigma_p(B) with any number of stacked selections.
    ExprRef node = view.expr;
    PredicateRef predicate = Predicate::True();
    while (node->kind() == Expr::Kind::kSelect) {
      predicate = Predicate::And(predicate, node->predicate());
      node = node->child();
    }
    if (node->kind() != Expr::Kind::kBase ||
        !catalog.HasRelation(node->base_name())) {
      return Status::FailedPrecondition(
          StrCat("view '", view.name,
                 "' is not selection-only: the no-complement fast path of "
                 "Section 4 does not apply"));
    }
    const std::string& base = node->base_name();
    DeltaPair delta;
    delta.plus =
        Expr::Select(predicate, Expr::Base(DeltaInsName(base)));
    delta.minus =
        Expr::Select(predicate, Expr::Base(DeltaDelName(base)));
    plan.Set(view.name, base, std::move(delta));
  }
  return plan;
}

}  // namespace dwc
