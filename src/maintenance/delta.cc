#include "maintenance/delta.h"

#include "util/string_util.h"

namespace dwc {

std::string DeltaInsName(const std::string& base) { return "ins:" + base; }
std::string DeltaDelName(const std::string& base) { return "del:" + base; }

bool DeltaDeriver::Touches(const Expr& expr) const {
  for (const std::string& name : expr.ReferencedNames()) {
    if (updated_bases_.find(name) != updated_bases_.end()) {
      return true;
    }
  }
  return false;
}

Result<Schema> DeltaDeriver::SchemaOf(const ExprRef& expr) const {
  return InferSchema(*expr, resolver_);
}

ExprRef DeltaDeriver::NewState(const ExprRef& expr) const {
  std::map<std::string, ExprRef> substitutions;
  for (const std::string& base : updated_bases_) {
    substitutions[base] = Expr::Difference(
        Expr::Union(Expr::Base(base), Expr::Base(DeltaInsName(base))),
        Expr::Base(DeltaDelName(base)));
  }
  return SubstituteNames(expr, substitutions);
}

Result<DeltaPair> DeltaDeriver::Derive(const ExprRef& expr) {
  if (!Touches(*expr)) {
    DWC_ASSIGN_OR_RETURN(Schema schema, SchemaOf(expr));
    return DeltaPair{Expr::Empty(schema), Expr::Empty(schema)};
  }
  switch (expr->kind()) {
    case Expr::Kind::kBase: {
      // Touched, so this is an updated base. Deltas are canonical: inserts
      // disjoint from the base, deletes contained in it.
      return DeltaPair{Expr::Base(DeltaInsName(expr->base_name())),
                       Expr::Base(DeltaDelName(expr->base_name()))};
    }
    case Expr::Kind::kEmpty: {
      return DeltaPair{expr, expr};  // Unreachable (not touched), for safety.
    }
    case Expr::Kind::kSelect: {
      DWC_ASSIGN_OR_RETURN(DeltaPair child, Derive(expr->child()));
      return DeltaPair{Expr::Select(expr->predicate(), child.plus),
                       Expr::Select(expr->predicate(), child.minus)};
    }
    case Expr::Kind::kProject: {
      DWC_ASSIGN_OR_RETURN(DeltaPair child, Derive(expr->child()));
      ExprRef old_proj = expr;
      ExprRef new_proj =
          Expr::Project(expr->attrs(), NewState(expr->child()));
      return DeltaPair{
          Expr::Difference(Expr::Project(expr->attrs(), child.plus),
                           old_proj),
          Expr::Difference(Expr::Project(expr->attrs(), child.minus),
                           new_proj)};
    }
    case Expr::Kind::kRename: {
      DWC_ASSIGN_OR_RETURN(DeltaPair child, Derive(expr->child()));
      return DeltaPair{Expr::Rename(expr->renames(), child.plus),
                       Expr::Rename(expr->renames(), child.minus)};
    }
    case Expr::Kind::kJoin: {
      DWC_ASSIGN_OR_RETURN(DeltaPair left, Derive(expr->left()));
      DWC_ASSIGN_OR_RETURN(DeltaPair right, Derive(expr->right()));
      ExprRef new_left = NewState(expr->left());
      ExprRef new_right = NewState(expr->right());
      // Δ+ = (Δ+L |x| new R) U (new L |x| Δ+R); the two sides are disjoint
      // from the old join by construction, so no correction term is needed.
      ExprRef plus = Expr::Union(Expr::Join(left.plus, new_right),
                                 Expr::Join(new_left, right.plus));
      // Δ- = (Δ-L |x| R) U (L |x| Δ-R).
      ExprRef minus = Expr::Union(Expr::Join(left.minus, expr->right()),
                                  Expr::Join(expr->left(), right.minus));
      return DeltaPair{std::move(plus), std::move(minus)};
    }
    case Expr::Kind::kUnion: {
      DWC_ASSIGN_OR_RETURN(DeltaPair left, Derive(expr->left()));
      DWC_ASSIGN_OR_RETURN(DeltaPair right, Derive(expr->right()));
      ExprRef new_union =
          Expr::Union(NewState(expr->left()), NewState(expr->right()));
      ExprRef plus =
          Expr::Difference(Expr::Union(left.plus, right.plus), expr);
      ExprRef minus =
          Expr::Difference(Expr::Union(left.minus, right.minus), new_union);
      return DeltaPair{std::move(plus), std::move(minus)};
    }
    case Expr::Kind::kDifference: {
      DWC_ASSIGN_OR_RETURN(DeltaPair left, Derive(expr->left()));
      DWC_ASSIGN_OR_RETURN(DeltaPair right, Derive(expr->right()));
      ExprRef new_left = NewState(expr->left());
      ExprRef new_right = NewState(expr->right());
      // Natural join of equal schemas is intersection.
      ExprRef plus = Expr::Union(Expr::Difference(left.plus, new_right),
                                 Expr::Join(new_left, right.minus));
      ExprRef minus = Expr::Union(Expr::Difference(left.minus, expr->right()),
                                  Expr::Join(expr->left(), right.plus));
      return DeltaPair{std::move(plus), std::move(minus)};
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace dwc
