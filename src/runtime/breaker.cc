#include "runtime/breaker.h"

#include <algorithm>

namespace dwc {

const char* BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::Tick(uint64_t ticks) {
  if (!enabled() || state_ != State::kOpen) {
    return;
  }
  if (ticks >= open_remaining_) {
    open_remaining_ = 0;
    state_ = State::kHalfOpen;
    ++probes_;
  } else {
    open_remaining_ -= ticks;
  }
}

void CircuitBreaker::TripOpen() {
  state_ = State::kOpen;
  ++trips_;
  uint64_t window = options_.open_ticks;
  // Saturating shift-left, then cap: the window grows 2x per failed probe.
  for (unsigned i = 0; i < backoff_exponent_ && window < options_.max_open_ticks;
       ++i) {
    window <<= 1;
  }
  window = std::min(window, options_.max_open_ticks);
  if (options_.open_ticks > 0) {
    window += rng_.Below(options_.open_ticks);
  }
  open_remaining_ = window;
  if (backoff_exponent_ < 32) {
    ++backoff_exponent_;
  }
}

void CircuitBreaker::RecordSuccess() {
  if (!enabled()) {
    return;
  }
  failures_ = 0;
  if (state_ == State::kHalfOpen) {
    state_ = State::kClosed;
    backoff_exponent_ = 0;
  }
}

void CircuitBreaker::RecordFailure() {
  if (!enabled()) {
    return;
  }
  switch (state_) {
    case State::kClosed:
      if (++failures_ >= options_.failure_threshold) {
        TripOpen();
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back off harder.
      ++failures_;
      TripOpen();
      break;
    case State::kOpen:
      // A failure while open means a caller raced a Tick into half-open
      // territory conceptually; just extend nothing — stay open.
      break;
  }
}

}  // namespace dwc
