#ifndef DWC_RUNTIME_CANCEL_H_
#define DWC_RUNTIME_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>

#include "util/status.h"

namespace dwc {

// Cooperative cancellation context for one governed operation (typically one
// query): a wall-clock deadline, an external cancel flag, and a materialized-
// tuple budget, checked together at every cancellation point.
//
// The token is shared by every kernel morsel and evaluator operator working
// on the operation: the exec layer checks it at morsel boundaries
// (ExecOptions::cancel), the evaluator per operator (EvaluatorOptions::
// cancel). All members are lock-free; Charge/Check may race freely across
// the pool's worker threads. The token only *reports* — discarding partial
// work, releasing snapshot pins and keeping the subplan cache clean are the
// callers' obligations (error propagation + RAII make all three automatic;
// see DESIGN.md §13).
//
// Budget semantics: Charge(n) accounts n freshly materialized tuples; once
// the running total exceeds budget_tuples the charge (and every later
// Check) fails with ResourceExhausted. Subplan-cache hits are deliberately
// never charged — recycling an already-materialized result costs no new
// memory.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  // Unset (default) means unbounded in that dimension.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void set_budget_tuples(size_t budget) { budget_tuples_ = budget; }

  // Convenience constructors for the common shapes.
  static std::shared_ptr<CancelToken> WithDeadline(Clock::duration timeout) {
    auto token = std::make_shared<CancelToken>();
    token->set_deadline(Clock::now() + timeout);
    return token;
  }
  static std::shared_ptr<CancelToken> WithBudget(size_t budget_tuples) {
    auto token = std::make_shared<CancelToken>();
    token->set_budget_tuples(budget_tuples);
    return token;
  }

  // External cancellation (a disconnecting client, an operator's kill).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool has_deadline() const { return has_deadline_; }
  Clock::time_point deadline() const { return deadline_; }
  size_t budget_tuples() const { return budget_tuples_; }
  size_t charged_tuples() const {
    return charged_.load(std::memory_order_relaxed);
  }
  // Tuples still affordable; SIZE_MAX when unbudgeted. Callers sizing big
  // allocations (e.g. a cross product's Reserve) clamp to this so an
  // over-budget operation fails before the allocation, not after.
  size_t RemainingBudget() const {
    if (budget_tuples_ == 0) {
      return std::numeric_limits<size_t>::max();
    }
    size_t charged = charged_tuples();
    return charged >= budget_tuples_ ? 0 : budget_tuples_ - charged;
  }

  // Accounts `tuples` newly materialized tuples against the budget.
  Status Charge(size_t tuples) const {
    if (budget_tuples_ == 0) {
      return Status::Ok();
    }
    size_t total =
        charged_.fetch_add(tuples, std::memory_order_relaxed) + tuples;
    if (total > budget_tuples_) {
      return BudgetExhausted(total);
    }
    return Status::Ok();
  }

  // The cancellation point: cancel flag first (free), then budget (one
  // atomic load), then the deadline (one clock read — still cheap next to
  // a 1024-tuple morsel).
  Status Check() const {
    if (cancelled()) {
      return Status::Aborted("query cancelled by caller");
    }
    if (budget_tuples_ != 0) {
      size_t charged = charged_tuples();
      if (charged > budget_tuples_) {
        return BudgetExhausted(charged);
      }
    }
    if (has_deadline_ && Clock::now() >= deadline_) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Ok();
  }

 private:
  Status BudgetExhausted(size_t charged) const;

  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  // 0 = unlimited. Set before the operation starts (not synchronized).
  size_t budget_tuples_ = 0;
  mutable std::atomic<size_t> charged_{0};
};

}  // namespace dwc

#endif  // DWC_RUNTIME_CANCEL_H_
