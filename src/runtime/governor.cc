#include "runtime/governor.h"

#include <algorithm>

#include "util/string_util.h"

namespace dwc {

const char* WorkClassName(WorkClass klass) {
  switch (klass) {
    case WorkClass::kRead:
      return "read";
    case WorkClass::kMaintenance:
      return "maintenance";
  }
  return "unknown";
}

const char* LoadLevelName(LoadLevel level) {
  switch (level) {
    case LoadLevel::kNormal:
      return "normal";
    case LoadLevel::kStaleOnly:
      return "stale-only";
    case LoadLevel::kMaintenanceOnly:
      return "maintenance-only";
  }
  return "unknown";
}

std::string GovernorStats::ToString() const {
  return StrCat(
      "level=", LoadLevelName(level), " epoch_lag=", epoch_lag,
      " admitted=", admitted_reads, "/", admitted_maintenance,
      " rejected=", rejected_reads, "/", rejected_maintenance,
      " shed_reads=", shed_reads, " stale_reads=", stale_reads,
      " timed_out=", timed_out_reads, "/", timed_out_maintenance,
      " (read/maintenance)");
}

void Governor::Ticket::Release() {
  if (governor_ != nullptr) {
    governor_->ReleaseSlot(klass_);
    governor_ = nullptr;
  }
}

size_t Governor::ConcurrencyLimit(WorkClass klass) const {
  size_t limit = klass == WorkClass::kRead
                     ? options_.max_concurrent_reads
                     : options_.max_concurrent_maintenance;
  return std::max<size_t>(limit, 1);
}

size_t Governor::QueueLimit(WorkClass klass) const {
  return klass == WorkClass::kRead ? options_.max_read_queue
                                   : options_.max_maintenance_queue;
}

LoadLevel Governor::ComputeLevel() const {
  const size_t read_queue = waiting_[static_cast<size_t>(WorkClass::kRead)];
  if (read_queue >= options_.maintenance_only_queue_depth ||
      epoch_lag_ >= options_.maintenance_only_epoch_lag) {
    return LoadLevel::kMaintenanceOnly;
  }
  if (read_queue >= options_.stale_only_queue_depth ||
      epoch_lag_ >= options_.stale_only_epoch_lag) {
    return LoadLevel::kStaleOnly;
  }
  return LoadLevel::kNormal;
}

Result<Governor::Ticket> Governor::Admit(WorkClass klass,
                                         const CancelToken* token,
                                         bool allow_stale) {
  const size_t k = static_cast<size_t>(klass);
  std::unique_lock<std::mutex> lock(mu_);
  const LoadLevel level = ComputeLevel();
  bool stale = false;
  if (klass == WorkClass::kRead) {
    if (level == LoadLevel::kMaintenanceOnly) {
      ++stats_.shed_reads;
      return Status::ResourceExhausted(
          "governor shed the read: load level is maintenance-only "
          "(catching the warehouse up); retry later");
    }
    if (level == LoadLevel::kStaleOnly) {
      if (!allow_stale) {
        ++stats_.shed_reads;
        return Status::ResourceExhausted(
            "governor shed the read: load level is stale-only and the "
            "caller cannot serve from a stale snapshot");
      }
      stale = true;
    }
  }
  // The queue bound counts waiters beyond the running set: a request that
  // can start immediately is admissible even at queue bound zero.
  if (running_[k] >= ConcurrencyLimit(klass) &&
      waiting_[k] >= QueueLimit(klass)) {
    if (klass == WorkClass::kRead) {
      ++stats_.rejected_reads;
    } else {
      ++stats_.rejected_maintenance;
    }
    return Status::ResourceExhausted(
        StrCat("governor rejected the ", WorkClassName(klass),
               ": admission queue is full (", waiting_[k], " waiting)"));
  }

  ++waiting_[k];
  auto can_run = [&] { return running_[k] < ConcurrencyLimit(klass); };
  bool admitted;
  if (token != nullptr && token->has_deadline()) {
    admitted = cv_[k].wait_until(lock, token->deadline(), can_run);
  } else {
    cv_[k].wait(lock, can_run);
    admitted = true;
  }
  --waiting_[k];
  if (!admitted) {
    if (klass == WorkClass::kRead) {
      ++stats_.timed_out_reads;
    } else {
      ++stats_.timed_out_maintenance;
    }
    return Status::DeadlineExceeded(
        StrCat("deadline expired while queued for a ",
               WorkClassName(klass), " slot"));
  }
  ++running_[k];
  if (klass == WorkClass::kRead) {
    ++stats_.admitted_reads;
    if (stale) {
      ++stats_.stale_reads;
    }
  } else {
    ++stats_.admitted_maintenance;
  }
  return Ticket(this, klass, stale);
}

void Governor::ReleaseSlot(WorkClass klass) {
  const size_t k = static_cast<size_t>(klass);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_[k] > 0) {
      --running_[k];
    }
  }
  cv_[k].notify_one();
}

void Governor::ReportEpochLag(uint64_t lag) {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_lag_ = lag;
}

LoadLevel Governor::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ComputeLevel();
}

GovernorStats Governor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GovernorStats snapshot = stats_;
  snapshot.epoch_lag = epoch_lag_;
  snapshot.level = ComputeLevel();
  return snapshot;
}

GovernorOptions Governor::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void Governor::set_options(const GovernorOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
  }
  // Raised limits may unblock waiters immediately.
  cv_[0].notify_all();
  cv_[1].notify_all();
}

}  // namespace dwc
