#ifndef DWC_RUNTIME_BREAKER_H_
#define DWC_RUNTIME_BREAKER_H_

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace dwc {

// Tuning for a CircuitBreaker. The open window is measured in *ticks* — the
// caller's logical clock (the ingestor ticks once per Receive/Drain call) —
// not wall time, so chaos runs replay exactly. The jitter is drawn from a
// seeded PRNG for the same reason: deterministic per (seed, trip sequence),
// but de-synchronized across breakers with different seeds, which is all
// thundering-herd avoidance needs.
struct BreakerOptions {
  // Consecutive failures (while closed) that trip the breaker. <= 0
  // disables the breaker entirely: AllowProbe() is always true and
  // failures never trip.
  int failure_threshold = 3;
  // Base open window; doubles per consecutive re-trip (half-open probe
  // failed), capped at max_open_ticks, plus jitter in [0, open_ticks).
  uint64_t open_ticks = 8;
  uint64_t max_open_ticks = 128;
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;
};

// A per-source circuit breaker (closed → open → half-open → closed):
//
//   closed     normal operation; consecutive failures count up, and at
//              failure_threshold the breaker trips open.
//   open       the protected resource is not called at all (AllowProbe()
//              is false); Tick() counts the open window down.
//   half-open  the window elapsed: exactly the next protected call runs as
//              a probe. Success closes the breaker (and resets the backoff
//              exponent); failure re-opens it with a doubled, jittered
//              window.
//
// Single-threaded by design: the DeltaIngestor that owns it is the
// warehouse's one writer. See DESIGN.md §13 for the state machine.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerOptions options = BreakerOptions())
      : options_(options), rng_(options.jitter_seed) {}

  // Advances the logical clock; an elapsed open window moves to half-open.
  void Tick(uint64_t ticks = 1);

  // True when a protected call may proceed (closed, half-open, or the
  // breaker is disabled).
  bool AllowProbe() const {
    return options_.failure_threshold <= 0 || state_ != State::kOpen;
  }

  // Outcome of a protected call. A half-open success closes the breaker and
  // replaying any deferred backlog is the caller's next move.
  void RecordSuccess();
  void RecordFailure();

  State state() const {
    return options_.failure_threshold <= 0 ? State::kClosed : state_;
  }
  bool enabled() const { return options_.failure_threshold > 0; }
  int consecutive_failures() const { return failures_; }
  uint64_t open_ticks_remaining() const { return open_remaining_; }
  // Times the breaker tripped (closed→open and half-open→open both count).
  size_t trips() const { return trips_; }
  // Half-open probes granted (successful or not).
  size_t probes() const { return probes_; }

  const BreakerOptions& options() const { return options_; }

 private:
  void TripOpen();

  BreakerOptions options_;
  Rng rng_;
  State state_ = State::kClosed;
  int failures_ = 0;
  uint64_t open_remaining_ = 0;
  // Backoff doubling exponent; grows per re-trip out of half-open.
  unsigned backoff_exponent_ = 0;
  size_t trips_ = 0;
  size_t probes_ = 0;
};

// Stable names ("closed", "open", "half-open") for stats and the REPL.
const char* BreakerStateName(CircuitBreaker::State state);

}  // namespace dwc

#endif  // DWC_RUNTIME_BREAKER_H_
