#ifndef DWC_RUNTIME_GOVERNOR_H_
#define DWC_RUNTIME_GOVERNOR_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "runtime/cancel.h"
#include "util/result.h"

namespace dwc {

// The two admission classes. Reads are translated queries
// (AnswerQuery/AnswerQueryAt); maintenance is everything that advances the
// warehouse state (Integrate/Drain). They get separate concurrency limits
// and separate queues so an overload of one can never starve the other
// outright — under pressure the ladder below *chooses* maintenance.
enum class WorkClass { kRead = 0, kMaintenance = 1 };

const char* WorkClassName(WorkClass klass);

// Degradation ladder, mildest to harshest. Queue-full rejection (the "reject
// new reads" rung) is always active and not a level of its own: a bounded
// queue rejects its overflow at every level.
//
//   kNormal           admit everything within queue/concurrency bounds.
//   kStaleOnly        reads are admitted only when the caller can serve them
//                     from an already-pinned stale snapshot (allow_stale):
//                     fresh pins would keep forcing the writer onto the
//                     copy-on-write path exactly when it is behind.
//   kMaintenanceOnly  reads are refused outright; every cycle goes to
//                     catching the warehouse up.
enum class LoadLevel { kNormal = 0, kStaleOnly = 1, kMaintenanceOnly = 2 };

const char* LoadLevelName(LoadLevel level);

struct GovernorOptions {
  // Per-class concurrency limits (running at once) and queue bounds
  // (waiting beyond the running set). Zero limits are clamped to 1.
  size_t max_concurrent_reads = 4;
  size_t max_concurrent_maintenance = 1;
  size_t max_read_queue = 16;
  size_t max_maintenance_queue = 16;
  // Ladder thresholds, driven by the read-queue depth and the reported
  // epoch lag (see Governor::ReportEpochLag). Each level engages when
  // either signal crosses its threshold.
  size_t stale_only_queue_depth = 8;
  size_t maintenance_only_queue_depth = 14;
  uint64_t stale_only_epoch_lag = 16;
  uint64_t maintenance_only_epoch_lag = 48;
};

// Counter snapshot for tests, the REPL `stats` command and bench_overload.
struct GovernorStats {
  size_t admitted_reads = 0;
  size_t admitted_maintenance = 0;
  // Bounded-queue overflow refusals (ResourceExhausted).
  size_t rejected_reads = 0;
  size_t rejected_maintenance = 0;
  // Ladder refusals of reads (ResourceExhausted at kStaleOnly without
  // allow_stale, or anything at kMaintenanceOnly).
  size_t shed_reads = 0;
  // Reads admitted with Ticket::stale_only() set.
  size_t stale_reads = 0;
  // Queue-time deadline expiries (DeadlineExceeded before a slot freed).
  size_t timed_out_reads = 0;
  size_t timed_out_maintenance = 0;
  uint64_t epoch_lag = 0;
  LoadLevel level = LoadLevel::kNormal;

  std::string ToString() const;
};

// Bounded two-class admission queue in front of a warehouse.
//
// Every expensive operation asks for a Ticket first. Admission can fail
// three ways, each with the matching governor counter:
//   - ResourceExhausted: the class's queue is full, or the degradation
//     ladder refuses reads at the current load level;
//   - DeadlineExceeded: the caller's CancelToken deadline expired while
//     waiting in the queue (the same deadline then bounds execution);
//   - never silently: an admitted Ticket holds one concurrency slot until
//     it is released/destroyed (RAII).
//
// Thread-safe throughout; one governor fronts one warehouse.
class Governor {
 public:
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        governor_ = other.governor_;
        klass_ = other.klass_;
        stale_only_ = other.stale_only_;
        other.governor_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    // Frees the concurrency slot (idempotent).
    void Release();

    bool valid() const { return governor_ != nullptr; }
    // True when admission happened at kStaleOnly: the caller must serve
    // from a stale snapshot instead of pinning a fresh one.
    bool stale_only() const { return stale_only_; }

   private:
    friend class Governor;
    Ticket(Governor* governor, WorkClass klass, bool stale_only)
        : governor_(governor), klass_(klass), stale_only_(stale_only) {}

    Governor* governor_ = nullptr;
    WorkClass klass_ = WorkClass::kRead;
    bool stale_only_ = false;
  };

  explicit Governor(GovernorOptions options = GovernorOptions())
      : options_(options) {}

  // Admission. `token` may be null (no queue-time deadline); `allow_stale`
  // marks a read the caller can serve from a stale snapshot, which keeps it
  // admissible at kStaleOnly.
  Result<Ticket> Admit(WorkClass klass, const CancelToken* token = nullptr,
                       bool allow_stale = false);
  Result<Ticket> AdmitRead(const CancelToken* token = nullptr,
                           bool allow_stale = false) {
    return Admit(WorkClass::kRead, token, allow_stale);
  }
  Result<Ticket> AdmitMaintenance(const CancelToken* token = nullptr) {
    return Admit(WorkClass::kMaintenance, token);
  }

  // Feeds the ladder's second signal. The serving layer reports how far
  // behind the warehouse is (e.g. EpochStats::retired_epochs — epochs
  // superseded but still pinned by slow readers — or an ingest backlog).
  void ReportEpochLag(uint64_t lag);

  LoadLevel level() const;
  GovernorStats stats() const;
  GovernorOptions options() const;
  // Takes effect for subsequent admissions; waiters re-read limits on wake.
  void set_options(const GovernorOptions& options);

 private:
  static constexpr size_t kClasses = 2;

  size_t ConcurrencyLimit(WorkClass klass) const;  // mu_ held.
  size_t QueueLimit(WorkClass klass) const;        // mu_ held.
  LoadLevel ComputeLevel() const;                  // mu_ held.
  void ReleaseSlot(WorkClass klass);

  mutable std::mutex mu_;
  std::condition_variable cv_[kClasses];
  GovernorOptions options_;
  size_t running_[kClasses] = {0, 0};
  size_t waiting_[kClasses] = {0, 0};
  uint64_t epoch_lag_ = 0;
  GovernorStats stats_;
};

}  // namespace dwc

#endif  // DWC_RUNTIME_GOVERNOR_H_
