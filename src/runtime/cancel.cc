#include "runtime/cancel.h"

#include "util/string_util.h"

namespace dwc {

Status CancelToken::BudgetExhausted(size_t charged) const {
  return Status::ResourceExhausted(
      StrCat("tuple budget exhausted: materialized ", charged,
             " tuples against a budget of ", budget_tuples_));
}

}  // namespace dwc
