#include "analysis/invertibility.h"

#include <algorithm>
#include <utility>

#include "algebra/interner.h"
#include "analysis/facts.h"
#include "core/complement.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Walks the residual spine of a claimed complement: projections, selections
// and the minuend of differences, down to a base node. Returns the base
// name, or "" when the expression does not bottom out at one.
std::string ResidualBase(const ExprRef& expr) {
  const Expr* node = expr.get();
  while (node != nullptr) {
    switch (node->kind()) {
      case Expr::Kind::kBase:
        return node->base_name();
      case Expr::Kind::kSelect:
      case Expr::Kind::kProject:
      case Expr::Kind::kRename:
        node = node->child().get();
        break;
      case Expr::Kind::kDifference:
        node = node->left().get();
        break;
      default:
        return "";
    }
  }
  return "";
}

bool CanonicallyEqual(const ExprRef& a, const ExprRef& b) {
  if (a == nullptr || b == nullptr) {
    return a == b;
  }
  ExprInterner interner;
  const ExprRef ia = interner.Intern(a);
  const ExprRef ib = interner.Intern(b);
  return interner.CidOf(ia.get()) == interner.CidOf(ib.get());
}

std::string DescribeCovers(const BaseComplementInfo& info) {
  std::vector<std::string> labels;
  for (const std::vector<std::string>& cover : info.cover_labels) {
    labels.push_back(StrCat("{", Join(cover, ", "), "}"));
  }
  return Join(labels, ", ");
}

}  // namespace

const char* InvertVerdictName(InvertVerdict verdict) {
  switch (verdict) {
    case InvertVerdict::kProven:
      return "PROVEN";
    case InvertVerdict::kProvenByConstruction:
      return "PROVEN-BY-CONSTRUCTION";
    case InvertVerdict::kNotProven:
      return "NOT-PROVEN";
  }
  return "NOT-PROVEN";
}

const char* InvertFindingKindName(InvertFindingKind kind) {
  switch (kind) {
    case InvertFindingKind::kMissingAttributes:
      return "missing-attributes";
    case InvertFindingKind::kNoResidual:
      return "no-residual";
    case InvertFindingKind::kUnverifiedSubtraction:
      return "unverified-subtraction";
  }
  return "no-residual";
}

std::string InvertFinding::ToString() const {
  std::string out = StrCat(InvertFindingKindName(kind), " on ", base);
  if (!missing.empty()) {
    out += StrCat(" (witness: ", Join(missing, ", "), ")");
  }
  if (!detail.empty()) {
    out += StrCat(": ", detail);
  }
  return out;
}

bool InvertibilityReport::AllProven() const {
  for (const BaseInvertibility& entry : per_base) {
    if (entry.verdict == InvertVerdict::kNotProven) {
      return false;
    }
  }
  return true;
}

const BaseInvertibility* InvertibilityReport::FindBase(
    const std::string& base) const {
  for (const BaseInvertibility& entry : per_base) {
    if (entry.base == base) {
      return &entry;
    }
  }
  return nullptr;
}

std::string InvertibilityReport::ToString() const {
  std::string out;
  for (const BaseInvertibility& entry : per_base) {
    out += StrCat(entry.base, ": ", InvertVerdictName(entry.verdict), "\n");
    for (const std::string& step : entry.derivation) {
      out += StrCat("    ", step, "\n");
    }
    for (const InvertFinding& finding : entry.findings) {
      out += StrCat("    ! ", finding.ToString(), "\n");
    }
  }
  return out;
}

InvertibilityReport CheckInvertibility(
    const Catalog& catalog, const std::vector<ViewDef>& views,
    const std::vector<ViewDef>& claimed_complements) {
  InvertibilityReport report;
  Result<ComplementResult> computed =
      ComputeComplement(views, catalog, ComplementOptions());

  // Index claimed residual stores by the base their spine bottoms out at.
  std::map<std::string, const ViewDef*> claimed_by_base;
  for (const ViewDef& claimed : claimed_complements) {
    std::string base = ResidualBase(claimed.expr);
    if (!base.empty()) {
      claimed_by_base.emplace(base, &claimed);
    }
  }

  DataflowAnalyzer analyzer(&catalog);
  for (const auto& [base, schema] : catalog.relations()) {
    BaseInvertibility entry;
    entry.base = base;
    const AttrSet base_attrs = schema.attr_names();

    if (!computed.ok()) {
      entry.verdict = InvertVerdict::kNotProven;
      entry.derivation.push_back(StrCat("complement construction failed: ",
                                        computed.status().message()));
      report.per_base.push_back(std::move(entry));
      continue;
    }
    const BaseComplementInfo* info = computed->FindBase(base);

    auto claimed_it = claimed_by_base.find(base);
    if (claimed_it == claimed_by_base.end()) {
      if (info != nullptr && info->provably_empty) {
        entry.verdict = InvertVerdict::kProven;
        entry.derivation.push_back(StrCat(
            "the views are lossless on ", base,
            ": the constructed complement is provably empty (Theorem 2.2)"));
        std::string covers = DescribeCovers(*info);
        if (!covers.empty()) {
          entry.derivation.push_back(StrCat("key covers: ", covers));
        }
      } else {
        entry.verdict = InvertVerdict::kNotProven;
        InvertFinding finding;
        finding.kind = InvertFindingKind::kNoResidual;
        finding.base = base;
        finding.detail = StrCat(
            "no complement relation holds the tuples of ", base,
            " the views lose, and the views are not provably lossless on it");
        entry.derivation.push_back(
            "the constructed complement is not provably empty and no claimed "
            "residual store exists");
        entry.findings.push_back(std::move(finding));
      }
      report.per_base.push_back(std::move(entry));
      continue;
    }

    const ViewDef& claimed = *claimed_it->second;
    if (info != nullptr &&
        CanonicallyEqual(claimed.expr, info->complement_def)) {
      entry.verdict = InvertVerdict::kProvenByConstruction;
      entry.derivation.push_back(StrCat(
          claimed.name, " is canonically identical to the constructed ",
          info->complement_name, " = ", base,
          " \\ (rhat ∪ rhat_ir), which is correct by Equation (3)"));
      report.per_base.push_back(std::move(entry));
      continue;
    }

    // A hand-written residual: check attribute coverage first — a lossy
    // projection is unrecoverable no matter what is subtracted.
    const NodeFacts& facts = analyzer.Analyze(claimed.expr);
    AttrSet covered;
    auto prov = facts.provenance.find(base);
    if (prov != facts.provenance.end()) {
      covered = prov->second;
    }
    AttrSet missing;
    std::set_difference(base_attrs.begin(), base_attrs.end(), covered.begin(),
                        covered.end(), std::inserter(missing, missing.begin()));
    if (!missing.empty()) {
      entry.verdict = InvertVerdict::kNotProven;
      InvertFinding finding;
      finding.kind = InvertFindingKind::kMissingAttributes;
      finding.base = base;
      finding.missing = missing;
      finding.detail = StrCat(
          claimed.name, " projects these attributes away: tuples of ", base,
          " the views lose cannot be reconstructed with their values");
      entry.derivation.push_back(StrCat(
          claimed.name, " retains only {", Join(covered, ", "), "} of ", base,
          "'s attributes {", Join(base_attrs, ", "), "}"));
      entry.findings.push_back(std::move(finding));
      report.per_base.push_back(std::move(entry));
      continue;
    }

    entry.verdict = InvertVerdict::kNotProven;
    InvertFinding finding;
    finding.kind = InvertFindingKind::kUnverifiedSubtraction;
    finding.base = base;
    finding.detail = StrCat(
        claimed.name, " keeps the full width of ", base,
        " but does not match the constructed complement: it may omit tuples "
        "the views lose");
    entry.derivation.push_back(StrCat(
        claimed.name,
        " retains every attribute, but its subtracted part differs from "
        "the Equation (3) construction"));
    entry.findings.push_back(std::move(finding));
    report.per_base.push_back(std::move(entry));
  }
  return report;
}

}  // namespace dwc
