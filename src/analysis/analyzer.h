#ifndef DWC_ANALYSIS_ANALYZER_H_
#define DWC_ANALYSIS_ANALYZER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/view.h"
#include "analysis/demand.h"
#include "analysis/invertibility.h"
#include "analysis/selfmaint.h"
#include "core/warehouse_spec.h"
#include "relational/catalog.h"

namespace dwc {

// By the ComplementOptions::name_prefix convention, a view named
// "C_<base>" is a *claimed complement*: the script asserts it is the
// residual store making base reconstruction possible. The analyzer checks
// the claim instead of trusting it.
bool IsClaimedComplementName(const std::string& name);

// One warehouse script's worth of semantic-analysis input.
struct AnalysisInput {
  std::shared_ptr<const Catalog> catalog;
  // All views, claimed complements included; the analyzer partitions them.
  std::vector<ViewDef> views;
  // QUERY statements (expressions over base relation names).
  std::vector<ExprRef> queries;
};

// Everything the three verdict engines derive for one input. `spec` is
// empty when the user views are not a valid PSJ warehouse (the reason is
// in `spec_error`); invertibility checking still runs in that case.
struct AnalysisResult {
  std::vector<ViewDef> user_views;
  std::vector<ViewDef> claimed_complements;

  std::optional<WarehouseSpec> spec;
  std::string spec_error;

  SelfMaintReport selfmaint;
  InvertibilityReport invertibility;
  ComplementUsageReport usage;
};

// Runs the full semantic analysis. Never fails: engines that cannot run
// report degraded verdicts with the reason recorded.
AnalysisResult AnalyzeWarehouse(const AnalysisInput& input);

}  // namespace dwc

#endif  // DWC_ANALYSIS_ANALYZER_H_
