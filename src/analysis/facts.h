#ifndef DWC_ANALYSIS_FACTS_H_
#define DWC_ANALYSIS_FACTS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "relational/catalog.h"
#include "relational/schema.h"

namespace dwc {

// The attribute-level fact lattice the semantic analyzer propagates over
// the (hash-consed) algebra DAG, one abstract value per node. Every
// component is a *sound* approximation: facts claim only what holds on
// every database state satisfying the catalog's keys and inclusion
// dependencies.
//
// The lattice order is componentwise: fewer exposed attributes, fewer
// candidate keys, fewer total bases, more sources. A single bottom-up pass
// over the DAG reaches the (least) fixpoint because expressions are acyclic
// and every transfer function below is monotone in its inputs; DESIGN.md
// §11 spells out the rules.
struct NodeFacts {
  // Output attribute names of the node (the abstract "schema"; types live
  // in schema inference, which the analyzer reuses for validation only).
  AttrSet attrs;

  // Per referenced base relation b: the attributes of b still visible in
  // this node's output, under their current (post-rename) names. An entry
  // means: whenever an output tuple descends from a tuple t of b, the
  // listed output attributes carry the corresponding values of t. Bases
  // reachable only through one branch of a union are dropped (their values
  // are not reliably b-sourced).
  std::map<std::string, AttrSet> provenance;

  // Candidate keys: attribute sets that functionally determine the whole
  // output tuple. Propagated through select (unchanged), project (keys
  // fully inside the projection survive), and join (the FD closure rule:
  // k_l alone suffices when the join attributes contain a key of the right
  // side, and symmetrically; k_l ∪ k_r always works). Bounded by
  // kMaxKeysPerNode; dropping keys is sound (the lattice only loses
  // precision).
  std::set<AttrSet> keys;

  // Bases b such that the node provably retains (an image of) *every*
  // tuple of b: base nodes are total on themselves, selections lose
  // totality, joins preserve it when referential integrity (an inclusion
  // dependency into a base the other side is total on) makes the join
  // total — the Example 2.3/2.4 reasoning, lifted to a dataflow fact.
  std::set<std::string> total_bases;

  // Delta provenance: every base relation this node transitively reads.
  // An update to a base outside this set can never change the node's
  // value — the fact the self-maintainability verdicts start from.
  std::set<std::string> sources;

  // Attributes of each base dropped by projections somewhere below this
  // node (the "lossy" part of the lattice): base -> attributes of that
  // base that were visible below a projection but are not in its output.
  std::map<std::string, AttrSet> dropped;

  std::string ToString() const;
};

// Bottom-up abstract interpreter over expression trees/DAGs. Facts are
// memoized per node identity, so on hash-consed expressions (see
// algebra/interner.h) shared subplans are analyzed exactly once and the
// whole pass is a single traversal of the DAG.
class DataflowAnalyzer {
 public:
  // Keys/INDs and base schemas come from `catalog`, which must outlive the
  // analyzer. Names not in the catalog (e.g. "ins:R"/"del:R" delta
  // bindings, view references) get empty facts: sound, no assumptions.
  explicit DataflowAnalyzer(const Catalog* catalog)
      : catalog_(catalog) {}

  // Facts for `expr` (computed on demand, memoized). The reference stays
  // valid for the analyzer's lifetime.
  const NodeFacts& Analyze(const ExprRef& expr);

  // Cap on |keys| per node; derived keys beyond it are dropped (sound).
  static constexpr size_t kMaxKeysPerNode = 16;

 private:
  NodeFacts Compute(const ExprRef& expr);
  NodeFacts ComputeBase(const std::string& name);
  NodeFacts ComputeJoin(const NodeFacts& left, const NodeFacts& right);

  const Catalog* catalog_;
  std::map<const Expr*, NodeFacts> memo_;
};

// Convenience for one-shot callers: facts of `expr` under `catalog`.
NodeFacts AnalyzeFacts(const ExprRef& expr, const Catalog& catalog);

}  // namespace dwc

#endif  // DWC_ANALYSIS_FACTS_H_
