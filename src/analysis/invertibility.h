#ifndef DWC_ANALYSIS_INVERTIBILITY_H_
#define DWC_ANALYSIS_INVERTIBILITY_H_

#include <string>
#include <vector>

#include "algebra/view.h"
#include "relational/catalog.h"
#include "relational/schema.h"

namespace dwc {

// Per-base outcome of the invertibility proof: is every database state
// recoverable from W = V ∪ C, i.e. is W⁻¹ well-defined (Proposition 2.1)?
enum class InvertVerdict {
  // Proven without a materialized residual: the views alone are lossless
  // on this base (key covers / referential integrity make the computed
  // complement provably empty — Theorem 2.2).
  kProven,
  // Proven because the claimed complement is canonically identical to the
  // constructed one, C_b = b \ (R̂_b ∪ R̂_b^ir), which is correct by
  // construction (Equation (3)).
  kProvenByConstruction,
  // No proof found; `findings` explains what blocks reconstruction.
  kNotProven,
};

const char* InvertVerdictName(InvertVerdict verdict);

// Why a base could not be proven reconstructible.
enum class InvertFindingKind {
  // The residual store projects away attributes of the base: tuples the
  // views lose come back with holes. `missing` is the minimal witness —
  // exactly the attributes of b no residual column carries.
  kMissingAttributes,
  // No claimed complement holds leftover tuples of the base, and the views
  // are not provably lossless on it.
  kNoResidual,
  // The residual keeps full width, but what it subtracts could not be
  // matched against the construction, so it may miss lost tuples.
  kUnverifiedSubtraction,
};

const char* InvertFindingKindName(InvertFindingKind kind);

struct InvertFinding {
  InvertFindingKind kind = InvertFindingKind::kNoResidual;
  std::string base;
  // For kMissingAttributes: the minimal missing-attribute witness.
  AttrSet missing;
  std::string detail;

  std::string ToString() const;
};

struct BaseInvertibility {
  std::string base;
  InvertVerdict verdict = InvertVerdict::kNotProven;
  std::vector<std::string> derivation;
  std::vector<InvertFinding> findings;
};

struct InvertibilityReport {
  std::vector<BaseInvertibility> per_base;

  bool AllProven() const;
  const BaseInvertibility* FindBase(const std::string& base) const;
  std::string ToString() const;
};

// Checks that `claimed_complements` (the warehouse's C-relations, by the
// "C_<base>" naming convention of ComplementOptions::name_prefix) actually
// make W = views ∪ claimed invertible over `catalog`. Pass an empty claimed
// list to ask whether the views alone are lossless. Never fails: when the
// construction itself cannot run (e.g. non-PSJ views), every base reports
// kNotProven with the reason in its derivation and no findings.
InvertibilityReport CheckInvertibility(
    const Catalog& catalog, const std::vector<ViewDef>& views,
    const std::vector<ViewDef>& claimed_complements);

}  // namespace dwc

#endif  // DWC_ANALYSIS_INVERTIBILITY_H_
