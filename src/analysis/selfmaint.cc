#include "analysis/selfmaint.h"

#include <algorithm>
#include <set>
#include <utility>

#include "algebra/rewriter.h"
#include "algebra/simplifier.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Specializes a maintenance pair to one delta kind: the inapplicable delta
// binding becomes the empty relation and the expressions are re-simplified,
// which folds away every subplan that only fired for the other kind.
DeltaPair Specialize(const DeltaPair& pair, const std::string& base,
                     DeltaKind kind, const WarehouseSpec& spec) {
  const Schema* base_schema = spec.catalog().FindSchema(base);
  if (base_schema == nullptr) {
    return pair;
  }
  const std::string inapplicable = kind == DeltaKind::kInsert
                                       ? DeltaDelName(base)
                                       : DeltaInsName(base);
  ExprRef empty = Expr::Empty(*base_schema);

  SchemaResolver warehouse = spec.WarehouseResolver();
  const std::string ins = DeltaInsName(base);
  const std::string del = DeltaDelName(base);
  SchemaResolver resolver = [&](const std::string& name) -> const Schema* {
    if (name == ins || name == del) {
      return base_schema;
    }
    if (const Schema* schema = warehouse(name)) {
      return schema;
    }
    return spec.catalog().FindSchema(name);
  };

  DeltaPair out;
  if (pair.plus != nullptr) {
    out.plus = Simplify(SubstituteName(pair.plus, inapplicable, empty),
                        &resolver);
  }
  if (pair.minus != nullptr) {
    out.minus = Simplify(SubstituteName(pair.minus, inapplicable, empty),
                         &resolver);
  }
  return out;
}

std::set<std::string> ReadsOf(const DeltaPair& pair, const std::string& base) {
  std::set<std::string> names;
  if (pair.plus != nullptr) {
    pair.plus->CollectNames(&names);
  }
  if (pair.minus != nullptr) {
    pair.minus->CollectNames(&names);
  }
  names.erase(DeltaInsName(base));
  names.erase(DeltaDelName(base));
  return names;
}

}  // namespace

const char* DeltaKindName(DeltaKind kind) {
  return kind == DeltaKind::kInsert ? "insert" : "delete";
}

const char* MaintVerdictName(MaintVerdict verdict) {
  switch (verdict) {
    case MaintVerdict::kSelf:
      return "SELF";
    case MaintVerdict::kComplement:
      return "COMPLEMENT";
    case MaintVerdict::kSource:
      return "SOURCE";
  }
  return "SOURCE";
}

std::string SelfMaintCertificate::ToString() const {
  std::string out = StrCat(relation, " / ", base, " / ", DeltaKindName(kind),
                           ": ", MaintVerdictName(verdict));
  if (!reads.empty()) {
    out += StrCat(" (reads ", Join(reads, ", "), ")");
  }
  for (const std::string& step : derivation) {
    out += StrCat("\n    ", step);
  }
  return out;
}

const SelfMaintCertificate* SelfMaintReport::Find(const std::string& relation,
                                                  const std::string& base,
                                                  DeltaKind kind) const {
  for (const SelfMaintCertificate& cert : certificates) {
    if (cert.relation == relation && cert.base == base && cert.kind == kind) {
      return &cert;
    }
  }
  return nullptr;
}

MaintVerdict SelfMaintReport::Overall(const std::string& base,
                                      DeltaKind kind) const {
  MaintVerdict worst = MaintVerdict::kSelf;
  for (const SelfMaintCertificate& cert : certificates) {
    if (cert.base != base || cert.kind != kind) {
      continue;
    }
    if (static_cast<int>(cert.verdict) > static_cast<int>(worst)) {
      worst = cert.verdict;
    }
  }
  return worst;
}

std::string SelfMaintReport::ToString() const {
  std::string out;
  for (const SelfMaintCertificate& cert : certificates) {
    out += cert.ToString();
    out += "\n";
  }
  return out;
}

SelfMaintReport AnalyzeSelfMaintenance(const WarehouseSpec& spec) {
  SelfMaintReport report;

  std::set<std::string> warehouse_names;
  std::vector<std::string> relation_order;
  for (const ViewDef& view : spec.AllWarehouseViews()) {
    warehouse_names.insert(view.name);
    relation_order.push_back(view.name);
  }
  std::vector<std::string> bases = spec.catalog().RelationNames();

  Result<MaintenancePlan> plan = DeriveMaintenancePlan(spec);

  for (const std::string& w : relation_order) {
    for (const std::string& b : bases) {
      for (DeltaKind kind : {DeltaKind::kInsert, DeltaKind::kDelete}) {
        SelfMaintCertificate cert;
        cert.relation = w;
        cert.base = b;
        cert.kind = kind;

        if (!plan.ok()) {
          cert.verdict = MaintVerdict::kSource;
          cert.derivation.push_back(StrCat(
              "maintenance plan derivation failed: ", plan.status().message()));
          cert.derivation.push_back(
              "no static proof possible; the engine must re-query the source");
          report.certificates.push_back(std::move(cert));
          continue;
        }

        const DeltaPair* entry = plan->Find(w, b);
        if (entry == nullptr) {
          cert.verdict = MaintVerdict::kSelf;
          cert.derivation.push_back(StrCat(
              "the maintenance plan has no entry for (", w, ", ", b,
              "): ", w, " provably never changes under updates to ", b));
          report.certificates.push_back(std::move(cert));
          continue;
        }

        cert.specialized = Specialize(*entry, b, kind, spec);
        cert.derivation.push_back(StrCat(
            "specialized the (", w, ", ", b, ") maintenance pair to a pure ",
            DeltaKindName(kind), " batch: ",
            kind == DeltaKind::kInsert ? DeltaDelName(b) : DeltaInsName(b),
            " := empty, then simplified"));
        if (cert.specialized.plus != nullptr) {
          cert.derivation.push_back(
              StrCat("delta+ = ", cert.specialized.plus->ToString()));
        }
        if (cert.specialized.minus != nullptr) {
          cert.derivation.push_back(
              StrCat("delta- = ", cert.specialized.minus->ToString()));
        }

        std::set<std::string> reads = ReadsOf(cert.specialized, b);
        cert.reads.assign(reads.begin(), reads.end());

        bool touches_base = false;
        bool touches_sibling = false;
        for (const std::string& name : reads) {
          if (warehouse_names.count(name) > 0) {
            touches_sibling = touches_sibling || name != w;
          } else {
            touches_base = true;
          }
        }
        if (touches_base) {
          cert.verdict = MaintVerdict::kSource;
          cert.derivation.push_back(
              "the specialized expressions reference a non-warehouse "
              "relation: update independence is lost");
        } else if (touches_sibling) {
          cert.verdict = MaintVerdict::kComplement;
          cert.derivation.push_back(
              "the specialized expressions read other warehouse relations "
              "but no source: maintainable from W = V union C alone "
              "(Theorem 4.1)");
        } else {
          cert.verdict = MaintVerdict::kSelf;
          cert.derivation.push_back(StrCat(
              "the specialized expressions read at most ", w,
              " itself and the reported delta: ", w,
              " is self-maintainable for this delta class"));
        }
        report.certificates.push_back(std::move(cert));
      }
    }
  }
  return report;
}

}  // namespace dwc
