#ifndef DWC_ANALYSIS_SELFMAINT_H_
#define DWC_ANALYSIS_SELFMAINT_H_

#include <string>
#include <vector>

#include "core/warehouse_spec.h"
#include "maintenance/delta.h"
#include "maintenance/plan.h"

namespace dwc {

// The two delta classes of Section 4: a reported batch of insertions into a
// base relation, or a batch of deletions. (Mixed transactions are handled
// by the runtime as one of each; their static verdict is the join of the
// two certificates.)
enum class DeltaKind { kInsert, kDelete };

const char* DeltaKindName(DeltaKind kind);  // "insert" / "delete"

// What maintaining warehouse relation `w` under a delta on base `b`
// statically requires, from best to worst:
//   kSelf       — only w's own old state and the reported delta; no other
//                 warehouse relation, no source access (Theorem 4.1 in its
//                 strongest per-relation form).
//   kComplement — only materialized warehouse relations (siblings in V,
//                 complements in C) and the delta; still zero source
//                 access, i.e. the warehouse as a whole is
//                 update-independent for this delta.
//   kSource     — the maintenance expression references a base relation
//                 (or no maintenance plan could be derived): the warehouse
//                 must re-query the source.
enum class MaintVerdict { kSelf, kComplement, kSource };

const char* MaintVerdictName(MaintVerdict verdict);  // "SELF" / ...

// A statically checkable promise about one (warehouse relation, base,
// delta kind) triple, with the specialized maintenance expressions it was
// proved from and a human-readable derivation chain.
struct SelfMaintCertificate {
  std::string relation;  // warehouse relation w (a view or complement)
  std::string base;      // updated base relation b
  DeltaKind kind = DeltaKind::kInsert;
  MaintVerdict verdict = MaintVerdict::kSource;

  // The plan's (Δ+w, Δ-w) with the inapplicable delta binding replaced by
  // the empty relation and the result simplified — exactly what the
  // engine would evaluate for a pure insert/delete batch. Null expressions
  // when w provably never changes under this delta.
  DeltaPair specialized;

  // Relation names the specialized pair still references (delta bindings
  // "ins:b"/"del:b" excluded — the reported update is an input, not a
  // read).
  std::vector<std::string> reads;

  // Human-readable derivation, one step per line.
  std::vector<std::string> derivation;

  std::string ToString() const;
};

// Certificates for every (warehouse relation, catalog base, delta kind)
// combination of a spec — the exhaustive grid the acceptance criteria ask
// for, |W| * |B| * 2 entries.
struct SelfMaintReport {
  std::vector<SelfMaintCertificate> certificates;

  const SelfMaintCertificate* Find(const std::string& relation,
                                   const std::string& base,
                                   DeltaKind kind) const;

  // The warehouse-wide verdict for a delta on `base`: the worst verdict of
  // any warehouse relation's certificate for it.
  MaintVerdict Overall(const std::string& base, DeltaKind kind) const;

  std::string ToString() const;
};

// Statically classifies maintenance for every triple. Never fails: when
// plan derivation itself fails, every certificate degrades to kSource with
// the error recorded in its derivation chain.
SelfMaintReport AnalyzeSelfMaintenance(const WarehouseSpec& spec);

}  // namespace dwc

#endif  // DWC_ANALYSIS_SELFMAINT_H_
