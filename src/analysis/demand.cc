#include "analysis/demand.h"

#include <algorithm>
#include <utility>

#include "algebra/predicate.h"
#include "algebra/rewriter.h"
#include "maintenance/plan.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Demanded attributes flowing top-down. `all` means "every column" without
// needing the node's schema (joins, unions and differences consume their
// operands whole; only a projection narrows demand).
struct DemandState {
  std::map<std::string, AttrSet> partial;
  std::set<std::string> full;
};

void Walk(const ExprRef& expr, bool all, const AttrSet& attrs,
          DemandState* state) {
  if (expr == nullptr) {
    return;
  }
  switch (expr->kind()) {
    case Expr::Kind::kBase:
      if (all) {
        state->full.insert(expr->base_name());
      } else {
        state->partial[expr->base_name()].insert(attrs.begin(), attrs.end());
      }
      return;
    case Expr::Kind::kEmpty:
      return;
    case Expr::Kind::kSelect: {
      if (all) {
        Walk(expr->child(), true, {}, state);
        return;
      }
      AttrSet needed = attrs;
      AttrSet pred = expr->predicate()->Attributes();
      needed.insert(pred.begin(), pred.end());
      Walk(expr->child(), false, needed, state);
      return;
    }
    case Expr::Kind::kProject: {
      // The projection reads exactly its attribute list, however much of
      // its own output is demanded.
      AttrSet kept(expr->attrs().begin(), expr->attrs().end());
      Walk(expr->child(), false, kept, state);
      return;
    }
    case Expr::Kind::kUnion:
      // Union-compatible branches: project[A](L ∪ R) = project[A](L) ∪
      // project[A](R), so demand passes through exactly. This is what lets
      // a narrow query see through the union-shaped inverses W⁻¹.
      Walk(expr->left(), all, attrs, state);
      Walk(expr->right(), all, attrs, state);
      return;
    case Expr::Kind::kJoin:
    case Expr::Kind::kDifference:
      // A join needs the join attributes even when they are not demanded
      // above, and a difference compares full tuples: consume both operands
      // whole (sound, coarse).
      Walk(expr->left(), true, {}, state);
      Walk(expr->right(), true, {}, state);
      return;
    case Expr::Kind::kRename: {
      if (all) {
        Walk(expr->child(), true, {}, state);
        return;
      }
      // Incoming names are post-rename; map back to the child's names.
      std::map<std::string, std::string> back;
      for (const auto& [from, to] : expr->renames()) {
        back.emplace(to, from);
      }
      AttrSet needed;
      for (const std::string& attr : attrs) {
        auto it = back.find(attr);
        needed.insert(it == back.end() ? attr : it->second);
      }
      Walk(expr->child(), false, needed, state);
      return;
    }
  }
}

}  // namespace

std::string ComplementUsageReport::ToString() const {
  std::string out;
  for (const auto& [name, attrs] : demanded) {
    out += StrCat(name, ": reads {", Join(attrs, ", "), "}");
    auto dead = dead_columns.find(name);
    if (dead != dead_columns.end()) {
      out += StrCat(", dead {", Join(dead->second, ", "), "}");
    }
    out += "\n";
  }
  for (const std::string& name : dead_relations) {
    out += StrCat(name, ": never read\n");
  }
  return out;
}

ComplementUsageReport AnalyzeComplementUsage(
    const WarehouseSpec& spec, const std::vector<ExprRef>& queries) {
  ComplementUsageReport report;
  if (spec.complements().empty()) {
    return report;
  }

  std::set<std::string> view_names;
  for (const ViewDef& view : spec.views()) {
    view_names.insert(view.name);
  }

  DemandState state;
  Result<MaintenancePlan> plan = DeriveMaintenancePlan(spec);
  if (!plan.ok()) {
    // Without a plan there is no sound demand set; claim everything is
    // read so no complement is flagged spuriously.
    for (const ViewDef& complement : spec.complements()) {
      state.full.insert(complement.name);
    }
  } else {
    for (const auto& [relation, per_base] : plan->entries()) {
      if (view_names.count(relation) == 0) {
        continue;  // Complement self-upkeep is not a reason to keep it.
      }
      for (const auto& [base, pair] : per_base) {
        Walk(pair.plus, true, {}, &state);
        Walk(pair.minus, true, {}, &state);
      }
    }
  }
  for (const ExprRef& query : queries) {
    if (query == nullptr) {
      continue;
    }
    Walk(SubstituteNames(query, spec.inverses()), true, {}, &state);
  }

  for (const ViewDef& complement : spec.complements()) {
    const Schema* schema = spec.FindWarehouseSchema(complement.name);
    AttrSet columns = schema != nullptr ? schema->attr_names() : AttrSet{};

    AttrSet demanded;
    if (state.full.count(complement.name) > 0) {
      demanded = columns;
    } else {
      auto it = state.partial.find(complement.name);
      if (it != state.partial.end()) {
        std::set_intersection(it->second.begin(), it->second.end(),
                              columns.begin(), columns.end(),
                              std::inserter(demanded, demanded.begin()));
      }
    }
    if (demanded.empty()) {
      report.dead_relations.push_back(complement.name);
      continue;
    }
    AttrSet dead;
    std::set_difference(columns.begin(), columns.end(), demanded.begin(),
                        demanded.end(), std::inserter(dead, dead.begin()));
    report.demanded[complement.name] = std::move(demanded);
    if (!dead.empty()) {
      report.dead_columns[complement.name] = std::move(dead);
    }
  }
  return report;
}

}  // namespace dwc
