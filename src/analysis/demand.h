#ifndef DWC_ANALYSIS_DEMAND_H_
#define DWC_ANALYSIS_DEMAND_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "core/warehouse_spec.h"
#include "relational/schema.h"

namespace dwc {

// Which complement relations (and which of their columns) any consumer can
// ever read. Consumers are the maintenance expressions of the *user* views
// (complement self-upkeep does not count — a complement reading itself is
// not a reason to keep it) and warehouse queries translated through W⁻¹.
// A complement column nothing demands is dead weight; a complement relation
// nothing demands at all is an over-complement: the views are maintainable
// and queryable without it — the Section 4 closing remark (selection-only
// views need no complement) is the canonical way this arises.
struct ComplementUsageReport {
  // Complement relation -> columns some consumer reads.
  std::map<std::string, AttrSet> demanded;
  // Complement relation -> columns *no* consumer reads (only relations
  // with at least one dead column and at least one live one appear; fully
  // dead relations are listed below instead).
  std::map<std::string, AttrSet> dead_columns;
  // Complement relations with no consumer at all.
  std::vector<std::string> dead_relations;

  std::string ToString() const;
};

// Runs the top-down demanded-attributes analysis over the spec's
// maintenance plan and the given warehouse queries (expressions over base
// relation names, translated through the spec's inverses before analysis).
ComplementUsageReport AnalyzeComplementUsage(
    const WarehouseSpec& spec, const std::vector<ExprRef>& queries);

}  // namespace dwc

#endif  // DWC_ANALYSIS_DEMAND_H_
