#include "analysis/analyzer.h"

#include <utility>

namespace dwc {

bool IsClaimedComplementName(const std::string& name) {
  const std::string& prefix = ComplementOptions().name_prefix;
  return name.size() > prefix.size() &&
         name.compare(0, prefix.size(), prefix) == 0;
}

AnalysisResult AnalyzeWarehouse(const AnalysisInput& input) {
  AnalysisResult result;
  for (const ViewDef& view : input.views) {
    if (IsClaimedComplementName(view.name)) {
      result.claimed_complements.push_back(view);
    } else {
      result.user_views.push_back(view);
    }
  }

  if (input.catalog == nullptr) {
    result.spec_error = "no catalog";
    return result;
  }

  result.invertibility = CheckInvertibility(
      *input.catalog, result.user_views, result.claimed_complements);

  Result<WarehouseSpec> spec =
      SpecifyWarehouse(input.catalog, result.user_views);
  if (!spec.ok()) {
    result.spec_error = std::string(spec.status().message());
    return result;
  }
  result.spec.emplace(std::move(*spec));
  result.selfmaint = AnalyzeSelfMaintenance(*result.spec);
  result.usage = AnalyzeComplementUsage(*result.spec, input.queries);
  return result;
}

}  // namespace dwc
