#include "analysis/facts.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace dwc {

namespace {

AttrSet Intersect(const AttrSet& a, const AttrSet& b) {
  AttrSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

bool Contains(const AttrSet& big, const AttrSet& small) {
  return std::includes(big.begin(), big.end(), small.begin(), small.end());
}

void MergeDropped(const std::map<std::string, AttrSet>& from,
                  std::map<std::string, AttrSet>* into) {
  for (const auto& [base, attrs] : from) {
    (*into)[base].insert(attrs.begin(), attrs.end());
  }
}

AttrSet RenameAttrSet(const AttrSet& attrs,
                      const std::map<std::string, std::string>& renames) {
  AttrSet out;
  for (const std::string& attr : attrs) {
    auto it = renames.find(attr);
    out.insert(it == renames.end() ? attr : it->second);
  }
  return out;
}

void AddKey(AttrSet key, std::set<AttrSet>* keys) {
  if (keys->size() < DataflowAnalyzer::kMaxKeysPerNode) {
    keys->insert(std::move(key));
  }
}

}  // namespace

std::string NodeFacts::ToString() const {
  std::string out = StrCat("attrs={", Join(attrs, ", "), "}");
  for (const auto& [base, visible] : provenance) {
    out += StrCat(" ", base, "->{", Join(visible, ", "), "}");
  }
  for (const AttrSet& key : keys) {
    out += StrCat(" key{", Join(key, ", "), "}");
  }
  if (!total_bases.empty()) {
    out += StrCat(" total{", Join(total_bases, ", "), "}");
  }
  if (!sources.empty()) {
    out += StrCat(" reads{", Join(sources, ", "), "}");
  }
  return out;
}

const NodeFacts& DataflowAnalyzer::Analyze(const ExprRef& expr) {
  auto it = memo_.find(expr.get());
  if (it != memo_.end()) {
    return it->second;
  }
  NodeFacts facts = Compute(expr);
  return memo_.emplace(expr.get(), std::move(facts)).first->second;
}

NodeFacts DataflowAnalyzer::ComputeBase(const std::string& name) {
  NodeFacts facts;
  const Schema* schema = catalog_->FindSchema(name);
  if (schema == nullptr) {
    // A name the catalog does not know (a view reference, a delta binding,
    // an interned warehouse relation): no attribute-level facts, and no
    // delta provenance — only catalog bases can receive source updates.
    return facts;
  }
  facts.attrs = schema->attr_names();
  facts.provenance[name] = facts.attrs;
  // Set semantics: the full attribute set trivially determines the tuple.
  AddKey(facts.attrs, &facts.keys);
  if (std::optional<KeyConstraint> key = catalog_->FindKey(name)) {
    AddKey(key->attrs, &facts.keys);
  }
  facts.total_bases.insert(name);
  facts.sources.insert(name);
  return facts;
}

NodeFacts DataflowAnalyzer::ComputeJoin(const NodeFacts& left,
                                        const NodeFacts& right) {
  NodeFacts facts;
  facts.attrs = left.attrs;
  facts.attrs.insert(right.attrs.begin(), right.attrs.end());
  AttrSet common = Intersect(left.attrs, right.attrs);

  facts.provenance = left.provenance;
  for (const auto& [base, attrs] : right.provenance) {
    facts.provenance[base].insert(attrs.begin(), attrs.end());
  }

  // FD closure through the natural join: k_l ∪ k_r always keys the output;
  // k_l alone does when the join attributes contain a key of the right
  // operand (each left tuple then matches at most one right tuple), and
  // symmetrically.
  bool right_keyed_by_common = false;
  for (const AttrSet& key : right.keys) {
    right_keyed_by_common = right_keyed_by_common || Contains(common, key);
  }
  bool left_keyed_by_common = false;
  for (const AttrSet& key : left.keys) {
    left_keyed_by_common = left_keyed_by_common || Contains(common, key);
  }
  for (const AttrSet& kl : left.keys) {
    if (right_keyed_by_common) {
      AddKey(kl, &facts.keys);
    }
    for (const AttrSet& kr : right.keys) {
      AttrSet both = kl;
      both.insert(kr.begin(), kr.end());
      AddKey(std::move(both), &facts.keys);
    }
  }
  if (left_keyed_by_common) {
    for (const AttrSet& kr : right.keys) {
      AddKey(kr, &facts.keys);
    }
  }

  // Referential integrity makes a join total (Example 2.3): a base b total
  // on one side stays total when an inclusion dependency guarantees every
  // one of its tuples finds a partner — the join attributes sit inside a
  // common-attribute IND from b into a base the other side is total on.
  auto total_through = [this, &common](const std::string& base,
                                       const NodeFacts& self,
                                       const NodeFacts& other) {
    if (common.empty()) {
      return !other.attrs.empty() || !other.total_bases.empty();
    }
    auto prov = self.provenance.find(base);
    if (prov == self.provenance.end() || !Contains(prov->second, common)) {
      return false;
    }
    for (const InclusionDependency& ind : catalog_->inclusions()) {
      if (!ind.IsCommonAttrForm() || ind.lhs_relation != base) {
        continue;
      }
      AttrSet lhs(ind.lhs_attrs.begin(), ind.lhs_attrs.end());
      if (!Contains(lhs, common)) {
        continue;
      }
      if (other.total_bases.count(ind.rhs_relation) == 0) {
        continue;
      }
      auto other_prov = other.provenance.find(ind.rhs_relation);
      if (other_prov != other.provenance.end() &&
          Contains(other_prov->second, common)) {
        return true;
      }
    }
    return false;
  };
  for (const std::string& base : left.total_bases) {
    if (total_through(base, left, right)) {
      facts.total_bases.insert(base);
    }
  }
  for (const std::string& base : right.total_bases) {
    if (total_through(base, right, left)) {
      facts.total_bases.insert(base);
    }
  }

  facts.sources = left.sources;
  facts.sources.insert(right.sources.begin(), right.sources.end());
  facts.dropped = left.dropped;
  MergeDropped(right.dropped, &facts.dropped);
  return facts;
}

NodeFacts DataflowAnalyzer::Compute(const ExprRef& expr) {
  switch (expr->kind()) {
    case Expr::Kind::kBase:
      return ComputeBase(expr->base_name());
    case Expr::Kind::kEmpty: {
      NodeFacts facts;
      facts.attrs = expr->empty_schema().attr_names();
      AddKey(facts.attrs, &facts.keys);
      return facts;
    }
    case Expr::Kind::kSelect: {
      NodeFacts facts = Analyze(expr->child());
      // A selection can drop any subset of tuples: totality is gone, but
      // visibility, keys and provenance carry over unchanged.
      facts.total_bases.clear();
      return facts;
    }
    case Expr::Kind::kProject: {
      const NodeFacts& child = Analyze(expr->child());
      NodeFacts facts;
      AttrSet kept(expr->attrs().begin(), expr->attrs().end());
      facts.attrs = Intersect(kept, child.attrs);
      if (child.attrs.empty()) {
        facts.attrs = kept;  // Child unknown; trust the projection list.
      }
      for (const auto& [base, attrs] : child.provenance) {
        AttrSet visible = Intersect(attrs, facts.attrs);
        AttrSet lost;
        std::set_difference(attrs.begin(), attrs.end(), facts.attrs.begin(),
                            facts.attrs.end(),
                            std::inserter(lost, lost.begin()));
        if (!visible.empty()) {
          facts.provenance[base] = std::move(visible);
        }
        if (!lost.empty()) {
          facts.dropped[base].insert(lost.begin(), lost.end());
        }
      }
      for (const AttrSet& key : child.keys) {
        if (Contains(facts.attrs, key)) {
          AddKey(key, &facts.keys);
        }
      }
      AddKey(facts.attrs, &facts.keys);
      facts.total_bases = child.total_bases;
      facts.sources = child.sources;
      MergeDropped(child.dropped, &facts.dropped);
      return facts;
    }
    case Expr::Kind::kJoin:
      return ComputeJoin(Analyze(expr->left()), Analyze(expr->right()));
    case Expr::Kind::kUnion: {
      const NodeFacts& left = Analyze(expr->left());
      const NodeFacts& right = Analyze(expr->right());
      NodeFacts facts;
      facts.attrs = left.attrs;
      facts.attrs.insert(right.attrs.begin(), right.attrs.end());
      // An output tuple may descend from either branch, so an attribute is
      // reliably b-sourced only when both branches agree.
      for (const auto& [base, attrs] : left.provenance) {
        auto it = right.provenance.find(base);
        if (it == right.provenance.end()) {
          continue;
        }
        AttrSet both = Intersect(attrs, it->second);
        if (!both.empty()) {
          facts.provenance[base] = std::move(both);
        }
      }
      AddKey(facts.attrs, &facts.keys);
      facts.total_bases = left.total_bases;
      facts.total_bases.insert(right.total_bases.begin(),
                               right.total_bases.end());
      facts.sources = left.sources;
      facts.sources.insert(right.sources.begin(), right.sources.end());
      facts.dropped = left.dropped;
      MergeDropped(right.dropped, &facts.dropped);
      return facts;
    }
    case Expr::Kind::kDifference: {
      const NodeFacts& left = Analyze(expr->left());
      const NodeFacts& right = Analyze(expr->right());
      NodeFacts facts = left;
      // The subtrahend can remove any subset: totality is lost; the output
      // is a subset of the left operand, so keys and provenance survive.
      facts.total_bases.clear();
      facts.sources.insert(right.sources.begin(), right.sources.end());
      MergeDropped(right.dropped, &facts.dropped);
      return facts;
    }
    case Expr::Kind::kRename: {
      const NodeFacts& child = Analyze(expr->child());
      const std::map<std::string, std::string>& renames = expr->renames();
      NodeFacts facts;
      facts.attrs = RenameAttrSet(child.attrs, renames);
      for (const auto& [base, attrs] : child.provenance) {
        facts.provenance[base] = RenameAttrSet(attrs, renames);
      }
      for (const AttrSet& key : child.keys) {
        AddKey(RenameAttrSet(key, renames), &facts.keys);
      }
      facts.total_bases = child.total_bases;
      facts.sources = child.sources;
      for (const auto& [base, attrs] : child.dropped) {
        facts.dropped[base] = attrs;  // Dropped attrs keep original names.
      }
      return facts;
    }
  }
  return NodeFacts();
}

NodeFacts AnalyzeFacts(const ExprRef& expr, const Catalog& catalog) {
  DataflowAnalyzer analyzer(&catalog);
  return analyzer.Analyze(expr);
}

}  // namespace dwc
