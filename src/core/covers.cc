#include "core/covers.h"

#include <algorithm>
#include <set>

namespace dwc {

namespace {

// True if removing any single member of `cover` leaves `target` uncovered.
bool IsMinimalCover(const std::vector<CoverCandidate>& candidates,
                    const Cover& cover, const AttrSet& target) {
  for (size_t skip : cover) {
    AttrSet covered;
    for (size_t idx : cover) {
      if (idx == skip) {
        continue;
      }
      covered.insert(candidates[idx].attrs.begin(),
                     candidates[idx].attrs.end());
    }
    bool still_covers = true;
    for (const std::string& attr : target) {
      if (covered.find(attr) == covered.end()) {
        still_covers = false;
        break;
      }
    }
    if (still_covers) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Cover> EnumerateMinimalCovers(
    const std::vector<CoverCandidate>& candidates, const AttrSet& target,
    size_t max_covers) {
  std::vector<Cover> covers;
  std::set<Cover> seen;

  // Branch on the first uncovered attribute: every cover must contain some
  // candidate providing it. This visits every minimal cover (possibly some
  // non-minimal ones, filtered below).
  std::vector<size_t> chosen;
  auto recurse = [&](auto&& self, const AttrSet& uncovered) -> void {
    if (covers.size() >= max_covers) {
      return;
    }
    if (uncovered.empty()) {
      Cover cover = chosen;
      std::sort(cover.begin(), cover.end());
      if (IsMinimalCover(candidates, cover, target) &&
          seen.insert(cover).second) {
        covers.push_back(std::move(cover));
      }
      return;
    }
    const std::string& attr = *uncovered.begin();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (covers.size() >= max_covers) {
        return;
      }
      if (std::find(chosen.begin(), chosen.end(), i) != chosen.end()) {
        continue;
      }
      if (candidates[i].attrs.find(attr) == candidates[i].attrs.end()) {
        continue;
      }
      AttrSet remaining;
      for (const std::string& a : uncovered) {
        if (candidates[i].attrs.find(a) == candidates[i].attrs.end()) {
          remaining.insert(a);
        }
      }
      chosen.push_back(i);
      self(self, remaining);
      chosen.pop_back();
    }
  };
  recurse(recurse, target);
  return covers;
}

}  // namespace dwc
