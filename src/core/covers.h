#ifndef DWC_CORE_COVERS_H_
#define DWC_CORE_COVERS_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "relational/schema.h"

namespace dwc {

// One member of V^ind_{K_j}: either a warehouse view containing R_j's key, or
// an inclusion-dependency-derived fragment pi_X(R_i) (Theorem 2.2).
struct CoverCandidate {
  // Display label, e.g. "V1" or "project[A, B](R3)".
  std::string label;
  // The candidate's expression. For view candidates this is the view name
  // reference; for IND candidates pi_X(R_i) over the *base* name (the
  // complement machinery substitutes R_i's inverse when building W^-1).
  ExprRef expr;
  // The attributes of R_j this candidate contributes (already intersected
  // with attr(R_j)).
  AttrSet attrs;
  // True for pi_X(R_i) candidates derived from an inclusion dependency.
  bool from_ind = false;
};

// A cover: indices into the candidate vector.
using Cover = std::vector<size_t>;

// Enumerates the covers of `target` (Theorem 2.2): subsets Y of `candidates`
// such that every attribute of `target` appears in some member of Y, and Y
// is minimal with that property. Enumeration stops after `max_covers`
// results (the count can be exponential; bench/bench_covers.cc measures it).
// Returns covers with ascending indices, deduplicated.
std::vector<Cover> EnumerateMinimalCovers(
    const std::vector<CoverCandidate>& candidates, const AttrSet& target,
    size_t max_covers);

}  // namespace dwc

#endif  // DWC_CORE_COVERS_H_
