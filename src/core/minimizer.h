#ifndef DWC_CORE_MINIMIZER_H_
#define DWC_CORE_MINIMIZER_H_

#include <string>
#include <vector>

#include "algebra/view.h"
#include "relational/catalog.h"
#include "util/result.h"
#include "util/rng.h"

namespace dwc {

// Section 6 lists as future work the relaxation that complements need not
// carry base-relation schemas: Example 2.2 exhibits a smaller complement
// for a warehouse of projection fragments. This module implements that
// construction for the shape the paper demonstrates — a single base
// relation R covered by two projection fragments pi_{Y1}(R), pi_{Y2}(R)
// (with Y1 ∪ Y2 = attr(R)) plus any number of selection views sigma_P(R):
//
//   C' = (R |x| pi_{Y1}((F1 |x| F2) \ R)) \ (S1 ∪ ... ∪ Sm)
//   R  = C' ∪ S* ∪ ((F1 \ pi_{Y1}(C' ∪ S*)) |x| (F2 \ pi_{Y2}(C' ∪ S*)))
//
// where S* = S1 ∪ ... ∪ Sm (empty union ⇒ the empty relation).
//
// REPRODUCTION FINDING (see EXPERIMENTS.md): the paper's recomputation
// identity is *refutable as stated*. On
//   R = {(1,1,1), (2,0,1), (2,0,2), (2,1,1), (3,0,1)}   (V3: B = 1)
// the spurious join tuple (3,0,2) puts (3,0,1) into C'; the reconstruction
// then removes the shared BC-fragment (0,1) from V2 and loses (2,0,1),
// which is unambiguous but shares a fragment with a C' tuple. The identity
// *does* hold when the fragment overlap Y1 ∩ Y2 is a declared key of R
// (lossless join: no spurious tuples, and shared fragments imply equal
// tuples). The construction is therefore returned together with the result
// of randomized validation — the caller decides what to trust.
struct ReducedComplement {
  // The reduced complement C' (expression over {R} ∪ view names).
  ViewDef complement;
  // Reconstruction of R over {C'.name} ∪ view names.
  ExprRef reconstruction;
  // True if no refuting state was found in `validation_rounds` random
  // states (which respect R's declared key, if any).
  bool validated = false;
  // A printable refuting state when !validated.
  std::string counterexample;
};

Result<ReducedComplement> TryProjectionFragmentComplement(
    const std::vector<ViewDef>& views, const Catalog& catalog,
    const std::string& complement_name, Rng* rng,
    int validation_rounds = 200);

}  // namespace dwc

#endif  // DWC_CORE_MINIMIZER_H_
