#ifndef DWC_CORE_COMPLEMENT_H_
#define DWC_CORE_COMPLEMENT_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/view.h"
#include "core/psj.h"
#include "relational/catalog.h"
#include "util/result.h"

namespace dwc {

// Options for ComputeComplement().
struct ComplementOptions {
  // When false, keys and inclusion dependencies are ignored and the result
  // is exactly Proposition 2.2 (one complement per base, no covers). When
  // true, Theorem 2.2 applies.
  bool use_constraints = true;
  // Cap on the number of covers enumerated per base relation.
  size_t max_covers = 256;
  // Complement view names are prefix + base name.
  std::string name_prefix = "C_";
};

// Everything the construction derives for one base relation R_i.
struct BaseComplementInfo {
  std::string base;
  std::string complement_name;
  // Defining expression of C_i over {base relations} ∪ {view names}:
  //   C_i = R_i \ (R̂_i ∪ R̂_i^ir)          (Equation (3); Equation (1) when
  //                                         constraints are off)
  // An Empty node when the complement is provably always empty.
  ExprRef complement_def;
  // True when static analysis shows C_i = ∅ for every database state
  // (lossless key covers, or total joins guaranteed by referential
  // integrity — Examples 2.3 and 2.4).
  bool provably_empty = false;
  // R̂_i over view names (Empty node when no view exposes all of attr(R_i)).
  ExprRef rhat;
  // R̂_i^ir over {view names} ∪ {base names} (Empty when no covers). Base
  // references come from inclusion-dependency candidates.
  ExprRef rhat_ir;
  // Human-readable covers, e.g. {"V3", "project[A, B](R3)"}.
  std::vector<std::vector<std::string>> cover_labels;
  // Reconstruction of R_i over warehouse names only (Equation (2)/(4)):
  //   R_i = C_i ∪ R̂_i ∪ R̂_i^ir   with IND base references replaced by the
  // referenced relation's own inverse (acyclicity makes this well-founded).
  ExprRef inverse;
};

// The complement C of a warehouse V, per Proposition 2.2 / Theorem 2.2.
struct ComplementResult {
  // Per base relation, in IND-topological order.
  std::vector<BaseComplementInfo> per_base;
  // The complement views to materialize (provably empty ones are omitted;
  // the inverse expressions already account for them).
  std::vector<ViewDef> complements;
  // base relation name -> reconstruction expression over warehouse names.
  std::map<std::string, ExprRef> inverses;

  const BaseComplementInfo* FindBase(const std::string& base) const;
};

// Computes a complement of `views` (PSJ views over `catalog`) together with
// the inverse mapping W^-1. This is Step 1 of the Section 5 algorithm.
Result<ComplementResult> ComputeComplement(const std::vector<ViewDef>& views,
                                           const Catalog& catalog,
                                           const ComplementOptions& options =
                                               ComplementOptions());

}  // namespace dwc

#endif  // DWC_CORE_COMPLEMENT_H_
