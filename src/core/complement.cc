#include "core/complement.h"

#include <algorithm>

#include "algebra/rewriter.h"
#include "algebra/simplifier.h"
#include "core/covers.h"
#include "util/string_util.h"

namespace dwc {

const BaseComplementInfo* ComplementResult::FindBase(
    const std::string& base) const {
  for (const BaseComplementInfo& info : per_base) {
    if (info.base == base) {
      return &info;
    }
  }
  return nullptr;
}

namespace {

bool IsEmptyNode(const ExprRef& expr) {
  return expr != nullptr && expr->kind() == Expr::Kind::kEmpty;
}

// Union of `terms` with structural deduplication; Empty(schema) if none.
ExprRef UnionOfTerms(std::vector<ExprRef> terms, const Schema& schema) {
  std::vector<ExprRef> unique;
  for (ExprRef& term : terms) {
    if (IsEmptyNode(term)) {
      continue;
    }
    bool duplicate = false;
    for (const ExprRef& existing : unique) {
      if (existing->Equals(*term)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      unique.push_back(std::move(term));
    }
  }
  if (unique.empty()) {
    return Expr::Empty(schema);
  }
  return Expr::UnionAll(unique);
}

bool PredicateIsTrue(const PredicateRef& predicate) {
  return predicate->kind() == Predicate::Kind::kTrue;
}

// True if `view` is a pure projection of `base` alone (no other bases, no
// selection). Such views are lossless fragments of `base`.
bool IsPureFragmentOf(const PsjView& view, const std::string& base) {
  return view.bases.size() == 1 && view.bases[0] == base &&
         PredicateIsTrue(view.predicate);
}

// Sufficient static test that every tuple of `base` participates in the join
// of `view` (so pi_{attr(base)}(view) == base and the complement term
// vanishes — Example 2.4, star schemata in Section 5).
//
// Greedy closure: starting from J = {base}, repeatedly absorb a base M whose
// *entire* set of attributes shared with the other bases of the view is
// shared with a single already-absorbed base P and an inclusion dependency
// pi_S(P) <= pi_S(M) covers exactly those attributes. Then pi_S(join so far)
// is a subset of pi_S(P) is a subset of pi_S(M): adding M loses no tuples.
// This is sufficient, not necessary; complements that are empty for deeper
// reasons are still computed, just not statically dropped.
bool JoinIsTotalForBase(const PsjView& view, const std::string& base,
                        const Catalog& catalog) {
  if (!PredicateIsTrue(view.predicate)) {
    return false;
  }
  if (view.bases.size() == 1) {
    return true;
  }
  std::set<std::string> absorbed = {base};
  std::vector<std::string> pending;
  for (const std::string& other : view.bases) {
    if (other != base) {
      pending.push_back(other);
    }
  }
  auto shared_attrs = [&catalog](const std::string& a, const std::string& b) {
    AttrSet result;
    const Schema* sa = catalog.FindSchema(a);
    const Schema* sb = catalog.FindSchema(b);
    for (const Attribute& attr : sa->attributes()) {
      if (sb->Contains(attr.name)) {
        result.insert(attr.name);
      }
    }
    return result;
  };
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      const std::string& m = pending[i];
      // All attributes M shares with any other base of the view.
      AttrSet shared_with_all;
      for (const std::string& other : view.bases) {
        if (other == m) {
          continue;
        }
        AttrSet s = shared_attrs(other, m);
        shared_with_all.insert(s.begin(), s.end());
      }
      // Look for an absorbed P with an IND pi_S(P) <= pi_S(M) where S covers
      // all shared attributes.
      bool ok = false;
      for (const std::string& p : absorbed) {
        for (const InclusionDependency& ind : catalog.inclusions()) {
          if (!ind.IsCommonAttrForm()) {
            continue;
          }
          if (ind.lhs_relation != p || ind.rhs_relation != m) {
            continue;
          }
          AttrSet ind_attrs(ind.lhs_attrs.begin(), ind.lhs_attrs.end());
          if (ind_attrs == shared_with_all) {
            ok = true;
            break;
          }
        }
        if (ok) {
          break;
        }
      }
      if (ok) {
        absorbed.insert(m);
        pending.erase(pending.begin() + i);
        progress = true;
        break;
      }
    }
  }
  return pending.empty();
}

}  // namespace

Result<ComplementResult> ComputeComplement(const std::vector<ViewDef>& views,
                                           const Catalog& catalog,
                                           const ComplementOptions& options) {
  DWC_ASSIGN_OR_RETURN(std::vector<PsjView> psj_views,
                       AnalyzeAllPsj(views, catalog));

  ComplementResult result;
  std::map<std::string, ExprRef> inverse_so_far;

  for (const std::string& base : catalog.IndTopologicalOrder()) {
    const Schema& schema = *catalog.FindSchema(base);
    BaseComplementInfo info;
    info.base = base;
    info.complement_name = options.name_prefix + base;

    // --- R̂_i: union of pi_{R_i}(V_j) over views exposing all of attr(R_i).
    std::vector<ExprRef> rhat_terms;
    bool provably_empty = false;
    for (const PsjView& view : psj_views) {
      if (!view.InvolvesBase(base)) {
        continue;
      }
      ExprRef term = ProjectOntoSchema(Expr::Base(view.name), view.attrs,
                                       schema);
      if (IsEmptyNode(term)) {
        continue;
      }
      rhat_terms.push_back(std::move(term));
      // pi_{R_i}(V_j) == R_i when the join is total for R_i and nothing is
      // selected away: the complement term is then always empty.
      if (options.use_constraints &&
          JoinIsTotalForBase(view, base, catalog)) {
        provably_empty = true;
      }
      if (IsPureFragmentOf(view, base) && view.attrs == schema.attr_names()) {
        provably_empty = true;  // The view is a verbatim copy of R_i.
      }
    }
    info.rhat = UnionOfTerms(rhat_terms, schema);

    // --- Covers and R̂_i^ir (only with constraints and a declared key).
    std::vector<ExprRef> rhat_ir_terms;          // Over views ∪ bases.
    std::vector<ExprRef> rhat_ir_inverse_terms;  // Base refs substituted.
    std::optional<KeyConstraint> key =
        options.use_constraints ? catalog.FindKey(base) : std::nullopt;
    if (key.has_value()) {
      std::vector<CoverCandidate> candidates;
      // View candidates: views over R_i whose schema contains the key.
      for (const PsjView& view : psj_views) {
        if (!view.InvolvesBase(base)) {
          continue;
        }
        bool has_key = true;
        for (const std::string& attr : key->attrs) {
          if (view.attrs.find(attr) == view.attrs.end()) {
            has_key = false;
            break;
          }
        }
        if (!has_key) {
          continue;
        }
        CoverCandidate candidate;
        candidate.label = view.name;
        candidate.expr = Expr::Base(view.name);
        for (const std::string& attr : view.attrs) {
          if (schema.Contains(attr)) {
            candidate.attrs.insert(attr);
          }
        }
        candidates.push_back(std::move(candidate));
      }
      // IND candidates: pi_X(R_k) for pi_X(R_k) <= pi_X(R_i) with key <= X.
      // General (renaming) INDs — footnote 3 — contribute
      // rho_{lhs->rhs}(pi_{lhs}(R_k)), whose schema lies inside attr(R_i).
      for (const InclusionDependency& ind : catalog.inclusions()) {
        if (ind.rhs_relation != base) {
          continue;
        }
        AttrSet x(ind.rhs_attrs.begin(), ind.rhs_attrs.end());
        bool has_key = true;
        for (const std::string& attr : key->attrs) {
          if (x.find(attr) == x.end()) {
            has_key = false;
            break;
          }
        }
        if (!has_key) {
          continue;
        }
        CoverCandidate candidate;
        candidate.expr =
            Expr::Project(ind.lhs_attrs, Expr::Base(ind.lhs_relation));
        if (!ind.IsCommonAttrForm()) {
          std::map<std::string, std::string> renames;
          for (size_t i = 0; i < ind.lhs_attrs.size(); ++i) {
            if (ind.lhs_attrs[i] != ind.rhs_attrs[i]) {
              renames[ind.lhs_attrs[i]] = ind.rhs_attrs[i];
            }
          }
          candidate.expr = Expr::Rename(std::move(renames), candidate.expr);
        }
        candidate.label = candidate.expr->ToString();
        candidate.attrs = x;
        candidate.from_ind = true;
        candidates.push_back(std::move(candidate));
      }

      std::vector<Cover> covers = EnumerateMinimalCovers(
          candidates, schema.attr_names(), options.max_covers);
      for (const Cover& cover : covers) {
        std::vector<std::string> labels;
        std::vector<ExprRef> members;
        std::vector<ExprRef> inverse_members;
        bool all_pure_fragments = true;
        for (size_t idx : cover) {
          const CoverCandidate& candidate = candidates[idx];
          labels.push_back(candidate.label);
          members.push_back(candidate.expr);
          if (candidate.from_ind) {
            // Substitute the referenced base by its (already computed)
            // inverse; IND acyclicity guarantees availability.
            inverse_members.push_back(
                SubstituteNames(candidate.expr, inverse_so_far));
            all_pure_fragments = false;
          } else {
            inverse_members.push_back(candidate.expr);
            // Is this view a pure projection of `base` (lossless fragment)?
            const PsjView* view = nullptr;
            for (const PsjView& v : psj_views) {
              if (v.name == candidate.label) {
                view = &v;
                break;
              }
            }
            if (view == nullptr || !IsPureFragmentOf(*view, base)) {
              all_pure_fragments = false;
            }
          }
        }
        info.cover_labels.push_back(std::move(labels));
        std::vector<std::string> all_attrs;
        for (const Attribute& attr : schema.attributes()) {
          all_attrs.push_back(attr.name);
        }
        rhat_ir_terms.push_back(
            Expr::Project(all_attrs, Expr::JoinAll(members)));
        rhat_ir_inverse_terms.push_back(
            Expr::Project(all_attrs, Expr::JoinAll(inverse_members)));
        // A cover made purely of projection fragments of R_i reassembles
        // R_i exactly (lossless extension joins along the key, Theorem 2.2 /
        // Example 2.3): the complement is provably empty.
        if (all_pure_fragments) {
          provably_empty = true;
        }
      }
    }
    info.rhat_ir = UnionOfTerms(rhat_ir_terms, schema);
    info.provably_empty = provably_empty;

    // --- Complement definition: C_i = R_i \ (R̂_i ∪ R̂_i^ir).
    if (provably_empty) {
      info.complement_def = Expr::Empty(schema);
    } else {
      ExprRef known = UnionOfTerms({info.rhat, info.rhat_ir}, schema);
      if (IsEmptyNode(known)) {
        info.complement_def = Expr::Base(base);  // R_i \ ∅ = R_i.
      } else {
        info.complement_def = Expr::Difference(Expr::Base(base), known);
      }
    }

    // --- Inverse: R_i = C_i ∪ R̂_i ∪ R̂_i^ir over warehouse names.
    std::vector<ExprRef> inverse_terms;
    if (!provably_empty) {
      inverse_terms.push_back(Expr::Base(info.complement_name));
    }
    inverse_terms.push_back(info.rhat);
    for (ExprRef& term : rhat_ir_inverse_terms) {
      inverse_terms.push_back(std::move(term));
    }
    // Resolver-free simplification collapses the nested projections that
    // inverse substitution introduces (e.g. pi_X(pi_XY(V))).
    info.inverse = Simplify(UnionOfTerms(std::move(inverse_terms), schema));
    inverse_so_far[base] = info.inverse;

    result.per_base.push_back(std::move(info));
  }

  for (const BaseComplementInfo& info : result.per_base) {
    if (!info.provably_empty) {
      result.complements.push_back(
          ViewDef{info.complement_name, info.complement_def});
    }
    result.inverses[info.base] = info.inverse;
  }
  return result;
}

}  // namespace dwc
