#include "core/psj.h"

#include <algorithm>

#include "util/string_util.h"

namespace dwc {

bool PsjView::InvolvesBase(const std::string& base) const {
  return std::find(bases.begin(), bases.end(), base) != bases.end();
}

namespace {

// Collects the join tree below the project/select prefix: base relations
// joined in any shape, with selections allowed around any subtree (they
// commute up over natural joins). Appends bases and conjoins predicates.
Status CollectJoinTree(const ExprRef& expr, const Catalog& catalog,
                       std::vector<std::string>* bases,
                       PredicateRef* predicate) {
  switch (expr->kind()) {
    case Expr::Kind::kBase: {
      const std::string& name = expr->base_name();
      if (!catalog.HasRelation(name)) {
        return Status::NotFound(
            StrCat("PSJ view references '", name,
                   "' which is not a base relation of D"));
      }
      if (std::find(bases->begin(), bases->end(), name) != bases->end()) {
        return Status::Unimplemented(
            StrCat("base relation '", name,
                   "' joined twice; self-joins need rename support which the "
                   "paper's construction excludes"));
      }
      bases->push_back(name);
      return Status::Ok();
    }
    case Expr::Kind::kSelect: {
      *predicate = Predicate::And(*predicate, expr->predicate());
      return CollectJoinTree(expr->child(), catalog, bases, predicate);
    }
    case Expr::Kind::kJoin: {
      DWC_RETURN_IF_ERROR(
          CollectJoinTree(expr->left(), catalog, bases, predicate));
      return CollectJoinTree(expr->right(), catalog, bases, predicate);
    }
    default:
      return Status::InvalidArgument(
          StrCat("expression is not a PSJ view: unexpected ",
                 expr->ToString(), " below the join tree"));
  }
}

}  // namespace

Result<PsjView> AnalyzePsj(const ViewDef& view, const Catalog& catalog) {
  PsjView result;
  result.name = view.name;
  result.expr = view.expr;
  result.predicate = Predicate::True();

  // Walk the project/select prefix. The outermost projection determines Z;
  // deeper projections only matter through it (they must be supersets for
  // the expression to type-check at all).
  ExprRef node = view.expr;
  bool have_projection = false;
  AttrSet projection;
  while (true) {
    if (node->kind() == Expr::Kind::kProject) {
      AttrSet attrs(node->attrs().begin(), node->attrs().end());
      if (!have_projection) {
        projection = std::move(attrs);
        have_projection = true;
      }
      // Inner projections below an outer one must not hide attributes the
      // outer one needs; schema inference catches that. Nothing to record.
      node = node->child();
    } else if (node->kind() == Expr::Kind::kSelect) {
      result.predicate = Predicate::And(result.predicate, node->predicate());
      node = node->child();
    } else {
      break;
    }
  }

  DWC_RETURN_IF_ERROR(
      CollectJoinTree(node, catalog, &result.bases, &result.predicate));
  if (result.bases.empty()) {
    return Status::InvalidArgument(
        StrCat("view '", view.name, "' joins no base relations"));
  }

  // Full attribute set of the join.
  AttrSet full;
  for (const std::string& base : result.bases) {
    const Schema* schema = catalog.FindSchema(base);
    AttrSet names = schema->attr_names();
    full.insert(names.begin(), names.end());
  }

  if (have_projection) {
    for (const std::string& attr : projection) {
      if (full.find(attr) == full.end()) {
        return Status::InvalidArgument(
            StrCat("view '", view.name, "' projects unknown attribute '",
                   attr, "'"));
      }
    }
    result.attrs = std::move(projection);
  } else {
    result.attrs = full;
  }
  result.is_sj = result.attrs == full;

  // Predicate attributes must be visible in the join (they may be projected
  // away afterwards only if the selection sits below the projection, which
  // the prefix walk already ordered correctly; here we only check the join).
  for (const std::string& attr : result.predicate->Attributes()) {
    if (full.find(attr) == full.end()) {
      return Status::InvalidArgument(
          StrCat("view '", view.name, "' selects on unknown attribute '",
                 attr, "'"));
    }
  }
  return result;
}

Result<std::vector<PsjView>> AnalyzeAllPsj(const std::vector<ViewDef>& views,
                                           const Catalog& catalog) {
  std::vector<PsjView> analyzed;
  analyzed.reserve(views.size());
  for (const ViewDef& view : views) {
    DWC_ASSIGN_OR_RETURN(PsjView psj, AnalyzePsj(view, catalog));
    analyzed.push_back(std::move(psj));
  }
  return analyzed;
}

ExprRef ProjectOntoSchema(const ExprRef& source, const AttrSet& source_attrs,
                          const Schema& rel_schema) {
  std::vector<std::string> names;
  names.reserve(rel_schema.size());
  for (const Attribute& attr : rel_schema.attributes()) {
    if (source_attrs.find(attr.name) == source_attrs.end()) {
      return Expr::Empty(rel_schema);
    }
    names.push_back(attr.name);
  }
  return Expr::Project(std::move(names), source);
}

}  // namespace dwc
