#ifndef DWC_CORE_INDEPENDENCE_H_
#define DWC_CORE_INDEPENDENCE_H_

#include <map>
#include <set>
#include <string>

#include "algebra/expr.h"
#include "core/warehouse_spec.h"
#include "util/result.h"

namespace dwc {

// Section 6 raises the "degree of query independence" obtained when the
// warehouse stores *less* than a full complement — e.g. when some C_i is
// cheap to recompute at the source and is left virtual. This analysis
// answers: with only a subset of the warehouse relations materialized,
// which base relations stay reconstructible, and is a given query still
// answerable locally?
struct IndependenceReport {
  // The warehouse relations assumed materialized.
  std::set<std::string> available;
  // base relation -> whether its inverse uses only available relations.
  std::map<std::string, bool> base_reconstructible;
  // True iff every base relation is reconstructible (full query
  // independence, Theorem 3.1's setting).
  bool fully_query_independent = false;

  std::string ToString() const;
};

// Computes the report for `available` (names must be warehouse relations of
// `spec`; unknown names are ignored). Pass all of
// spec.AllWarehouseViews()'s names to describe the full warehouse.
IndependenceReport AnalyzeIndependence(const WarehouseSpec& spec,
                                       const std::set<std::string>& available);

// Convenience: the full-warehouse report.
IndependenceReport AnalyzeFullIndependence(const WarehouseSpec& spec);

// Sufficient test that `query` (over base relations and/or warehouse
// relations) is answerable from the available relations: every referenced
// base relation must be reconstructible and every referenced warehouse
// relation available. (Completeness would need view-based query answering
// — Levy et al. [16] — which is beyond the paper's construction; a `false`
// here means "not answerable by inverse substitution", not "provably
// unanswerable".)
bool QueryAnswerable(const Expr& query, const WarehouseSpec& spec,
                     const IndependenceReport& report);

// Goes one step beyond inverse substitution: rewrites `query` over the
// available relations, answering sigma_P(R) restrictions of a
// non-reconstructible base R from an available selection view sigma_Q(R)
// whenever P implies Q (algebra/implication.h):
//     sigma_P(R)  ->  sigma_P(V)        since P ⇒ Q makes the view lossless
//                                       for this restriction.
// Reconstructible bases use their inverses as usual. Fails with
// FailedPrecondition when some base reference cannot be covered either way.
// This realizes a concrete slice of Section 6's "degree of query
// independence" question.
Result<ExprRef> RewriteOverAvailable(const ExprRef& query,
                                     const WarehouseSpec& spec,
                                     const IndependenceReport& report);

}  // namespace dwc

#endif  // DWC_CORE_INDEPENDENCE_H_
