#ifndef DWC_CORE_ORDERING_H_
#define DWC_CORE_ORDERING_H_

#include <vector>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "algebra/view.h"
#include "util/result.h"

namespace dwc {

// Extensional view ordering on one database state (Definition 2.1 is a
// for-all-states property; these helpers decide it per state, and the
// property tests quantify over generated states).

// U(d) subseteq V(d)?
Result<bool> ViewLeqOnState(const ExprRef& u, const ExprRef& v,
                            const Environment& env);

// Pairwise comparison of two equally long view lists (the sets are compared
// under the given alignment, which for complements is the per-base pairing).
// Returns true iff U_i(d) subseteq V_i(d) for all i.
Result<bool> ViewsLeqOnState(const std::vector<ViewDef>& u,
                             const std::vector<ViewDef>& v,
                             const Environment& env);

// Total number of tuples across all views on this state; the size measure
// used by the complement-size benchmarks.
Result<size_t> TotalTuples(const std::vector<ViewDef>& views,
                           const Environment& env);

}  // namespace dwc

#endif  // DWC_CORE_ORDERING_H_
