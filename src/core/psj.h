#ifndef DWC_CORE_PSJ_H_
#define DWC_CORE_PSJ_H_

#include <string>
#include <vector>

#include "algebra/expr.h"
#include "algebra/predicate.h"
#include "algebra/view.h"
#include "relational/catalog.h"
#include "relational/schema.h"
#include "util/result.h"

namespace dwc {

// The normal form the paper assumes for warehouse views:
//   V = pi_Z( sigma_P( R_{i1} |x| ... |x| R_{ik} ) )
// over base relations of D. AnalyzePsj() recognizes expressions of this
// shape (also accepting selections pushed below joins, missing projections,
// missing selections and stacked project/select prefixes, all of which
// normalize into it) and extracts the parts.
struct PsjView {
  std::string name;
  // The original definition as written.
  ExprRef expr;
  // Base relations joined, in join order. Each base occurs at most once
  // (self-joins would need rename support, which the paper excludes).
  std::vector<std::string> bases;
  // Z: the visible attributes. Equal to the full join schema for SJ views.
  AttrSet attrs;
  // P: conjunction of all selection conditions (True when absent).
  PredicateRef predicate;
  // True if the final projection keeps every attribute (an "SJ view",
  // Theorem 2.1's minimality case).
  bool is_sj = false;

  bool InvolvesBase(const std::string& base) const;
};

// Validates and decomposes `view` against `catalog`. Fails if the expression
// uses operators outside PSJ (union, difference, rename), references unknown
// relations, joins a base twice, or nests projections under joins.
Result<PsjView> AnalyzePsj(const ViewDef& view, const Catalog& catalog);

// Convenience: analyzes all views, failing on the first offender.
Result<std::vector<PsjView>> AnalyzeAllPsj(const std::vector<ViewDef>& views,
                                           const Catalog& catalog);

// The paper's pi_{R}(V) convention: the projection of `source` (an
// expression whose output attributes are `source_attrs`) onto the schema of
// base relation `rel_schema` if all its attributes are visible, and the
// empty relation over that schema otherwise. Projection order follows
// `rel_schema`.
ExprRef ProjectOntoSchema(const ExprRef& source, const AttrSet& source_attrs,
                          const Schema& rel_schema);

}  // namespace dwc

#endif  // DWC_CORE_PSJ_H_
