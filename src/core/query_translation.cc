#include "core/query_translation.h"

#include "algebra/optimizer.h"
#include "algebra/rewriter.h"
#include "algebra/simplifier.h"
#include "util/string_util.h"

namespace dwc {

Result<ExprRef> TranslateQueryRaw(const ExprRef& query,
                                  const WarehouseSpec& spec) {
  for (const std::string& name : query->ReferencedNames()) {
    if (spec.FindInverse(name) == nullptr &&
        spec.FindWarehouseSchema(name) == nullptr) {
      return Status::NotFound(
          StrCat("query references '", name,
                 "', which is neither a base relation nor a warehouse view"));
    }
  }
  return SubstituteNames(query, spec.inverses());
}

Result<ExprRef> TranslateQuery(const ExprRef& query,
                               const WarehouseSpec& spec) {
  DWC_ASSIGN_OR_RETURN(ExprRef translated, TranslateQueryRaw(query, spec));
  SchemaResolver resolver = spec.WarehouseResolver();
  translated = Simplify(translated, &resolver);
  // Push selections toward the leaves so the evaluator can probe indexes
  // inside the (often large) inverse reconstructions.
  translated = PushDownSelections(translated, resolver);
  translated = Simplify(translated, &resolver);
  // Canonicalize through the spec's interner: repeated translations of the
  // same (or structurally overlapping) queries share nodes with each other
  // and with the maintenance machinery, which is what lets the warehouse's
  // subplan cache turn a repeated translated query against an unchanged
  // state into a pure cache hit.
  return spec.interner()->Intern(translated);
}

}  // namespace dwc
