#include "core/minimizer.h"

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "core/psj.h"
#include "util/string_util.h"

namespace dwc {

namespace {

// Random relation over `schema` with small domains so that fragment
// overlaps (the interesting case) occur often. Respects `key` (tuples
// violating it are skipped).
Relation RandomRelationFor(const Schema& schema,
                           const std::optional<KeyConstraint>& key, Rng* rng) {
  Relation rel(schema);
  std::vector<std::string> key_attrs;
  if (key.has_value()) {
    key_attrs.assign(key->attrs.begin(), key->attrs.end());
  }
  size_t n = rng->Below(8);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> values;
    for (const Attribute& attr : schema.attributes()) {
      switch (attr.type) {
        case ValueType::kInt:
          values.push_back(Value::Int(rng->Range(0, 3)));
          break;
        case ValueType::kDouble:
          values.push_back(
              Value::Double(static_cast<double>(rng->Range(0, 3))));
          break;
        case ValueType::kString:
          values.push_back(Value::String(StrCat("s", rng->Range(0, 3))));
          break;
        case ValueType::kNull:
          values.push_back(Value::Null());
          break;
      }
    }
    Tuple tuple(std::move(values));
    if (!key_attrs.empty()) {
      const Relation::Index& index = rel.GetIndex(key_attrs);
      Result<std::vector<size_t>> idx = rel.schema().IndicesOf(key_attrs);
      if (idx.ok() && index.find(tuple.Project(*idx)) != index.end()) {
        continue;  // Would violate the key.
      }
    }
    rel.Insert(std::move(tuple));
  }
  return rel;
}

}  // namespace

Result<ReducedComplement> TryProjectionFragmentComplement(
    const std::vector<ViewDef>& views, const Catalog& catalog,
    const std::string& complement_name, Rng* rng, int validation_rounds) {
  DWC_ASSIGN_OR_RETURN(std::vector<PsjView> analyzed,
                       AnalyzeAllPsj(views, catalog));

  // Classify: exactly one base relation; exactly two projection fragments;
  // any number of full-schema selection views.
  std::string base;
  const PsjView* frag1 = nullptr;
  const PsjView* frag2 = nullptr;
  std::vector<const PsjView*> selections;
  for (const PsjView& view : analyzed) {
    if (view.bases.size() != 1) {
      return Status::FailedPrecondition(
          "reduced-complement construction handles single-relation "
          "warehouses only (the Example 2.2 shape)");
    }
    if (base.empty()) {
      base = view.bases[0];
    } else if (base != view.bases[0]) {
      return Status::FailedPrecondition(
          "views span several base relations; Example 2.2's construction "
          "does not apply");
    }
    const Schema& schema = *catalog.FindSchema(view.bases[0]);
    bool full = view.attrs == schema.attr_names();
    bool has_selection = view.predicate->kind() != Predicate::Kind::kTrue;
    if (full && has_selection) {
      selections.push_back(&view);
    } else if (!full && !has_selection) {
      if (frag1 == nullptr) {
        frag1 = &view;
      } else if (frag2 == nullptr) {
        frag2 = &view;
      } else {
        return Status::FailedPrecondition(
            "more than two projection fragments; the demonstrated "
            "construction covers exactly two");
      }
    } else {
      return Status::FailedPrecondition(
          StrCat("view '", view.name,
                 "' is neither a pure projection fragment nor a selection "
                 "view"));
    }
  }
  if (frag1 == nullptr || frag2 == nullptr) {
    return Status::FailedPrecondition(
        "need two projection fragments for the reduced construction");
  }
  const Schema& schema = *catalog.FindSchema(base);
  // The fragments must jointly cover attr(R).
  AttrSet joint = frag1->attrs;
  joint.insert(frag2->attrs.begin(), frag2->attrs.end());
  if (joint != schema.attr_names()) {
    return Status::FailedPrecondition(
        "the two fragments do not cover all attributes of the base");
  }

  auto ordered = [&schema](const AttrSet& attrs) {
    std::vector<std::string> names;
    for (const Attribute& attr : schema.attributes()) {
      if (attrs.count(attr.name) > 0) {
        names.push_back(attr.name);
      }
    }
    return names;
  };
  std::vector<std::string> y1 = ordered(frag1->attrs);
  std::vector<std::string> y2 = ordered(frag2->attrs);

  // S* = union of the selection views (empty relation when none).
  ExprRef sel_union;
  if (selections.empty()) {
    sel_union = Expr::Empty(schema);
  } else {
    std::vector<ExprRef> names;
    for (const PsjView* view : selections) {
      names.push_back(Expr::Base(view->name));
    }
    sel_union = Expr::UnionAll(names);
  }

  // C' = (R |x| pi_{Y1}((F1 |x| F2) \ R)) \ S*.
  ExprRef spurious = Expr::Difference(
      Expr::Join(Expr::Base(frag1->name), Expr::Base(frag2->name)),
      Expr::Base(base));
  ExprRef complement_def = Expr::Difference(
      Expr::Join(Expr::Base(base), Expr::Project(y1, spurious)), sel_union);

  // R = C' ∪ S* ∪ ((F1 \ pi_{Y1}(C' ∪ S*)) |x| (F2 \ pi_{Y2}(C' ∪ S*))).
  ExprRef known = Expr::Union(Expr::Base(complement_name), sel_union);
  ExprRef reconstruction = Expr::Union(
      known,
      Expr::Join(Expr::Difference(Expr::Base(frag1->name),
                                  Expr::Project(y1, known)),
                 Expr::Difference(Expr::Base(frag2->name),
                                  Expr::Project(y2, known))));

  // Randomized validation of the reconstruction identity (states respect a
  // declared key, if any — the condition under which the identity is
  // actually sound; see the header comment).
  ReducedComplement result;
  result.complement = ViewDef{complement_name, complement_def};
  result.reconstruction = reconstruction;
  result.validated = true;
  std::optional<KeyConstraint> key = catalog.FindKey(base);
  for (int round = 0; round < validation_rounds; ++round) {
    Relation r = RandomRelationFor(schema, key, rng);
    Environment env;
    env.Bind(base, &r);
    std::vector<std::unique_ptr<Relation>> owned;
    for (const ViewDef& view : views) {
      DWC_ASSIGN_OR_RETURN(Relation rel, EvalExpr(*view.expr, env));
      owned.push_back(std::make_unique<Relation>(std::move(rel)));
      env.Bind(view.name, owned.back().get());
    }
    DWC_ASSIGN_OR_RETURN(Relation complement, EvalExpr(*complement_def, env));
    env.Bind(complement_name, &complement);
    DWC_ASSIGN_OR_RETURN(Relation rebuilt, EvalExpr(*reconstruction, env));
    if (!rebuilt.SameContentAs(r)) {
      result.validated = false;
      result.counterexample =
          StrCat("R = ", r.ToString(), ", rebuilt = ", rebuilt.ToString());
      break;
    }
  }
  return result;
}

}  // namespace dwc
