#ifndef DWC_CORE_QUERY_TRANSLATION_H_
#define DWC_CORE_QUERY_TRANSLATION_H_

#include "algebra/expr.h"
#include "core/warehouse_spec.h"
#include "util/result.h"

namespace dwc {

// Translates a query Q over the base relations D into the query
// Q̄ = Q ∘ W^-1 over the warehouse W = V ∪ C (Section 3, Steps 3-4):
// every base-relation reference is replaced by its inverse expression and
// the result is simplified. Theorem 3.1 guarantees Q(d) = Q̄(W(d)).
//
// Fails if Q references a relation that is neither a base relation with an
// inverse nor a warehouse relation.
Result<ExprRef> TranslateQuery(const ExprRef& query, const WarehouseSpec& spec);

// As above, without the final simplification pass (useful for inspecting the
// raw substitution).
Result<ExprRef> TranslateQueryRaw(const ExprRef& query,
                                  const WarehouseSpec& spec);

}  // namespace dwc

#endif  // DWC_CORE_QUERY_TRANSLATION_H_
