#ifndef DWC_CORE_WAREHOUSE_SPEC_H_
#define DWC_CORE_WAREHOUSE_SPEC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/interner.h"
#include "algebra/schema_inference.h"
#include "algebra/view.h"
#include "core/complement.h"
#include "relational/catalog.h"
#include "util/result.h"

namespace dwc {

// The output of Step 1 of the Section 5 algorithm: a warehouse definition
// W = V ∪ C together with the inverse mapping W^-1 and the schemas of all
// warehouse relations. Query translation (Section 3) and maintenance-plan
// derivation (Section 4) build on this.
class WarehouseSpec {
 public:
  WarehouseSpec(std::shared_ptr<const Catalog> catalog,
                std::vector<ViewDef> views, ComplementResult complement,
                std::map<std::string, Schema> warehouse_schemas);

  const Catalog& catalog() const { return *catalog_; }
  std::shared_ptr<const Catalog> catalog_ptr() const { return catalog_; }

  // The user-defined warehouse views V.
  const std::vector<ViewDef>& views() const { return views_; }
  // The computed complement C (provably empty members omitted).
  const std::vector<ViewDef>& complements() const {
    return complement_.complements;
  }
  // V ∪ C: everything the warehouse materializes.
  std::vector<ViewDef> AllWarehouseViews() const;

  const ComplementResult& complement() const { return complement_; }

  // W^-1: base relation name -> expression over warehouse view names.
  const std::map<std::string, ExprRef>& inverses() const {
    return complement_.inverses;
  }
  // nullptr when `base` is not a catalog relation.
  const ExprRef* FindInverse(const std::string& base) const;

  // Schema of a materialized warehouse relation; nullptr if unknown.
  const Schema* FindWarehouseSchema(const std::string& name) const;
  // Resolves warehouse relation names to schemas (for simplification and
  // validation of translated queries).
  SchemaResolver WarehouseResolver() const;

  // The hash-consing interner shared by everything derived from this spec.
  // The constructor runs cross-expression CSE over all view, complement and
  // inverse expressions through it, so the repeated structure the paper's
  // constructions share (each R̂i inside Ci, each W⁻¹ inside every
  // translated query and maintenance expression) becomes literal node
  // sharing; the warehouse then interns maintenance plans and translated
  // queries through the same instance so its subplan cache can recycle
  // results across all of them.
  const std::shared_ptr<ExprInterner>& interner() const { return interner_; }

  std::string ToString() const;

 private:
  std::shared_ptr<const Catalog> catalog_;
  std::vector<ViewDef> views_;
  ComplementResult complement_;
  std::map<std::string, Schema> warehouse_schemas_;
  std::shared_ptr<ExprInterner> interner_;
};

// Runs PSJ analysis, complement computation and schema inference, yielding a
// ready-to-use spec. `views` must be PSJ views over `catalog`.
Result<WarehouseSpec> SpecifyWarehouse(std::shared_ptr<const Catalog> catalog,
                                       std::vector<ViewDef> views,
                                       const ComplementOptions& options =
                                           ComplementOptions());

}  // namespace dwc

#endif  // DWC_CORE_WAREHOUSE_SPEC_H_
