#include "core/warehouse_spec.h"

#include "util/string_util.h"

namespace dwc {

WarehouseSpec::WarehouseSpec(std::shared_ptr<const Catalog> catalog,
                             std::vector<ViewDef> views,
                             ComplementResult complement,
                             std::map<std::string, Schema> warehouse_schemas)
    : catalog_(std::move(catalog)),
      views_(std::move(views)),
      complement_(std::move(complement)),
      warehouse_schemas_(std::move(warehouse_schemas)),
      interner_(std::make_shared<ExprInterner>()) {
  // Cross-expression CSE: intern every definition the spec carries so that
  // structurally equal subtrees — which the paper's constructions repeat
  // liberally — become shared canonical nodes with stable ids.
  for (ViewDef& view : views_) {
    view.expr = interner_->Intern(view.expr);
  }
  for (ViewDef& comp : complement_.complements) {
    comp.expr = interner_->Intern(comp.expr);
  }
  for (auto& [base, inverse] : complement_.inverses) {
    (void)base;
    inverse = interner_->Intern(inverse);
  }
}

std::vector<ViewDef> WarehouseSpec::AllWarehouseViews() const {
  std::vector<ViewDef> all = views_;
  all.insert(all.end(), complement_.complements.begin(),
             complement_.complements.end());
  return all;
}

const ExprRef* WarehouseSpec::FindInverse(const std::string& base) const {
  auto it = complement_.inverses.find(base);
  return it == complement_.inverses.end() ? nullptr : &it->second;
}

const Schema* WarehouseSpec::FindWarehouseSchema(
    const std::string& name) const {
  auto it = warehouse_schemas_.find(name);
  return it == warehouse_schemas_.end() ? nullptr : &it->second;
}

SchemaResolver WarehouseSpec::WarehouseResolver() const {
  // Capture the schema map by pointer: the spec outlives translation calls.
  const auto* schemas = &warehouse_schemas_;
  return [schemas](const std::string& name) -> const Schema* {
    auto it = schemas->find(name);
    return it == schemas->end() ? nullptr : &it->second;
  };
}

std::string WarehouseSpec::ToString() const {
  std::string out = "warehouse views V:\n";
  for (const ViewDef& view : views_) {
    out += StrCat("  ", view.name, " = ", view.expr->ToString(), "\n");
  }
  out += "complement C:\n";
  if (complement_.complements.empty()) {
    out += "  (empty)\n";
  }
  for (const ViewDef& view : complement_.complements) {
    out += StrCat("  ", view.name, " = ", view.expr->ToString(), "\n");
  }
  out += "inverses W^-1:\n";
  for (const auto& [base, inverse] : complement_.inverses) {
    out += StrCat("  ", base, " = ", inverse->ToString(), "\n");
  }
  return out;
}

Result<WarehouseSpec> SpecifyWarehouse(std::shared_ptr<const Catalog> catalog,
                                       std::vector<ViewDef> views,
                                       const ComplementOptions& options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("catalog must not be null");
  }
  DWC_ASSIGN_OR_RETURN(ComplementResult complement,
                       ComputeComplement(views, *catalog, options));

  // Infer schemas of all warehouse relations. Views see base relations;
  // complement definitions may also reference view names.
  std::map<std::string, Schema> schemas;
  SchemaResolver base_resolver = ResolverFromCatalog(*catalog);
  auto combined = [&](const std::string& name) -> const Schema* {
    const Schema* schema = base_resolver(name);
    if (schema != nullptr) {
      return schema;
    }
    auto it = schemas.find(name);
    return it == schemas.end() ? nullptr : &it->second;
  };
  for (const ViewDef& view : views) {
    if (schemas.count(view.name) > 0 || catalog->HasRelation(view.name)) {
      return Status::AlreadyExists(
          StrCat("duplicate warehouse relation name '", view.name, "'"));
    }
    DWC_ASSIGN_OR_RETURN(Schema schema, InferSchema(*view.expr, combined));
    schemas.emplace(view.name, std::move(schema));
  }
  for (const ViewDef& comp : complement.complements) {
    if (schemas.count(comp.name) > 0 || catalog->HasRelation(comp.name)) {
      return Status::AlreadyExists(
          StrCat("complement name '", comp.name,
                 "' collides with an existing relation; pick a different "
                 "ComplementOptions::name_prefix"));
    }
    DWC_ASSIGN_OR_RETURN(Schema schema, InferSchema(*comp.expr, combined));
    schemas.emplace(comp.name, std::move(schema));
  }
  return WarehouseSpec(std::move(catalog), std::move(views),
                       std::move(complement), std::move(schemas));
}

}  // namespace dwc
