#include "core/ordering.h"

#include "util/string_util.h"

namespace dwc {

Result<bool> ViewLeqOnState(const ExprRef& u, const ExprRef& v,
                            const Environment& env) {
  Evaluator evaluator(&env);
  DWC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> ur, evaluator.Eval(*u));
  DWC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> vr, evaluator.Eval(*v));
  if (!ur->schema().SameAttrsAs(vr->schema())) {
    return Status::InvalidArgument(
        StrCat("view ordering requires equal schemas: ",
               ur->schema().ToString(), " vs ", vr->schema().ToString()));
  }
  if (ur->size() > vr->size()) {
    return false;
  }
  if (ur->schema() == vr->schema()) {
    for (const Tuple& tuple : ur->tuples()) {
      if (!vr->Contains(tuple)) {
        return false;
      }
    }
    return true;
  }
  DWC_ASSIGN_OR_RETURN(Relation aligned, vr->AlignTo(ur->schema()));
  for (const Tuple& tuple : ur->tuples()) {
    if (!aligned.Contains(tuple)) {
      return false;
    }
  }
  return true;
}

Result<bool> ViewsLeqOnState(const std::vector<ViewDef>& u,
                             const std::vector<ViewDef>& v,
                             const Environment& env) {
  if (u.size() != v.size()) {
    return Status::InvalidArgument(
        "view lists must have equal length for pairwise comparison");
  }
  for (size_t i = 0; i < u.size(); ++i) {
    DWC_ASSIGN_OR_RETURN(bool leq, ViewLeqOnState(u[i].expr, v[i].expr, env));
    if (!leq) {
      return false;
    }
  }
  return true;
}

Result<size_t> TotalTuples(const std::vector<ViewDef>& views,
                           const Environment& env) {
  Evaluator evaluator(&env);
  size_t total = 0;
  for (const ViewDef& view : views) {
    DWC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> rel,
                         evaluator.Eval(*view.expr));
    total += rel->size();
  }
  return total;
}

}  // namespace dwc
