#include "core/independence.h"

#include "algebra/implication.h"
#include "algebra/simplifier.h"
#include "core/psj.h"
#include "util/string_util.h"

namespace dwc {

std::string IndependenceReport::ToString() const {
  std::string out = StrCat("available: {", Join(available, ", "), "}\n");
  for (const auto& [base, ok] : base_reconstructible) {
    out += StrCat("  ", base, ": ",
                  ok ? "reconstructible" : "NOT reconstructible", "\n");
  }
  out += StrCat("query independent: ",
                fully_query_independent ? "yes" : "no", "\n");
  return out;
}

IndependenceReport AnalyzeIndependence(
    const WarehouseSpec& spec, const std::set<std::string>& available) {
  IndependenceReport report;
  for (const std::string& name : available) {
    if (spec.FindWarehouseSchema(name) != nullptr) {
      report.available.insert(name);
    }
  }
  report.fully_query_independent = true;
  for (const auto& [base, inverse] : spec.inverses()) {
    bool ok = true;
    for (const std::string& name : inverse->ReferencedNames()) {
      if (report.available.count(name) == 0) {
        ok = false;
        break;
      }
    }
    report.base_reconstructible[base] = ok;
    report.fully_query_independent &= ok;
  }
  return report;
}

IndependenceReport AnalyzeFullIndependence(const WarehouseSpec& spec) {
  std::set<std::string> all;
  for (const ViewDef& view : spec.AllWarehouseViews()) {
    all.insert(view.name);
  }
  return AnalyzeIndependence(spec, all);
}

namespace {

// A full-schema selection view over a single base: sigma_Q(R).
struct SelectionView {
  std::string name;
  std::string base;
  PredicateRef predicate;
};

std::vector<SelectionView> AvailableSelectionViews(
    const WarehouseSpec& spec, const IndependenceReport& report) {
  std::vector<SelectionView> result;
  for (const ViewDef& view : spec.views()) {
    if (report.available.count(view.name) == 0) {
      continue;
    }
    Result<PsjView> analyzed = AnalyzePsj(view, spec.catalog());
    if (!analyzed.ok() || analyzed->bases.size() != 1 || !analyzed->is_sj) {
      continue;
    }
    result.push_back(SelectionView{view.name, analyzed->bases[0],
                                   analyzed->predicate});
  }
  return result;
}

// Recursive rewriter. `pending` is the conjunction of selections collected
// on the path down to the current node (used when the node is a base).
Result<ExprRef> RewriteNode(const ExprRef& expr, const WarehouseSpec& spec,
                            const IndependenceReport& report,
                            const std::vector<SelectionView>& selections,
                            const PredicateRef& pending) {
  switch (expr->kind()) {
    case Expr::Kind::kBase: {
      const std::string& name = expr->base_name();
      auto base = report.base_reconstructible.find(name);
      if (base == report.base_reconstructible.end()) {
        // A warehouse relation: must be available.
        if (report.available.count(name) > 0) {
          return Expr::Select(pending, expr);
        }
        return Status::FailedPrecondition(
            StrCat("'", name, "' is not available"));
      }
      if (base->second) {
        return Expr::Select(pending, *spec.FindInverse(name));
      }
      // Not reconstructible: try a selection view sigma_Q(name) with
      // pending => Q.
      for (const SelectionView& view : selections) {
        if (view.base == name && Implies(pending, view.predicate)) {
          return Expr::Select(pending, Expr::Base(view.name));
        }
      }
      return Status::FailedPrecondition(
          StrCat("base relation '", name,
                 "' is neither reconstructible nor covered by an available "
                 "selection view for this restriction"));
    }
    case Expr::Kind::kEmpty:
      return Expr::Select(pending, expr);
    case Expr::Kind::kSelect:
      return RewriteNode(expr->child(), spec, report, selections,
                         Predicate::And(pending, expr->predicate()));
    case Expr::Kind::kProject: {
      // Selections above a projection only mention visible attributes;
      // they can stay above it. Reset pending below.
      DWC_ASSIGN_OR_RETURN(
          ExprRef child, RewriteNode(expr->child(), spec, report, selections,
                                     Predicate::True()));
      return Expr::Select(pending, Expr::Project(expr->attrs(), child));
    }
    case Expr::Kind::kRename: {
      DWC_ASSIGN_OR_RETURN(
          ExprRef child, RewriteNode(expr->child(), spec, report, selections,
                                     Predicate::True()));
      return Expr::Select(pending, Expr::Rename(expr->renames(), child));
    }
    case Expr::Kind::kJoin:
    case Expr::Kind::kUnion:
    case Expr::Kind::kDifference: {
      DWC_ASSIGN_OR_RETURN(
          ExprRef left, RewriteNode(expr->left(), spec, report, selections,
                                    Predicate::True()));
      DWC_ASSIGN_OR_RETURN(
          ExprRef right, RewriteNode(expr->right(), spec, report, selections,
                                     Predicate::True()));
      ExprRef combined;
      switch (expr->kind()) {
        case Expr::Kind::kJoin:
          combined = Expr::Join(left, right);
          break;
        case Expr::Kind::kUnion:
          combined = Expr::Union(left, right);
          break;
        default:
          combined = Expr::Difference(left, right);
          break;
      }
      return Expr::Select(pending, combined);
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Result<ExprRef> RewriteOverAvailable(const ExprRef& query,
                                     const WarehouseSpec& spec,
                                     const IndependenceReport& report) {
  std::vector<SelectionView> selections =
      AvailableSelectionViews(spec, report);
  DWC_ASSIGN_OR_RETURN(ExprRef rewritten,
                       RewriteNode(query, spec, report, selections,
                                   Predicate::True()));
  SchemaResolver resolver = spec.WarehouseResolver();
  return Simplify(rewritten, &resolver);
}

bool QueryAnswerable(const Expr& query, const WarehouseSpec& spec,
                     const IndependenceReport& report) {
  for (const std::string& name : query.ReferencedNames()) {
    auto base = report.base_reconstructible.find(name);
    if (base != report.base_reconstructible.end()) {
      if (!base->second) {
        return false;
      }
      continue;
    }
    if (spec.FindWarehouseSchema(name) != nullptr) {
      if (report.available.count(name) == 0) {
        return false;
      }
      continue;
    }
    return false;  // Unknown relation.
  }
  return true;
}

}  // namespace dwc
