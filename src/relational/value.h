#ifndef DWC_RELATIONAL_VALUE_H_
#define DWC_RELATIONAL_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace dwc {

// Attribute domains supported by the engine. kNull is the type of the SQL-ish
// NULL literal; relations never require it but the value space supports it so
// that partial tuples can be represented by tooling.
enum class ValueType {
  kNull = 0,
  kInt,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

// An immutable typed constant: the content of one tuple field.
//
// Values order first by type, then by content; this gives relations a stable
// total order for deterministic printing regardless of domain mixtures.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  // Accessors require the matching type.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  // Numeric view: ints widen to double. Requires a numeric type.
  double AsNumber() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt())
                                     : AsDouble();
  }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  size_t Hash() const;

  // Round-trippable rendering: strings quoted, NULL spelled "NULL".
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace dwc

#endif  // DWC_RELATIONAL_VALUE_H_
