#ifndef DWC_RELATIONAL_TUPLE_H_
#define DWC_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/value.h"
#include "util/hash.h"

namespace dwc {

// A tuple is a positional vector of values, interpreted against a Schema.
//
// The 64-bit hash over all values is computed once at construction and
// cached: tuples are immutable, and every tuple ends up in at least one
// hashed container (TupleSet, Index), usually several — re-hashing string
// fields on every insert, index build and probe dominated join cost before
// the cache.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values)
      : values_(std::move(values)), hash_(ComputeHash(values_)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  // The sub-tuple at the given positions, in that order.
  Tuple Project(const std::vector<size_t>& indices) const {
    std::vector<Value> projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) {
      projected.push_back(values_[idx]);
    }
    return Tuple(std::move(projected));
  }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  // Lexicographic; used only for deterministic printing.
  bool operator<(const Tuple& other) const;

  // O(1): returns the hash cached at construction.
  size_t Hash() const { return hash_; }

  // "<v1, v2, ...>".
  std::string ToString() const;

 private:
  static size_t ComputeHash(const std::vector<Value>& values) {
    size_t h = kEmptyHash;
    for (const Value& v : values) {
      h = HashCombine(h, v.Hash());
    }
    return h;
  }

  static constexpr size_t kEmptyHash = 0x7A9E;

  std::vector<Value> values_;
  size_t hash_ = kEmptyHash;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_TUPLE_H_
