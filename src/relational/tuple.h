#ifndef DWC_RELATIONAL_TUPLE_H_
#define DWC_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/value.h"
#include "util/hash.h"

namespace dwc {

// A tuple is a positional vector of values, interpreted against a Schema.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  // The sub-tuple at the given positions, in that order.
  Tuple Project(const std::vector<size_t>& indices) const {
    std::vector<Value> projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) {
      projected.push_back(values_[idx]);
    }
    return Tuple(std::move(projected));
  }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  // Lexicographic; used only for deterministic printing.
  bool operator<(const Tuple& other) const;

  size_t Hash() const {
    size_t h = 0x7A9E;
    for (const Value& v : values_) {
      h = HashCombine(h, v.Hash());
    }
    return h;
  }

  // "<v1, v2, ...>".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_TUPLE_H_
