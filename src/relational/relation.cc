#include "relational/relation.h"

#include <algorithm>
#include <cassert>

#include "util/string_util.h"

namespace dwc {

bool Relation::Insert(Tuple tuple) {
  assert(tuple.size() == schema_.size());
  auto [it, inserted] = tuples_.insert(std::move(tuple));
  if (inserted) {
    ++version_;
    for (auto& [name, entry] : indexes_) {
      (void)name;
      Tuple key = it->Project(entry.indices);
      entry.index[key].push_back(&*it);
    }
  }
  return inserted;
}

bool Relation::Erase(const Tuple& tuple) {
  auto it = tuples_.find(tuple);
  if (it == tuples_.end()) {
    return false;
  }
  const Tuple* stored = &*it;
  for (auto& [name, entry] : indexes_) {
    (void)name;
    Tuple key = stored->Project(entry.indices);
    auto bucket_it = entry.index.find(key);
    if (bucket_it != entry.index.end()) {
      auto& bucket = bucket_it->second;
      bucket.erase(std::remove(bucket.begin(), bucket.end(), stored),
                   bucket.end());
      if (bucket.empty()) {
        entry.index.erase(bucket_it);
      }
    }
  }
  tuples_.erase(it);
  ++version_;
  return true;
}

void Relation::Clear() {
  if (!tuples_.empty()) {
    ++version_;
  }
  tuples_.clear();
  indexes_.clear();
}

const Relation::Index& Relation::GetIndex(
    const std::vector<std::string>& attrs) const {
  std::string key = Join(attrs, ",");
  // Serializes lazy builds so concurrent evaluations can probe one shared
  // relation. References handed out stay valid: std::map nodes are stable
  // and a cached entry is never rebuilt.
  std::lock_guard<std::mutex> lock(index_mu_);
  auto it = indexes_.find(key);
  if (it != indexes_.end()) {
    return it->second.index;
  }
  IndexEntry entry;
  entry.attrs = attrs;
  Result<std::vector<size_t>> indices = schema_.IndicesOf(attrs);
  assert(indices.ok() && "GetIndex attributes must belong to the schema");
  entry.indices = std::move(indices).value();
  for (const Tuple& tuple : tuples_) {
    entry.index[tuple.Project(entry.indices)].push_back(&tuple);
  }
  auto [pos, inserted] = indexes_.emplace(std::move(key), std::move(entry));
  (void)inserted;
  return pos->second.index;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> sorted(tuples_.begin(), tuples_.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

bool Relation::SameContentAs(const Relation& other) const {
  if (!schema_.SameAttrsAs(other.schema())) {
    return false;
  }
  if (size() != other.size()) {
    return false;
  }
  if (schema_ == other.schema()) {
    for (const Tuple& tuple : tuples_) {
      if (!other.Contains(tuple)) {
        return false;
      }
    }
    return true;
  }
  Result<Relation> aligned = other.AlignTo(schema_);
  if (!aligned.ok()) {
    return false;
  }
  for (const Tuple& tuple : tuples_) {
    if (!aligned->Contains(tuple)) {
      return false;
    }
  }
  return true;
}

Result<Relation> Relation::AlignTo(const Schema& target) const {
  if (!schema_.SameAttrsAs(target)) {
    return Status::InvalidArgument(
        StrCat("cannot align ", schema_.ToString(), " to ", target.ToString()));
  }
  std::vector<std::string> names;
  names.reserve(target.size());
  for (const Attribute& attr : target.attributes()) {
    names.push_back(attr.name);
  }
  DWC_ASSIGN_OR_RETURN(std::vector<size_t> indices, schema_.IndicesOf(names));
  Relation aligned(target);
  aligned.Reserve(tuples_.size());
  for (const Tuple& tuple : tuples_) {
    aligned.Insert(tuple.Project(indices));
  }
  return aligned;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString();
  out += " {";
  bool first = true;
  for (const Tuple& tuple : SortedTuples()) {
    if (!first) {
      out += ", ";
    }
    first = false;
    out += tuple.ToString();
  }
  out += "}";
  return out;
}

}  // namespace dwc
