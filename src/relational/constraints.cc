#include "relational/constraints.h"

#include "util/string_util.h"

namespace dwc {

std::string KeyConstraint::ToString() const {
  return StrCat("KEY ", relation, "(", Join(attrs, ", "), ")");
}

std::string InclusionDependency::ToString() const {
  return StrCat(lhs_relation, "(", Join(lhs_attrs, ", "), ") <= ",
                rhs_relation, "(", Join(rhs_attrs, ", "), ")");
}

}  // namespace dwc
