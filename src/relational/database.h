#ifndef DWC_RELATIONAL_DATABASE_H_
#define DWC_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>

#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/result.h"
#include "util/status.h"

namespace dwc {

// A database state d = <r1, ..., rn> over a Catalog: one Relation per
// declared base schema. Also used for arbitrary named relation stores (e.g.
// warehouse states), in which case the catalog can be empty.
//
// Relations are held through shared_ptr slots so a snapshot layer (see
// warehouse/epoch.h) can keep an old relation version alive after the
// database replaces or drops the slot. The Database itself still has deep
// value semantics: copying a Database copies every relation (fresh uids),
// never aliases storage with the original.
class Database {
 public:
  Database() : catalog_(std::make_shared<Catalog>()) {}
  explicit Database(std::shared_ptr<const Catalog> catalog);

  Database(const Database& other) { CopyFrom(other); }
  Database& operator=(const Database& other) {
    if (this != &other) {
      CopyFrom(other);
    }
    return *this;
  }
  Database(Database&&) noexcept = default;
  Database& operator=(Database&&) noexcept = default;

  const Catalog& catalog() const { return *catalog_; }
  std::shared_ptr<const Catalog> catalog_ptr() const { return catalog_; }

  // Adds an empty (or given) relation under `name`. For catalog-declared
  // relations the schema must match the declaration.
  Status AddRelation(const std::string& name, Relation relation);
  Status AddEmptyRelation(const std::string& name, Schema schema);

  bool HasRelation(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }
  // nullptr when absent.
  const Relation* FindRelation(const std::string& name) const;
  Relation* FindMutableRelation(const std::string& name);

  // The shared slot under `name` (nullptr when absent). Callers that hold
  // the returned pointer see a frozen relation only for as long as nobody
  // mutates the slot in place — the warehouse's epoch protocol guarantees
  // that by cloning before mutating whenever a snapshot is pinned.
  std::shared_ptr<const Relation> ShareRelation(const std::string& name) const;

  // Swaps the slot under `name` to `relation` (copy-on-write commit
  // primitive). The previous slot object is untouched, so snapshots holding
  // it continue to see the old version. Fails with NotFound for unknown
  // names: this replaces content, it never creates relations.
  Status ReplaceRelation(const std::string& name,
                         std::shared_ptr<Relation> relation);

  const std::map<std::string, std::shared_ptr<Relation>>& relations() const {
    return relations_;
  }

  // Verifies every declared key and inclusion dependency against the current
  // state; returns the first violation found.
  Status ValidateConstraints() const;

  // Sum of all relation versions: changes whenever any relation's content
  // changes in place. Cheap coarse staleness probe for whole-state caches
  // (per-subplan invalidation uses the individual (uid, version) pairs).
  uint64_t ContentVersion() const {
    uint64_t total = 0;
    for (const auto& [name, relation] : relations_) {
      (void)name;
      total += relation->version();
    }
    return total;
  }

  // Structural equality of states: same relation names, same contents.
  bool SameStateAs(const Database& other) const;

  std::string ToString() const;

 private:
  void CopyFrom(const Database& other);

  std::shared_ptr<const Catalog> catalog_;
  std::map<std::string, std::shared_ptr<Relation>> relations_;
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_DATABASE_H_
