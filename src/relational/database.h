#ifndef DWC_RELATIONAL_DATABASE_H_
#define DWC_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "relational/catalog.h"
#include "relational/relation.h"
#include "util/result.h"
#include "util/status.h"

namespace dwc {

// A database state d = <r1, ..., rn> over a Catalog: one Relation per
// declared base schema. Also used for arbitrary named relation stores (e.g.
// warehouse states), in which case the catalog can be empty.
class Database {
 public:
  Database() : catalog_(std::make_shared<Catalog>()) {}
  explicit Database(std::shared_ptr<const Catalog> catalog);

  const Catalog& catalog() const { return *catalog_; }
  std::shared_ptr<const Catalog> catalog_ptr() const { return catalog_; }

  // Adds an empty (or given) relation under `name`. For catalog-declared
  // relations the schema must match the declaration.
  Status AddRelation(const std::string& name, Relation relation);
  Status AddEmptyRelation(const std::string& name, Schema schema);

  bool HasRelation(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }
  // nullptr when absent.
  const Relation* FindRelation(const std::string& name) const;
  Relation* FindMutableRelation(const std::string& name);

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  // Verifies every declared key and inclusion dependency against the current
  // state; returns the first violation found.
  Status ValidateConstraints() const;

  // Sum of all relation versions: changes whenever any relation's content
  // changes in place. Cheap coarse staleness probe for whole-state caches
  // (per-subplan invalidation uses the individual (uid, version) pairs).
  uint64_t ContentVersion() const {
    uint64_t total = 0;
    for (const auto& [name, relation] : relations_) {
      (void)name;
      total += relation.version();
    }
    return total;
  }

  // Structural equality of states: same relation names, same contents.
  bool SameStateAs(const Database& other) const;

  std::string ToString() const;

 private:
  std::shared_ptr<const Catalog> catalog_;
  std::map<std::string, Relation> relations_;
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_DATABASE_H_
