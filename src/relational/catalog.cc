#include "relational/catalog.h"

#include <functional>
#include <set>

#include "util/string_util.h"

namespace dwc {

Status Catalog::AddRelation(const std::string& name, Schema schema) {
  if (HasRelation(name)) {
    return Status::AlreadyExists(StrCat("relation '", name, "' already declared"));
  }
  relations_.emplace(name, std::move(schema));
  return Status::Ok();
}

Status Catalog::AddKey(const std::string& relation, AttrSet attrs) {
  const Schema* schema = FindSchema(relation);
  if (schema == nullptr) {
    return Status::NotFound(StrCat("relation '", relation, "' not declared"));
  }
  if (attrs.empty()) {
    return Status::InvalidArgument("key must have at least one attribute");
  }
  if (!schema->ContainsAll(attrs)) {
    return Status::InvalidArgument(
        StrCat("key attributes {", Join(attrs, ", "), "} not all in ",
               relation, schema->ToString()));
  }
  if (keys_.find(relation) != keys_.end()) {
    return Status::AlreadyExists(
        StrCat("relation '", relation,
               "' already has a key (the paper allows at most one)"));
  }
  keys_.emplace(relation, KeyConstraint{relation, std::move(attrs)});
  return Status::Ok();
}

Status Catalog::AddInclusion(InclusionDependency ind) {
  const Schema* lhs = FindSchema(ind.lhs_relation);
  const Schema* rhs = FindSchema(ind.rhs_relation);
  if (lhs == nullptr) {
    return Status::NotFound(
        StrCat("relation '", ind.lhs_relation, "' not declared"));
  }
  if (rhs == nullptr) {
    return Status::NotFound(
        StrCat("relation '", ind.rhs_relation, "' not declared"));
  }
  if (ind.lhs_attrs.empty() || ind.lhs_attrs.size() != ind.rhs_attrs.size()) {
    return Status::InvalidArgument(
        StrCat("malformed inclusion dependency ", ind.ToString()));
  }
  for (size_t i = 0; i < ind.lhs_attrs.size(); ++i) {
    std::optional<size_t> li = lhs->IndexOf(ind.lhs_attrs[i]);
    std::optional<size_t> ri = rhs->IndexOf(ind.rhs_attrs[i]);
    if (!li.has_value() || !ri.has_value()) {
      return Status::InvalidArgument(
          StrCat("inclusion dependency ", ind.ToString(),
                 " references unknown attributes"));
    }
    if (lhs->attribute(*li).type != rhs->attribute(*ri).type) {
      return Status::InvalidArgument(
          StrCat("inclusion dependency ", ind.ToString(),
                 " pairs attributes of different types"));
    }
  }
  if (WouldCreateIndCycle(ind)) {
    return Status::FailedPrecondition(
        StrCat("inclusion dependency ", ind.ToString(),
               " would make the IND set cyclic (paper assumes acyclicity)"));
  }
  inclusions_.push_back(std::move(ind));
  return Status::Ok();
}

const Schema* Catalog::FindSchema(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : &it->second;
}

std::optional<KeyConstraint> Catalog::FindKey(const std::string& relation) const {
  auto it = keys_.find(relation);
  if (it == keys_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, schema] : relations_) {
    (void)schema;
    names.push_back(name);
  }
  return names;
}

bool Catalog::WouldCreateIndCycle(const InclusionDependency& candidate) const {
  // Edge direction: lhs -> rhs ("lhs data flows into rhs's domain").
  // A cycle exists if rhs can already reach lhs.
  std::set<std::string> visited;
  std::function<bool(const std::string&)> reaches =
      [&](const std::string& from) -> bool {
    if (from == candidate.lhs_relation) {
      return true;
    }
    if (!visited.insert(from).second) {
      return false;
    }
    for (const InclusionDependency& ind : inclusions_) {
      if (ind.lhs_relation == from && reaches(ind.rhs_relation)) {
        return true;
      }
    }
    return false;
  };
  return reaches(candidate.rhs_relation);
}

std::vector<std::string> Catalog::IndTopologicalOrder() const {
  // Kahn's algorithm over edges lhs -> rhs; output lhs before rhs.
  std::map<std::string, int> in_degree;
  for (const auto& [name, schema] : relations_) {
    (void)schema;
    in_degree[name] = 0;
  }
  for (const InclusionDependency& ind : inclusions_) {
    ++in_degree[ind.rhs_relation];
  }
  std::vector<std::string> order;
  std::set<std::string> emitted;
  while (order.size() < relations_.size()) {
    bool progressed = false;
    for (const auto& [name, degree] : in_degree) {
      if (degree == 0 && emitted.insert(name).second) {
        order.push_back(name);
        progressed = true;
        for (const InclusionDependency& ind : inclusions_) {
          if (ind.lhs_relation == name) {
            --in_degree[ind.rhs_relation];
          }
        }
      }
    }
    if (!progressed) {
      // Unreachable while AddInclusion enforces acyclicity; emit the rest in
      // name order to stay total.
      for (const auto& [name, degree] : in_degree) {
        (void)degree;
        if (emitted.insert(name).second) {
          order.push_back(name);
        }
      }
      break;
    }
  }
  return order;
}

std::string Catalog::ToString() const {
  std::string out;
  for (const auto& [name, schema] : relations_) {
    out += StrCat(name, schema.ToString());
    auto key = FindKey(name);
    if (key.has_value()) {
      out += StrCat("  KEY(", Join(key->attrs, ", "), ")");
    }
    out += "\n";
  }
  for (const InclusionDependency& ind : inclusions_) {
    out += StrCat(ind.ToString(), "\n");
  }
  return out;
}

}  // namespace dwc
