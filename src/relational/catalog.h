#ifndef DWC_RELATIONAL_CATALOG_H_
#define DWC_RELATIONAL_CATALOG_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "relational/constraints.h"
#include "relational/schema.h"
#include "util/result.h"
#include "util/status.h"

namespace dwc {

// The set D = {R1, ..., Rn} of base relation schemata together with the
// declared key constraints and inclusion dependencies. A Catalog is pure
// metadata; states over it live in Database.
class Catalog {
 public:
  Catalog() = default;

  // Registers a base relation schema. Fails on duplicate names.
  Status AddRelation(const std::string& name, Schema schema);

  // Declares `attrs` the key of `relation`. The paper allows at most one key
  // per relation: declaring a second one fails. All attributes must exist.
  Status AddKey(const std::string& relation, AttrSet attrs);

  // Declares an inclusion dependency. Attribute lists must be nonempty, of
  // equal length, exist in their relations with matching types, and the
  // resulting IND set must remain acyclic (paper assumption, Section 2).
  Status AddInclusion(InclusionDependency ind);

  bool HasRelation(const std::string& name) const {
    return relations_.find(name) != relations_.end();
  }
  // nullptr when absent.
  const Schema* FindSchema(const std::string& name) const;
  // Declared key of `relation`, if any.
  std::optional<KeyConstraint> FindKey(const std::string& relation) const;

  const std::map<std::string, Schema>& relations() const { return relations_; }
  std::vector<std::string> RelationNames() const;
  const std::vector<InclusionDependency>& inclusions() const {
    return inclusions_;
  }

  // Relation names in an order where, whenever pi_X(Ri) <= pi_X(Rj), Ri
  // appears before Rj. With acyclic INDs such an order always exists. The
  // complement machinery builds inverses in this order so that Ri's inverse
  // is available when Rj's reconstruction references Ri (Theorem 2.2,
  // Example 2.3 continued).
  std::vector<std::string> IndTopologicalOrder() const;

  std::string ToString() const;

 private:
  // True if adding `candidate` would close a cycle in the IND graph.
  bool WouldCreateIndCycle(const InclusionDependency& candidate) const;

  std::map<std::string, Schema> relations_;
  std::map<std::string, KeyConstraint> keys_;
  std::vector<InclusionDependency> inclusions_;
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_CATALOG_H_
