#include "relational/schema.h"

#include <unordered_set>

#include "util/string_util.h"

namespace dwc {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  auto index = std::make_shared<std::unordered_map<std::string, size_t>>();
  index->reserve(attributes_.size());
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index->emplace(attributes_[i].name, i);  // emplace keeps the first i.
  }
  index_ = std::move(index);
}

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes) {
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument(
          StrCat("duplicate attribute name '", attr.name, "' in schema"));
    }
  }
  return Schema(std::move(attributes));
}

bool Schema::ContainsAll(const AttrSet& names) const {
  for (const std::string& name : names) {
    if (!Contains(name)) {
      return false;
    }
  }
  return true;
}

AttrSet Schema::attr_names() const {
  AttrSet names;
  for (const Attribute& attr : attributes_) {
    names.insert(attr.name);
  }
  return names;
}

std::vector<std::string> Schema::CommonWith(const Schema& other) const {
  std::vector<std::string> common;
  for (const Attribute& attr : attributes_) {
    if (other.Contains(attr.name)) {
      common.push_back(attr.name);
    }
  }
  return common;
}

Result<std::vector<size_t>> Schema::IndicesOf(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    std::optional<size_t> idx = IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound(
          StrCat("attribute '", name, "' not in schema ", ToString()));
    }
    indices.push_back(*idx);
  }
  return indices;
}

bool Schema::SameAttrsAs(const Schema& other) const {
  if (size() != other.size()) {
    return false;
  }
  for (const Attribute& attr : attributes_) {
    std::optional<size_t> idx = other.IndexOf(attr.name);
    if (!idx.has_value() || other.attribute(*idx).type != attr.type) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) {
    parts.push_back(StrCat(attr.name, " ", ValueTypeName(attr.type)));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

}  // namespace dwc
