#ifndef DWC_RELATIONAL_CONSTRAINTS_H_
#define DWC_RELATIONAL_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "relational/schema.h"

namespace dwc {

// "K is the (only) key for R": no two tuples of R agree on all attributes of
// K. The paper assumes at most one declared key per relation schema.
struct KeyConstraint {
  std::string relation;
  AttrSet attrs;

  std::string ToString() const;
};

// An inclusion dependency pi_X(lhs) subseteq pi_X(rhs). The paper's main
// construction uses the common-attribute form (X named identically on both
// sides, footnote 3); the general renaming form is representable here and is
// validated, but Theorem 2.2 machinery requires IsCommonAttrForm().
struct InclusionDependency {
  std::string lhs_relation;
  std::vector<std::string> lhs_attrs;
  std::string rhs_relation;
  std::vector<std::string> rhs_attrs;

  bool IsCommonAttrForm() const { return lhs_attrs == rhs_attrs; }

  std::string ToString() const;
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_CONSTRAINTS_H_
