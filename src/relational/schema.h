#ifndef DWC_RELATIONAL_SCHEMA_H_
#define DWC_RELATIONAL_SCHEMA_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"
#include "util/result.h"
#include "util/status.h"

namespace dwc {

// One named, typed column.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

// The paper works with sets of attribute *names* (natural-join semantics);
// AttrSet is the corresponding value type, ordered for determinism.
using AttrSet = std::set<std::string>;

// An ordered list of attributes describing a relation or expression result.
// Attribute names are unique within a schema. Following the paper, attributes
// with equal names in different relations denote the same domain, and natural
// joins match on them.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  // Fails if a name repeats.
  static Result<Schema> Create(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  // Index of `name`, or nullopt. O(1): positions are cached in a name→index
  // map built once at construction and shared across copies (Project/AlignTo
  // resolve positions per tuple batch, so a linear scan here was a hot path).
  std::optional<size_t> IndexOf(const std::string& name) const {
    if (index_ == nullptr) {
      return std::nullopt;
    }
    auto it = index_->find(name);
    if (it == index_->end()) {
      return std::nullopt;
    }
    return it->second;
  }
  bool Contains(const std::string& name) const {
    return IndexOf(name).has_value();
  }
  // True if every name in `names` is present.
  bool ContainsAll(const AttrSet& names) const;

  AttrSet attr_names() const;

  // The attributes common to both schemas (natural join keys), in this
  // schema's order.
  std::vector<std::string> CommonWith(const Schema& other) const;

  // Positions of `names` in this schema; fails if any is missing. The result
  // follows the order of `names`.
  Result<std::vector<size_t>> IndicesOf(
      const std::vector<std::string>& names) const;

  // Structural equality including order and types.
  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  // True if both schemas have the same attribute names and per-name types,
  // regardless of column order. Set-semantics relation operations (union,
  // difference) require this.
  bool SameAttrsAs(const Schema& other) const;

  // "(a INT, b STRING)".
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
  // name → first position with that name (matching the old linear scan's
  // first-match behavior for the unchecked duplicate-name constructor).
  // Immutable after construction, so copies of the schema share it.
  std::shared_ptr<const std::unordered_map<std::string, size_t>> index_;
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_SCHEMA_H_
