#ifndef DWC_RELATIONAL_RELATION_H_
#define DWC_RELATIONAL_RELATION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace dwc {

// A set-semantics relation: a schema plus an unordered set of tuples.
//
// Relations keep lazily-built hash indexes on attribute subsets. Indexes are
// created on first use (typically by a join probing this relation) and are
// maintained incrementally on Insert/Erase, which is what makes repeated
// delta-maintenance rounds cheap: a warehouse view that changes by |Δ| tuples
// pays O(|Δ|) index upkeep, not an O(|V|) rebuild per refresh.
//
// Thread safety: concurrent const access (tuples(), Contains(), GetIndex()
// and probing the returned index) is safe — lazy index construction is
// internally serialized. Mutation (Insert/Erase/Clear/assignment) requires
// external serialization against all other access, which is how the parallel
// evaluator uses relations: shared operands are read-only for the duration
// of an evaluation, and all mutation happens in a single-threaded commit
// phase.
class Relation {
 public:
  // Tuples equal under TupleHash/== are stored once.
  using TupleSet = std::unordered_set<Tuple, TupleHash>;
  // Key: the projection of a tuple onto the indexed attributes.
  // The pointers reference tuples owned by tuples_ (stable: node-based set).
  using Index = std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash>;

  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  // Relations are copyable (indexes are dropped on copy) and movable.
  //
  // Identity discipline for the subplan cache: every freshly constructed
  // relation — including copy- and move-*constructed* ones — gets a new uid,
  // so two distinct objects never share an identity. Assignment keeps the
  // destination's uid (it is the same storage cell changing content) and
  // bumps its version. A moved-from source is left with its old uid but its
  // content gone; bumping its version keeps any stale (uid, version)
  // snapshot of it from ever matching again.
  Relation(const Relation& other)
      : schema_(other.schema_), tuples_(other.tuples_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      schema_ = other.schema_;
      tuples_ = other.tuples_;
      indexes_.clear();
      ++version_;
    }
    return *this;
  }
  // Moves transfer the index cache (index_mu_ only guards lazy builds and is
  // never moved; movers must hold the relation exclusively anyway).
  Relation(Relation&& other) noexcept
      : schema_(std::move(other.schema_)),
        tuples_(std::move(other.tuples_)),
        indexes_(std::move(other.indexes_)) {
    ++other.version_;
  }
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      schema_ = std::move(other.schema_);
      tuples_ = std::move(other.tuples_);
      indexes_ = std::move(other.indexes_);
      ++version_;
      ++other.version_;
    }
    return *this;
  }

  const Schema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const TupleSet& tuples() const { return tuples_; }

  bool Contains(const Tuple& tuple) const {
    return tuples_.find(tuple) != tuples_.end();
  }

  // Returns true if the tuple was not already present. The tuple must match
  // the schema arity (checked by assert, it is a programming error otherwise).
  bool Insert(Tuple tuple);
  // Returns true if the tuple was present.
  bool Erase(const Tuple& tuple);
  void Clear();

  // Pre-sizes the tuple set for `n` additional tuples, killing rehash storms
  // when an operator knows its output cardinality estimate up front.
  void Reserve(size_t n) { tuples_.reserve(tuples_.size() + n); }

  // Returns the (possibly cached) index over `attrs`, which must all belong
  // to the schema. Lookups use MakeKey(). The reference stays valid until the
  // relation is destroyed or assigned over.
  const Index& GetIndex(const std::vector<std::string>& attrs) const;

  // Builds a lookup key for GetIndex(attrs) from any tuple of `from_schema`
  // that contains all of `attrs`.
  static Tuple MakeKey(const Tuple& tuple, const std::vector<size_t>& indices) {
    return tuple.Project(indices);
  }

  // Tuples in deterministic (lexicographic) order; for printing and tests.
  std::vector<Tuple> SortedTuples() const;

  // Extensional equality: same attribute names (any column order) and the
  // same set of tuples.
  bool SameContentAs(const Relation& other) const;

  // A copy of this relation with columns reordered to `target`, which must
  // have the same attribute names.
  Result<Relation> AlignTo(const Schema& target) const;

  // Multi-line rendering: schema header plus sorted tuples.
  std::string ToString() const;

  // Identity + content version for memoized evaluation. `uid()` is unique
  // per live object for the process lifetime; `version()` increments on
  // every content change (Insert/Erase that took effect, Clear of a
  // non-empty relation, any assignment). A cached result tagged with this
  // relation's (uid, version) is valid iff both still match.
  uint64_t uid() const { return uid_; }
  uint64_t version() const { return version_; }

 private:
  static uint64_t NextUid() {
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  struct IndexEntry {
    std::vector<std::string> attrs;
    std::vector<size_t> indices;
    Index index;
  };

  Schema schema_;
  TupleSet tuples_;
  uint64_t uid_ = NextUid();
  uint64_t version_ = 0;
  // Keyed by comma-joined attribute list. Mutable: building an index does not
  // change the logical content. Entries are pointer-stable (map of unique_ptr
  // not needed: std::map nodes are stable). Lazy builds are serialized by
  // index_mu_ so concurrent readers can share one relation.
  mutable std::map<std::string, IndexEntry> indexes_;
  mutable std::mutex index_mu_;
};

}  // namespace dwc

#endif  // DWC_RELATIONAL_RELATION_H_
