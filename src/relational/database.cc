#include "relational/database.h"

#include "util/string_util.h"

namespace dwc {

Database::Database(std::shared_ptr<const Catalog> catalog)
    : catalog_(std::move(catalog)) {
  if (catalog_ == nullptr) {
    catalog_ = std::make_shared<Catalog>();
  }
}

void Database::CopyFrom(const Database& other) {
  catalog_ = other.catalog_;
  relations_.clear();
  for (const auto& [name, rel] : other.relations_) {
    relations_.emplace(name, std::make_shared<Relation>(*rel));
  }
}

Status Database::AddRelation(const std::string& name, Relation relation) {
  if (HasRelation(name)) {
    return Status::AlreadyExists(StrCat("relation '", name, "' already present"));
  }
  const Schema* declared = catalog_->FindSchema(name);
  if (declared != nullptr && !(relation.schema() == *declared)) {
    return Status::InvalidArgument(
        StrCat("relation '", name, "' schema ", relation.schema().ToString(),
               " does not match declared ", declared->ToString()));
  }
  relations_.emplace(name, std::make_shared<Relation>(std::move(relation)));
  return Status::Ok();
}

Status Database::AddEmptyRelation(const std::string& name, Schema schema) {
  return AddRelation(name, Relation(std::move(schema)));
}

const Relation* Database::FindRelation(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

Relation* Database::FindMutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second.get();
}

std::shared_ptr<const Relation> Database::ShareRelation(
    const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second;
}

Status Database::ReplaceRelation(const std::string& name,
                                 std::shared_ptr<Relation> relation) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(
        StrCat("cannot replace unknown relation '", name, "'"));
  }
  if (relation == nullptr) {
    return Status::InvalidArgument(
        StrCat("replacement for '", name, "' must not be null"));
  }
  it->second = std::move(relation);
  return Status::Ok();
}

Status Database::ValidateConstraints() const {
  // Key constraints: no two tuples agree on the key projection.
  for (const std::string& name : catalog_->RelationNames()) {
    auto key = catalog_->FindKey(name);
    if (!key.has_value()) {
      continue;
    }
    const Relation* rel = FindRelation(name);
    if (rel == nullptr) {
      continue;
    }
    std::vector<std::string> key_attrs(key->attrs.begin(), key->attrs.end());
    const Relation::Index& index = rel->GetIndex(key_attrs);
    for (const auto& [key_tuple, bucket] : index) {
      if (bucket.size() > 1) {
        return Status::FailedPrecondition(
            StrCat("key violation in ", name, ": key ", key_tuple.ToString(),
                   " shared by ", bucket.size(), " tuples"));
      }
    }
  }
  // Inclusion dependencies: pi_X(lhs) subseteq pi_X(rhs).
  for (const InclusionDependency& ind : catalog_->inclusions()) {
    const Relation* lhs = FindRelation(ind.lhs_relation);
    const Relation* rhs = FindRelation(ind.rhs_relation);
    if (lhs == nullptr || rhs == nullptr) {
      continue;
    }
    Result<std::vector<size_t>> lhs_idx =
        lhs->schema().IndicesOf(ind.lhs_attrs);
    if (!lhs_idx.ok()) {
      return lhs_idx.status();
    }
    const Relation::Index& rhs_index = rhs->GetIndex(ind.rhs_attrs);
    for (const Tuple& tuple : lhs->tuples()) {
      Tuple key = tuple.Project(*lhs_idx);
      if (rhs_index.find(key) == rhs_index.end()) {
        return Status::FailedPrecondition(
            StrCat("inclusion violation ", ind.ToString(), ": ",
                   key.ToString(), " missing from ", ind.rhs_relation));
      }
    }
  }
  return Status::Ok();
}

bool Database::SameStateAs(const Database& other) const {
  if (relations_.size() != other.relations_.size()) {
    return false;
  }
  for (const auto& [name, rel] : relations_) {
    const Relation* other_rel = other.FindRelation(name);
    if (other_rel == nullptr || !rel->SameContentAs(*other_rel)) {
      return false;
    }
  }
  return true;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, rel] : relations_) {
    out += StrCat(name, " = ", rel->ToString(), "\n");
  }
  return out;
}

}  // namespace dwc
