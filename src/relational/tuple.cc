#include "relational/tuple.h"

#include "util/string_util.h"

namespace dwc {

bool Tuple::operator<(const Tuple& other) const {
  size_t n = std::min(values_.size(), other.values_.size());
  for (size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) {
      return true;
    }
    if (other.values_[i] < values_[i]) {
      return false;
    }
  }
  return values_.size() < other.values_.size();
}

std::string Tuple::ToString() const {
  return StrCat("<", Join(values_, ", "), ">");
}

}  // namespace dwc
