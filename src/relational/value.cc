#include "relational/value.h"

#include <functional>
#include <sstream>

#include "util/hash.h"

namespace dwc {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool Value::operator==(const Value& other) const {
  // Mixed int/double compare numerically so that generated data with widened
  // domains still joins correctly.
  ValueType a = type();
  ValueType b = other.type();
  if (a == b) {
    return data_ == other.data_;
  }
  if ((a == ValueType::kInt || a == ValueType::kDouble) &&
      (b == ValueType::kInt || b == ValueType::kDouble)) {
    return AsNumber() == other.AsNumber();
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  bool a_num = a == ValueType::kInt || a == ValueType::kDouble;
  bool b_num = b == ValueType::kInt || b == ValueType::kDouble;
  if (a_num && b_num) {
    return AsNumber() < other.AsNumber();
  }
  if (a != b) {
    return static_cast<int>(a) < static_cast<int>(b);
  }
  switch (a) {
    case ValueType::kNull:
      return false;
    case ValueType::kString:
      return AsString() < other.AsString();
    default:
      return false;  // Unreachable: numeric cases handled above.
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0xDA7A;
    case ValueType::kInt:
      // Hash ints by their numeric (double-compatible) value so that equal
      // mixed-type values hash equally.
      return std::hash<double>{}(static_cast<double>(AsInt()));
    case ValueType::kDouble:
      return std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return HashCombine(0x5712, std::hash<std::string>{}(AsString()));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream out;
      out << AsDouble();
      return out.str();
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') {
          out += "''";
        } else {
          out += c;
        }
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace dwc
