// B6 (extension, see EXPERIMENTS.md): summary-table maintenance cost — the
// Section 5 OLAP layer. Compares incremental folding of source deltas
// against re-aggregating the fact view from scratch, across batch sizes.
//
// Expected shape: like B2, incremental aggregate upkeep is O(|Δ|) while
// re-aggregation is O(|fact|); the deletion of a group extremum triggers a
// per-group re-aggregation, visible as the deletes-heavy rows costing more
// than insert-only rows.

#include <benchmark/benchmark.h>

#include "aggregate/aggregate_view.h"
#include "bench/bench_common.h"
#include "util/string_util.h"
#include "workload/star_schema.h"
#include "workload/update_stream.h"

namespace dwc {
namespace bench {
namespace {

AggregateViewDef SummaryDef() {
  AggregateViewDef def;
  def.name = "UnitsByRegion";
  def.source = Expr::Base("FactSales");
  def.group_by = {"supp_region"};
  def.aggregates = {{AggFunc::kCount, "", "n_sales"},
                    {AggFunc::kSum, "quantity", "units"},
                    {AggFunc::kMax, "quantity", "biggest"}};
  return def;
}

struct Fixture {
  StarSchema star;
  std::shared_ptr<WarehouseSpec> spec;
  Source source;
  Warehouse warehouse;

  explicit Fixture(size_t sales)
      : star([&] {
          StarSchemaConfig config;
          config.orders = sales / 4 + 16;
          config.sales = sales;
          return Unwrap(BuildStarSchema(config), "star");
        }()),
        spec(std::make_shared<WarehouseSpec>(
            Unwrap(SpecifyWarehouse(star.catalog, star.views), "spec"))),
        source(star.db),
        warehouse(Unwrap(Warehouse::Load(spec, source.db()), "load")) {}
};

void BM_IncrementalAggregate(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  Fixture fixture(6000);
  Check(fixture.warehouse.AddAggregateView(SummaryDef()), "agg");

  Rng rng(23);
  size_t refreshes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    UpdateOp op =
        Unwrap(GenerateSalesBatch(fixture.source.db(), batch, &rng), "gen");
    CanonicalDelta delta = Unwrap(fixture.source.Apply(op), "apply");
    state.ResumeTiming();

    Check(fixture.warehouse.Integrate(delta), "integrate");

    state.PauseTiming();
    UpdateOp undo;
    undo.relation = "Sales";
    undo.deletes = op.inserts;
    CanonicalDelta undo_delta = Unwrap(fixture.source.Apply(undo), "undo");
    Check(fixture.warehouse.Integrate(undo_delta), "undo integrate");
    state.ResumeTiming();
    ++refreshes;
  }
  state.counters["tuples_s"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(refreshes),
      benchmark::Counter::kIsRate);
}

void BM_ReaggregateFromScratch(benchmark::State& state) {
  // The baseline: rebuild the summary from the fact view per refresh.
  Fixture fixture(6000);
  SchemaResolver resolver = fixture.spec->WarehouseResolver();
  AggregateView view =
      Unwrap(AggregateView::Create(SummaryDef(), resolver), "create");
  Environment env = fixture.warehouse.Env();
  for (auto _ : state) {
    Check(view.Initialize(env), "init");
    benchmark::DoNotOptimize(view.materialized());
  }
  state.counters["fact_tuples"] =
      static_cast<double>(fixture.warehouse.FindRelation("FactSales")->size());
}

void BM_DeleteHeavyAggregate(benchmark::State& state) {
  // Deletions can hit group extrema and trigger per-group re-aggregation.
  Fixture fixture(6000);
  Check(fixture.warehouse.AddAggregateView(SummaryDef()), "agg");
  Rng rng(29);
  size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    // Delete `batch` random sales, then reinsert them (untimed).
    std::vector<Tuple> victims;
    {
      const Relation* sales = fixture.source.db().FindRelation("Sales");
      auto it = sales->tuples().begin();
      std::advance(it, rng.Below(sales->size() - batch));
      for (size_t i = 0; i < batch; ++i, ++it) {
        victims.push_back(*it);
      }
    }
    UpdateOp del{"Sales", {}, victims};
    CanonicalDelta delta = Unwrap(fixture.source.Apply(del), "apply");
    state.ResumeTiming();

    Check(fixture.warehouse.Integrate(delta), "integrate");

    state.PauseTiming();
    UpdateOp redo{"Sales", victims, {}};
    CanonicalDelta redo_delta = Unwrap(fixture.source.Apply(redo), "redo");
    Check(fixture.warehouse.Integrate(redo_delta), "redo integrate");
    state.ResumeTiming();
  }
}

BENCHMARK(BM_IncrementalAggregate)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReaggregateFromScratch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeleteHeavyAggregate)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

// --json: fixed-iteration sweep written to BENCH_aggregates.json for CI
// artifact collection.
int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  for (size_t batch : {size_t{1}, size_t{10}, size_t{100}}) {
    Fixture fixture(6000);
    Check(fixture.warehouse.AddAggregateView(SummaryDef()), "agg");
    Rng rng(23);
    std::vector<double> latencies;
    auto refresh = [&](bool timed) {
      UpdateOp op =
          Unwrap(GenerateSalesBatch(fixture.source.db(), batch, &rng), "gen");
      CanonicalDelta delta = Unwrap(fixture.source.Apply(op), "apply");
      auto start = std::chrono::steady_clock::now();
      Check(fixture.warehouse.Integrate(delta), "integrate");
      if (timed) {
        latencies.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count());
      }
      UpdateOp undo;
      undo.relation = "Sales";
      undo.deletes = op.inserts;
      CanonicalDelta undo_delta = Unwrap(fixture.source.Apply(undo), "undo");
      Check(fixture.warehouse.Integrate(undo_delta), "undo integrate");
    };
    refresh(/*timed=*/false);
    for (int i = 0; i < 8; ++i) {
      refresh(/*timed=*/true);
    }
    BenchRow row;
    row.name = StrCat("incremental_aggregate/batch=", batch);
    row.latency = SummarizeLatencies(std::move(latencies));
    row.counters["tuples_s"] =
        row.latency.ops_per_sec * static_cast<double>(batch);
    rows.push_back(std::move(row));
  }
  {
    Fixture fixture(6000);
    SchemaResolver resolver = fixture.spec->WarehouseResolver();
    AggregateView view =
        Unwrap(AggregateView::Create(SummaryDef(), resolver), "create");
    Environment env = fixture.warehouse.Env();
    BenchRow row;
    row.name = "reaggregate_scratch";
    row.latency = SummarizeLatencies(MeasureLatenciesUs(5, [&] {
      Check(view.Initialize(env), "init");
      benchmark::DoNotOptimize(view.materialized());
    }));
    row.counters["fact_tuples"] = static_cast<double>(
        fixture.warehouse.FindRelation("FactSales")->size());
    rows.push_back(std::move(row));
  }
  for (size_t batch : {size_t{1}, size_t{10}, size_t{100}}) {
    Fixture fixture(6000);
    Check(fixture.warehouse.AddAggregateView(SummaryDef()), "agg");
    Rng rng(29);
    std::vector<double> latencies;
    auto refresh = [&](bool timed) {
      std::vector<Tuple> victims;
      {
        const Relation* sales = fixture.source.db().FindRelation("Sales");
        auto it = sales->tuples().begin();
        std::advance(it, rng.Below(sales->size() - batch));
        for (size_t i = 0; i < batch; ++i, ++it) {
          victims.push_back(*it);
        }
      }
      UpdateOp del{"Sales", {}, victims};
      CanonicalDelta delta = Unwrap(fixture.source.Apply(del), "apply");
      auto start = std::chrono::steady_clock::now();
      Check(fixture.warehouse.Integrate(delta), "integrate");
      if (timed) {
        latencies.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count());
      }
      UpdateOp redo{"Sales", victims, {}};
      CanonicalDelta redo_delta = Unwrap(fixture.source.Apply(redo), "redo");
      Check(fixture.warehouse.Integrate(redo_delta), "redo integrate");
    };
    refresh(/*timed=*/false);
    for (int i = 0; i < 8; ++i) {
      refresh(/*timed=*/true);
    }
    BenchRow row;
    row.name = StrCat("delete_heavy/batch=", batch);
    row.latency = SummarizeLatencies(std::move(latencies));
    row.counters["tuples_s"] =
        row.latency.ops_per_sec * static_cast<double>(batch);
    rows.push_back(std::move(row));
  }
  PrintBenchRows(rows);
  WriteBenchJson("aggregates", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
