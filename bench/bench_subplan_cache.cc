// B12 (EXPERIMENTS.md): the subplan recycler cache (algebra/subplan_cache.h)
// under the two workloads it was built for.
//
//   repeated_query/budget=B — a fixed pool of translated queries answered
//     over and over against an unchanged warehouse. With a budget the whole
//     W^-1 plan recycles; ops/sec vs the budget=0 row is the headline
//     speedup (counter speedup_vs_uncached).
//   skewed_delta/budget=B  — every refresh inserts into SaleA only, then
//     the group-B queries are answered. Group B's relations keep their
//     (uid, version) identities, so its subplans should recycle across
//     refreshes: counter hit_rate is the fraction of non-leaf lookups that
//     hit during the group-B answers.
//
// The catalog holds two disjoint Figure-1 groups (EmpA/SaleA -> SoldA,
// EmpB/SaleB -> SoldB) so a delta on SaleA can never invalidate a group-B
// subplan. Budgets: 0 (cache off — the baseline), 1000 tuples (pressure:
// fact-sized entries never fit and survivors get evicted), 1M (everything
// fits).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "parser/parser.h"
#include "util/string_util.h"

namespace dwc {
namespace bench {
namespace {

constexpr size_t kDim = 256;    // Clerks per group.
constexpr size_t kFact = 4000;  // Sales per group.

// Two independent copies of the scaled Figure 1 scenario in one catalog.
struct TwoGroupFixture {
  std::shared_ptr<Catalog> catalog;
  Database db;
  std::vector<ViewDef> views;
  std::shared_ptr<WarehouseSpec> spec;
  std::unique_ptr<Source> source;
  std::unique_ptr<Warehouse> warehouse;

  explicit TwoGroupFixture(size_t budget) {
    catalog = std::make_shared<Catalog>();
    for (const char* g : {"A", "B"}) {
      std::string emp = StrCat("Emp", g);
      std::string sale = StrCat("Sale", g);
      Check(catalog->AddRelation(emp, Schema({{"clerk", ValueType::kInt},
                                              {"age", ValueType::kInt}})),
            "add Emp");
      Check(catalog->AddKey(emp, {"clerk"}), "key Emp");
      Check(catalog->AddRelation(sale, Schema({{"item", ValueType::kInt},
                                               {"clerk", ValueType::kInt}})),
            "add Sale");
      Check(catalog->AddInclusion(
                InclusionDependency{sale, {"clerk"}, emp, {"clerk"}}),
            "IND");
      views.push_back(ViewDef{StrCat("Sold", g),
                              Expr::Join(Expr::Base(sale), Expr::Base(emp))});
    }
    db = Database(catalog);
    Rng rng(11);
    for (const char* g : {"A", "B"}) {
      std::string emp = StrCat("Emp", g);
      std::string sale = StrCat("Sale", g);
      Check(db.AddEmptyRelation(emp, *catalog->FindSchema(emp)), "emp rel");
      Check(db.AddEmptyRelation(sale, *catalog->FindSchema(sale)),
            "sale rel");
      Relation* emp_rel = db.FindMutableRelation(emp);
      for (size_t i = 0; i < kDim; ++i) {
        emp_rel->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                               Value::Int(rng.Range(18, 65))}));
      }
      Relation* sale_rel = db.FindMutableRelation(sale);
      size_t inserted = 0;
      while (inserted < kFact) {
        Tuple tuple({Value::Int(rng.Range(0, 1 << 24)),
                     Value::Int(rng.Range(0, static_cast<int64_t>(kDim) - 1))});
        if (sale_rel->Insert(std::move(tuple))) {
          ++inserted;
        }
      }
    }
    spec = std::make_shared<WarehouseSpec>(
        Unwrap(SpecifyWarehouse(catalog, views), "spec"));
    source = std::make_unique<Source>(db);
    warehouse = std::make_unique<Warehouse>(
        Unwrap(Warehouse::Load(spec, source->db()), "load"));
    EvaluatorOptions options;
    options.cache_budget_tuples = budget;
    warehouse->SetEvaluatorOptions(options);
  }

  UpdateOp MakeSaleABatch(size_t n, Rng* rng) const {
    const Relation* sale = source->db().FindRelation("SaleA");
    UpdateOp op;
    op.relation = "SaleA";
    while (op.inserts.size() < n) {
      Tuple tuple(
          {Value::Int(rng->Range(1 << 24, 1 << 30)),
           Value::Int(rng->Range(0, static_cast<int64_t>(kDim) - 1))});
      if (!sale->Contains(tuple)) {
        op.inserts.push_back(std::move(tuple));
      }
    }
    return op;
  }
};

const char* kGroupAQueries[] = {
    "project[clerk](SaleA) union project[clerk](EmpA)",
    "project[age](select[item = 123](SaleA) join EmpA)",
};
const char* kGroupBQueries[] = {
    "project[clerk](EmpB) minus project[clerk](SaleB)",
    "project[age](select[item = 123](SaleB) join EmpB)",
};

std::vector<ExprRef> ParseAll(std::initializer_list<const char*> texts) {
  std::vector<ExprRef> queries;
  for (const char* text : texts) {
    queries.push_back(Unwrap(ParseExpr(text), "parse"));
  }
  return queries;
}

size_t AnswerAll(const Warehouse& warehouse,
                 const std::vector<ExprRef>& queries) {
  size_t tuples = 0;
  for (const ExprRef& query : queries) {
    Relation answer = Unwrap(warehouse.AnswerQuery(query), "answer");
    tuples += answer.size();
    benchmark::DoNotOptimize(answer);
  }
  return tuples;
}

// google-benchmark registrations: the repeated-query workload at both cache
// extremes, so `bench_subplan_cache` without --json is still informative.
void BM_RepeatedQueries(benchmark::State& state) {
  TwoGroupFixture fixture(static_cast<size_t>(state.range(0)));
  std::vector<ExprRef> queries =
      ParseAll({kGroupAQueries[0], kGroupAQueries[1], kGroupBQueries[0],
                kGroupBQueries[1]});
  AnswerAll(*fixture.warehouse, queries);  // Warm the cache.
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnswerAll(*fixture.warehouse, queries));
  }
  SubplanCache::CacheStats stats = fixture.warehouse->subplan_cache().stats();
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_misses"] = static_cast<double>(stats.misses);
}

BENCHMARK(BM_RepeatedQueries)
    ->Arg(0)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

// --json: both workloads at budgets {0, 1000, 1M}, written to
// BENCH_subplan_cache.json. EXPERIMENTS.md B12's acceptance gates live on
// these counters: repeated_query speedup_vs_uncached >= 1.5 and
// skewed_delta hit_rate >= 0.9 at the 1M budget.
int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  const size_t kBudgets[] = {0, 1000, size_t{1} << 20};

  double repeated_uncached_ops = 0;
  for (size_t budget : kBudgets) {
    TwoGroupFixture fixture(budget);
    std::vector<ExprRef> queries =
        ParseAll({kGroupAQueries[0], kGroupAQueries[1], kGroupBQueries[0],
                  kGroupBQueries[1]});
    std::vector<double> latencies = MeasureLatenciesUs(15, [&] {
      benchmark::DoNotOptimize(AnswerAll(*fixture.warehouse, queries));
    });
    // MeasureLatenciesUs's untimed warmup absorbed the cold misses; one
    // more pool pass samples the steady-state hit/miss mix.
    SubplanCache::CacheStats before =
        fixture.warehouse->subplan_cache().stats();
    AnswerAll(*fixture.warehouse, queries);
    SubplanCache::CacheStats after = fixture.warehouse->subplan_cache().stats();
    double hits = static_cast<double>(after.hits - before.hits);
    double misses = static_cast<double>(after.misses - before.misses);
    BenchRow row;
    row.name = StrCat("repeated_query/budget=", budget);
    row.latency = SummarizeLatencies(std::move(latencies));
    row.counters["hits"] = hits;
    row.counters["misses"] = misses;
    row.counters["hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
    if (budget == 0) {
      repeated_uncached_ops = row.latency.ops_per_sec;
    } else if (repeated_uncached_ops > 0) {
      row.counters["speedup_vs_uncached"] =
          row.latency.ops_per_sec / repeated_uncached_ops;
    }
    rows.push_back(std::move(row));
  }

  double skewed_uncached_ops = 0;
  for (size_t budget : kBudgets) {
    TwoGroupFixture fixture(budget);
    std::vector<ExprRef> group_b =
        ParseAll({kGroupBQueries[0], kGroupBQueries[1]});
    Rng rng(31);
    double hits = 0;
    double misses = 0;
    std::vector<double> latencies;
    // Untimed: the SaleA-only delta and its integration. Timed: answering
    // the group-B queries afterwards — whose inputs the delta left
    // untouched.
    auto step = [&](bool timed) {
      UpdateOp op = fixture.MakeSaleABatch(16, &rng);
      CanonicalDelta delta = Unwrap(fixture.source->Apply(op), "apply");
      Check(fixture.warehouse->Integrate(delta), "integrate");
      SubplanCache::CacheStats before =
          fixture.warehouse->subplan_cache().stats();
      auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(AnswerAll(*fixture.warehouse, group_b));
      if (timed) {
        latencies.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count());
        SubplanCache::CacheStats after =
            fixture.warehouse->subplan_cache().stats();
        hits += static_cast<double>(after.hits - before.hits);
        misses += static_cast<double>(after.misses - before.misses);
      }
    };
    step(/*timed=*/false);  // Warmup populates the cache.
    for (int i = 0; i < 12; ++i) {
      step(/*timed=*/true);
    }
    BenchRow row;
    row.name = StrCat("skewed_delta/budget=", budget);
    row.latency = SummarizeLatencies(std::move(latencies));
    row.counters["hits"] = hits;
    row.counters["misses"] = misses;
    row.counters["hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
    if (budget == 0) {
      skewed_uncached_ops = row.latency.ops_per_sec;
    } else if (skewed_uncached_ops > 0) {
      row.counters["speedup_vs_uncached"] =
          row.latency.ops_per_sec / skewed_uncached_ops;
    }
    rows.push_back(std::move(row));
  }

  PrintBenchRows(rows);
  WriteBenchJson("subplan_cache", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
