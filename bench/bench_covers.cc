// B4 (DESIGN.md): cost of the Theorem 2.2 cover machinery. Minimal-cover
// enumeration is worst-case exponential in the number of candidate views;
// this bench maps where that matters.
//
//   BM_EnumerateCovers/{candidates, attrs} — synthetic candidates, each
//     covering a random half of the attributes.
//   BM_ComputeComplement/{views} — end-to-end Step 1 on the Example 2.3
//     schema with a growing stack of fragment views.
//
// Counter: covers = minimal covers found (capped at max_covers).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/complement.h"
#include "core/covers.h"
#include "util/string_util.h"

namespace dwc {
namespace bench {
namespace {

std::vector<CoverCandidate> MakeCandidates(size_t n, size_t attrs,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<CoverCandidate> candidates;
  for (size_t i = 0; i < n; ++i) {
    CoverCandidate candidate;
    candidate.label = StrCat("c", i);
    candidate.expr = Expr::Base(candidate.label);
    // Key attribute a0 is always present (candidates model key-containing
    // views); the rest are coin flips.
    candidate.attrs.insert("a0");
    for (size_t a = 1; a < attrs; ++a) {
      if (rng.Chance(0.5)) {
        candidate.attrs.insert(StrCat("a", a));
      }
    }
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

void BM_EnumerateCovers(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t attrs = static_cast<size_t>(state.range(1));
  std::vector<CoverCandidate> candidates = MakeCandidates(n, attrs, 42);
  AttrSet target;
  for (size_t a = 0; a < attrs; ++a) {
    target.insert(StrCat("a", a));
  }
  size_t covers = 0;
  for (auto _ : state) {
    std::vector<Cover> result =
        EnumerateMinimalCovers(candidates, target, /*max_covers=*/4096);
    covers = result.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["covers"] = static_cast<double>(covers);
}

void BM_ComputeComplementWithFragments(benchmark::State& state) {
  // Example 2.3's R1(A,B,C,...) widened to `width` attributes, with one
  // two-attribute fragment view per non-key attribute: the cover count is
  // combinatorial in `width`.
  size_t width = static_cast<size_t>(state.range(0));
  auto catalog = std::make_shared<Catalog>();
  std::vector<Attribute> attrs;
  attrs.push_back({"A", ValueType::kInt});
  for (size_t i = 1; i < width; ++i) {
    attrs.push_back({StrCat("X", i), ValueType::kInt});
  }
  Check(catalog->AddRelation("R", Schema(attrs)), "rel");
  Check(catalog->AddKey("R", {"A"}), "key");
  std::vector<ViewDef> views;
  for (size_t i = 1; i < width; ++i) {
    // Two fragments per attribute: doubles the candidate pool.
    views.push_back(ViewDef{
        StrCat("F", i),
        Expr::Project({"A", StrCat("X", i)}, Expr::Base("R"))});
    views.push_back(ViewDef{
        StrCat("G", i),
        Expr::Project({"A", StrCat("X", i)}, Expr::Base("R"))});
  }
  ComplementOptions options;
  options.max_covers = 4096;
  size_t covers = 0;
  for (auto _ : state) {
    ComplementResult result =
        Unwrap(ComputeComplement(views, *catalog, options), "complement");
    covers = result.per_base[0].cover_labels.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["covers"] = static_cast<double>(covers);
}

BENCHMARK(BM_EnumerateCovers)
    ->Args({4, 8})
    ->Args({8, 8})
    ->Args({12, 8})
    ->Args({16, 8})
    ->Args({8, 12})
    ->Args({8, 16})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_ComputeComplementWithFragments)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Unit(benchmark::kMicrosecond);

// --json: fixed-iteration sweep over the same grids, written to
// BENCH_covers.json for CI artifact collection.
int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  const std::pair<size_t, size_t> kEnumerations[] = {
      {4, 8}, {8, 8}, {12, 8}, {16, 8}, {8, 12}, {8, 16}};
  for (const auto& [n, attrs] : kEnumerations) {
    std::vector<CoverCandidate> candidates = MakeCandidates(n, attrs, 42);
    AttrSet target;
    for (size_t a = 0; a < attrs; ++a) {
      target.insert(StrCat("a", a));
    }
    size_t covers = 0;
    BenchRow row;
    row.name = StrCat("enumerate_covers/candidates=", n, "/attrs=", attrs);
    row.latency = SummarizeLatencies(MeasureLatenciesUs(10, [&] {
      std::vector<Cover> result =
          EnumerateMinimalCovers(candidates, target, /*max_covers=*/4096);
      covers = result.size();
      benchmark::DoNotOptimize(result);
    }));
    row.counters["covers"] = static_cast<double>(covers);
    rows.push_back(std::move(row));
  }
  for (size_t width : {size_t{3}, size_t{5}, size_t{7}, size_t{9}}) {
    auto catalog = std::make_shared<Catalog>();
    std::vector<Attribute> attrs;
    attrs.push_back({"A", ValueType::kInt});
    for (size_t i = 1; i < width; ++i) {
      attrs.push_back({StrCat("X", i), ValueType::kInt});
    }
    Check(catalog->AddRelation("R", Schema(attrs)), "rel");
    Check(catalog->AddKey("R", {"A"}), "key");
    std::vector<ViewDef> views;
    for (size_t i = 1; i < width; ++i) {
      views.push_back(ViewDef{
          StrCat("F", i),
          Expr::Project({"A", StrCat("X", i)}, Expr::Base("R"))});
      views.push_back(ViewDef{
          StrCat("G", i),
          Expr::Project({"A", StrCat("X", i)}, Expr::Base("R"))});
    }
    ComplementOptions options;
    options.max_covers = 4096;
    size_t covers = 0;
    BenchRow row;
    row.name = StrCat("complement_fragments/width=", width);
    row.latency = SummarizeLatencies(MeasureLatenciesUs(5, [&] {
      ComplementResult result =
          Unwrap(ComputeComplement(views, *catalog, options), "complement");
      covers = result.per_base[0].cover_labels.size();
      benchmark::DoNotOptimize(result);
    }));
    row.counters["covers"] = static_cast<double>(covers);
    rows.push_back(std::move(row));
  }
  PrintBenchRows(rows);
  WriteBenchJson("covers", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
