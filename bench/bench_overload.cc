// B14 (see EXPERIMENTS.md): overload-graceful serving through the runtime
// governor. The same reader storm runs three ways against a warehouse that
// a writer keeps integrating at full tilt:
//
//   serve_idle          capacity-matched readers, no writer, no governor —
//                       the baseline the SLO multiple is measured against.
//   governed_storm      4x more readers than slots, every read admitted
//                       through a Governor with a per-query deadline token.
//                       Excess demand queues briefly, then times out or is
//                       shed; the reads that ARE served keep a p99 within a
//                       small multiple of idle because at most
//                       max_concurrent_reads of them ever run at once.
//   ungoverned_storm    the same storm with no admission control and no
//                       deadlines: every reader piles straight onto the
//                       warehouse and the tail inflates with the overload.
//
// Each row reports the *served* queries' p50/p99 and shed-adjusted ops/sec,
// plus counters: served, shed (ladder + queue-full), timed_out (queue-time
// deadline), cancelled (mid-query deadline), and for the governed storm the
// maximum deadline overrun — how far past its deadline a cancelled query
// ran before the evaluator's next check point caught it. Cancellation is
// cooperative, so the overrun should stay within one morsel/operator of the
// deadline, not one query.
//
// With --json, writes BENCH_overload.json. CI's perf-smoke job gates the
// idle and governed rows on ops_per_sec AND p99_us against the committed
// baseline; the ungoverned row is deliberately absent from the baseline
// (fresh-only rows never gate) because its tail is exactly the
// runner-noise-amplifying number the gate must not depend on.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/cancel.h"
#include "runtime/governor.h"
#include "util/string_util.h"
#include "warehouse/epoch.h"

namespace dwc {
namespace bench {
namespace {

constexpr size_t kDim = 1000;
constexpr size_t kFact = 8000;
constexpr size_t kWriterBatch = 16;
constexpr size_t kQueriesPerReader = 60;
constexpr size_t kGovernedSlots = 2;
constexpr size_t kStormReaders = 8;

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

enum class Mode { kIdle, kGoverned, kUngoverned };

struct ConfigResult {
  LatencyStats latency;     // Served (successful) queries only.
  size_t served = 0;
  size_t shed = 0;          // Ladder/queue-full refusals (ResourceExhausted).
  size_t timed_out = 0;     // Queue-time deadline expiries.
  size_t cancelled = 0;     // Mid-query deadline cancellations.
  double max_overrun_us = 0;  // Worst (completion - deadline) on cancel.
  double refreshes_s = 0;
  GovernorStats governor;
};

ConfigResult RunConfig(Mode mode, double deadline_us) {
  const size_t readers = mode == Mode::kIdle ? kGovernedSlots : kStormReaders;
  ScaledFigure1 scenario(kDim, kFact, /*referential=*/false, /*seed=*/7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  ExprRef query = Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"));
  (void)Unwrap(warehouse.AnswerQuery(query), "warmup");

  GovernorOptions gov;
  gov.max_concurrent_reads = kGovernedSlots;
  gov.max_concurrent_maintenance = 1;
  gov.max_read_queue = 4;
  // Queue depth drives the ladder; epoch lag stays out of this bench.
  gov.stale_only_queue_depth = 3;
  gov.maintenance_only_queue_depth = 4;
  Governor governor(gov);

  std::atomic<bool> stop{false};
  std::atomic<size_t> refreshes{0};
  std::thread writer;
  if (mode != Mode::kIdle) {
    writer = std::thread([&] {
      Rng rng(11);
      while (!stop.load(std::memory_order_acquire)) {
        UpdateOp op = scenario.MakeInsertBatch(kWriterBatch, &rng);
        CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
        Check(warehouse.Integrate(delta), "integrate");
        CanonicalDelta undo = Unwrap(
            source.Apply(UpdateOp{op.relation, {}, op.inserts}), "undo");
        Check(warehouse.Integrate(undo), "undo integrate");
        refreshes.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::vector<double>> per_thread(readers);
  struct ReaderCounts {
    size_t shed = 0;
    size_t timed_out = 0;
    size_t cancelled = 0;
    double max_overrun_us = 0;
  };
  std::vector<ReaderCounts> counts(readers);
  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      per_thread[r].reserve(kQueriesPerReader);
      // The stale fallback the ladder's kStaleOnly rung serves from.
      SnapshotHandle stale = warehouse.PinSnapshot();
      for (size_t i = 0; i < kQueriesPerReader; ++i) {
        std::shared_ptr<CancelToken> token;
        Governor::Ticket ticket;
        if (mode == Mode::kGoverned) {
          token = CancelToken::WithDeadline(
              std::chrono::microseconds(static_cast<int64_t>(deadline_us)));
          Result<Governor::Ticket> admitted =
              governor.AdmitRead(token.get(), /*allow_stale=*/true);
          if (!admitted.ok()) {
            if (admitted.status().code() == StatusCode::kDeadlineExceeded) {
              ++counts[r].timed_out;
            } else {
              Check(admitted.status().code() ==
                            StatusCode::kResourceExhausted
                        ? Status::Ok()
                        : admitted.status(),
                    "admit");
              ++counts[r].shed;
            }
            continue;
          }
          ticket = std::move(admitted).value();
        }
        auto start = std::chrono::steady_clock::now();
        Result<Relation> answer =
            mode == Mode::kGoverned && ticket.stale_only()
                ? warehouse.AnswerQueryAt(stale, query, nullptr, token.get())
                : warehouse.AnswerQuery(query, nullptr, token.get());
        if (!answer.ok()) {
          StatusCode code = answer.status().code();
          if (code == StatusCode::kDeadlineExceeded && token != nullptr) {
            ++counts[r].cancelled;
            double overrun_us =
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - token->deadline())
                    .count();
            counts[r].max_overrun_us =
                std::max(counts[r].max_overrun_us, overrun_us);
          } else if (code == StatusCode::kAborted) {
            // The epoch window shed the stale fallback; re-pin and go on.
            ++counts[r].shed;
            stale = warehouse.PinSnapshot();
          } else {
            Check(answer.status(), "query");
          }
          continue;
        }
        per_thread[r].push_back(ElapsedUs(start));
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  double wall_s = ElapsedUs(wall_start) / 1e6;
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) {
    writer.join();
  }

  ConfigResult result;
  std::vector<double> merged;
  for (std::vector<double>& v : per_thread) {
    merged.insert(merged.end(), v.begin(), v.end());
    v.clear();
  }
  for (const ReaderCounts& c : counts) {
    result.shed += c.shed;
    result.timed_out += c.timed_out;
    result.cancelled += c.cancelled;
    result.max_overrun_us = std::max(result.max_overrun_us, c.max_overrun_us);
  }
  result.served = merged.size();
  result.latency = SummarizeLatencies(std::move(merged));
  if (wall_s > 0) {
    result.latency.ops_per_sec = static_cast<double>(result.served) / wall_s;
    result.refreshes_s =
        mode != Mode::kIdle ? static_cast<double>(refreshes.load()) / wall_s
                            : 0.0;
  }
  result.governor = governor.stats();
  return result;
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kIdle:
      return "serve_idle";
    case Mode::kGoverned:
      return "governed_storm";
    case Mode::kUngoverned:
      return "ungoverned_storm";
  }
  return "unknown";
}

int Main(int argc, char** argv) {
  const bool json = JsonRequested(argc, argv);
  std::vector<BenchRow> rows;
  std::printf("%-28s %8s %10s %10s %10s %8s %8s %8s %12s\n", "configuration",
              "readers", "served/s", "p50 us", "p99 us", "served", "shed",
              "cancel", "overrun us");
  // The governed deadline is an SLO derived from idle capacity: generous
  // against p99 (a well-behaved query always fits), tight against a storm
  // (queue waits burn it fast).
  ConfigResult idle = RunConfig(Mode::kIdle, 0);
  double deadline_us = std::max(2000.0, idle.latency.p99_us * 8);
  for (Mode mode : {Mode::kIdle, Mode::kGoverned, Mode::kUngoverned}) {
    ConfigResult result =
        mode == Mode::kIdle ? idle : RunConfig(mode, deadline_us);
    const size_t readers =
        mode == Mode::kIdle ? kGovernedSlots : kStormReaders;
    BenchRow row;
    row.name = StrCat(ModeName(mode), "/readers=", readers);
    row.threads = readers;
    row.latency = result.latency;
    row.counters["served"] = static_cast<double>(result.served);
    row.counters["shed"] = static_cast<double>(result.shed);
    row.counters["timed_out"] = static_cast<double>(result.timed_out);
    row.counters["cancelled"] = static_cast<double>(result.cancelled);
    row.counters["max_overrun_us"] = result.max_overrun_us;
    row.counters["refreshes_s"] = result.refreshes_s;
    if (mode == Mode::kGoverned) {
      row.counters["deadline_us"] = deadline_us;
      row.counters["stale_reads"] =
          static_cast<double>(result.governor.stale_reads);
    }
    std::printf("%-28s %8zu %10.1f %10.1f %10.1f %8zu %8zu %8zu %12.1f\n",
                row.name.c_str(), readers, row.latency.ops_per_sec,
                row.latency.p50_us, row.latency.p99_us, result.served,
                result.shed + result.timed_out, result.cancelled,
                result.max_overrun_us);
    rows.push_back(std::move(row));
  }
  if (json) {
    WriteBenchJson("overload", rows);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
