#ifndef DWC_BENCH_BENCH_COMMON_H_
#define DWC_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/warehouse_spec.h"
#include "relational/database.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace bench {

// Benchmarks cannot return Status; die loudly instead.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << "benchmark setup failed (" << what
              << "): " << status.ToString() << "\n";
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

// A scaled version of the Figure 1 scenario: Emp (keyed dimension with
// `dim` clerks) and Sale (fact with `fact` rows referencing clerks),
// warehouse view Sold = Sale |x| Emp. With `referential` the IND
// clerk(Sale) <= clerk(Emp) is declared (emptying C_Sale, Example 2.4).
// Sales reference only the first half of the clerks, so C_Emp (clerks
// without sales — the paper's Paula) holds about dim/2 tuples.
struct ScaledFigure1 {
  std::shared_ptr<Catalog> catalog;
  Database db;
  std::vector<ViewDef> views;

  ScaledFigure1(size_t dim, size_t fact, bool referential, uint64_t seed) {
    catalog = std::make_shared<Catalog>();
    Check(catalog->AddRelation(
              "Emp", Schema({{"clerk", ValueType::kInt},
                             {"age", ValueType::kInt}})),
          "add Emp");
    Check(catalog->AddKey("Emp", {"clerk"}), "key Emp");
    Check(catalog->AddRelation(
              "Sale", Schema({{"item", ValueType::kInt},
                              {"clerk", ValueType::kInt}})),
          "add Sale");
    if (referential) {
      Check(catalog->AddInclusion(
                InclusionDependency{"Sale", {"clerk"}, "Emp", {"clerk"}}),
            "IND");
    }
    db = Database(catalog);
    Check(db.AddEmptyRelation("Emp", *catalog->FindSchema("Emp")), "emp rel");
    Check(db.AddEmptyRelation("Sale", *catalog->FindSchema("Sale")),
          "sale rel");
    Rng rng(seed);
    Relation* emp = db.FindMutableRelation("Emp");
    for (size_t i = 0; i < dim; ++i) {
      emp->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                         Value::Int(rng.Range(18, 65))}));
    }
    Relation* sale = db.FindMutableRelation("Sale");
    size_t inserted = 0;
    int64_t referenced = std::max<int64_t>(1, static_cast<int64_t>(dim) / 2);
    while (inserted < fact) {
      Tuple tuple({Value::Int(rng.Range(0, 1 << 24)),
                   Value::Int(rng.Range(0, referenced - 1))});
      if (sale->Insert(std::move(tuple))) {
        ++inserted;
      }
    }
    views.push_back(
        ViewDef{"Sold", Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"))});
  }

  // A batch of `n` fresh Sale rows referencing existing clerks.
  UpdateOp MakeInsertBatch(size_t n, Rng* rng) const {
    const Relation* sale = db.FindRelation("Sale");
    size_t dim = db.FindRelation("Emp")->size();
    UpdateOp op;
    op.relation = "Sale";
    while (op.inserts.size() < n) {
      Tuple tuple({Value::Int(rng->Range(0, 1 << 30)),
                   Value::Int(rng->Range(0, static_cast<int64_t>(dim) - 1))});
      if (!sale->Contains(tuple)) {
        op.inserts.push_back(std::move(tuple));
      }
    }
    return op;
  }
};

// --- JSON artifacts (custom-main benchmarks) --------------------------------
//
// Benchmarks with their own main() accept `--json` and then write a
// machine-readable BENCH_<name>.json next to the binary (one row per
// configuration: ops/sec, p50/p99 latency, thread count, extra counters).
// CI and EXPERIMENTS.md plots consume these artifacts.

// True when `--json` appears among the arguments.
inline bool JsonRequested(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      return true;
    }
  }
  return false;
}

struct LatencyStats {
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// Runs `op` once untimed (warmup), then `iterations` timed runs; returns
// per-iteration latencies in microseconds. The building block for the
// --json measurement loops (google-benchmark's adaptive iteration count
// would make artifact timings run-dependent; a fixed count keeps the JSON
// rows comparable across commits).
template <typename F>
inline std::vector<double> MeasureLatenciesUs(size_t iterations, F&& op) {
  op();
  std::vector<double> latencies;
  latencies.reserve(iterations);
  for (size_t i = 0; i < iterations; ++i) {
    auto start = std::chrono::steady_clock::now();
    op();
    latencies.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }
  return latencies;
}


// Order statistics over per-iteration latencies (microseconds).
inline LatencyStats SummarizeLatencies(std::vector<double> latencies_us) {
  LatencyStats stats;
  if (latencies_us.empty()) {
    return stats;
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  auto quantile = [&](double q) {
    size_t idx = static_cast<size_t>(q * (latencies_us.size() - 1));
    return latencies_us[idx];
  };
  stats.p50_us = quantile(0.5);
  stats.p99_us = quantile(0.99);
  double total_us = 0;
  for (double v : latencies_us) {
    total_us += v;
  }
  stats.ops_per_sec = total_us > 0 ? latencies_us.size() * 1e6 / total_us : 0;
  return stats;
}

// One benchmark configuration's results.
struct BenchRow {
  std::string name;
  size_t threads = 0;
  LatencyStats latency;
  std::map<std::string, double> counters;
};

// Writes BENCH_<bench_name>.json in the working directory.
inline void WriteBenchJson(const std::string& bench_name,
                           const std::vector<BenchRow>& rows) {
  std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    std::abort();
  }
  out << "{\n  \"benchmark\": \"" << bench_name << "\",\n  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\", \"threads\": "
        << row.threads << ", \"ops_per_sec\": " << row.latency.ops_per_sec
        << ", \"p50_us\": " << row.latency.p50_us
        << ", \"p99_us\": " << row.latency.p99_us;
    for (const auto& [key, value] : row.counters) {
      out << ", \"" << key << "\": " << value;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

// Console rendering of JSON-mode rows (one line per row), so --json runs
// are still human-readable in CI logs.
inline void PrintBenchRows(const std::vector<BenchRow>& rows) {
  std::printf("%-40s %12s %12s %12s\n", "configuration", "ops/sec", "p50 us",
              "p99 us");
  for (const BenchRow& row : rows) {
    std::printf("%-40s %12.1f %12.1f %12.1f", row.name.c_str(),
                row.latency.ops_per_sec, row.latency.p50_us,
                row.latency.p99_us);
    for (const auto& [key, value] : row.counters) {
      std::printf("  %s=%.3g", key.c_str(), value);
    }
    std::printf("\n");
  }
}

}  // namespace bench
}  // namespace dwc

#endif  // DWC_BENCH_BENCH_COMMON_H_
