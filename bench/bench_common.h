#ifndef DWC_BENCH_BENCH_COMMON_H_
#define DWC_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/warehouse_spec.h"
#include "relational/database.h"
#include "util/rng.h"
#include "warehouse/warehouse.h"

namespace dwc {
namespace bench {

// Benchmarks cannot return Status; die loudly instead.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << "benchmark setup failed (" << what
              << "): " << status.ToString() << "\n";
    std::abort();
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  Check(result.status(), what);
  return std::move(result).value();
}

// A scaled version of the Figure 1 scenario: Emp (keyed dimension with
// `dim` clerks) and Sale (fact with `fact` rows referencing clerks),
// warehouse view Sold = Sale |x| Emp. With `referential` the IND
// clerk(Sale) <= clerk(Emp) is declared (emptying C_Sale, Example 2.4).
// Sales reference only the first half of the clerks, so C_Emp (clerks
// without sales — the paper's Paula) holds about dim/2 tuples.
struct ScaledFigure1 {
  std::shared_ptr<Catalog> catalog;
  Database db;
  std::vector<ViewDef> views;

  ScaledFigure1(size_t dim, size_t fact, bool referential, uint64_t seed) {
    catalog = std::make_shared<Catalog>();
    Check(catalog->AddRelation(
              "Emp", Schema({{"clerk", ValueType::kInt},
                             {"age", ValueType::kInt}})),
          "add Emp");
    Check(catalog->AddKey("Emp", {"clerk"}), "key Emp");
    Check(catalog->AddRelation(
              "Sale", Schema({{"item", ValueType::kInt},
                              {"clerk", ValueType::kInt}})),
          "add Sale");
    if (referential) {
      Check(catalog->AddInclusion(
                InclusionDependency{"Sale", {"clerk"}, "Emp", {"clerk"}}),
            "IND");
    }
    db = Database(catalog);
    Check(db.AddEmptyRelation("Emp", *catalog->FindSchema("Emp")), "emp rel");
    Check(db.AddEmptyRelation("Sale", *catalog->FindSchema("Sale")),
          "sale rel");
    Rng rng(seed);
    Relation* emp = db.FindMutableRelation("Emp");
    for (size_t i = 0; i < dim; ++i) {
      emp->Insert(Tuple({Value::Int(static_cast<int64_t>(i)),
                         Value::Int(rng.Range(18, 65))}));
    }
    Relation* sale = db.FindMutableRelation("Sale");
    size_t inserted = 0;
    int64_t referenced = std::max<int64_t>(1, static_cast<int64_t>(dim) / 2);
    while (inserted < fact) {
      Tuple tuple({Value::Int(rng.Range(0, 1 << 24)),
                   Value::Int(rng.Range(0, referenced - 1))});
      if (sale->Insert(std::move(tuple))) {
        ++inserted;
      }
    }
    views.push_back(
        ViewDef{"Sold", Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"))});
  }

  // A batch of `n` fresh Sale rows referencing existing clerks.
  UpdateOp MakeInsertBatch(size_t n, Rng* rng) const {
    const Relation* sale = db.FindRelation("Sale");
    size_t dim = db.FindRelation("Emp")->size();
    UpdateOp op;
    op.relation = "Sale";
    while (op.inserts.size() < n) {
      Tuple tuple({Value::Int(rng->Range(0, 1 << 30)),
                   Value::Int(rng->Range(0, static_cast<int64_t>(dim) - 1))});
      if (!sale->Contains(tuple)) {
        op.inserts.push_back(std::move(tuple));
      }
    }
    return op;
  }
};

}  // namespace bench
}  // namespace dwc

#endif  // DWC_BENCH_BENCH_COMMON_H_
