// B9: refresh throughput under channel faults. Each iteration pushes one
// Sale insert batch through a DeltaChannel + DeltaIngestor pair and drains
// to full reconciliation, at fault rates {0, 1%, 5%, 20%} applied uniformly
// to drop / duplicate / reorder / corrupt. BM_DirectRefresh is the
// channel-free reference point.
//
// Expected shape: the faultless channel costs a checksum and some
// bookkeeping over direct integration; low fault rates add occasional
// outbox retransmissions (still zero source queries when nothing is truly
// lost); at 20% the recovery ladder's counted resyncs dominate — graceful
// degradation, visible in the src_queries / resync counters.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "warehouse/channel.h"
#include "warehouse/ingest.h"

namespace dwc {
namespace bench {
namespace {

void BM_DirectRefresh(benchmark::State& state) {
  ScaledFigure1 scenario(1000, 8000, /*referential=*/false, 7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    UpdateOp op = scenario.MakeInsertBatch(8, &rng);
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    state.ResumeTiming();
    Check(warehouse.Integrate(delta), "integrate");
    state.PauseTiming();
    CanonicalDelta undo =
        Unwrap(source.Apply(UpdateOp{op.relation, {}, op.inserts}), "undo");
    Check(warehouse.Integrate(undo), "undo integrate");
    state.ResumeTiming();
  }
  state.counters["src_queries"] = static_cast<double>(source.query_count());
}

void BM_FaultyRefresh(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  ScaledFigure1 scenario(1000, 8000, /*referential=*/false, 7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");
  FaultProfile profile;
  profile.drop_rate = rate;
  profile.duplicate_rate = rate;
  profile.reorder_rate = rate;
  profile.corrupt_rate = rate;
  profile.seed = 17;
  DeltaChannel channel(profile);
  DeltaIngestor ingestor(&warehouse, &source, &channel);
  auto pump = [&channel, &ingestor] {
    for (std::optional<CanonicalDelta> got = channel.Poll(); got;
         got = channel.Poll()) {
      Check(ingestor.Receive(*got), "receive");
    }
  };
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    UpdateOp op = scenario.MakeInsertBatch(8, &rng);
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    state.ResumeTiming();
    channel.Send(delta);
    pump();
    Check(ingestor.Drain(), "drain");
    state.PauseTiming();
    // Untimed rollback, also through the channel so the ingestor's
    // sequence/digest tracking stays live across iterations.
    CanonicalDelta undo =
        Unwrap(source.Apply(UpdateOp{op.relation, {}, op.inserts}), "undo");
    channel.Send(undo);
    pump();
    Check(ingestor.Drain(), "undo drain");
    state.ResumeTiming();
  }
  const IntegrationStats& stats = ingestor.stats();
  state.counters["src_queries"] = static_cast<double>(source.query_count());
  state.counters["gaps"] = static_cast<double>(stats.gaps_detected);
  state.counters["retransmits"] = static_cast<double>(stats.retransmits);
  state.counters["base_resyncs"] = static_cast<double>(stats.base_resyncs);
  state.counters["full_resyncs"] = static_cast<double>(stats.full_resyncs);
  state.counters["backoff_ticks"] = static_cast<double>(stats.backoff_ticks);
}

BENCHMARK(BM_DirectRefresh)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FaultyRefresh)
    ->Arg(0)
    ->Arg(1)
    ->Arg(5)
    ->Arg(20)
    ->Unit(benchmark::kMicrosecond);

// --json: fixed-iteration sweep over the fault-rate grid (plus the
// channel-free direct path at rate < 0), written to
// BENCH_fault_tolerance.json.
void JsonRow(int rate_pct, size_t iterations, std::vector<BenchRow>* rows) {
  ScaledFigure1 scenario(1000, 8000, /*referential=*/false, 7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  const bool direct = rate_pct < 0;
  FaultProfile profile;
  if (!direct) {
    const double rate = static_cast<double>(rate_pct) / 100.0;
    profile.drop_rate = rate;
    profile.duplicate_rate = rate;
    profile.reorder_rate = rate;
    profile.corrupt_rate = rate;
    profile.seed = 17;
  }
  DeltaChannel channel(profile);
  DeltaIngestor ingestor(&warehouse, &source, &channel);
  auto pump = [&channel, &ingestor] {
    for (std::optional<CanonicalDelta> got = channel.Poll(); got;
         got = channel.Poll()) {
      Check(ingestor.Receive(*got), "receive");
    }
  };
  Rng rng(11);
  auto refresh = [&](bool timed, std::vector<double>* latencies) {
    UpdateOp op = scenario.MakeInsertBatch(8, &rng);
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    auto start = std::chrono::steady_clock::now();
    if (direct) {
      Check(warehouse.Integrate(delta), "integrate");
    } else {
      channel.Send(delta);
      pump();
      Check(ingestor.Drain(), "drain");
    }
    if (timed) {
      latencies->push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    }
    CanonicalDelta undo =
        Unwrap(source.Apply(UpdateOp{op.relation, {}, op.inserts}), "undo");
    if (direct) {
      Check(warehouse.Integrate(undo), "undo integrate");
    } else {
      channel.Send(undo);
      pump();
      Check(ingestor.Drain(), "undo drain");
    }
  };
  refresh(/*timed=*/false, nullptr);  // Warmup.
  std::vector<double> latencies;
  for (size_t i = 0; i < iterations; ++i) {
    refresh(/*timed=*/true, &latencies);
  }
  BenchRow row;
  row.name = direct ? "direct_refresh"
                    : StrCat("faulty_refresh/rate_pct=", rate_pct);
  row.threads = 1;
  row.latency = SummarizeLatencies(std::move(latencies));
  row.counters["src_queries"] = static_cast<double>(source.query_count());
  if (!direct) {
    const IntegrationStats& stats = ingestor.stats();
    row.counters["gaps"] = static_cast<double>(stats.gaps_detected);
    row.counters["retransmits"] = static_cast<double>(stats.retransmits);
    row.counters["base_resyncs"] = static_cast<double>(stats.base_resyncs);
    row.counters["full_resyncs"] = static_cast<double>(stats.full_resyncs);
    row.counters["backoff_ticks"] =
        static_cast<double>(stats.backoff_ticks);
  }
  rows->push_back(std::move(row));
}

int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  for (int rate_pct : {-1, 0, 1, 5, 20}) {
    JsonRow(rate_pct, /*iterations=*/15, &rows);
  }
  PrintBenchRows(rows);
  WriteBenchJson("fault_tolerance", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
