#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.25]

Compares rows by name: the check fails if any baseline row is missing
from the fresh run, or if a fresh row's ops_per_sec dropped more than
`threshold` (fraction) below the baseline's. Rows present only in the
fresh run are reported but never fail the check, so adding a
configuration does not require regenerating the baseline first.

Stdlib only — CI runs this straight from the checkout.
"""

import argparse
import json
import sys


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row["name"]] = float(row.get("ops_per_sec", 0.0))
    if not rows:
        sys.exit(f"error: {path} contains no benchmark rows")
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional ops/sec drop before failing (default 0.25)",
    )
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    failures = []
    print(f"{'configuration':<44} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name, base_ops in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"row missing from fresh run: {name}")
            print(f"{name:<44} {base_ops:>12.1f} {'MISSING':>12}")
            continue
        fresh_ops = fresh[name]
        ratio = fresh_ops / base_ops if base_ops > 0 else float("inf")
        flag = ""
        if fresh_ops < base_ops * (1.0 - args.threshold):
            failures.append(
                f"{name}: ops/sec fell {1.0 - ratio:.1%} "
                f"({base_ops:.1f} -> {fresh_ops:.1f}), "
                f"threshold is {args.threshold:.0%}"
            )
            flag = "  REGRESSED"
        print(
            f"{name:<44} {base_ops:>12.1f} {fresh_ops:>12.1f} "
            f"{ratio:>6.2f}x{flag}"
        )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<44} {'(new)':>12} {fresh[name]:>12.1f}")

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"\nok: no row regressed more than {args.threshold:.0%}")


if __name__ == "__main__":
    main()
