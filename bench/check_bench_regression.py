#!/usr/bin/env python3
"""Gate a fresh BENCH_*.json against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.25]
                              [--metric ops_per_sec|p50_us|p99_us ...]

Compares rows by name: the check fails if any baseline row is missing
from the fresh run, or if a fresh row's metric regressed more than
`threshold` (fraction) relative to the baseline's. Direction follows the
metric: ops_per_sec is higher-is-better (fail on drops), the latency
percentiles p50_us/p99_us are lower-is-better (fail on rises). Rows
present only in the fresh run are reported but never fail the check, so
adding a configuration does not require regenerating the baseline first.

`--metric` may repeat to gate several metrics of the same suite in one
invocation (e.g. `--metric ops_per_sec --metric p99_us` for a serving
benchmark where both throughput collapses and tail-latency blowups are
regressions); every metric uses the same threshold, and a single missing
row is reported once per metric. Omitting the flag gates ops_per_sec
only, exactly as before.

Stdlib only — CI runs this straight from the checkout.
"""

import argparse
import json
import sys

# Metric name -> True when larger values are better.
METRICS = {
    "ops_per_sec": True,
    "p50_us": False,
    "p99_us": False,
}


def load_rows(path, metric):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row["name"]] = float(row.get(metric, 0.0))
    if not rows:
        sys.exit(f"error: {path} contains no benchmark rows")
    return rows


def check_metric(args, metric):
    """Prints the comparison table for one metric; returns its failures."""
    higher_is_better = METRICS[metric]
    baseline = load_rows(args.baseline, metric)
    fresh = load_rows(args.fresh, metric)

    failures = []
    print(
        f"metric: {metric} "
        f"({'higher' if higher_is_better else 'lower'} is better)"
    )
    print(f"{'configuration':<44} {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name, base_value in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"row missing from fresh run: {name}")
            print(f"{name:<44} {base_value:>12.1f} {'MISSING':>12}")
            continue
        fresh_value = fresh[name]
        ratio = fresh_value / base_value if base_value > 0 else float("inf")
        if higher_is_better:
            regressed = fresh_value < base_value * (1.0 - args.threshold)
            delta = f"fell {1.0 - ratio:.1%}"
        else:
            regressed = fresh_value > base_value * (1.0 + args.threshold)
            delta = f"rose {ratio - 1.0:.1%}"
        flag = ""
        if regressed:
            failures.append(
                f"{name}: {metric} {delta} "
                f"({base_value:.1f} -> {fresh_value:.1f}), "
                f"threshold is {args.threshold:.0%}"
            )
            flag = "  REGRESSED"
        print(
            f"{name:<44} {base_value:>12.1f} {fresh_value:>12.1f} "
            f"{ratio:>6.2f}x{flag}"
        )
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<44} {'(new)':>12} {fresh[name]:>12.1f}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression before failing (default 0.25)",
    )
    parser.add_argument(
        "--metric",
        action="append",
        choices=sorted(METRICS),
        default=None,
        help="row field to compare; repeatable to gate several metrics at "
        "once (default ops_per_sec; the *_us latency percentiles gate in "
        "the lower-is-better direction)",
    )
    args = parser.parse_args()
    metrics = args.metric or ["ops_per_sec"]

    failures = []
    for i, metric in enumerate(metrics):
        if i > 0:
            print()
        failures.extend(check_metric(args, metric))

    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        sys.exit(1)
    print(f"\nok: no row regressed more than {args.threshold:.0%}")


if __name__ == "__main__":
    main()
