// B1 / E3 (DESIGN.md): how much auxiliary data a warehouse must store for
// independence, and how key/inclusion constraints shrink it (Section 2).
//
// Each benchmark computes the complement for a scenario and reports:
//   complement_tuples — total tuples across materialized complement views
//   trivial_tuples    — the trivial complement (copy all of D)
//   stored_views      — number of complement views actually materialized
//   ratio_pct         — complement as % of the trivial copy
// Wall time measures ComputeComplement itself (Step 1 of Section 5).
//
// Expected shape: ratio drops from "most of D" with no view coverage to 0%
// once constraints apply (Examples 2.3/2.4, star schemata in Section 5).

#include <benchmark/benchmark.h>

#include <chrono>

#include "algebra/environment.h"
#include "algebra/evaluator.h"
#include "bench/bench_common.h"
#include "core/complement.h"
#include "core/ordering.h"
#include "workload/star_schema.h"

namespace dwc {
namespace bench {
namespace {

struct Scenario {
  std::shared_ptr<Catalog> catalog;
  Database db;
  std::vector<ViewDef> views;
};

Scenario MakeFigure1(bool referential) {
  ScaledFigure1 fig(/*dim=*/512, /*fact=*/4096, referential, /*seed=*/3);
  return Scenario{fig.catalog, std::move(fig.db), fig.views};
}

Scenario MakeStar() {
  StarSchemaConfig config;
  config.customers = 100;
  config.suppliers = 30;
  config.parts = 200;
  config.locations = 12;
  config.orders = 800;
  config.sales = 3000;
  StarSchema star = Unwrap(BuildStarSchema(config), "star");
  return Scenario{star.catalog, std::move(star.db), star.views};
}

void ReportSizes(benchmark::State& state, const Scenario& scenario,
                 const ComplementResult& complement) {
  // Materialize views, then complements, and count tuples.
  Environment env = Environment::FromDatabase(scenario.db);
  std::vector<std::unique_ptr<Relation>> owned;
  for (const ViewDef& view : scenario.views) {
    owned.push_back(std::make_unique<Relation>(
        Unwrap(EvalExpr(*view.expr, env), "view")));
    env.Bind(view.name, owned.back().get());
  }
  size_t complement_tuples =
      Unwrap(TotalTuples(complement.complements, env), "sizes");
  size_t trivial_tuples = 0;
  for (const auto& [name, rel] : scenario.db.relations()) {
    (void)name;
    trivial_tuples += rel->size();
  }
  state.counters["complement_tuples"] =
      static_cast<double>(complement_tuples);
  state.counters["trivial_tuples"] = static_cast<double>(trivial_tuples);
  state.counters["stored_views"] =
      static_cast<double>(complement.complements.size());
  state.counters["ratio_pct"] =
      trivial_tuples == 0
          ? 0.0
          : 100.0 * static_cast<double>(complement_tuples) /
                static_cast<double>(trivial_tuples);
}

void RunScenario(benchmark::State& state, const Scenario& scenario,
                 bool use_constraints) {
  ComplementOptions options;
  options.use_constraints = use_constraints;
  ComplementResult complement;
  for (auto _ : state) {
    complement = Unwrap(
        ComputeComplement(scenario.views, *scenario.catalog, options),
        "complement");
    benchmark::DoNotOptimize(complement);
  }
  ReportSizes(state, scenario, complement);
}

void BM_Figure1_NoConstraints(benchmark::State& state) {
  Scenario scenario = MakeFigure1(/*referential=*/false);
  RunScenario(state, scenario, /*use_constraints=*/false);
}
void BM_Figure1_WithReferentialIntegrity(benchmark::State& state) {
  // Example 2.4: the IND empties C_Sale; only C_Emp (clerks without sales)
  // remains.
  Scenario scenario = MakeFigure1(/*referential=*/true);
  RunScenario(state, scenario, /*use_constraints=*/true);
}
void BM_Star_NoConstraints(benchmark::State& state) {
  Scenario scenario = MakeStar();
  RunScenario(state, scenario, /*use_constraints=*/false);
}
void BM_Star_WithConstraints(benchmark::State& state) {
  // Section 5: foreign keys empty every complement.
  Scenario scenario = MakeStar();
  RunScenario(state, scenario, /*use_constraints=*/true);
}

BENCHMARK(BM_Figure1_NoConstraints)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Figure1_WithReferentialIntegrity)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Star_NoConstraints)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Star_WithConstraints)->Unit(benchmark::kMicrosecond);

// --json: fixed-iteration timings of ComputeComplement per scenario plus
// the size counters, written to BENCH_complement_size.json.
void JsonRow(const char* label, const Scenario& scenario,
             bool use_constraints, std::vector<BenchRow>* rows) {
  ComplementOptions options;
  options.use_constraints = use_constraints;
  ComplementResult complement = Unwrap(
      ComputeComplement(scenario.views, *scenario.catalog, options),
      "warmup");
  std::vector<double> latencies;
  for (size_t i = 0; i < 20; ++i) {
    auto start = std::chrono::steady_clock::now();
    complement = Unwrap(
        ComputeComplement(scenario.views, *scenario.catalog, options),
        "complement");
    latencies.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
  }

  Environment env = Environment::FromDatabase(scenario.db);
  std::vector<std::unique_ptr<Relation>> owned;
  for (const ViewDef& view : scenario.views) {
    owned.push_back(std::make_unique<Relation>(
        Unwrap(EvalExpr(*view.expr, env), "view")));
    env.Bind(view.name, owned.back().get());
  }
  size_t complement_tuples =
      Unwrap(TotalTuples(complement.complements, env), "sizes");
  size_t trivial_tuples = 0;
  for (const auto& [name, rel] : scenario.db.relations()) {
    (void)name;
    trivial_tuples += rel->size();
  }

  BenchRow row;
  row.name = label;
  row.threads = 1;
  row.latency = SummarizeLatencies(std::move(latencies));
  row.counters["complement_tuples"] =
      static_cast<double>(complement_tuples);
  row.counters["trivial_tuples"] = static_cast<double>(trivial_tuples);
  row.counters["stored_views"] =
      static_cast<double>(complement.complements.size());
  row.counters["ratio_pct"] =
      trivial_tuples == 0
          ? 0.0
          : 100.0 * static_cast<double>(complement_tuples) /
                static_cast<double>(trivial_tuples);
  rows->push_back(std::move(row));
}

int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  {
    Scenario scenario = MakeFigure1(/*referential=*/false);
    JsonRow("figure1/no_constraints", scenario, /*use_constraints=*/false,
            &rows);
  }
  {
    Scenario scenario = MakeFigure1(/*referential=*/true);
    JsonRow("figure1/referential_integrity", scenario,
            /*use_constraints=*/true, &rows);
  }
  {
    Scenario scenario = MakeStar();
    JsonRow("star/no_constraints", scenario, /*use_constraints=*/false,
            &rows);
    JsonRow("star/with_constraints", scenario, /*use_constraints=*/true,
            &rows);
  }
  PrintBenchRows(rows);
  WriteBenchJson("complement_size", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
