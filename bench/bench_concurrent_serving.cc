// B13 (see EXPERIMENTS.md): snapshot-isolated serving latency while the
// warehouse integrates at full tilt. Reader threads run analytical queries
// through AnswerQuery (pin epoch, evaluate lock-free, release) while one
// writer thread pushes insert/undo refresh pairs through Integrate with no
// think time. Each configuration reports the readers' query p50/p99 and
// ops/sec, plus the writer's refresh rate and the epoch machinery's
// commit-path and reclamation counters.
//
// Expected shape: serving latency under integration stays within a small
// factor of idle latency — readers never block on the writer, they only
// pay cache-effect interference and the occasional COW epoch's allocation
// traffic. shed_snapshots stays 0 because AnswerQuery pins for one query
// at a time and can never lag the bounded epoch window.
//
// With --json, writes BENCH_concurrent_serving.json; CI's perf-smoke job
// gates the p99 of these rows (lower is better) at 25%.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "warehouse/epoch.h"

namespace dwc {
namespace bench {
namespace {

constexpr size_t kDim = 1000;
constexpr size_t kFact = 8000;
constexpr size_t kWriterBatch = 16;
constexpr size_t kQueriesPerReader = 80;

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ConfigResult {
  LatencyStats latency;       // Reader-side query latency, all threads merged.
  double refreshes_s = 0;     // Writer refreshes per second (0 when idle).
  EpochStats epochs;          // Final epoch-machinery counters.
  size_t shed_queries = 0;    // Queries aborted by the shed policy.
};

// One serving configuration: `readers` closed-loop query threads, with or
// without a concurrent full-tilt writer.
ConfigResult RunConfig(size_t readers, bool with_writer) {
  ScaledFigure1 scenario(kDim, kFact, /*referential=*/false, /*seed=*/7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  // The serving query: a probe-heavy join over the reconstructed base
  // state, translated against the warehouse's stored views.
  ExprRef query = Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"));
  (void)Unwrap(warehouse.AnswerQuery(query), "warmup");

  std::atomic<bool> stop{false};
  std::atomic<size_t> refreshes{0};
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&] {
      Rng rng(11);
      while (!stop.load(std::memory_order_acquire)) {
        UpdateOp op = scenario.MakeInsertBatch(kWriterBatch, &rng);
        CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
        Check(warehouse.Integrate(delta), "integrate");
        // Undo so the state size (and thus query cost) stays fixed.
        CanonicalDelta undo = Unwrap(
            source.Apply(UpdateOp{op.relation, {}, op.inserts}), "undo");
        Check(warehouse.Integrate(undo), "undo integrate");
        refreshes.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::vector<double>> per_thread(readers);
  std::vector<size_t> shed(readers, 0);
  auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (size_t r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      per_thread[r].reserve(kQueriesPerReader);
      for (size_t i = 0; i < kQueriesPerReader; ++i) {
        auto start = std::chrono::steady_clock::now();
        Result<Relation> answer = warehouse.AnswerQuery(query);
        if (!answer.ok()) {
          // The only tolerated failure is the shed policy cutting loose a
          // lagging snapshot; anything else is a bug.
          Check(answer.status().code() == StatusCode::kAborted
                    ? Status::Ok()
                    : answer.status(),
                "query");
          ++shed[r];
          continue;
        }
        per_thread[r].push_back(ElapsedUs(start));
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  double wall_s = ElapsedUs(wall_start) / 1e6;
  stop.store(true, std::memory_order_release);
  if (writer.joinable()) {
    writer.join();
  }

  ConfigResult result;
  std::vector<double> merged;
  for (std::vector<double>& v : per_thread) {
    merged.insert(merged.end(), v.begin(), v.end());
    v.clear();
  }
  for (size_t s : shed) {
    result.shed_queries += s;
  }
  result.latency = SummarizeLatencies(std::move(merged));
  // SummarizeLatencies derives ops/sec from the per-op latency sum; with
  // concurrent readers the wall-clock aggregate is the honest number.
  if (wall_s > 0) {
    result.latency.ops_per_sec =
        static_cast<double>(readers * kQueriesPerReader -
                            result.shed_queries) /
        wall_s;
    result.refreshes_s =
        with_writer ? static_cast<double>(refreshes.load()) / wall_s : 0.0;
  }
  result.epochs = warehouse.epoch_stats();
  return result;
}

int Main(int argc, char** argv) {
  const bool json = JsonRequested(argc, argv);
  std::vector<BenchRow> rows;
  std::printf("%-36s %8s %12s %12s %12s %12s\n", "configuration", "readers",
              "query/s", "p50 us", "p99 us", "refresh/s");
  for (bool with_writer : {false, true}) {
    for (size_t readers : {size_t{1}, size_t{4}}) {
      ConfigResult result = RunConfig(readers, with_writer);
      BenchRow row;
      row.name = StrCat(with_writer ? "serve_under_integration" : "serve_idle",
                        "/readers=", readers);
      row.threads = readers;
      row.latency = result.latency;
      row.counters["refreshes_s"] = result.refreshes_s;
      row.counters["epochs_published"] =
          static_cast<double>(result.epochs.published);
      row.counters["inplace_commits"] =
          static_cast<double>(result.epochs.inplace_commits);
      row.counters["cow_commits"] =
          static_cast<double>(result.epochs.cow_commits);
      row.counters["reclaimed_epochs"] =
          static_cast<double>(result.epochs.reclaimed_epochs);
      row.counters["shed_queries"] =
          static_cast<double>(result.shed_queries);
      std::printf("%-36s %8zu %12.1f %12.1f %12.1f %12.1f\n",
                  row.name.c_str(), readers, row.latency.ops_per_sec,
                  row.latency.p50_us, row.latency.p99_us,
                  result.refreshes_s);
      rows.push_back(std::move(row));
    }
  }
  if (json) {
    WriteBenchJson("concurrent_serving", rows);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
