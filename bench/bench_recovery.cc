// B10: recovery time vs WAL length, and how the checkpoint policy bounds
// it. BM_RecoveryReplay recovers a directory whose WAL holds N deltas
// beyond the checkpoint — recovery time is expected to grow linearly with
// N (checkpoint load + N interpreter replays, each digest-verified).
// BM_PolicyBoundedRecovery ingests a 512+(M-1)-delta stream under
// JournalPolicy max_records = M: the policy folds the log into a fresh
// checkpoint every M records, so recovery replays at most M-1 records
// regardless of history length — the knob that turns unbounded replay
// into a constant. The history is sized to leave exactly that worst-case
// residue in the WAL.
//
// Recovery runs with repair=false (read-only), so every iteration sees the
// identical directory.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "bench/bench_common.h"
#include "storage/durable.h"
#include "storage/fault_vfs.h"
#include "storage/recovery.h"
#include "util/string_util.h"
#include "warehouse/source.h"

namespace dwc {
namespace bench {
namespace {

// A directory with one checkpoint and `deltas` WAL records, plus the live
// warehouse context needed to keep everything alive.
struct PreparedDirectory {
  std::unique_ptr<ScaledFigure1> scenario;
  std::shared_ptr<WarehouseSpec> spec;
  std::unique_ptr<Source> source;
  std::unique_ptr<Warehouse> warehouse;
  std::unique_ptr<DurableWarehouse> durable;
  FaultVfs vfs;

  PreparedDirectory(size_t deltas, size_t policy_max_records) {
    scenario = std::make_unique<ScaledFigure1>(200, 1000,
                                               /*referential=*/false, 7);
    ComplementOptions options;
    options.use_constraints = false;
    spec = std::make_shared<WarehouseSpec>(Unwrap(
        SpecifyWarehouse(scenario->catalog, scenario->views, options),
        "spec"));
    source = std::make_unique<Source>(scenario->db, "s1");
    warehouse = std::make_unique<Warehouse>(
        Unwrap(Warehouse::Load(spec, source->db()), "load"));
    StorageOptions storage;
    if (policy_max_records > 0) {
      storage.policy.max_records = policy_max_records;
    } else {
      // "Unbounded": defeat the default policy so the WAL keeps all N
      // records and replay cost is measured against the full log.
      storage.policy.max_records = static_cast<size_t>(-1);
      storage.policy.max_bytes = static_cast<size_t>(-1);
    }
    durable = Unwrap(
        DurableWarehouse::Bootstrap(
            &vfs, "wh", warehouse.get(),
            JournalStamp{source->epoch(), source->last_sequence()}, storage),
        "bootstrap");
    Rng rng(11);
    for (size_t i = 0; i < deltas; ++i) {
      CanonicalDelta delta = Unwrap(
          source->Apply(scenario->MakeInsertBatch(1, &rng)), "apply");
      Check(durable->Integrate(delta, source.get()), "integrate");
    }
  }
};

void BM_RecoveryReplay(benchmark::State& state) {
  // No policy: the WAL keeps all N deltas past the bootstrap checkpoint.
  PreparedDirectory prepared(static_cast<size_t>(state.range(0)),
                             /*policy_max_records=*/0);
  uint64_t replayed = 0;
  for (auto _ : state) {
    RecoveryManager manager(&prepared.vfs, "wh");
    RecoveredStorage recovered =
        Unwrap(manager.Recover(/*repair=*/false), "recover");
    replayed = recovered.report.records_replayed;
    benchmark::DoNotOptimize(recovered.restored.warehouse);
  }
  state.counters["wal_records"] = static_cast<double>(replayed);
}

void BM_PolicyBoundedRecovery(benchmark::State& state) {
  // Varying checkpoint cadence M, history sized to leave the worst-case
  // residue (M - 1 records past the last policy checkpoint): replay work
  // is capped by the policy, not by history length.
  const size_t cadence = static_cast<size_t>(state.range(0));
  PreparedDirectory prepared(/*deltas=*/512 + cadence - 1, cadence);
  uint64_t replayed = 0;
  for (auto _ : state) {
    RecoveryManager manager(&prepared.vfs, "wh");
    RecoveredStorage recovered =
        Unwrap(manager.Recover(/*repair=*/false), "recover");
    replayed = recovered.report.records_replayed;
    benchmark::DoNotOptimize(recovered.restored.warehouse);
  }
  state.counters["wal_records"] = static_cast<double>(replayed);
  state.counters["checkpoints"] =
      static_cast<double>(prepared.durable->stats().checkpoints);
}

BENCHMARK(BM_RecoveryReplay)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyBoundedRecovery)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// --json: fixed-iteration recovery timings over the same grids, written to
// BENCH_recovery.json. The 1024-record replay point is dropped from the
// sweep to keep the perf-smoke job fast; the trend is visible from the
// remaining points.
void JsonRow(const char* label, size_t arg, size_t deltas,
             size_t policy_max_records, size_t iterations,
             std::vector<BenchRow>* rows) {
  PreparedDirectory prepared(deltas, policy_max_records);
  uint64_t replayed = 0;
  std::vector<double> latencies;
  for (size_t i = 0; i < iterations; ++i) {
    RecoveryManager manager(&prepared.vfs, "wh");
    auto start = std::chrono::steady_clock::now();
    RecoveredStorage recovered =
        Unwrap(manager.Recover(/*repair=*/false), "recover");
    latencies.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    replayed = recovered.report.records_replayed;
    benchmark::DoNotOptimize(recovered.restored.warehouse);
  }
  BenchRow row;
  row.name = StrCat(label, "=", arg);
  row.threads = 1;
  row.latency = SummarizeLatencies(std::move(latencies));
  row.counters["wal_records"] = static_cast<double>(replayed);
  if (policy_max_records > 0) {
    row.counters["checkpoints"] =
        static_cast<double>(prepared.durable->stats().checkpoints);
  }
  rows->push_back(std::move(row));
}

int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  for (size_t deltas : {size_t{16}, size_t{64}, size_t{256}}) {
    JsonRow("replay/wal", deltas, deltas, /*policy_max_records=*/0,
            /*iterations=*/5, &rows);
  }
  for (size_t cadence : {size_t{32}, size_t{128}, size_t{512}}) {
    JsonRow("policy_bounded/cadence", cadence, 512 + cadence - 1, cadence,
            /*iterations=*/5, &rows);
  }
  PrintBenchRows(rows);
  WriteBenchJson("recovery", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
