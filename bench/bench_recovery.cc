// B10: recovery time vs WAL length, and how the checkpoint policy bounds
// it. BM_RecoveryReplay recovers a directory whose WAL holds N deltas
// beyond the checkpoint — recovery time is expected to grow linearly with
// N (checkpoint load + N interpreter replays, each digest-verified).
// BM_PolicyBoundedRecovery ingests a 512+(M-1)-delta stream under
// JournalPolicy max_records = M: the policy folds the log into a fresh
// checkpoint every M records, so recovery replays at most M-1 records
// regardless of history length — the knob that turns unbounded replay
// into a constant. The history is sized to leave exactly that worst-case
// residue in the WAL.
//
// Recovery runs with repair=false (read-only), so every iteration sees the
// identical directory.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "storage/durable.h"
#include "storage/fault_vfs.h"
#include "storage/recovery.h"
#include "warehouse/source.h"

namespace dwc {
namespace bench {
namespace {

// A directory with one checkpoint and `deltas` WAL records, plus the live
// warehouse context needed to keep everything alive.
struct PreparedDirectory {
  std::unique_ptr<ScaledFigure1> scenario;
  std::shared_ptr<WarehouseSpec> spec;
  std::unique_ptr<Source> source;
  std::unique_ptr<Warehouse> warehouse;
  std::unique_ptr<DurableWarehouse> durable;
  FaultVfs vfs;

  PreparedDirectory(size_t deltas, size_t policy_max_records) {
    scenario = std::make_unique<ScaledFigure1>(200, 1000,
                                               /*referential=*/false, 7);
    ComplementOptions options;
    options.use_constraints = false;
    spec = std::make_shared<WarehouseSpec>(Unwrap(
        SpecifyWarehouse(scenario->catalog, scenario->views, options),
        "spec"));
    source = std::make_unique<Source>(scenario->db, "s1");
    warehouse = std::make_unique<Warehouse>(
        Unwrap(Warehouse::Load(spec, source->db()), "load"));
    StorageOptions storage;
    if (policy_max_records > 0) {
      storage.policy.max_records = policy_max_records;
    } else {
      // "Unbounded": defeat the default policy so the WAL keeps all N
      // records and replay cost is measured against the full log.
      storage.policy.max_records = static_cast<size_t>(-1);
      storage.policy.max_bytes = static_cast<size_t>(-1);
    }
    durable = Unwrap(
        DurableWarehouse::Bootstrap(
            &vfs, "wh", warehouse.get(),
            JournalStamp{source->epoch(), source->last_sequence()}, storage),
        "bootstrap");
    Rng rng(11);
    for (size_t i = 0; i < deltas; ++i) {
      CanonicalDelta delta = Unwrap(
          source->Apply(scenario->MakeInsertBatch(1, &rng)), "apply");
      Check(durable->Integrate(delta, source.get()), "integrate");
    }
  }
};

void BM_RecoveryReplay(benchmark::State& state) {
  // No policy: the WAL keeps all N deltas past the bootstrap checkpoint.
  PreparedDirectory prepared(static_cast<size_t>(state.range(0)),
                             /*policy_max_records=*/0);
  uint64_t replayed = 0;
  for (auto _ : state) {
    RecoveryManager manager(&prepared.vfs, "wh");
    RecoveredStorage recovered =
        Unwrap(manager.Recover(/*repair=*/false), "recover");
    replayed = recovered.report.records_replayed;
    benchmark::DoNotOptimize(recovered.restored.warehouse);
  }
  state.counters["wal_records"] = static_cast<double>(replayed);
}

void BM_PolicyBoundedRecovery(benchmark::State& state) {
  // Varying checkpoint cadence M, history sized to leave the worst-case
  // residue (M - 1 records past the last policy checkpoint): replay work
  // is capped by the policy, not by history length.
  const size_t cadence = static_cast<size_t>(state.range(0));
  PreparedDirectory prepared(/*deltas=*/512 + cadence - 1, cadence);
  uint64_t replayed = 0;
  for (auto _ : state) {
    RecoveryManager manager(&prepared.vfs, "wh");
    RecoveredStorage recovered =
        Unwrap(manager.Recover(/*repair=*/false), "recover");
    replayed = recovered.report.records_replayed;
    benchmark::DoNotOptimize(recovered.restored.warehouse);
  }
  state.counters["wal_records"] = static_cast<double>(replayed);
  state.counters["checkpoints"] =
      static_cast<double>(prepared.durable->stats().checkpoints);
}

BENCHMARK(BM_RecoveryReplay)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PolicyBoundedRecovery)
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dwc

BENCHMARK_MAIN();
