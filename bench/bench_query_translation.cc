// B3 (DESIGN.md): the cost of query independence (Section 3).
//
//   BM_TranslateOnly     — pure rewrite (Q ∘ W^-1 + simplification): the
//                          per-query overhead the warehouse adds.
//   BM_AnswerAtWarehouse — translated query evaluated on warehouse data.
//   BM_AnswerAtSource    — same query evaluated directly at the source (the
//                          channel the paper assumes unavailable).
//
// Expected shape: translation is microseconds (tree rewriting); warehouse
// evaluation is within a small constant of source evaluation — the price of
// reconstructing base relations through inverses. With referential
// integrity, inverses collapse (Example 2.4) and the gap narrows.

#include <benchmark/benchmark.h>

#include "algebra/evaluator.h"
#include "bench/bench_common.h"
#include "core/query_translation.h"
#include "parser/parser.h"
#include "util/string_util.h"

namespace dwc {
namespace bench {
namespace {

const char* Queries[] = {
    // Q1: union over both bases (Example 1.2).
    "project[clerk](Sale) union project[clerk](Emp)",
    // Q2: selective join (Section 3).
    "project[age](select[item = 12345](Sale) join Emp)",
    // Q3: anti-join-ish difference.
    "project[clerk](Emp) minus project[clerk](Sale)",
};

struct Fixture {
  ScaledFigure1 scenario;
  std::shared_ptr<WarehouseSpec> spec;
  std::unique_ptr<Warehouse> warehouse;
  Environment source_env;

  explicit Fixture(size_t fact)
      : scenario(fact / 8 + 4, fact, /*referential=*/true, /*seed=*/5) {
    spec = std::make_shared<WarehouseSpec>(Unwrap(
        SpecifyWarehouse(scenario.catalog, scenario.views), "spec"));
    warehouse = std::make_unique<Warehouse>(
        Unwrap(Warehouse::Load(spec, scenario.db), "load"));
    source_env = Environment::FromDatabase(scenario.db);
  }
};

Fixture& SharedFixture(size_t fact) {
  static auto* fixtures = new std::map<size_t, std::unique_ptr<Fixture>>();
  auto it = fixtures->find(fact);
  if (it == fixtures->end()) {
    it = fixtures->emplace(fact, std::make_unique<Fixture>(fact)).first;
  }
  return *it->second;
}

ExprRef Query(int index) {
  static auto* cache = new std::map<int, ExprRef>();
  auto it = cache->find(index);
  if (it == cache->end()) {
    it = cache->emplace(index, Unwrap(ParseExpr(Queries[index]), "parse"))
             .first;
  }
  return it->second;
}

void BM_TranslateOnly(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(1)));
  ExprRef query = Query(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ExprRef translated =
        Unwrap(TranslateQuery(query, *fixture.spec), "translate");
    benchmark::DoNotOptimize(translated);
  }
}

void BM_AnswerAtWarehouse(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(1)));
  ExprRef query = Query(static_cast<int>(state.range(0)));
  size_t out = 0;
  for (auto _ : state) {
    Relation answer =
        Unwrap(fixture.warehouse->AnswerQuery(query), "answer");
    out = answer.size();
    benchmark::DoNotOptimize(answer);
  }
  state.counters["result_tuples"] = static_cast<double>(out);
}

void BM_AnswerAtSource(benchmark::State& state) {
  Fixture& fixture = SharedFixture(static_cast<size_t>(state.range(1)));
  ExprRef query = Query(static_cast<int>(state.range(0)));
  size_t out = 0;
  for (auto _ : state) {
    Relation answer =
        Unwrap(EvalExpr(*query, fixture.source_env), "answer");
    out = answer.size();
    benchmark::DoNotOptimize(answer);
  }
  state.counters["result_tuples"] = static_cast<double>(out);
}

void Args(benchmark::internal::Benchmark* bench) {
  for (int64_t fact : {1000, 8000}) {
    for (int64_t q = 0; q < 3; ++q) {
      bench->Args({q, fact});
    }
  }
  bench->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_TranslateOnly)->Apply(Args);
BENCHMARK(BM_AnswerAtWarehouse)->Apply(Args);
BENCHMARK(BM_AnswerAtSource)->Apply(Args);

// --json: the same (query, fact) grid with fixed iteration counts, written
// to BENCH_query_translation.json for CI artifact collection.
int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  for (size_t fact : {size_t{1000}, size_t{8000}}) {
    Fixture& fixture = SharedFixture(fact);
    for (int q = 0; q < 3; ++q) {
      ExprRef query = Query(q);
      BenchRow translate;
      translate.name = StrCat("translate_only/q", q + 1, "/fact=", fact);
      translate.latency = SummarizeLatencies(MeasureLatenciesUs(50, [&] {
        ExprRef translated =
            Unwrap(TranslateQuery(query, *fixture.spec), "translate");
        benchmark::DoNotOptimize(translated);
      }));
      rows.push_back(std::move(translate));

      size_t out = 0;
      BenchRow warehouse;
      warehouse.name = StrCat("answer_warehouse/q", q + 1, "/fact=", fact);
      warehouse.latency = SummarizeLatencies(MeasureLatenciesUs(15, [&] {
        Relation answer =
            Unwrap(fixture.warehouse->AnswerQuery(query), "answer");
        out = answer.size();
        benchmark::DoNotOptimize(answer);
      }));
      warehouse.counters["result_tuples"] = static_cast<double>(out);
      rows.push_back(std::move(warehouse));

      BenchRow at_source;
      at_source.name = StrCat("answer_source/q", q + 1, "/fact=", fact);
      at_source.latency = SummarizeLatencies(MeasureLatenciesUs(15, [&] {
        Relation answer =
            Unwrap(EvalExpr(*query, fixture.source_env), "answer");
        out = answer.size();
        benchmark::DoNotOptimize(answer);
      }));
      at_source.counters["result_tuples"] = static_cast<double>(out);
      rows.push_back(std::move(at_source));
    }
  }
  PrintBenchRows(rows);
  WriteBenchJson("query_translation", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
