// B2 (DESIGN.md): warehouse refresh latency per reported update, comparing
// the paper's complement-based incremental maintenance against the two
// baselines, across update batch size |Δ| and database scale.
//
// Expected shape (the paper's claim, Sections 4-5): incremental ≪ recompute
// for small |Δ|; all three converge as |Δ| approaches the database size;
// query-source is the only one whose source-query counter is nonzero.
//
// Columns: batch = |Δ| inserts into Sale, fact = |Sale| at load time.
// Counters: tuples_s = maintained tuples per second,
//           src_queries = source queries issued per refresh.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace dwc {
namespace bench {
namespace {

void RunMaintenance(benchmark::State& state, MaintenanceStrategy strategy) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t fact = static_cast<size_t>(state.range(1));
  const size_t dim = fact / 8 + 4;

  ScaledFigure1 scenario(dim, fact, /*referential=*/true, /*seed=*/7);
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views), "spec"));
  Source source(scenario.db);
  Warehouse warehouse =
      Unwrap(Warehouse::Load(spec, source.db(), strategy), "load");

  Rng rng(99);
  size_t refreshes = 0;
  size_t queries_before = source.query_count();
  for (auto _ : state) {
    state.PauseTiming();
    UpdateOp op = scenario.MakeInsertBatch(batch, &rng);
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    state.ResumeTiming();

    Check(warehouse.Integrate(delta, &source), "integrate");

    // Roll the update back (untimed) so every iteration sees the same
    // database size.
    state.PauseTiming();
    UpdateOp undo;
    undo.relation = "Sale";
    undo.deletes = op.inserts;
    CanonicalDelta undo_delta = Unwrap(source.Apply(undo), "undo");
    Check(warehouse.Integrate(undo_delta, &source), "undo integrate");
    state.ResumeTiming();
    ++refreshes;
  }
  state.counters["tuples_s"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(refreshes),
      benchmark::Counter::kIsRate);
  state.counters["src_queries"] =
      refreshes == 0 ? 0.0
                     : static_cast<double>(source.query_count() -
                                           queries_before) /
                           (2.0 * static_cast<double>(refreshes));
}

void BM_Incremental(benchmark::State& state) {
  RunMaintenance(state, MaintenanceStrategy::kIncremental);
}
void BM_RecomputeFromInverse(benchmark::State& state) {
  RunMaintenance(state, MaintenanceStrategy::kRecomputeFromInverse);
}
void BM_QuerySource(benchmark::State& state) {
  RunMaintenance(state, MaintenanceStrategy::kQuerySource);
}

void Args(benchmark::internal::Benchmark* bench) {
  for (int64_t fact : {1000, 8000}) {
    for (int64_t batch : {1, 16, 256}) {
      bench->Args({batch, fact});
    }
  }
  bench->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Incremental)->Apply(Args);
BENCHMARK(BM_RecomputeFromInverse)->Apply(Args);
BENCHMARK(BM_QuerySource)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace dwc

BENCHMARK_MAIN();
