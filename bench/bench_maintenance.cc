// B2 (DESIGN.md): warehouse refresh latency per reported update, comparing
// the paper's complement-based incremental maintenance against the two
// baselines, across update batch size |Δ| and database scale.
//
// Expected shape (the paper's claim, Sections 4-5): incremental ≪ recompute
// for small |Δ|; all three converge as |Δ| approaches the database size;
// query-source is the only one whose source-query counter is nonzero.
//
// Columns: batch = |Δ| inserts into Sale, fact = |Sale| at load time.
// Counters: tuples_s = maintained tuples per second,
//           src_queries = source queries issued per refresh.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace dwc {
namespace bench {
namespace {

void RunMaintenance(benchmark::State& state, MaintenanceStrategy strategy) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t fact = static_cast<size_t>(state.range(1));
  const size_t dim = fact / 8 + 4;

  ScaledFigure1 scenario(dim, fact, /*referential=*/true, /*seed=*/7);
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views), "spec"));
  Source source(scenario.db);
  Warehouse warehouse =
      Unwrap(Warehouse::Load(spec, source.db(), strategy), "load");

  Rng rng(99);
  size_t refreshes = 0;
  size_t queries_before = source.query_count();
  for (auto _ : state) {
    state.PauseTiming();
    UpdateOp op = scenario.MakeInsertBatch(batch, &rng);
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    state.ResumeTiming();

    Check(warehouse.Integrate(delta, &source), "integrate");

    // Roll the update back (untimed) so every iteration sees the same
    // database size.
    state.PauseTiming();
    UpdateOp undo;
    undo.relation = "Sale";
    undo.deletes = op.inserts;
    CanonicalDelta undo_delta = Unwrap(source.Apply(undo), "undo");
    Check(warehouse.Integrate(undo_delta, &source), "undo integrate");
    state.ResumeTiming();
    ++refreshes;
  }
  state.counters["tuples_s"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(refreshes),
      benchmark::Counter::kIsRate);
  state.counters["src_queries"] =
      refreshes == 0 ? 0.0
                     : static_cast<double>(source.query_count() -
                                           queries_before) /
                           (2.0 * static_cast<double>(refreshes));
}

void BM_Incremental(benchmark::State& state) {
  RunMaintenance(state, MaintenanceStrategy::kIncremental);
}
void BM_RecomputeFromInverse(benchmark::State& state) {
  RunMaintenance(state, MaintenanceStrategy::kRecomputeFromInverse);
}
void BM_QuerySource(benchmark::State& state) {
  RunMaintenance(state, MaintenanceStrategy::kQuerySource);
}

void Args(benchmark::internal::Benchmark* bench) {
  for (int64_t fact : {1000, 8000}) {
    for (int64_t batch : {1, 16, 256}) {
      bench->Args({batch, fact});
    }
  }
  bench->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Incremental)->Apply(Args);
BENCHMARK(BM_RecomputeFromInverse)->Apply(Args);
BENCHMARK(BM_QuerySource)->Apply(Args);

// --json: fixed-iteration sweep over the same (strategy, batch, fact) grid,
// written to BENCH_maintenance.json. CI's perf-smoke job gates on the
// ops/sec of these rows (bench/check_bench_regression.py).
void JsonRow(MaintenanceStrategy strategy, const char* label, size_t batch,
             size_t fact, size_t iterations, std::vector<BenchRow>* rows) {
  const size_t dim = fact / 8 + 4;
  ScaledFigure1 scenario(dim, fact, /*referential=*/true, /*seed=*/7);
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(scenario.catalog, scenario.views), "spec"));
  Source source(scenario.db);
  Warehouse warehouse =
      Unwrap(Warehouse::Load(spec, source.db(), strategy), "load");

  Rng rng(99);
  size_t refreshes = 0;
  // Only the forward Integrate is timed; batch generation and the rollback
  // that keeps the database size fixed are bookkeeping (mirrors the
  // google-benchmark path's Pause/ResumeTiming).
  auto refresh = [&](bool timed, std::vector<double>* latencies) {
    UpdateOp op = scenario.MakeInsertBatch(batch, &rng);
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    auto start = std::chrono::steady_clock::now();
    Check(warehouse.Integrate(delta, &source), "integrate");
    if (timed) {
      latencies->push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count());
      ++refreshes;
    }
    UpdateOp undo;
    undo.relation = "Sale";
    undo.deletes = op.inserts;
    CanonicalDelta undo_delta = Unwrap(source.Apply(undo), "undo");
    Check(warehouse.Integrate(undo_delta, &source), "undo integrate");
  };
  refresh(/*timed=*/false, nullptr);  // Warmup.
  size_t queries_before = source.query_count();
  std::vector<double> latencies;
  for (size_t i = 0; i < iterations; ++i) {
    refresh(/*timed=*/true, &latencies);
  }
  LatencyStats stats = SummarizeLatencies(std::move(latencies));
  BenchRow row;
  row.name = StrCat(label, "/batch=", batch, "/fact=", fact);
  row.threads = 1;
  row.latency = stats;
  row.counters["tuples_s"] =
      stats.ops_per_sec * static_cast<double>(batch);
  row.counters["src_queries"] =
      refreshes == 0
          ? 0.0
          : static_cast<double>(source.query_count() - queries_before) /
                (2.0 * static_cast<double>(refreshes));
  rows->push_back(std::move(row));
}

int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  struct StrategyRun {
    MaintenanceStrategy strategy;
    const char* label;
    size_t iterations;
  };
  const StrategyRun kRuns[] = {
      {MaintenanceStrategy::kIncremental, "incremental", 20},
      {MaintenanceStrategy::kRecomputeFromInverse, "recompute_inverse", 5},
      {MaintenanceStrategy::kQuerySource, "query_source", 5},
  };
  for (const StrategyRun& run : kRuns) {
    for (size_t fact : {size_t{1000}, size_t{8000}}) {
      for (size_t batch : {size_t{1}, size_t{16}, size_t{256}}) {
        JsonRow(run.strategy, run.label, batch, fact, run.iterations, &rows);
      }
    }
  }
  PrintBenchRows(rows);
  WriteBenchJson("maintenance", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
