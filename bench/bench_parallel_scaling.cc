// B11 (see EXPERIMENTS.md): morsel-driven parallel scaling. The same
// warehouse workload — incremental integrates, full recompute-from-inverse
// refreshes, and translated analytical queries — runs at 1, 2, 4 and 8
// threads, and every configuration's final state digest must equal the
// serial one (relations are sets; thread count is not allowed to be
// observable in the state).
//
// Expected shape on multi-core hardware: recompute and query throughput
// scale with threads until memory bandwidth saturates (the probe loops are
// embarrassingly parallel); small incremental refreshes stay flat because
// they never cross min_parallel_tuples — parallelism must not tax the
// O(|delta|) fast path. Amdahl's law caps the rest: the serial commit phase
// and index maintenance bound the speedup (see DESIGN.md §9).
//
// With --json, writes BENCH_parallel_scaling.json (ops/sec, p50/p99 per
// configuration) for CI artifact collection.

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "bench/bench_common.h"
#include "exec/thread_pool.h"
#include "util/checksum.h"
#include "warehouse/source.h"

namespace dwc {
namespace bench {
namespace {

constexpr size_t kDim = 2000;
constexpr size_t kFact = 24000;
constexpr size_t kBatch = 256;
constexpr size_t kRefreshes = 6;
constexpr size_t kQueries = 4;
constexpr size_t kRecomputes = 2;

double ElapsedUs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// One full workload at `threads`; returns the final combined state digest
// and appends one BenchRow per workload phase.
uint64_t RunConfig(size_t threads, std::vector<BenchRow>* rows) {
  ScaledFigure1 scenario(kDim, kFact, /*referential=*/false, /*seed=*/17);
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(scenario.catalog, scenario.views), "spec"));

  EvaluatorOptions options;
  options.num_threads = threads;

  // Incremental refreshes.
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");
  warehouse.SetEvaluatorOptions(options);
  Rng rng(41);
  std::vector<double> integrate_us;
  double parallel_kernels = 0;
  for (size_t i = 0; i < kRefreshes; ++i) {
    UpdateOp op = scenario.MakeInsertBatch(kBatch, &rng);
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    auto start = std::chrono::steady_clock::now();
    Check(warehouse.Integrate(delta), "integrate");
    integrate_us.push_back(ElapsedUs(start));
    parallel_kernels += static_cast<double>(
        warehouse.last_integrate_stats().parallel_kernels);
  }
  rows->push_back(BenchRow{"integrate_incremental", threads,
                           SummarizeLatencies(integrate_us),
                           {{"batch", static_cast<double>(kBatch)},
                            {"parallel_kernels", parallel_kernels}}});

  // Translated analytical queries (probe-heavy joins over the full state).
  ExprRef query = Expr::Join(Expr::Base("Sale"), Expr::Base("Emp"));
  std::vector<double> query_us;
  size_t query_out = 0;
  for (size_t i = 0; i < kQueries; ++i) {
    auto start = std::chrono::steady_clock::now();
    Relation result = Unwrap(warehouse.AnswerQuery(query), "query");
    query_us.push_back(ElapsedUs(start));
    query_out = result.size();
  }
  rows->push_back(BenchRow{"answer_query", threads,
                           SummarizeLatencies(query_us),
                           {{"out", static_cast<double>(query_out)}}});

  // Recompute-from-inverse refreshes (O(|database|): the parallel
  // complement reconstruction plus full rematerialization).
  Source recompute_source(scenario.db);
  Warehouse recompute = Unwrap(
      Warehouse::Load(spec, recompute_source.db(),
                      MaintenanceStrategy::kRecomputeFromInverse),
      "load recompute");
  recompute.SetEvaluatorOptions(options);
  Rng recompute_rng(43);
  std::vector<double> recompute_us;
  for (size_t i = 0; i < kRecomputes; ++i) {
    UpdateOp op = scenario.MakeInsertBatch(kBatch, &recompute_rng);
    CanonicalDelta delta = Unwrap(recompute_source.Apply(op), "apply");
    auto start = std::chrono::steady_clock::now();
    Check(recompute.Integrate(delta), "recompute");
    recompute_us.push_back(ElapsedUs(start));
  }
  rows->push_back(BenchRow{"integrate_recompute", threads,
                           SummarizeLatencies(recompute_us),
                           {}});

  return StateDigest(warehouse.state()).Combined() ^
         (StateDigest(recompute.state()).Combined() << 1);
}

int Main(int argc, char** argv) {
  const bool json = JsonRequested(argc, argv);
  std::vector<BenchRow> rows;
  uint64_t serial_digest = 0;
  std::printf("hardware threads: %zu (pool workers: %zu)\n",
              ThreadPool::ResolveThreads(0),
              ThreadPool::Shared().worker_count());
  std::printf("%-24s %8s %12s %12s %12s\n", "workload", "threads",
              "ops/sec", "p50 us", "p99 us");
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    size_t first_row = rows.size();
    uint64_t digest = RunConfig(threads, &rows);
    if (threads == 1) {
      serial_digest = digest;
    } else if (digest != serial_digest) {
      std::fprintf(stderr,
                   "DIGEST MISMATCH at %zu threads: %016llx vs serial "
                   "%016llx\n",
                   threads, static_cast<unsigned long long>(digest),
                   static_cast<unsigned long long>(serial_digest));
      return 1;
    }
    for (size_t i = first_row; i < rows.size(); ++i) {
      std::printf("%-24s %8zu %12.1f %12.1f %12.1f\n", rows[i].name.c_str(),
                  rows[i].threads, rows[i].latency.ops_per_sec,
                  rows[i].latency.p50_us, rows[i].latency.p99_us);
    }
  }
  std::printf("state digests identical across all thread counts\n");
  if (json) {
    WriteBenchJson("parallel_scaling", rows);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
