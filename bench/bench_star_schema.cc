// B5 / E13 (DESIGN.md): the Section 5 star-schema scenario at benchmark
// scale — initial load and fact-append refresh throughput across batch
// sizes, with zero source queries throughout.
//
// Expected shape: per-refresh latency grows sub-linearly with batch size
// (fixed per-refresh overhead amortizes), so tuples/s rises with the batch;
// load time scales with |Sales|.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "util/string_util.h"
#include "workload/star_schema.h"

namespace dwc {
namespace bench {
namespace {

StarSchemaConfig BenchConfig(size_t sales) {
  StarSchemaConfig config;
  config.customers = 200;
  config.suppliers = 50;
  config.parts = 400;
  config.locations = 25;
  config.orders = sales / 4 + 16;
  config.sales = sales;
  return config;
}

void BM_InitialLoad(benchmark::State& state) {
  size_t sales = static_cast<size_t>(state.range(0));
  StarSchema star = Unwrap(BuildStarSchema(BenchConfig(sales)), "star");
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(star.catalog, star.views), "spec"));
  for (auto _ : state) {
    Warehouse warehouse = Unwrap(Warehouse::Load(spec, star.db), "load");
    benchmark::DoNotOptimize(warehouse);
  }
  state.counters["fact_tuples"] = static_cast<double>(sales);
}

void BM_SalesAppend(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  StarSchema star = Unwrap(BuildStarSchema(BenchConfig(6000)), "star");
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(star.catalog, star.views), "spec"));
  Source source(star.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  Rng rng(17);
  size_t refreshes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    UpdateOp op = Unwrap(GenerateSalesBatch(source.db(), batch, &rng), "gen");
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    state.ResumeTiming();

    Check(warehouse.Integrate(delta), "integrate");

    state.PauseTiming();
    UpdateOp undo;
    undo.relation = "Sales";
    undo.deletes = op.inserts;
    CanonicalDelta undo_delta = Unwrap(source.Apply(undo), "undo");
    Check(warehouse.Integrate(undo_delta), "undo integrate");
    state.ResumeTiming();
    ++refreshes;
  }
  state.counters["tuples_s"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(refreshes),
      benchmark::Counter::kIsRate);
  state.counters["src_queries"] = static_cast<double>(source.query_count());
}

BENCHMARK(BM_InitialLoad)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SalesAppend)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// --json: fixed-iteration sweep written to BENCH_star_schema.json for CI
// artifact collection (the 32000-row load is skipped to keep the perf-smoke
// job fast; run the google-benchmark path for the full grid).
int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  for (size_t sales : {size_t{2000}, size_t{8000}}) {
    StarSchema star = Unwrap(BuildStarSchema(BenchConfig(sales)), "star");
    auto spec = std::make_shared<WarehouseSpec>(
        Unwrap(SpecifyWarehouse(star.catalog, star.views), "spec"));
    BenchRow row;
    row.name = StrCat("initial_load/sales=", sales);
    row.latency = SummarizeLatencies(MeasureLatenciesUs(3, [&] {
      Warehouse warehouse = Unwrap(Warehouse::Load(spec, star.db), "load");
      benchmark::DoNotOptimize(warehouse);
    }));
    row.counters["fact_tuples"] = static_cast<double>(sales);
    rows.push_back(std::move(row));
  }
  for (size_t batch : {size_t{1}, size_t{10}, size_t{100}, size_t{1000}}) {
    StarSchema star = Unwrap(BuildStarSchema(BenchConfig(6000)), "star");
    auto spec = std::make_shared<WarehouseSpec>(
        Unwrap(SpecifyWarehouse(star.catalog, star.views), "spec"));
    Source source(star.db);
    Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");
    Rng rng(17);
    // Timed: the forward Integrate; untimed: batch generation and the
    // rollback keeping the database size fixed.
    std::vector<double> latencies;
    auto refresh = [&](bool timed) {
      UpdateOp op =
          Unwrap(GenerateSalesBatch(source.db(), batch, &rng), "gen");
      CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
      auto start = std::chrono::steady_clock::now();
      Check(warehouse.Integrate(delta), "integrate");
      if (timed) {
        latencies.push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count());
      }
      UpdateOp undo;
      undo.relation = "Sales";
      undo.deletes = op.inserts;
      CanonicalDelta undo_delta = Unwrap(source.Apply(undo), "undo");
      Check(warehouse.Integrate(undo_delta), "undo integrate");
    };
    refresh(/*timed=*/false);
    for (int i = 0; i < 8; ++i) {
      refresh(/*timed=*/true);
    }
    BenchRow row;
    row.name = StrCat("sales_append/batch=", batch);
    row.latency = SummarizeLatencies(std::move(latencies));
    row.counters["tuples_s"] =
        row.latency.ops_per_sec * static_cast<double>(batch);
    row.counters["src_queries"] = static_cast<double>(source.query_count());
    rows.push_back(std::move(row));
  }
  PrintBenchRows(rows);
  WriteBenchJson("star_schema", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
