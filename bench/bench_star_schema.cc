// B5 / E13 (DESIGN.md): the Section 5 star-schema scenario at benchmark
// scale — initial load and fact-append refresh throughput across batch
// sizes, with zero source queries throughout.
//
// Expected shape: per-refresh latency grows sub-linearly with batch size
// (fixed per-refresh overhead amortizes), so tuples/s rises with the batch;
// load time scales with |Sales|.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "workload/star_schema.h"

namespace dwc {
namespace bench {
namespace {

StarSchemaConfig BenchConfig(size_t sales) {
  StarSchemaConfig config;
  config.customers = 200;
  config.suppliers = 50;
  config.parts = 400;
  config.locations = 25;
  config.orders = sales / 4 + 16;
  config.sales = sales;
  return config;
}

void BM_InitialLoad(benchmark::State& state) {
  size_t sales = static_cast<size_t>(state.range(0));
  StarSchema star = Unwrap(BuildStarSchema(BenchConfig(sales)), "star");
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(star.catalog, star.views), "spec"));
  for (auto _ : state) {
    Warehouse warehouse = Unwrap(Warehouse::Load(spec, star.db), "load");
    benchmark::DoNotOptimize(warehouse);
  }
  state.counters["fact_tuples"] = static_cast<double>(sales);
}

void BM_SalesAppend(benchmark::State& state) {
  size_t batch = static_cast<size_t>(state.range(0));
  StarSchema star = Unwrap(BuildStarSchema(BenchConfig(6000)), "star");
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(star.catalog, star.views), "spec"));
  Source source(star.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  Rng rng(17);
  size_t refreshes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    UpdateOp op = Unwrap(GenerateSalesBatch(source.db(), batch, &rng), "gen");
    CanonicalDelta delta = Unwrap(source.Apply(op), "apply");
    state.ResumeTiming();

    Check(warehouse.Integrate(delta), "integrate");

    state.PauseTiming();
    UpdateOp undo;
    undo.relation = "Sales";
    undo.deletes = op.inserts;
    CanonicalDelta undo_delta = Unwrap(source.Apply(undo), "undo");
    Check(warehouse.Integrate(undo_delta), "undo integrate");
    state.ResumeTiming();
    ++refreshes;
  }
  state.counters["tuples_s"] = benchmark::Counter(
      static_cast<double>(batch) * static_cast<double>(refreshes),
      benchmark::Counter::kIsRate);
  state.counters["src_queries"] = static_cast<double>(source.query_count());
}

BENCHMARK(BM_InitialLoad)
    ->Arg(2000)
    ->Arg(8000)
    ->Arg(32000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_SalesAppend)
    ->Arg(1)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace dwc

BENCHMARK_MAIN();
