// B8 (extension): atomic multi-relation transactions vs integrating the
// same deltas one relation at a time. The transaction path evaluates one
// simultaneous-update plan; the sequential path evaluates one plan per
// relation against intermediate states. Both are correct; the question is
// the overhead of the (cached) multi-base plan machinery.
//
// Expected shape: near-parity for small deltas (plan caching amortizes the
// derivation), with the transaction path saving one round of per-relation
// bookkeeping as the number of touched relations grows.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_common.h"
#include "util/string_util.h"

namespace dwc {
namespace bench {
namespace {

// A (Sale-insert, Emp-insert) pair touching both relations.
std::vector<UpdateOp> MakeOps(const ScaledFigure1& scenario, size_t batch,
                              Rng* rng) {
  UpdateOp sale = scenario.MakeInsertBatch(batch, rng);
  UpdateOp emp;
  emp.relation = "Emp";
  size_t dim = scenario.db.FindRelation("Emp")->size();
  for (size_t i = 0; i < batch; ++i) {
    emp.inserts.push_back(
        Tuple({Value::Int(static_cast<int64_t>(dim) + rng->Range(0, 1 << 28)),
               Value::Int(rng->Range(18, 65))}));
  }
  return {std::move(sale), std::move(emp)};
}

void RunTransactions(benchmark::State& state, bool atomic) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScaledFigure1 scenario(1000, 8000, /*referential=*/false, 7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<UpdateOp> ops = MakeOps(scenario, batch, &rng);
    std::vector<CanonicalDelta> deltas =
        Unwrap(source.ApplyTransaction(ops), "apply");
    state.ResumeTiming();

    if (atomic) {
      Check(warehouse.IntegrateTransaction(deltas), "txn");
    } else {
      for (const CanonicalDelta& delta : deltas) {
        Check(warehouse.Integrate(delta), "seq");
      }
    }

    state.PauseTiming();
    // Roll back (untimed) to keep the state size stable.
    std::vector<UpdateOp> undo;
    for (const UpdateOp& op : ops) {
      undo.push_back(UpdateOp{op.relation, {}, op.inserts});
    }
    std::vector<CanonicalDelta> undo_deltas =
        Unwrap(source.ApplyTransaction(undo), "undo");
    Check(warehouse.IntegrateTransaction(undo_deltas), "undo txn");
    state.ResumeTiming();
  }
  state.counters["src_queries"] = static_cast<double>(source.query_count());
}

void BM_AtomicTransaction(benchmark::State& state) {
  RunTransactions(state, /*atomic=*/true);
}
void BM_SequentialIntegration(benchmark::State& state) {
  RunTransactions(state, /*atomic=*/false);
}

BENCHMARK(BM_AtomicTransaction)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialIntegration)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

// --json: fixed-iteration sweep over the same (mode, batch) grid, written
// to BENCH_transactions.json for CI's perf-smoke gate.
void JsonRow(bool atomic, size_t batch, size_t iterations,
             std::vector<BenchRow>* rows) {
  ScaledFigure1 scenario(1000, 8000, /*referential=*/false, 7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  Rng rng(11);
  auto round = [&](bool timed, std::vector<double>* latencies) {
    std::vector<UpdateOp> ops = MakeOps(scenario, batch, &rng);
    std::vector<CanonicalDelta> deltas =
        Unwrap(source.ApplyTransaction(ops), "apply");
    auto start = std::chrono::steady_clock::now();
    if (atomic) {
      Check(warehouse.IntegrateTransaction(deltas), "txn");
    } else {
      for (const CanonicalDelta& delta : deltas) {
        Check(warehouse.Integrate(delta), "seq");
      }
    }
    if (timed) {
      latencies->push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    }
    std::vector<UpdateOp> undo;
    for (const UpdateOp& op : ops) {
      undo.push_back(UpdateOp{op.relation, {}, op.inserts});
    }
    std::vector<CanonicalDelta> undo_deltas =
        Unwrap(source.ApplyTransaction(undo), "undo");
    Check(warehouse.IntegrateTransaction(undo_deltas), "undo txn");
  };
  round(/*timed=*/false, nullptr);  // Warmup.
  std::vector<double> latencies;
  for (size_t i = 0; i < iterations; ++i) {
    round(/*timed=*/true, &latencies);
  }
  BenchRow row;
  row.name = StrCat(atomic ? "atomic" : "sequential", "/batch=", batch);
  row.threads = 1;
  row.latency = SummarizeLatencies(std::move(latencies));
  row.counters["src_queries"] = static_cast<double>(source.query_count());
  rows->push_back(std::move(row));
}

int Main(int argc, char** argv) {
  if (!JsonRequested(argc, argv)) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  std::vector<BenchRow> rows;
  for (bool atomic : {true, false}) {
    for (size_t batch : {size_t{1}, size_t{16}, size_t{128}}) {
      JsonRow(atomic, batch, /*iterations=*/10, &rows);
    }
  }
  PrintBenchRows(rows);
  WriteBenchJson("transactions", rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dwc

int main(int argc, char** argv) { return dwc::bench::Main(argc, argv); }
