// B8 (extension): atomic multi-relation transactions vs integrating the
// same deltas one relation at a time. The transaction path evaluates one
// simultaneous-update plan; the sequential path evaluates one plan per
// relation against intermediate states. Both are correct; the question is
// the overhead of the (cached) multi-base plan machinery.
//
// Expected shape: near-parity for small deltas (plan caching amortizes the
// derivation), with the transaction path saving one round of per-relation
// bookkeeping as the number of touched relations grows.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace dwc {
namespace bench {
namespace {

// A (Sale-insert, Emp-insert) pair touching both relations.
std::vector<UpdateOp> MakeOps(const ScaledFigure1& scenario, size_t batch,
                              Rng* rng) {
  UpdateOp sale = scenario.MakeInsertBatch(batch, rng);
  UpdateOp emp;
  emp.relation = "Emp";
  size_t dim = scenario.db.FindRelation("Emp")->size();
  for (size_t i = 0; i < batch; ++i) {
    emp.inserts.push_back(
        Tuple({Value::Int(static_cast<int64_t>(dim) + rng->Range(0, 1 << 28)),
               Value::Int(rng->Range(18, 65))}));
  }
  return {std::move(sale), std::move(emp)};
}

void RunTransactions(benchmark::State& state, bool atomic) {
  const size_t batch = static_cast<size_t>(state.range(0));
  ScaledFigure1 scenario(1000, 8000, /*referential=*/false, 7);
  ComplementOptions options;
  options.use_constraints = false;
  auto spec = std::make_shared<WarehouseSpec>(Unwrap(
      SpecifyWarehouse(scenario.catalog, scenario.views, options), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");

  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<UpdateOp> ops = MakeOps(scenario, batch, &rng);
    std::vector<CanonicalDelta> deltas =
        Unwrap(source.ApplyTransaction(ops), "apply");
    state.ResumeTiming();

    if (atomic) {
      Check(warehouse.IntegrateTransaction(deltas), "txn");
    } else {
      for (const CanonicalDelta& delta : deltas) {
        Check(warehouse.Integrate(delta), "seq");
      }
    }

    state.PauseTiming();
    // Roll back (untimed) to keep the state size stable.
    std::vector<UpdateOp> undo;
    for (const UpdateOp& op : ops) {
      undo.push_back(UpdateOp{op.relation, {}, op.inserts});
    }
    std::vector<CanonicalDelta> undo_deltas =
        Unwrap(source.ApplyTransaction(undo), "undo");
    Check(warehouse.IntegrateTransaction(undo_deltas), "undo txn");
    state.ResumeTiming();
  }
  state.counters["src_queries"] = static_cast<double>(source.query_count());
}

void BM_AtomicTransaction(benchmark::State& state) {
  RunTransactions(state, /*atomic=*/true);
}
void BM_SequentialIntegration(benchmark::State& state) {
  RunTransactions(state, /*atomic=*/false);
}

BENCHMARK(BM_AtomicTransaction)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialIntegration)
    ->Arg(1)
    ->Arg(16)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dwc

BENCHMARK_MAIN();
