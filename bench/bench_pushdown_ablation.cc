// B7 (ablation, see DESIGN.md): what the evaluator's semijoin pushdown is
// worth. The same maintenance expression — the Example 4.1 shape
// Δ+Sold = ins:Sale |x| (C_Emp ∪ π(Sold)) — is evaluated with and without
// pushdown across database sizes.
//
// Expected shape: with pushdown the cost is O(|Δ|) (flat across database
// sizes); without, every refresh pays an O(|DB|) reconstruction scan. This
// isolates the mechanism behind B2's incremental-vs-recompute gap.

#include <benchmark/benchmark.h>

#include "algebra/evaluator.h"
#include "bench/bench_common.h"
#include "maintenance/plan.h"

namespace dwc {
namespace bench {
namespace {

void RunAblation(benchmark::State& state, EvaluatorOptions options,
                 size_t batch, size_t fact) {
  ScaledFigure1 scenario(fact / 8 + 4, fact, /*referential=*/true, 7);
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(scenario.catalog, scenario.views), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");
  MaintenancePlan plan = Unwrap(DeriveMaintenancePlan(*spec), "plan");
  const DeltaPair* sold_plan = plan.Find("Sold", "Sale");
  Check(sold_plan == nullptr
            ? Status::Internal("missing Sold/Sale plan")
            : Status::Ok(),
        "plan lookup");

  Rng rng(5);
  UpdateOp op = scenario.MakeInsertBatch(batch, &rng);
  CanonicalDelta delta = Unwrap(source.Apply(op), "apply");

  Environment env = warehouse.Env();
  env.Bind("ins:Sale", &delta.inserts);
  env.Bind("del:Sale", &delta.deletes);

  size_t out = 0;
  size_t pushdown_joins = 0;
  for (auto _ : state) {
    Evaluator evaluator(&env, options);
    Relation plus = Unwrap(evaluator.Materialize(*sold_plan->plus), "plus");
    out = plus.size();
    pushdown_joins = evaluator.stats().pushdown_joins;
    benchmark::DoNotOptimize(plus);
  }
  state.counters["delta_out"] = static_cast<double>(out);
  state.counters["pushdown_joins"] = static_cast<double>(pushdown_joins);
}

void BM_WithPushdown(benchmark::State& state) {
  EvaluatorOptions options;
  RunAblation(state, options, static_cast<size_t>(state.range(0)),
              static_cast<size_t>(state.range(1)));
}
void BM_WithoutPushdown(benchmark::State& state) {
  EvaluatorOptions options;
  options.enable_pushdown = false;
  RunAblation(state, options, static_cast<size_t>(state.range(0)),
              static_cast<size_t>(state.range(1)));
}

// Threshold sweeps (the two knobs behind Evaluator::WorthPushdown). Each
// sweep pins the other knob so only the swept threshold decides.
//
// pushdown_max_keys: the absolute "operand is tiny" escape hatch. The
// selectivity factor is pinned huge so the ratio path never fires; a batch
// above/below max_keys flips between probing and scanning.
void BM_ThresholdMaxKeys(benchmark::State& state) {
  EvaluatorOptions options;
  options.pushdown_max_keys = static_cast<size_t>(state.range(0));
  options.pushdown_selectivity_factor = 1 << 20;
  RunAblation(state, options, /*batch=*/64, /*fact=*/8000);
}

// pushdown_selectivity_factor: the relative "operand is much smaller than
// the scan it saves" test. max_keys is pinned to zero so only the ratio
// path can trigger pushdown.
void BM_ThresholdSelectivity(benchmark::State& state) {
  EvaluatorOptions options;
  options.pushdown_max_keys = 0;
  options.pushdown_selectivity_factor = static_cast<size_t>(state.range(0));
  RunAblation(state, options, /*batch=*/64, /*fact=*/8000);
}

void Args(benchmark::internal::Benchmark* bench) {
  for (int64_t fact : {1000, 8000, 32000}) {
    for (int64_t batch : {1, 64}) {
      bench->Args({batch, fact});
    }
  }
  bench->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_WithPushdown)->Apply(Args);
BENCHMARK(BM_WithoutPushdown)->Apply(Args);
BENCHMARK(BM_ThresholdMaxKeys)
    ->Arg(0)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ThresholdSelectivity)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace dwc

BENCHMARK_MAIN();
