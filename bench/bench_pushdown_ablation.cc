// B7 (ablation, see DESIGN.md): what the evaluator's semijoin pushdown is
// worth. The same maintenance expression — the Example 4.1 shape
// Δ+Sold = ins:Sale |x| (C_Emp ∪ π(Sold)) — is evaluated with and without
// pushdown across database sizes.
//
// Expected shape: with pushdown the cost is O(|Δ|) (flat across database
// sizes); without, every refresh pays an O(|DB|) reconstruction scan. This
// isolates the mechanism behind B2's incremental-vs-recompute gap.

#include <benchmark/benchmark.h>

#include "algebra/evaluator.h"
#include "bench/bench_common.h"
#include "maintenance/plan.h"

namespace dwc {
namespace bench {
namespace {

void RunAblation(benchmark::State& state, bool enable_pushdown) {
  const size_t fact = static_cast<size_t>(state.range(1));
  const size_t batch = static_cast<size_t>(state.range(0));
  ScaledFigure1 scenario(fact / 8 + 4, fact, /*referential=*/true, 7);
  auto spec = std::make_shared<WarehouseSpec>(
      Unwrap(SpecifyWarehouse(scenario.catalog, scenario.views), "spec"));
  Source source(scenario.db);
  Warehouse warehouse = Unwrap(Warehouse::Load(spec, source.db()), "load");
  MaintenancePlan plan = Unwrap(DeriveMaintenancePlan(*spec), "plan");
  const DeltaPair* sold_plan = plan.Find("Sold", "Sale");
  Check(sold_plan == nullptr
            ? Status::Internal("missing Sold/Sale plan")
            : Status::Ok(),
        "plan lookup");

  Rng rng(5);
  UpdateOp op = scenario.MakeInsertBatch(batch, &rng);
  CanonicalDelta delta = Unwrap(source.Apply(op), "apply");

  Environment env = warehouse.Env();
  env.Bind("ins:Sale", &delta.inserts);
  env.Bind("del:Sale", &delta.deletes);
  EvaluatorOptions options;
  options.enable_pushdown = enable_pushdown;

  size_t out = 0;
  for (auto _ : state) {
    Evaluator evaluator(&env, options);
    Relation plus = Unwrap(evaluator.Materialize(*sold_plan->plus), "plus");
    out = plus.size();
    benchmark::DoNotOptimize(plus);
  }
  state.counters["delta_out"] = static_cast<double>(out);
}

void BM_WithPushdown(benchmark::State& state) {
  RunAblation(state, /*enable_pushdown=*/true);
}
void BM_WithoutPushdown(benchmark::State& state) {
  RunAblation(state, /*enable_pushdown=*/false);
}

void Args(benchmark::internal::Benchmark* bench) {
  for (int64_t fact : {1000, 8000, 32000}) {
    for (int64_t batch : {1, 64}) {
      bench->Args({batch, fact});
    }
  }
  bench->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_WithPushdown)->Apply(Args);
BENCHMARK(BM_WithoutPushdown)->Apply(Args);

}  // namespace
}  // namespace bench
}  // namespace dwc

BENCHMARK_MAIN();
